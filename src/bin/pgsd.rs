//! `pgsd` — command-line front door to the diversifying toolchain.
//!
//! ```text
//! pgsd run <file.mc> [args…]                      compile and execute
//! pgsd diversify <file.mc> [options] [args…]      diversified build + run
//! pgsd check <file.mc> [options] [--json]         statically validate a variant
//! pgsd audit <file.mc | --workload LIST> [opts]   whole-image static audit
//! pgsd symbolicate <file.mc> <id> <addr>          remap a variant crash address
//! pgsd gadgets <file.mc> [--seed N] [--pnop SPEC] gadget / Survivor report
//! pgsd disasm <file.mc> [--func NAME]             disassemble the image
//! pgsd report <metrics.json>                      summarize a metrics file
//! pgsd fuzz [options]                             differential variant fuzzing
//! pgsd bench [--out FILE]                         timed slice → BENCH_pgsd.json
//! pgsd cache <stats|clear> [--json]               inspect / empty the cache
//! pgsd serve [--addr HOST:PORT] [--queue N]       variant-distribution daemon
//! pgsd fetch <file.mc | --workload NAME> --addr … fetch a variant from a daemon
//!
//! global flags (valid anywhere on the command line):
//!   --cache-dir DIR  persist compiled artifacts under DIR and reuse them
//!                    across invocations (also selects the directory for
//!                    `pgsd cache`; default `.pgsd-cache` there)
//!   --threads N      worker count for parallel sections
//!
//! diversify / check options:
//!   --pnop SPEC      uniform `0.5` or profile-guided range `0.0-0.3`
//!                    (default 0.0-0.3, the paper's cheapest setting)
//!   --seed N         RNG seed (default 1)
//!   --train LIST     comma-separated ints for the training run
//!                    (default: the program's run arguments)
//!   --shift          also apply basic-block shifting (§6)
//!   --subst          also apply equivalent-instruction substitution (§6)
//!   --regrand        also randomize register allocation (§6)
//!   --validate       (diversify only) run the divcheck validator after
//!                    the build and fail on any finding
//!   --trace FILE     write a Chrome trace_event JSON of all phases
//!   --metrics FILE   write the metrics JSON (counters/gauges/histograms)
//! ```
//!
//! Diagnostics go to stderr. Exit codes are stable: `0` success, `1` the
//! checked property failed (divcheck findings, audit error findings, fuzz
//! divergences, abnormal program exit, a `busy`/failed serve response),
//! `2` usage or I/O error. With `--json`, the commands that support it
//! (`run`, `diversify`, `check`, `fuzz`, `fetch`) print exactly one
//! schema-versioned envelope document on stdout and nothing else, so
//! `pgsd … --json | python -m json.tool` always parses.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pgsd::analysis::{check_images, findings_json, sort_findings};
use pgsd::cache::Cache;
use pgsd::cc::emit::Image;
use pgsd::core::driver::{BuildConfig, Input, DEFAULT_GAS};
use pgsd::core::{Session, Strategy};
use pgsd::fuzz::diff::TransformSet;
use pgsd::fuzz::{fuzz, replay, FuzzConfig};
use pgsd::gadget::{find_gadgets, survivor, ScanConfig};
use pgsd::proto::{DiversifyRequest, Envelope, ErrorCode, Response, Target, VariantInfo};
use pgsd::serve::client::ClientError;
use pgsd::serve::{install_signal_handlers, serve, ServeConfig};
use pgsd::telemetry::{MetricsDoc, Telemetry};
use pgsd::x86::decode;
use pgsd::x86::nop::NopTable;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = split_globals(&args)
        .map_err(CliError::from)
        .and_then(|(globals, rest)| dispatch(&globals, &rest));
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pgsd: {}", e.msg);
            ExitCode::from(e.code)
        }
    }
}

/// A CLI error with its exit code: `1` when the checked property failed
/// (validation findings, audit errors, fuzz divergences, abnormal
/// program exit), `2` for usage and I/O errors. Plain `String` errors
/// convert to code 2, so only genuine verdict failures need
/// [`CliError::failed`].
struct CliError {
    msg: String,
    code: u8,
}

impl CliError {
    /// The property under test failed — exit 1.
    fn failed(msg: impl Into<String>) -> CliError {
        CliError {
            msg: msg.into(),
            code: 1,
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError { msg, code: 2 }
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> CliError {
        CliError::from(msg.to_owned())
    }
}

/// Flags the CLI accepts at any position, before or after the
/// subcommand.
struct Globals {
    cache_dir: Option<PathBuf>,
    threads: Option<usize>,
}

impl Globals {
    /// The artifact cache for this invocation: persistent when
    /// `--cache-dir` was given, otherwise in-memory for the process.
    fn open_cache(&self) -> Result<Cache, String> {
        match &self.cache_dir {
            Some(dir) => Cache::persistent(dir)
                .map_err(|e| format!("cannot open cache `{}`: {e}", dir.display())),
            None => Ok(Cache::in_memory()),
        }
    }
}

/// Pulls the global flags (`--cache-dir DIR`, `--threads N`) out of the
/// argument list wherever they appear; everything else is passed
/// through, in order, to the subcommand parsers. The value of any
/// ordinary value-taking flag is skipped verbatim, so e.g. a `--train`
/// list can never be mistaken for a global flag.
fn split_globals(args: &[String]) -> Result<(Globals, Vec<String>), String> {
    let mut globals = Globals {
        cache_dir: None,
        threads: None,
    };
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => {
                let dir = it.next().ok_or("--cache-dir needs a value")?;
                globals.cache_dir = Some(PathBuf::from(dir));
            }
            "--threads" => {
                let n: usize = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad threads: {e}"))?;
                globals.threads = Some(n.max(1));
            }
            a => {
                rest.push(arg.clone());
                if FLAGS
                    .iter()
                    .any(|(f, takes_value, _)| *f == a && *takes_value)
                {
                    if let Some(v) = it.next() {
                        rest.push(v.clone());
                    }
                }
            }
        }
    }
    Ok((globals, rest))
}

fn dispatch(globals: &Globals, args: &[String]) -> Result<(), CliError> {
    let Some(cmd) = args.first() else {
        return Err(
            "usage: pgsd <run|diversify|check|audit|symbolicate|gadgets|disasm|report|fuzz|\
             bench|cache|serve|fetch> <file> …  (see --help)"
                .into(),
        );
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        print!("{HELP}");
        return Ok(());
    }
    let rest = &args[1..];
    match cmd.as_str() {
        "run" => cmd_run(rest, globals),
        "diversify" => cmd_diversify(rest, globals),
        "check" => cmd_check(rest, globals),
        "audit" => cmd_audit(rest, globals),
        "symbolicate" => cmd_symbolicate(rest, globals),
        "gadgets" => Ok(cmd_gadgets(rest, globals)?),
        "disasm" => Ok(cmd_disasm(rest, globals)?),
        "report" => Ok(cmd_report(rest)?),
        "fuzz" => cmd_fuzz(rest, globals),
        "bench" => cmd_bench(rest, globals),
        "cache" => Ok(cmd_cache(rest, globals)?),
        "serve" => cmd_serve(rest, globals),
        "fetch" => cmd_fetch(rest, globals),
        other => Err(format!("unknown command `{other}` (try --help)").into()),
    }
}

const HELP: &str = "\
pgsd — profile-guided software diversity toolchain (CGO 2013 reproduction)

  pgsd run <file.mc> [--json] [--trace FILE] [--metrics FILE] [args…]
  pgsd diversify <file.mc> [--pnop SPEC] [--seed N] [--train LIST]
                           [--shift] [--subst] [--regrand] [--validate]
                           [--json] [--out FILE]
                           [--trace FILE] [--metrics FILE] [args…]
  pgsd check <file.mc> [--pnop SPEC] [--seed N] [--train LIST]
                       [--shift] [--subst] [--regrand] [--json]
                       [--trace FILE] [--metrics FILE]
  pgsd audit <file.mc | --workload LIST> [--versions N] [--pnop SPEC]
             [--seed N] [--train LIST] [--shift] [--subst] [--regrand]
             [--out FILE] [--trace FILE] [--metrics FILE]
  pgsd symbolicate <file.mc> <variant-id> <fault-addr>
  pgsd gadgets <file.mc> [--pnop SPEC] [--seed N] [--train LIST]
  pgsd disasm <file.mc> [--func NAME]
  pgsd report <metrics.json>
  pgsd fuzz [--iters N] [--seed N] [--transforms LIST] [--corpus DIR]
            [--variants K] [--replay DIR] [--json]
            [--trace FILE] [--metrics FILE]
  pgsd bench [--out FILE]
  pgsd cache <stats|clear> [--json]
  pgsd serve [--addr HOST:PORT] [--queue N] [--seed-start N]
  pgsd fetch <file.mc | --workload NAME> --addr HOST:PORT
             [--pnop SPEC] [--seed N] [--train LIST] [--shift] [--subst]
             [--regrand] [--validate] [--json] [--out FILE]

Global flags, valid anywhere on the command line (before or after the
subcommand):

  --cache-dir DIR  persist compiled artifacts (modules, lowered code,
                   images, profiles, validation verdicts) under DIR and
                   reuse them across invocations; without it each
                   invocation uses a private in-memory cache
  --threads N      worker count for parallel sections (training runs,
                   fuzz scans, bench passes; default `PGSD_THREADS`,
                   else available parallelism)

SPEC is a probability (`0.5`) for uniform insertion or a range (`0.0-0.3`)
for the profile-guided strategy; ranges trigger a training run.

`check` builds a baseline and a diversified variant, then statically proves
the two equivalent modulo the declared transforms (translation validation:
inserted bytes are NOP-table identities, substitutions stay in the known
equivalence classes, shifts are a jump over dead padding, register
randomization is a clean bijection, branches land on mapped targets).
With `--json` the verdict and findings print as one deterministic,
schema-versioned JSON document instead of prose. Exit codes: 0 pass,
1 validation findings, 2 usage or I/O error.

`audit` builds a population of `--versions` diversified variants (default
16, seeds `--seed`..`--seed`+N) of one `.mc` file or of each named
workload (`--workload` is a comma list, e.g. `470.lbm,401.bzip2`), then
statically audits every variant: recursive-descent CFG and call-graph
recovery with a byte classification map (reachable / unreachable /
padding / data), abstract interpretation proving per-function stack
bounds and W⊕X consistency of resolvable stores, and reachability
classification of every Survivor gadget hit — reachable (on an intended
instruction boundary), unintended-boundary (inside reachable code, off
the boundaries), or dead-bytes (unreachable code, padding or data).
`--out` writes the aggregate report as deterministic JSON, byte-identical
at any `--threads` value. Exit codes: 0 clean, 1 error-severity findings,
2 usage or I/O error.

`diversify` also records the variant in the cache's provenance ledger —
its content-hash identity (printed as `variant id:`), seed, transform
set, and the baseline↔variant address map recovered by the validator.
With `--cache-dir` the ledger persists, so a later `pgsd symbolicate
<file.mc> <variant-id> <fault-addr>` remaps a crash address from that
variant's address space back to the baseline instruction and prints one
deterministic JSON document. `<fault-addr>` is hex (`0x8048123`) or
decimal. Exit codes: 0 symbolicated, 1 unknown variant or unmapped
address, 2 usage or I/O error.

`--trace` writes Chrome trace_event JSON (open in Perfetto or
chrome://tracing) spanning every pipeline phase; `--metrics` writes a flat
JSON document of counters, gauges and histograms (`pgsd report` renders
it as a table). Cache hits, misses and evictions appear there as
`cache.*` counters and gauges.

`fuzz` generates random MiniC programs, diversifies each under several
seeds per transform set (`--transforms` is a comma list drawn from
nop,subst,shift,combo; default all four), runs baseline and variants on
matched inputs, and cross-checks dynamic behaviour against the static
validator. Failures are shrunk and saved as reproducers under `--corpus`
(default `corpus/`) next to a deterministic `report.json`; `--replay DIR`
re-runs every saved reproducer as a regression check instead of fuzzing.
Each fuzz case uses a private in-memory cache, so `--threads` (and
`--cache-dir`) only change throughput, never the report.

`bench` runs a fixed benchmark slice (every paper configuration of
470.lbm and 401.bzip2, 6 seeds each) once serially, once on `--threads`
workers, and once more against the now-warm cache; it cross-checks that
the emulated cycle totals agree across all three passes and writes
wall-clock, Mcycles, thread speedup and warm-cache speedup to a
schema-versioned metrics document (default `BENCH_pgsd.json` at the repo
root). The bench passes use private in-memory caches so the cold/warm
comparison is reproducible regardless of `--cache-dir`.

`cache stats` prints the occupancy of the persistent store — artifacts,
bytes on disk, and provenance-ledger records — and `cache clear` empties
it (default directory `.pgsd-cache`, or the `--cache-dir` value). With
`--json`, `cache stats` prints one schema-versioned JSON document with a
fixed field order instead of prose.

`serve` runs a variant-distribution daemon: it binds `--addr` (default
127.0.0.1:7340), prints the bound address, and answers framed protocol
requests — each diversify request compiles (or serves from the shared
warm cache) one variant, ledgers its provenance, and streams back the
image artifact. Seeds not pinned by the client are assigned from a
fresh sequence starting at `--seed-start` (default 1). The request
queue is bounded at `--queue` connections (default 32); beyond it
clients get a typed `busy` response instead of a hang. A plain HTTP GET
of `/healthz` or `/metrics` on the same port answers liveness and live
telemetry. SIGINT/SIGTERM (or a protocol `shutdown` request) drains the
queue and exits 0. `--cache-dir` and `--threads` apply.

`fetch` is the matching client: it sends one diversify request for a
source file or a `--workload` name to a running daemon at `--addr`,
verifies the returned artifact's self-check, and prints the variant's
identity and provenance (the server's envelope verbatim with `--json`).
`--out FILE` writes the image artifact bytes for later `cmp`-style
byte-identity checks. Exit codes: 0 variant fetched, 1 the server
refused (busy) or failed the request, 2 usage, connection or framing
errors.

JSON envelopes and exit codes, uniformly: every `--json` output and
every serve response is a single schema-versioned document that starts
`{\"schema_version\":1,\"tool\":\"pgsd-<cmd>\",\"verdict\":…}` and is printed
to stdout with no other stdout output around it. Exit codes everywhere:
0 success, 1 the checked property failed, 2 usage or I/O error.
";

/// Every subcommand flag the parser understands: name, whether it takes
/// a value, and the subcommands it applies to. The global flags
/// (`--cache-dir`, `--threads`) are extracted before dispatch and are
/// deliberately absent here.
const FLAGS: &[(&str, bool, &[&str])] = &[
    (
        "--pnop",
        true,
        &["diversify", "check", "gadgets", "audit", "fetch"],
    ),
    (
        "--seed",
        true,
        &["diversify", "check", "gadgets", "fuzz", "audit", "fetch"],
    ),
    (
        "--train",
        true,
        &["diversify", "check", "gadgets", "audit", "fetch"],
    ),
    ("--shift", false, &["diversify", "check", "audit", "fetch"]),
    ("--subst", false, &["diversify", "check", "audit", "fetch"]),
    (
        "--regrand",
        false,
        &["diversify", "check", "audit", "fetch"],
    ),
    ("--validate", false, &["diversify", "fetch"]),
    (
        "--json",
        false,
        &["run", "diversify", "check", "fuzz", "fetch"],
    ),
    (
        "--trace",
        true,
        &["run", "diversify", "check", "fuzz", "audit"],
    ),
    (
        "--metrics",
        true,
        &["run", "diversify", "check", "fuzz", "audit"],
    ),
    ("--func", true, &["disasm"]),
    ("--iters", true, &["fuzz"]),
    ("--transforms", true, &["fuzz"]),
    ("--corpus", true, &["fuzz"]),
    ("--variants", true, &["fuzz"]),
    ("--replay", true, &["fuzz"]),
    ("--out", true, &["bench", "audit", "diversify", "fetch"]),
    ("--workload", true, &["audit", "fetch"]),
    ("--versions", true, &["audit"]),
    ("--addr", true, &["serve", "fetch"]),
    ("--queue", true, &["serve"]),
    ("--seed-start", true, &["serve"]),
];

fn allowed_flags(cmd: &str) -> Vec<&'static str> {
    FLAGS
        .iter()
        .filter(|(_, _, cmds)| cmds.contains(&cmd))
        .map(|(f, _, _)| *f)
        .collect()
}

/// Classic Levenshtein distance, for "did you mean" suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

fn flag_error(cmd: &str, flag: &str, allowed: &[&str]) -> String {
    let mut msg = match FLAGS.iter().find(|(f, _, _)| *f == flag) {
        Some((_, _, cmds)) => format!(
            "flag `{flag}` is not valid for `pgsd {cmd}` (only for `pgsd {}`)",
            cmds.join("`, `pgsd ")
        ),
        None => {
            let mut m = format!("unknown flag `{flag}`");
            if let Some(best) = allowed
                .iter()
                .copied()
                .min_by_key(|f| edit_distance(flag, f))
            {
                if edit_distance(flag, best) <= 2 {
                    m.push_str(&format!(" — did you mean `{best}`?"));
                }
            }
            m
        }
    };
    if allowed.is_empty() {
        msg.push_str(&format!("\n`pgsd {cmd}` takes no flags"));
    } else {
        msg.push_str(&format!(
            "\nvalid flags for `pgsd {cmd}`: {}",
            allowed.join(", ")
        ));
    }
    msg
}

struct Parsed {
    source_name: String,
    source: String,
    run_args: Vec<i32>,
    pnop: Strategy,
    /// The raw `--pnop` spec, for passing through to a serve daemon.
    pnop_spec: Option<String>,
    seed: u64,
    /// `Some` only when `--seed` was given (fetch: pin vs. let the
    /// server assign).
    seed_opt: Option<u64>,
    train_args: Option<Vec<i32>>,
    shift: bool,
    subst: bool,
    regrand: bool,
    validate: bool,
    json: bool,
    workloads: Vec<String>,
    versions: usize,
    out: Option<String>,
    func: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
    addr: Option<String>,
    queue: Option<usize>,
    seed_start: Option<u64>,
}

fn parse(cmd: &str, rest: &[String]) -> Result<Parsed, String> {
    let allowed = allowed_flags(cmd);
    // Every command here takes a source file, except `audit` and
    // `fetch`, which may instead name workloads via `--workload`, and
    // `serve`, which takes none.
    let has_file = rest.first().is_some_and(|a| !a.starts_with("--"));
    if !has_file && !matches!(cmd, "audit" | "fetch" | "serve") {
        return Err("missing source file".into());
    }
    let (source_name, source, flags) = if has_file {
        let path = rest[0].clone();
        let source =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        (path, source, &rest[1..])
    } else {
        (String::new(), String::new(), rest)
    };
    let mut parsed = Parsed {
        source_name,
        source,
        run_args: Vec::new(),
        pnop: Strategy::range(0.0, 0.30),
        pnop_spec: None,
        seed: 1,
        seed_opt: None,
        train_args: None,
        shift: false,
        subst: false,
        regrand: false,
        validate: false,
        json: false,
        workloads: Vec::new(),
        versions: 16,
        out: None,
        func: None,
        trace: None,
        metrics: None,
        addr: None,
        queue: None,
        seed_start: None,
    };
    let mut it = flags.iter();
    while let Some(arg) = it.next() {
        let a = arg.as_str();
        if a.starts_with("--") && !allowed.contains(&a) {
            return Err(flag_error(cmd, a, &allowed));
        }
        match a {
            "--pnop" => {
                let spec = it.next().ok_or("--pnop needs a value")?;
                parsed.pnop = parse_strategy(spec)?;
                parsed.pnop_spec = Some(spec.clone());
            }
            "--seed" => {
                parsed.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
                parsed.seed_opt = Some(parsed.seed);
            }
            "--train" => {
                let list = it.next().ok_or("--train needs a value")?;
                parsed.train_args = Some(parse_ints(list)?);
            }
            "--workload" => {
                let list = it.next().ok_or("--workload needs a value")?;
                parsed.workloads = list
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| s.trim().to_owned())
                    .collect();
                if parsed.workloads.is_empty() {
                    return Err("--workload needs at least one name".into());
                }
            }
            "--versions" => {
                parsed.versions = it
                    .next()
                    .ok_or("--versions needs a value")?
                    .parse()
                    .map_err(|e| format!("bad versions: {e}"))?;
                if parsed.versions == 0 {
                    return Err("--versions must be at least 1".into());
                }
            }
            "--out" => parsed.out = Some(it.next().ok_or("--out needs a value")?.clone()),
            "--addr" => parsed.addr = Some(it.next().ok_or("--addr needs a value")?.clone()),
            "--queue" => {
                parsed.queue = Some(
                    it.next()
                        .ok_or("--queue needs a value")?
                        .parse()
                        .map_err(|e| format!("bad queue capacity: {e}"))?,
                );
            }
            "--seed-start" => {
                parsed.seed_start = Some(
                    it.next()
                        .ok_or("--seed-start needs a value")?
                        .parse()
                        .map_err(|e| format!("bad seed-start: {e}"))?,
                );
            }
            "--func" => parsed.func = Some(it.next().ok_or("--func needs a value")?.clone()),
            "--trace" => parsed.trace = Some(it.next().ok_or("--trace needs a value")?.clone()),
            "--metrics" => {
                parsed.metrics = Some(it.next().ok_or("--metrics needs a value")?.clone());
            }
            "--shift" => parsed.shift = true,
            "--subst" => parsed.subst = true,
            "--regrand" => parsed.regrand = true,
            "--validate" => parsed.validate = true,
            "--json" => parsed.json = true,
            other => {
                let v: i32 = other
                    .parse()
                    .map_err(|_| format!("unexpected argument `{other}`"))?;
                parsed.run_args.push(v);
            }
        }
    }
    Ok(parsed)
}

fn parse_strategy(spec: &str) -> Result<Strategy, String> {
    Strategy::parse(spec)
}

fn parse_ints(list: &str) -> Result<Vec<i32>, String> {
    list.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|e| format!("bad integer `{s}`: {e}"))
        })
        .collect()
}

/// Arms a collector when `--trace` or `--metrics` was requested.
fn telemetry_for(p: &Parsed) -> Telemetry {
    if p.trace.is_some() || p.metrics.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    }
}

/// Writes the requested trace / metrics files (also on failed runs, so a
/// crashing program still leaves its telemetry behind).
fn write_telemetry(p: &Parsed, tel: &Telemetry) -> Result<(), String> {
    if let Some(path) = &p.trace {
        std::fs::write(path, tel.trace_json())
            .map_err(|e| format!("cannot write trace `{path}`: {e}"))?;
        eprintln!("trace written to {path}");
    }
    if let Some(path) = &p.metrics {
        std::fs::write(path, tel.metrics_json())
            .map_err(|e| format!("cannot write metrics `{path}`: {e}"))?;
        eprintln!("metrics written to {path}");
    }
    Ok(())
}

/// A per-invocation [`Session`] over the parsed source: telemetry armed
/// per `--trace`/`--metrics`, cache per `--cache-dir`, workers per
/// `--threads`.
fn session_for(p: &Parsed, g: &Globals, tel: &Telemetry) -> Result<Session, String> {
    let mut session = Session::from_source(&p.source_name, &p.source)
        .telemetry(tel.clone())
        .cache(g.open_cache()?);
    if let Some(threads) = g.threads {
        session = session.threads(threads);
    }
    Ok(session)
}

/// Records end-of-run cache occupancy, complementing the `cache.*`
/// hit/miss counters the operations record as they go.
fn record_cache_gauges(session: &Session, tel: &Telemetry) {
    let stats = session.cache_handle().stats();
    tel.set_gauge("cache.mem_entries", stats.mem_entries as f64);
    tel.set_gauge("cache.mem_bytes", stats.mem_bytes as f64);
    if session.cache_handle().dir().is_some() {
        tel.set_gauge("cache.disk_entries", stats.disk_entries as f64);
        tel.set_gauge("cache.disk_bytes", stats.disk_bytes as f64);
    }
}

/// Runs `image`, echoing its printed values to stdout. A normal exit
/// reports the status and returns the cycle count; an abnormal exit
/// (fault, gas, bad syscall) is an error — the caller routes it to
/// stderr and the process exits nonzero.
fn report_run(
    session: &Session,
    image: &Image,
    args: &[i32],
    label: &str,
) -> Result<u64, CliError> {
    let outcome = session.run(image, &Input::args(args), DEFAULT_GAS, label);
    let stats = &outcome.stats;
    for v in &stats.output {
        println!("{v}");
    }
    match outcome.status() {
        Some(s) => {
            println!(
                "exit {s}   ({} instructions, {} cycles, {} d-cache misses)",
                stats.instructions, stats.cycles, stats.dcache_misses
            );
            Ok(stats.cycles)
        }
        None => Err(CliError::failed(format!(
            "abnormal exit: {:?}",
            outcome.exit
        ))),
    }
}

/// The `pgsd run --json` / `pgsd diversify --json` per-run fragment:
/// the exit verdict plus the counters the human output reports.
fn run_json(outcome: &pgsd::core::RunOutcome) -> String {
    let stats = &outcome.stats;
    let output: Vec<String> = stats.output.iter().map(ToString::to_string).collect();
    let exit = match outcome.status() {
        Some(s) => s.to_string(),
        None => pgsd::proto::json_string(&format!("{:?}", outcome.exit)),
    };
    format!(
        "{{\"exit\":{exit},\"instructions\":{},\"cycles\":{},\
         \"dcache_misses\":{},\"output\":[{}]}}",
        stats.instructions,
        stats.cycles,
        stats.dcache_misses,
        output.join(",")
    )
}

fn cmd_run(rest: &[String], g: &Globals) -> Result<(), CliError> {
    let p = parse("run", rest)?;
    let tel = telemetry_for(&p);
    let session = session_for(&p, g, &tel)?;
    let result = (|| -> Result<(), CliError> {
        let image = session.build().map_err(|e| e.to_string())?;
        if p.json {
            let outcome = session.run(&image, &Input::args(&p.run_args), DEFAULT_GAS, "run");
            let ok = outcome.status().is_some();
            println!(
                "{}",
                Envelope::new("pgsd-run", if ok { "ok" } else { "abnormal" })
                    .str("source", &p.source_name)
                    .u64("text_bytes", image.text.len() as u64)
                    .u64("functions", image.funcs.len() as u64)
                    .raw("run", run_json(&outcome))
                    .to_json()
            );
            return if ok {
                Ok(())
            } else {
                Err(CliError::failed(format!(
                    "abnormal exit: {:?}",
                    outcome.exit
                )))
            };
        }
        println!(
            "compiled `{}`: {} bytes of text, {} functions",
            p.source_name,
            image.text.len(),
            image.funcs.len()
        );
        report_run(&session, &image, &p.run_args, "run").map(|_| ())
    })();
    record_cache_gauges(&session, &tel);
    write_telemetry(&p, &tel)?;
    result
}

fn config_of(p: &Parsed, tel: &Telemetry) -> BuildConfig {
    BuildConfig {
        strategy: Some(p.pnop),
        with_xchg: false,
        shift_max_pad: if p.shift { Some(24) } else { None },
        substitution: if p.subst { Some(p.pnop) } else { None },
        reg_randomize: p.regrand,
        seed: p.seed,
        validate: p.validate,
        telemetry: tel.clone(),
    }
}

/// Trains (when the strategy or substitution needs a profile) and then
/// builds the diversified variant through the session, so a warm cache
/// serves the whole seed-independent prefix.
fn build_diversified(p: &Parsed, session: &Session, tel: &Telemetry) -> Result<Image, String> {
    if p.pnop.needs_profile() || p.subst {
        let t_args = p.train_args.clone().unwrap_or_else(|| p.run_args.clone());
        session
            .train(&[Input::args(&t_args)], DEFAULT_GAS)
            .map_err(|e| format!("training failed: {e}"))?;
    }
    session
        .build_with(&config_of(p, tel))
        .map_err(|e| e.to_string())
}

fn cmd_diversify(rest: &[String], g: &Globals) -> Result<(), CliError> {
    let p = parse("diversify", rest)?;
    let tel = telemetry_for(&p);
    // Every diversified build is recorded in the cache's provenance
    // ledger, so crashes from the shipped variant stay symbolicatable
    // (`pgsd symbolicate`); with `--cache-dir` the record persists.
    let session = session_for(&p, g, &tel)?.ledger(true);
    let result = (|| -> Result<(), CliError> {
        let baseline = session.build().map_err(|e| e.to_string())?;
        let image = build_diversified(&p, &session, &tel)?;
        if let Some(out) = &p.out {
            let artifact = pgsd::cache::artifact::encode_image(&image);
            std::fs::write(out, &artifact)
                .map_err(|e| format!("cannot write artifact `{out}`: {e}"))?;
            eprintln!("image artifact written to {out} ({} bytes)", artifact.len());
        }
        if p.json {
            let base = session.run(
                &baseline,
                &Input::args(&p.run_args),
                DEFAULT_GAS,
                "baseline",
            );
            let div = session.run(
                &image,
                &Input::args(&p.run_args),
                DEFAULT_GAS,
                "diversified",
            );
            let ok = base.status().is_some() && div.status().is_some();
            let mut env = Envelope::new("pgsd-diversify", if ok { "ok" } else { "abnormal" })
                .str("source", &p.source_name)
                .str("variant_id", &pgsd::core::variant_id(&image))
                .u64("seed", p.seed)
                .str("strategy", &p.pnop.to_string())
                .str("transforms", &transform_label(&p))
                .u64("baseline_text_bytes", baseline.text.len() as u64)
                .u64("text_bytes", image.text.len() as u64)
                .raw("baseline", run_json(&base))
                .raw("diversified", run_json(&div));
            if ok && base.stats.cycles > 0 {
                let overhead = (div.stats.cycles as f64 / base.stats.cycles as f64 - 1.0) * 100.0;
                tel.set_gauge("run.overhead_pct", overhead);
                env = env.raw("overhead_pct", format!("{overhead:.2}"));
            }
            println!("{}", env.to_json());
            return if ok {
                Ok(())
            } else {
                Err(CliError::failed("abnormal exit (see JSON envelope)"))
            };
        }
        println!(
            "diversified `{}` with {} (seed {}): text {} → {} bytes",
            p.source_name,
            p.pnop,
            p.seed,
            baseline.text.len(),
            image.text.len()
        );
        println!("variant id: {}", pgsd::core::variant_id(&image));
        println!("— baseline:");
        let base_cycles = report_run(&session, &baseline, &p.run_args, "baseline")?;
        println!("— diversified:");
        let div_cycles = report_run(&session, &image, &p.run_args, "diversified")?;
        if base_cycles > 0 {
            let overhead = (div_cycles as f64 / base_cycles as f64 - 1.0) * 100.0;
            tel.set_gauge("run.overhead_pct", overhead);
            println!("overhead: {overhead:+.2}%");
        }
        Ok(())
    })();
    record_cache_gauges(&session, &tel);
    write_telemetry(&p, &tel)?;
    result
}

/// Stable `+`-joined transform-set label for the parsed flags, matching
/// the provenance ledger's labels (NOP insertion is always on).
fn transform_label(p: &Parsed) -> String {
    let mut parts = vec!["nop"];
    if p.subst {
        parts.push("subst");
    }
    if p.shift {
        parts.push("shift");
    }
    if p.regrand {
        parts.push("regrand");
    }
    parts.join("+")
}

fn cmd_check(rest: &[String], g: &Globals) -> Result<(), CliError> {
    let mut p = parse("check", rest)?;
    // The checker runs here with its report printed, not inside `build`.
    p.validate = false;
    let tel = telemetry_for(&p);
    let session = session_for(&p, g, &tel)?;
    let result = (|| -> Result<(), CliError> {
        let baseline = session.build().map_err(|e| e.to_string())?;
        let variant = build_diversified(&p, &session, &tel)?;
        let transforms = config_of(&p, &tel).transforms();
        let _span = tel.span("validate");
        match check_images(&baseline, &variant, &transforms) {
            Ok(report) => {
                tel.add("validate.passed", 1);
                if p.json {
                    println!("{}", check_verdict_json("pass", Some(&report), &[]));
                } else {
                    println!(
                        "`{}` seed {}: OK — {} functions, {} instructions matched, \
                         {} inserted NOPs, {} substitutions, {} shift jumps verified",
                        p.source_name,
                        p.seed,
                        report.functions,
                        report.matched,
                        report.inserted_nops,
                        report.substitutions,
                        report.shift_jumps
                    );
                }
                Ok(())
            }
            Err(mut diags) => {
                tel.add("validate.failed", 1);
                tel.add("validate.findings", diags.len() as u64);
                sort_findings(&mut diags);
                if p.json {
                    println!("{}", check_verdict_json("fail", None, &diags));
                } else {
                    for d in &diags {
                        eprintln!("{d}");
                    }
                }
                Err(CliError::failed(format!(
                    "validation failed with {} finding(s)",
                    diags.len()
                )))
            }
        }
    })();
    record_cache_gauges(&session, &tel);
    write_telemetry(&p, &tel)?;
    result
}

/// The `pgsd check --json` verdict document: the shared envelope with
/// fixed key order and findings in canonical order — deterministic for
/// golden tests (byte-identical to the pre-envelope format).
fn check_verdict_json(
    verdict: &str,
    report: Option<&pgsd::analysis::CheckReport>,
    findings: &[pgsd::analysis::AnalysisDiag],
) -> String {
    let report_json = report.map_or_else(
        || "null".to_owned(),
        |r| {
            format!(
                "{{\"functions\":{},\"matched\":{},\"inserted_nops\":{},\
                 \"substitutions\":{},\"shift_jumps\":{}}}",
                r.functions, r.matched, r.inserted_nops, r.substitutions, r.shift_jumps
            )
        },
    );
    Envelope::new("pgsd-check", verdict)
        .raw("report", report_json)
        .raw("findings", findings_json(findings))
        .to_json()
}

/// `pgsd symbolicate` — remap a variant-space crash address back to the
/// baseline instruction through the cache's provenance ledger. Prints
/// one deterministic JSON document; exit 0 on a hit, 1 when the variant
/// is unknown or the address unmapped, 2 on usage or I/O errors.
fn cmd_symbolicate(rest: &[String], g: &Globals) -> Result<(), CliError> {
    let [file, vid, addr] = rest else {
        return Err(
            "usage: pgsd symbolicate <file.mc> <variant-id> <fault-addr> \
                    [--cache-dir DIR]"
                .into(),
        );
    };
    let source = std::fs::read_to_string(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
    let fault_addr = parse_addr(addr)?;
    let session = Session::from_source(file, &source).cache(g.open_cache()?);
    let sym = session
        .symbolicate(vid, fault_addr)
        .map_err(|e| e.to_string())?;
    match sym {
        Some(s) => {
            println!(
                "{}",
                Envelope::new("pgsd-symbolicate", "hit")
                    .raw("crash", s.to_json())
                    .to_json()
            );
            Ok(())
        }
        None => {
            println!(
                "{}",
                Envelope::new("pgsd-symbolicate", "miss")
                    .str("variant_id", vid)
                    .str("fault_addr", &format!("{fault_addr:#010x}"))
                    .to_json()
            );
            Err(CliError::failed(format!(
                "no ledger record maps variant `{vid}` address {fault_addr:#010x} — \
                 unknown variant, corrupt map, or address outside every function"
            )))
        }
    }
}

/// Parses a crash address: `0x`-prefixed hex or plain decimal.
fn parse_addr(s: &str) -> Result<u32, String> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u32::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|e| format!("bad address `{s}`: {e}"))
}

/// `pgsd audit` — build a diversified population per target and run the
/// whole-image static audit (CFG recovery, abstract interpretation,
/// gadget reachability) over every variant.
fn cmd_audit(rest: &[String], g: &Globals) -> Result<(), CliError> {
    let p = parse("audit", rest)?;
    if !p.run_args.is_empty() {
        return Err("`pgsd audit` takes no program arguments".into());
    }
    if p.source.is_empty() && p.workloads.is_empty() {
        return Err("`pgsd audit` needs a source file or `--workload LIST`".into());
    }
    // Targets: (name, source, training inputs). An explicit `--train`
    // list overrides a workload's own train set.
    let mut targets: Vec<(String, String, Vec<Input>)> = Vec::new();
    if !p.source_name.is_empty() {
        let train = p
            .train_args
            .as_deref()
            .map(|a| vec![Input::args(a)])
            .unwrap_or_default();
        targets.push((p.source_name.clone(), p.source.clone(), train));
    }
    for name in &p.workloads {
        let w = pgsd::workloads::by_name(name)
            .ok_or_else(|| format!("unknown workload `{name}` (e.g. 470.lbm, 401.bzip2)"))?;
        let train = p
            .train_args
            .as_deref()
            .map_or_else(|| w.train.clone(), |a| vec![Input::args(a)]);
        targets.push((w.name.to_owned(), w.source, train));
    }

    let tel = telemetry_for(&p);
    let mut outcomes = Vec::with_capacity(targets.len());
    let result = (|| -> Result<(), CliError> {
        for (name, source, train) in &targets {
            let mut session = Session::from_source(name, source)
                .telemetry(tel.clone())
                .cache(g.open_cache()?)
                .config(config_of(&p, &tel));
            if let Some(threads) = g.threads {
                session = session.threads(threads);
            }
            if p.pnop.needs_profile() || p.subst {
                if train.is_empty() {
                    return Err(format!(
                        "strategy {} needs a profile: pass `--train LIST` for `{name}`",
                        p.pnop
                    )
                    .into());
                }
                session
                    .train(train, DEFAULT_GAS)
                    .map_err(|e| format!("training `{name}` failed: {e}"))?;
            }
            let outcome = session.audit(p.versions).map_err(|e| e.to_string())?;
            let c = &outcome.survivors.counts;
            println!(
                "`{name}`: {} variants (seeds {}..{}), baseline {} gadgets",
                outcome.audits.len(),
                outcome.seed_base,
                outcome.seed_base + outcome.audits.len() as u64,
                outcome.baseline_gadgets,
            );
            println!(
                "  survivors: {} — {} reachable, {} unintended-boundary, {} dead-bytes \
                 (avg {:.2}/variant, {:.2} reachable)",
                c.total(),
                c.reachable,
                c.unintended,
                c.dead,
                outcome.survivors.avg_survivors(),
                outcome.survivors.avg_reachable(),
            );
            let indirects: usize = outcome.audits.iter().map(|a| a.unresolved_indirects).sum();
            println!(
                "  findings: {} error(s), {} total; unresolved indirect branches: {}",
                outcome.error_findings(),
                outcome.total_findings(),
                indirects,
            );
            outcomes.push(outcome);
        }
        Ok(())
    })();
    write_telemetry(&p, &tel)?;
    result?;

    if let Some(out) = &p.out {
        let body: Vec<String> = outcomes.iter().map(|o| o.to_json()).collect();
        let doc = format!(
            "{{\"schema_version\":{},\"tool\":\"pgsd-audit\",\"targets\":[{}]}}\n",
            pgsd::analysis::DIAG_SCHEMA_VERSION,
            body.join(",")
        );
        std::fs::write(out, doc).map_err(|e| format!("cannot write report `{out}`: {e}"))?;
        eprintln!("audit report written to {out}");
    }

    let errors: usize = outcomes.iter().map(|o| o.error_findings()).sum();
    if errors > 0 {
        return Err(CliError::failed(format!(
            "audit failed: {errors} error finding(s) across {} target(s)",
            outcomes.len()
        )));
    }
    Ok(())
}

fn cmd_gadgets(rest: &[String], g: &Globals) -> Result<(), String> {
    let p = parse("gadgets", rest)?;
    let tel = Telemetry::disabled();
    let session = session_for(&p, g, &tel)?;
    let baseline = session.build().map_err(|e| e.to_string())?;
    let cfg = ScanConfig::default();
    let gadgets = find_gadgets(&baseline.text, &cfg);
    println!(
        "`{}`: {} gadgets in {} bytes of text",
        p.source_name,
        gadgets.len(),
        baseline.text.len()
    );
    let image = build_diversified(&p, &session, &tel)?;
    let rep = survivor(&baseline.text, &image.text, &NopTable::new(), &cfg);
    println!(
        "after diversification ({}, seed {}): {} survive ({:.2}%)",
        p.pnop,
        p.seed,
        rep.count(),
        100.0 * rep.surviving_fraction()
    );
    Ok(())
}

fn cmd_disasm(rest: &[String], g: &Globals) -> Result<(), String> {
    let p = parse("disasm", rest)?;
    let session = session_for(&p, g, &Telemetry::disabled())?;
    let image = session.build().map_err(|e| e.to_string())?;
    for f in &image.funcs {
        if let Some(filter) = &p.func {
            if &f.name != filter {
                continue;
            }
        }
        println!(
            "\n{}:  ; {:#010x}..{:#010x}{}",
            f.name,
            f.start,
            f.end,
            if f.diversified {
                ""
            } else {
                "  (runtime, undiversified)"
            }
        );
        let mut off = (f.start - image.base) as usize;
        let end = (f.end - image.base) as usize;
        while off < end {
            match decode(&image.text[off..]) {
                Ok(d) => {
                    let bytes: Vec<String> = image.text[off..off + d.len]
                        .iter()
                        .map(|b| format!("{b:02x}"))
                        .collect();
                    println!(
                        "  {:#010x}:  {:<24} {d}",
                        image.base as usize + off,
                        bytes.join(" ")
                    );
                    off += d.len;
                }
                Err(e) => return Err(format!("disassembly failed at {off:#x}: {e}")),
            }
        }
    }
    Ok(())
}

/// `pgsd cache stats|clear` — inspect or empty the persistent store.
/// The directory is `--cache-dir` when given, else `.pgsd-cache`.
fn cmd_cache(rest: &[String], g: &Globals) -> Result<(), String> {
    let dir = g
        .cache_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from(".pgsd-cache"));
    let usage = "usage: pgsd cache <stats|clear> [--json] [--cache-dir DIR]";
    let mut json = false;
    let mut action: Option<&str> = None;
    for arg in rest {
        match arg.as_str() {
            "--json" => json = true,
            a if action.is_none() && !a.starts_with("--") => action = Some(a),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let action = action.ok_or(usage)?;
    if json && action != "stats" {
        return Err("--json only applies to `pgsd cache stats`".into());
    }
    match action {
        "stats" => {
            // A missing directory is an empty cache, not an error — the
            // JSON schema stays identical either way.
            let stats = if dir.is_dir() {
                Cache::persistent(&dir)
                    .map_err(|e| format!("cannot open cache `{}`: {e}", dir.display()))?
                    .stats()
            } else {
                pgsd::cache::CacheStats::default()
            };
            if json {
                // Schema-versioned, fixed field order — golden-test safe.
                println!(
                    "{{\"schema_version\":1,\"tool\":\"pgsd-cache\",\"dir\":\"{}\",\
                     \"disk_entries\":{},\"disk_bytes\":{},\
                     \"ledger_records\":{},\"ledger_bytes\":{}}}",
                    pgsd::analysis::diag::json_escape(&dir.display().to_string()),
                    stats.disk_entries,
                    stats.disk_bytes,
                    stats.ledger_records,
                    stats.ledger_bytes
                );
            } else if !dir.is_dir() {
                println!("cache at {}: empty (no cache directory)", dir.display());
            } else {
                println!(
                    "cache at {}: {} artifact(s), {} bytes on disk, \
                     {} ledgered variant(s) ({} map bytes)",
                    dir.display(),
                    stats.disk_entries,
                    stats.disk_bytes,
                    stats.ledger_records,
                    stats.ledger_bytes
                );
            }
            Ok(())
        }
        "clear" => {
            let removed = Cache::clear_dir(&dir)
                .map_err(|e| format!("cannot clear cache `{}`: {e}", dir.display()))?;
            println!("cache at {}: removed {} file(s)", dir.display(), removed);
            Ok(())
        }
        other => Err(format!(
            "unknown cache action `{other}` (expected `stats` or `clear`)"
        )),
    }
}

fn cmd_fuzz(rest: &[String], g: &Globals) -> Result<(), CliError> {
    let allowed = allowed_flags("fuzz");
    let mut config = FuzzConfig::default();
    if let Some(threads) = g.threads {
        config.threads = threads;
    }
    let mut corpus = String::from("corpus");
    let mut replay_dir: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut json = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let a = arg.as_str();
        if !a.starts_with("--") {
            return Err(format!(
                "unexpected argument `{a}` — `pgsd fuzz` takes no positional arguments"
            )
            .into());
        }
        if !allowed.contains(&a) {
            return Err(flag_error("fuzz", a, &allowed).into());
        }
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a {
            "--iters" => {
                config.iters = value(a)?.parse().map_err(|e| format!("bad iters: {e}"))?;
            }
            "--seed" => {
                config.seed = value(a)?.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--variants" => {
                config.variants_per_set = value(a)?
                    .parse()
                    .map_err(|e| format!("bad variants: {e}"))?;
            }
            "--transforms" => {
                let list = value(a)?;
                config.transforms = list
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| {
                        TransformSet::parse(s.trim()).ok_or_else(|| {
                            format!("bad transform `{s}` (expected nop, subst, shift or combo)")
                        })
                    })
                    .collect::<Result<_, _>>()?;
                if config.transforms.is_empty() {
                    return Err("--transforms needs at least one of nop,subst,shift,combo".into());
                }
            }
            "--corpus" => corpus = value(a)?,
            "--replay" => replay_dir = Some(value(a)?),
            "--trace" => trace = Some(value(a)?),
            "--metrics" => metrics = Some(value(a)?),
            "--json" => json = true,
            _ => unreachable!("flag table and match arms out of sync"),
        }
    }

    if let Some(dir) = replay_dir {
        let report = replay(Path::new(&dir))?;
        if json {
            println!(
                "{}",
                Envelope::new(
                    "pgsd-fuzz",
                    if report.all_passing() { "pass" } else { "fail" }
                )
                .str("mode", "replay")
                .u64("cases", report.cases.len() as u64)
                .u64("passing", report.passing() as u64)
                .to_json()
            );
        } else {
            for case in &report.cases {
                if case.passing {
                    println!("replay {}: ok", case.id);
                } else {
                    eprintln!("replay {}: {}", case.id, case.detail);
                }
            }
            println!(
                "replayed {} reproducer(s): {} passing",
                report.cases.len(),
                report.passing()
            );
        }
        return if report.all_passing() {
            Ok(())
        } else {
            Err(CliError::failed(format!(
                "{} reproducer(s) still failing",
                report.cases.len() - report.passing()
            )))
        };
    }

    let tel = if trace.is_some() || metrics.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let result = fuzz(&config, Some(Path::new(&corpus)), &tel);
    if let Some(path) = &trace {
        std::fs::write(path, tel.trace_json())
            .map_err(|e| format!("cannot write trace `{path}`: {e}"))?;
        eprintln!("trace written to {path}");
    }
    if let Some(path) = &metrics {
        std::fs::write(path, tel.metrics_json())
            .map_err(|e| format!("cannot write metrics `{path}`: {e}"))?;
        eprintln!("metrics written to {path}");
    }
    let report = result?;
    let clean = report.findings.is_empty()
        && report.divergences == 0
        && report.static_rejections == 0
        && report.build_errors == 0;
    if json {
        println!(
            "{}",
            Envelope::new("pgsd-fuzz", if clean { "pass" } else { "fail" })
                .str("mode", "fuzz")
                .u64("programs", report.programs as u64)
                .u64("cases", report.cases as u64)
                .str("transforms", &report.transforms.join(","))
                .u64("variants_per_set", report.variants_per_set as u64)
                .u64("divergences", report.divergences as u64)
                .u64("static_rejections", report.static_rejections as u64)
                .u64("build_errors", report.build_errors as u64)
                .u64("skipped_out_of_gas", report.skipped_out_of_gas as u64)
                .u64("findings", report.findings.len() as u64)
                .to_json()
        );
    } else {
        println!(
            "fuzzed {} programs ({} cases, transforms {}, {} variants each): \
             {} divergences, {} static rejections, {} build errors, {} skipped (gas)",
            report.programs,
            report.cases,
            report.transforms.join(","),
            report.variants_per_set,
            report.divergences,
            report.static_rejections,
            report.build_errors,
            report.skipped_out_of_gas
        );
        println!("report written to {corpus}/report.json");
    }
    if clean {
        Ok(())
    } else {
        for f in &report.findings {
            eprintln!(
                "finding {}: transforms={} variant_seed={} shrunk {} → {} statements \
                 (dynamic={}, static={}) — see {corpus}/{}.mc",
                f.id,
                f.tset.label(),
                f.variant_seed,
                f.stmts_before,
                f.stmts_after,
                f.dynamic_diverged,
                f.static_rejected,
                f.id
            );
        }
        Err(CliError::failed(format!(
            "{} divergence(s), {} static rejection(s), {} build error(s)",
            report.divergences, report.static_rejections, report.build_errors
        )))
    }
}

fn cmd_bench(rest: &[String], g: &Globals) -> Result<(), CliError> {
    let allowed = allowed_flags("bench");
    let mut out = String::from("BENCH_pgsd.json");
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let a = arg.as_str();
        if !a.starts_with("--") {
            return Err(format!(
                "unexpected argument `{a}` — `pgsd bench` takes no positional arguments"
            )
            .into());
        }
        if !allowed.contains(&a) {
            return Err(flag_error("bench", a, &allowed).into());
        }
        match a {
            "--out" => {
                out = it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("{a} needs a value"))?;
            }
            _ => unreachable!("flag table and match arms out of sync"),
        }
    }
    let threads = pgsd::exec::resolve_threads(g.threads);

    eprintln!(
        "bench slice: {} × {} paper configs × {} seeds, threads 1 then {threads}, \
         then a warm-cache pass",
        pgsd::bench::BENCH_SLICE_WORKLOADS.join(", "),
        Strategy::paper_configs().len(),
        pgsd::bench::BENCH_SLICE_SEEDS,
    );
    // Each prepared slice owns a fresh in-memory cache, so the first
    // measurement over it is a true cold pass; re-measuring the second
    // slice is the warm pass — every variant image is a cache hit.
    let serial_prep = pgsd::bench::prepare_bench_slice();
    let serial = pgsd::bench::measure_bench_slice(&serial_prep, 1);
    let warm_prep = pgsd::bench::prepare_bench_slice();
    let parallel = pgsd::bench::measure_bench_slice(&warm_prep, threads);
    let warm = pgsd::bench::measure_bench_slice(&warm_prep, threads);
    for (label, pass) in [("parallel", &parallel), ("warm-cache", &warm)] {
        if pass.cycles != serial.cycles {
            return Err(CliError::failed(format!(
                "cycle totals diverged: {} at 1 thread vs {} in the {label} pass — \
                 builds and runs are supposed to be deterministic",
                serial.cycles, pass.cycles
            )));
        }
    }
    let speedup = serial.wall_ms / parallel.wall_ms;
    let warm_speedup = parallel.wall_ms / warm.wall_ms;

    // Observability throughput: a small ledgered fleet campaign (see
    // `pgsd_bench::fleet`) — populations built with provenance
    // recording, every crash symbolicated back to the baseline.
    eprintln!("fleet slice: 4 configs × 6 ledgered variants, full fault taxonomy");
    let campaign = pgsd::bench::fleet::run_campaign(6, threads, &Telemetry::enabled());
    if !campaign.failures.is_empty() {
        return Err(CliError::failed(format!(
            "fleet campaign failed to remap {} crash(es), first: {}",
            campaign.failures.len(),
            campaign.failures[0]
        )));
    }

    // Serve throughput: an in-process daemon under concurrent client
    // load, every served artifact cmp'd byte-identical against the
    // offline build of the same seed.
    let serve_levels = [2usize, 8];
    let mut serve_results = Vec::with_capacity(serve_levels.len());
    for &clients in &serve_levels {
        eprintln!("serve slice: {clients} concurrent clients × 2 variants each");
        let r =
            pgsd::bench::serve_load::run_load("470.lbm", clients, 2).map_err(CliError::failed)?;
        serve_results.push(r);
    }

    let sink = pgsd::bench::MetricsSink::new("bench");
    sink.gauge("bench.threads", threads as f64);
    // The speedup only means something relative to the cores actually
    // present (e.g. 4 threads on a 1-core box is a slowdown).
    sink.gauge(
        "bench.host_parallelism",
        pgsd::exec::available_threads() as f64,
    );
    sink.gauge_labeled(
        "bench.wall_ms",
        &[("cache", "cold"), ("threads", "1")],
        serial.wall_ms,
    );
    sink.gauge_labeled(
        "bench.wall_ms",
        &[("cache", "cold"), ("threads", &threads.to_string())],
        parallel.wall_ms,
    );
    sink.gauge_labeled(
        "bench.wall_ms",
        &[("cache", "warm"), ("threads", &threads.to_string())],
        warm.wall_ms,
    );
    sink.gauge("bench.speedup_vs_1thread", speedup);
    sink.gauge("bench.cache_warm_speedup", warm_speedup);
    sink.gauge("bench.emulated_mcycles", parallel.cycles as f64 / 1e6);
    sink.count("bench.builds", parallel.builds);
    sink.count("bench.runs", parallel.runs);
    sink.gauge(
        "bench.ledger_variants_per_sec",
        campaign.variants() as f64 / campaign.ledger_secs.max(1e-9),
    );
    sink.gauge(
        "bench.symbolicate_per_sec",
        campaign.symbolicate_calls as f64 / campaign.symbolicate_secs.max(1e-9),
    );
    sink.gauge(
        "bench.fleet_remap_accuracy_pct",
        campaign.accuracy_pct() as f64,
    );
    for r in &serve_results {
        let clients = r.clients.to_string();
        sink.gauge_labeled(
            "bench.serve_variants_per_sec",
            &[("clients", &clients)],
            r.variants_per_sec(),
        );
        sink.gauge_labeled(
            "bench.serve_bytes_served",
            &[("clients", &clients)],
            r.bytes_served as f64,
        );
    }
    let path = sink.finish_to(Path::new(&out));

    println!(
        "bench slice: {:.0} ms at 1 thread, {:.0} ms at {threads} threads \
         ({speedup:.2}× speedup), {:.0} ms warm ({warm_speedup:.2}× vs cold), \
         {:.1} Mcycles emulated per pass",
        serial.wall_ms,
        parallel.wall_ms,
        warm.wall_ms,
        parallel.cycles as f64 / 1e6
    );
    println!(
        "fleet slice: {}/{} crashes remapped ({}%), {:.0} ledgered variants/s, \
         {:.0} symbolications/s",
        campaign.remapped(),
        campaign.crashes(),
        campaign.accuracy_pct(),
        campaign.variants() as f64 / campaign.ledger_secs.max(1e-9),
        campaign.symbolicate_calls as f64 / campaign.symbolicate_secs.max(1e-9),
    );
    for r in &serve_results {
        println!(
            "serve slice: {} clients — {:.1} variants/s ({} variants, {} KiB served, \
             all byte-identical to offline builds)",
            r.clients,
            r.variants_per_sec(),
            r.variants,
            r.bytes_served / 1024,
        );
    }
    println!("results written to {}", path.display());
    Ok(())
}

/// `pgsd serve` — run the variant-distribution daemon until a signal or
/// a protocol `shutdown` request drains it.
fn cmd_serve(rest: &[String], g: &Globals) -> Result<(), CliError> {
    let p = parse("serve", rest)?;
    if !p.run_args.is_empty() {
        return Err("`pgsd serve` takes no positional arguments".into());
    }
    let addr = p.addr.clone().unwrap_or_else(|| "127.0.0.1:7340".into());
    let mut config = ServeConfig {
        workers: g.threads,
        cache: g.open_cache()?,
        ..ServeConfig::default()
    };
    if let Some(queue) = p.queue {
        config.queue_capacity = queue;
    }
    if let Some(start) = p.seed_start {
        config.seed_start = start;
    }
    let workers = pgsd::exec::resolve_threads(config.workers);
    let handle = serve(&addr, config).map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
    println!(
        "pgsd serve: listening on {} ({} workers, queue {}, seeds from {})",
        handle.addr(),
        workers,
        p.queue.unwrap_or(32),
        p.seed_start.unwrap_or(1),
    );
    install_signal_handlers(&handle);
    handle.join();
    eprintln!("pgsd serve: drained, exiting");
    Ok(())
}

/// `pgsd fetch` — request one variant from a running daemon.
fn cmd_fetch(rest: &[String], _g: &Globals) -> Result<(), CliError> {
    let p = parse("fetch", rest)?;
    if !p.run_args.is_empty() {
        return Err("`pgsd fetch` takes no positional arguments".into());
    }
    let Some(addr) = p.addr.clone() else {
        return Err("`pgsd fetch` needs `--addr HOST:PORT` (a running `pgsd serve`)".into());
    };
    let target = match (p.source_name.is_empty(), p.workloads.as_slice()) {
        (false, []) => Target::Source {
            name: p.source_name.clone(),
            text: p.source.clone(),
        },
        (true, [w]) => Target::Workload(w.clone()),
        (true, []) => {
            return Err("`pgsd fetch` needs a source file or `--workload NAME`".into());
        }
        (false, _) => {
            return Err("`pgsd fetch` takes a source file or `--workload`, not both".into());
        }
        (true, _) => {
            return Err("`pgsd fetch` takes exactly one `--workload` name".into());
        }
    };
    let req = DiversifyRequest {
        target,
        pnop: p.pnop_spec.clone(),
        seed: p.seed_opt,
        shift: p.shift,
        subst: p.subst,
        regrand: p.regrand,
        train: p.train_args.clone(),
        validate: p.validate,
    };
    let fetched = pgsd::serve::client::fetch(&addr, &req).map_err(|e| match e {
        // The server refused or failed the request: the property under
        // test failed — exit 1. Transport problems are exit 2.
        ClientError::Busy { .. } => CliError::failed(e.to_string()),
        ClientError::Proto(ref p)
            if !matches!(p.code, ErrorCode::BadRequest | ErrorCode::UnknownWorkload) =>
        {
            CliError::failed(e.to_string())
        }
        other => CliError::from(other.to_string()),
    })?;
    if let Some(out) = &p.out {
        std::fs::write(out, &fetched.payload)
            .map_err(|e| format!("cannot write artifact `{out}`: {e}"))?;
        eprintln!(
            "image artifact written to {out} ({} bytes)",
            fetched.payload.len()
        );
    }
    let info: &VariantInfo = &fetched.info;
    if p.json {
        // The server's envelope, re-rendered verbatim: one shared
        // schema for the wire and the CLI.
        println!("{}", Response::Variant(info.clone()).to_json());
    } else {
        println!(
            "fetched variant {} from {addr}: seed {} ({}), {}, {}",
            info.variant_id,
            info.seed,
            if info.seed_pinned {
                "pinned"
            } else {
                "server-assigned"
            },
            info.strategy,
            info.transforms,
        );
        println!(
            "  text {} bytes, artifact {} bytes, module {}, config {}, addr map {} bytes",
            info.text_bytes,
            info.payload_bytes,
            info.module_key,
            info.config_key,
            info.addr_map_bytes,
        );
    }
    Ok(())
}

fn cmd_report(rest: &[String]) -> Result<(), String> {
    let [path] = rest else {
        return Err("usage: pgsd report <metrics.json>".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let doc = MetricsDoc::from_json(&text).map_err(|e| format!("`{path}`: {e}"))?;
    print!("{}", doc.summary_table());
    Ok(())
}
