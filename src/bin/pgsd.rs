//! `pgsd` — command-line front door to the diversifying toolchain.
//!
//! ```text
//! pgsd run <file.mc> [args…]                      compile and execute
//! pgsd diversify <file.mc> [options] [args…]      diversified build + run
//! pgsd check <file.mc> [options]                  statically validate a variant
//! pgsd gadgets <file.mc> [--seed N] [--pnop SPEC] gadget / Survivor report
//! pgsd disasm <file.mc> [--func NAME]             disassemble the image
//! pgsd report <metrics.json>                      summarize a metrics file
//! pgsd fuzz [options]                             differential variant fuzzing
//! pgsd bench [--out FILE]                         timed slice → BENCH_pgsd.json
//! pgsd cache <stats|clear>                        inspect / empty the cache
//!
//! global flags (valid anywhere on the command line):
//!   --cache-dir DIR  persist compiled artifacts under DIR and reuse them
//!                    across invocations (also selects the directory for
//!                    `pgsd cache`; default `.pgsd-cache` there)
//!   --threads N      worker count for parallel sections
//!
//! diversify / check options:
//!   --pnop SPEC      uniform `0.5` or profile-guided range `0.0-0.3`
//!                    (default 0.0-0.3, the paper's cheapest setting)
//!   --seed N         RNG seed (default 1)
//!   --train LIST     comma-separated ints for the training run
//!                    (default: the program's run arguments)
//!   --shift          also apply basic-block shifting (§6)
//!   --subst          also apply equivalent-instruction substitution (§6)
//!   --regrand        also randomize register allocation (§6)
//!   --validate       (diversify only) run the divcheck validator after
//!                    the build and fail on any finding
//!   --trace FILE     write a Chrome trace_event JSON of all phases
//!   --metrics FILE   write the metrics JSON (counters/gauges/histograms)
//! ```
//!
//! Diagnostics go to stderr; an abnormal program exit (fault, gas
//! exhaustion, bad syscall) exits nonzero.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pgsd::analysis::check_images;
use pgsd::cache::Cache;
use pgsd::cc::emit::Image;
use pgsd::core::driver::{BuildConfig, Input, DEFAULT_GAS};
use pgsd::core::{Session, Strategy};
use pgsd::fuzz::diff::TransformSet;
use pgsd::fuzz::{fuzz, replay, FuzzConfig};
use pgsd::gadget::{find_gadgets, survivor, ScanConfig};
use pgsd::telemetry::{MetricsDoc, Telemetry};
use pgsd::x86::decode;
use pgsd::x86::nop::NopTable;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = split_globals(&args).and_then(|(globals, rest)| dispatch(&globals, &rest));
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pgsd: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Flags the CLI accepts at any position, before or after the
/// subcommand.
struct Globals {
    cache_dir: Option<PathBuf>,
    threads: Option<usize>,
}

impl Globals {
    /// The artifact cache for this invocation: persistent when
    /// `--cache-dir` was given, otherwise in-memory for the process.
    fn open_cache(&self) -> Result<Cache, String> {
        match &self.cache_dir {
            Some(dir) => Cache::persistent(dir)
                .map_err(|e| format!("cannot open cache `{}`: {e}", dir.display())),
            None => Ok(Cache::in_memory()),
        }
    }
}

/// Pulls the global flags (`--cache-dir DIR`, `--threads N`) out of the
/// argument list wherever they appear; everything else is passed
/// through, in order, to the subcommand parsers. The value of any
/// ordinary value-taking flag is skipped verbatim, so e.g. a `--train`
/// list can never be mistaken for a global flag.
fn split_globals(args: &[String]) -> Result<(Globals, Vec<String>), String> {
    let mut globals = Globals {
        cache_dir: None,
        threads: None,
    };
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => {
                let dir = it.next().ok_or("--cache-dir needs a value")?;
                globals.cache_dir = Some(PathBuf::from(dir));
            }
            "--threads" => {
                let n: usize = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad threads: {e}"))?;
                globals.threads = Some(n.max(1));
            }
            a => {
                rest.push(arg.clone());
                if FLAGS
                    .iter()
                    .any(|(f, takes_value, _)| *f == a && *takes_value)
                {
                    if let Some(v) = it.next() {
                        rest.push(v.clone());
                    }
                }
            }
        }
    }
    Ok((globals, rest))
}

fn dispatch(globals: &Globals, args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(
            "usage: pgsd <run|diversify|check|gadgets|disasm|report|fuzz|bench|cache> <file> …  \
             (see --help)"
                .into(),
        );
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        print!("{}", HELP);
        return Ok(());
    }
    let rest = &args[1..];
    match cmd.as_str() {
        "run" => cmd_run(rest, globals),
        "diversify" => cmd_diversify(rest, globals),
        "check" => cmd_check(rest, globals),
        "gadgets" => cmd_gadgets(rest, globals),
        "disasm" => cmd_disasm(rest, globals),
        "report" => cmd_report(rest),
        "fuzz" => cmd_fuzz(rest, globals),
        "bench" => cmd_bench(rest, globals),
        "cache" => cmd_cache(rest, globals),
        other => Err(format!("unknown command `{other}` (try --help)")),
    }
}

const HELP: &str = "\
pgsd — profile-guided software diversity toolchain (CGO 2013 reproduction)

  pgsd run <file.mc> [--trace FILE] [--metrics FILE] [args…]
  pgsd diversify <file.mc> [--pnop SPEC] [--seed N] [--train LIST]
                           [--shift] [--subst] [--regrand] [--validate]
                           [--trace FILE] [--metrics FILE] [args…]
  pgsd check <file.mc> [--pnop SPEC] [--seed N] [--train LIST]
                       [--shift] [--subst] [--regrand]
                       [--trace FILE] [--metrics FILE]
  pgsd gadgets <file.mc> [--pnop SPEC] [--seed N] [--train LIST]
  pgsd disasm <file.mc> [--func NAME]
  pgsd report <metrics.json>
  pgsd fuzz [--iters N] [--seed N] [--transforms LIST] [--corpus DIR]
            [--variants K] [--replay DIR] [--trace FILE] [--metrics FILE]
  pgsd bench [--out FILE]
  pgsd cache <stats|clear>

Global flags, valid anywhere on the command line (before or after the
subcommand):

  --cache-dir DIR  persist compiled artifacts (modules, lowered code,
                   images, profiles, validation verdicts) under DIR and
                   reuse them across invocations; without it each
                   invocation uses a private in-memory cache
  --threads N      worker count for parallel sections (training runs,
                   fuzz scans, bench passes; default `PGSD_THREADS`,
                   else available parallelism)

SPEC is a probability (`0.5`) for uniform insertion or a range (`0.0-0.3`)
for the profile-guided strategy; ranges trigger a training run.

`check` builds a baseline and a diversified variant, then statically proves
the two equivalent modulo the declared transforms (translation validation:
inserted bytes are NOP-table identities, substitutions stay in the known
equivalence classes, shifts are a jump over dead padding, register
randomization is a clean bijection, branches land on mapped targets).

`--trace` writes Chrome trace_event JSON (open in Perfetto or
chrome://tracing) spanning every pipeline phase; `--metrics` writes a flat
JSON document of counters, gauges and histograms (`pgsd report` renders
it as a table). Cache hits, misses and evictions appear there as
`cache.*` counters and gauges.

`fuzz` generates random MiniC programs, diversifies each under several
seeds per transform set (`--transforms` is a comma list drawn from
nop,subst,shift,combo; default all four), runs baseline and variants on
matched inputs, and cross-checks dynamic behaviour against the static
validator. Failures are shrunk and saved as reproducers under `--corpus`
(default `corpus/`) next to a deterministic `report.json`; `--replay DIR`
re-runs every saved reproducer as a regression check instead of fuzzing.
Each fuzz case uses a private in-memory cache, so `--threads` (and
`--cache-dir`) only change throughput, never the report.

`bench` runs a fixed benchmark slice (every paper configuration of
470.lbm and 401.bzip2, 6 seeds each) once serially, once on `--threads`
workers, and once more against the now-warm cache; it cross-checks that
the emulated cycle totals agree across all three passes and writes
wall-clock, Mcycles, thread speedup and warm-cache speedup to a
schema-versioned metrics document (default `BENCH_pgsd.json` at the repo
root). The bench passes use private in-memory caches so the cold/warm
comparison is reproducible regardless of `--cache-dir`.

`cache stats` prints the occupancy of the persistent store and
`cache clear` empties it (default directory `.pgsd-cache`, or the
`--cache-dir` value).
";

/// Every subcommand flag the parser understands: name, whether it takes
/// a value, and the subcommands it applies to. The global flags
/// (`--cache-dir`, `--threads`) are extracted before dispatch and are
/// deliberately absent here.
const FLAGS: &[(&str, bool, &[&str])] = &[
    ("--pnop", true, &["diversify", "check", "gadgets"]),
    ("--seed", true, &["diversify", "check", "gadgets", "fuzz"]),
    ("--train", true, &["diversify", "check", "gadgets"]),
    ("--shift", false, &["diversify", "check"]),
    ("--subst", false, &["diversify", "check"]),
    ("--regrand", false, &["diversify", "check"]),
    ("--validate", false, &["diversify"]),
    ("--trace", true, &["run", "diversify", "check", "fuzz"]),
    ("--metrics", true, &["run", "diversify", "check", "fuzz"]),
    ("--func", true, &["disasm"]),
    ("--iters", true, &["fuzz"]),
    ("--transforms", true, &["fuzz"]),
    ("--corpus", true, &["fuzz"]),
    ("--variants", true, &["fuzz"]),
    ("--replay", true, &["fuzz"]),
    ("--out", true, &["bench"]),
];

fn allowed_flags(cmd: &str) -> Vec<&'static str> {
    FLAGS
        .iter()
        .filter(|(_, _, cmds)| cmds.contains(&cmd))
        .map(|(f, _, _)| *f)
        .collect()
}

/// Classic Levenshtein distance, for "did you mean" suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

fn flag_error(cmd: &str, flag: &str, allowed: &[&str]) -> String {
    let mut msg = match FLAGS.iter().find(|(f, _, _)| *f == flag) {
        Some((_, _, cmds)) => format!(
            "flag `{flag}` is not valid for `pgsd {cmd}` (only for `pgsd {}`)",
            cmds.join("`, `pgsd ")
        ),
        None => {
            let mut m = format!("unknown flag `{flag}`");
            if let Some(best) = allowed
                .iter()
                .copied()
                .min_by_key(|f| edit_distance(flag, f))
            {
                if edit_distance(flag, best) <= 2 {
                    m.push_str(&format!(" — did you mean `{best}`?"));
                }
            }
            m
        }
    };
    if allowed.is_empty() {
        msg.push_str(&format!("\n`pgsd {cmd}` takes no flags"));
    } else {
        msg.push_str(&format!(
            "\nvalid flags for `pgsd {cmd}`: {}",
            allowed.join(", ")
        ));
    }
    msg
}

struct Parsed {
    source_name: String,
    source: String,
    run_args: Vec<i32>,
    pnop: Strategy,
    seed: u64,
    train_args: Option<Vec<i32>>,
    shift: bool,
    subst: bool,
    regrand: bool,
    validate: bool,
    func: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
}

fn parse(cmd: &str, rest: &[String]) -> Result<Parsed, String> {
    let allowed = allowed_flags(cmd);
    let Some(path) = rest.first() else {
        return Err("missing source file".into());
    };
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let mut parsed = Parsed {
        source_name: path.clone(),
        source,
        run_args: Vec::new(),
        pnop: Strategy::range(0.0, 0.30),
        seed: 1,
        train_args: None,
        shift: false,
        subst: false,
        regrand: false,
        validate: false,
        func: None,
        trace: None,
        metrics: None,
    };
    let mut it = rest[1..].iter();
    while let Some(arg) = it.next() {
        let a = arg.as_str();
        if a.starts_with("--") && !allowed.contains(&a) {
            return Err(flag_error(cmd, a, &allowed));
        }
        match a {
            "--pnop" => {
                let spec = it.next().ok_or("--pnop needs a value")?;
                parsed.pnop = parse_strategy(spec)?;
            }
            "--seed" => {
                parsed.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--train" => {
                let list = it.next().ok_or("--train needs a value")?;
                parsed.train_args = Some(parse_ints(list)?);
            }
            "--func" => parsed.func = Some(it.next().ok_or("--func needs a value")?.clone()),
            "--trace" => parsed.trace = Some(it.next().ok_or("--trace needs a value")?.clone()),
            "--metrics" => {
                parsed.metrics = Some(it.next().ok_or("--metrics needs a value")?.clone());
            }
            "--shift" => parsed.shift = true,
            "--subst" => parsed.subst = true,
            "--regrand" => parsed.regrand = true,
            "--validate" => parsed.validate = true,
            other => {
                let v: i32 = other
                    .parse()
                    .map_err(|_| format!("unexpected argument `{other}`"))?;
                parsed.run_args.push(v);
            }
        }
    }
    Ok(parsed)
}

fn parse_strategy(spec: &str) -> Result<Strategy, String> {
    let parse_p = |s: &str| -> Result<f64, String> {
        let v: f64 = s
            .parse()
            .map_err(|e| format!("bad probability `{s}`: {e}"))?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("probability {v} outside [0, 1]"));
        }
        Ok(v)
    };
    match spec.split_once('-') {
        Some((lo, hi)) => {
            let (lo, hi) = (parse_p(lo)?, parse_p(hi)?);
            if lo > hi {
                return Err(format!("range {lo}-{hi} is inverted"));
            }
            Ok(Strategy::range(lo, hi))
        }
        None => Ok(Strategy::uniform(parse_p(spec)?)),
    }
}

fn parse_ints(list: &str) -> Result<Vec<i32>, String> {
    list.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|e| format!("bad integer `{s}`: {e}"))
        })
        .collect()
}

/// Arms a collector when `--trace` or `--metrics` was requested.
fn telemetry_for(p: &Parsed) -> Telemetry {
    if p.trace.is_some() || p.metrics.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    }
}

/// Writes the requested trace / metrics files (also on failed runs, so a
/// crashing program still leaves its telemetry behind).
fn write_telemetry(p: &Parsed, tel: &Telemetry) -> Result<(), String> {
    if let Some(path) = &p.trace {
        std::fs::write(path, tel.trace_json())
            .map_err(|e| format!("cannot write trace `{path}`: {e}"))?;
        eprintln!("trace written to {path}");
    }
    if let Some(path) = &p.metrics {
        std::fs::write(path, tel.metrics_json())
            .map_err(|e| format!("cannot write metrics `{path}`: {e}"))?;
        eprintln!("metrics written to {path}");
    }
    Ok(())
}

/// A per-invocation [`Session`] over the parsed source: telemetry armed
/// per `--trace`/`--metrics`, cache per `--cache-dir`, workers per
/// `--threads`.
fn session_for(p: &Parsed, g: &Globals, tel: &Telemetry) -> Result<Session, String> {
    let mut session = Session::from_source(&p.source_name, &p.source)
        .telemetry(tel.clone())
        .cache(g.open_cache()?);
    if let Some(threads) = g.threads {
        session = session.threads(threads);
    }
    Ok(session)
}

/// Records end-of-run cache occupancy, complementing the `cache.*`
/// hit/miss counters the operations record as they go.
fn record_cache_gauges(session: &Session, tel: &Telemetry) {
    let stats = session.cache_handle().stats();
    tel.set_gauge("cache.mem_entries", stats.mem_entries as f64);
    tel.set_gauge("cache.mem_bytes", stats.mem_bytes as f64);
    if session.cache_handle().dir().is_some() {
        tel.set_gauge("cache.disk_entries", stats.disk_entries as f64);
        tel.set_gauge("cache.disk_bytes", stats.disk_bytes as f64);
    }
}

/// Runs `image`, echoing its printed values to stdout. A normal exit
/// reports the status and returns the cycle count; an abnormal exit
/// (fault, gas, bad syscall) is an error — the caller routes it to
/// stderr and the process exits nonzero.
fn report_run(session: &Session, image: &Image, args: &[i32], label: &str) -> Result<u64, String> {
    let (exit, stats) = session.run_image(image, &Input::args(args), DEFAULT_GAS, label);
    for v in &stats.output {
        println!("{v}");
    }
    match exit.status() {
        Some(s) => {
            println!(
                "exit {s}   ({} instructions, {} cycles, {} d-cache misses)",
                stats.instructions, stats.cycles, stats.dcache_misses
            );
            Ok(stats.cycles)
        }
        None => Err(format!("abnormal exit: {exit:?}")),
    }
}

fn cmd_run(rest: &[String], g: &Globals) -> Result<(), String> {
    let p = parse("run", rest)?;
    let tel = telemetry_for(&p);
    let session = session_for(&p, g, &tel)?;
    let result = (|| {
        let image = session.build().map_err(|e| e.to_string())?;
        println!(
            "compiled `{}`: {} bytes of text, {} functions",
            p.source_name,
            image.text.len(),
            image.funcs.len()
        );
        report_run(&session, &image, &p.run_args, "run").map(|_| ())
    })();
    record_cache_gauges(&session, &tel);
    write_telemetry(&p, &tel)?;
    result
}

fn config_of(p: &Parsed, tel: &Telemetry) -> BuildConfig {
    BuildConfig {
        strategy: Some(p.pnop),
        with_xchg: false,
        shift_max_pad: if p.shift { Some(24) } else { None },
        substitution: if p.subst { Some(p.pnop) } else { None },
        reg_randomize: p.regrand,
        seed: p.seed,
        validate: p.validate,
        telemetry: tel.clone(),
    }
}

/// Trains (when the strategy or substitution needs a profile) and then
/// builds the diversified variant through the session, so a warm cache
/// serves the whole seed-independent prefix.
fn build_diversified(p: &Parsed, session: &Session, tel: &Telemetry) -> Result<Image, String> {
    if p.pnop.needs_profile() || p.subst {
        let t_args = p.train_args.clone().unwrap_or_else(|| p.run_args.clone());
        session
            .train(&[Input::args(&t_args)], DEFAULT_GAS)
            .map_err(|e| format!("training failed: {e}"))?;
    }
    session
        .build_with(&config_of(p, tel))
        .map_err(|e| e.to_string())
}

fn cmd_diversify(rest: &[String], g: &Globals) -> Result<(), String> {
    let p = parse("diversify", rest)?;
    let tel = telemetry_for(&p);
    let session = session_for(&p, g, &tel)?;
    let result = (|| {
        let baseline = session.build().map_err(|e| e.to_string())?;
        let image = build_diversified(&p, &session, &tel)?;
        println!(
            "diversified `{}` with {} (seed {}): text {} → {} bytes",
            p.source_name,
            p.pnop,
            p.seed,
            baseline.text.len(),
            image.text.len()
        );
        println!("— baseline:");
        let base_cycles = report_run(&session, &baseline, &p.run_args, "baseline")?;
        println!("— diversified:");
        let div_cycles = report_run(&session, &image, &p.run_args, "diversified")?;
        if base_cycles > 0 {
            let overhead = (div_cycles as f64 / base_cycles as f64 - 1.0) * 100.0;
            tel.set_gauge("run.overhead_pct", overhead);
            println!("overhead: {overhead:+.2}%");
        }
        Ok(())
    })();
    record_cache_gauges(&session, &tel);
    write_telemetry(&p, &tel)?;
    result
}

fn cmd_check(rest: &[String], g: &Globals) -> Result<(), String> {
    let mut p = parse("check", rest)?;
    // The checker runs here with its report printed, not inside `build`.
    p.validate = false;
    let tel = telemetry_for(&p);
    let session = session_for(&p, g, &tel)?;
    let result = (|| {
        let baseline = session.build().map_err(|e| e.to_string())?;
        let variant = build_diversified(&p, &session, &tel)?;
        let transforms = config_of(&p, &tel).transforms();
        let _span = tel.span("validate");
        match check_images(&baseline, &variant, &transforms) {
            Ok(report) => {
                tel.add("validate.passed", 1);
                println!(
                    "`{}` seed {}: OK — {} functions, {} instructions matched, \
                     {} inserted NOPs, {} substitutions, {} shift jumps verified",
                    p.source_name,
                    p.seed,
                    report.functions,
                    report.matched,
                    report.inserted_nops,
                    report.substitutions,
                    report.shift_jumps
                );
                Ok(())
            }
            Err(diags) => {
                tel.add("validate.failed", 1);
                tel.add("validate.findings", diags.len() as u64);
                for d in &diags {
                    eprintln!("{d}");
                }
                Err(format!("validation failed with {} finding(s)", diags.len()))
            }
        }
    })();
    record_cache_gauges(&session, &tel);
    write_telemetry(&p, &tel)?;
    result
}

fn cmd_gadgets(rest: &[String], g: &Globals) -> Result<(), String> {
    let p = parse("gadgets", rest)?;
    let tel = Telemetry::disabled();
    let session = session_for(&p, g, &tel)?;
    let baseline = session.build().map_err(|e| e.to_string())?;
    let cfg = ScanConfig::default();
    let gadgets = find_gadgets(&baseline.text, &cfg);
    println!(
        "`{}`: {} gadgets in {} bytes of text",
        p.source_name,
        gadgets.len(),
        baseline.text.len()
    );
    let image = build_diversified(&p, &session, &tel)?;
    let rep = survivor(&baseline.text, &image.text, &NopTable::new(), &cfg);
    println!(
        "after diversification ({}, seed {}): {} survive ({:.2}%)",
        p.pnop,
        p.seed,
        rep.count(),
        100.0 * rep.surviving_fraction()
    );
    Ok(())
}

fn cmd_disasm(rest: &[String], g: &Globals) -> Result<(), String> {
    let p = parse("disasm", rest)?;
    let session = session_for(&p, g, &Telemetry::disabled())?;
    let image = session.build().map_err(|e| e.to_string())?;
    for f in &image.funcs {
        if let Some(filter) = &p.func {
            if &f.name != filter {
                continue;
            }
        }
        println!(
            "\n{}:  ; {:#010x}..{:#010x}{}",
            f.name,
            f.start,
            f.end,
            if f.diversified {
                ""
            } else {
                "  (runtime, undiversified)"
            }
        );
        let mut off = (f.start - image.base) as usize;
        let end = (f.end - image.base) as usize;
        while off < end {
            match decode(&image.text[off..]) {
                Ok(d) => {
                    let bytes: Vec<String> = image.text[off..off + d.len]
                        .iter()
                        .map(|b| format!("{b:02x}"))
                        .collect();
                    println!(
                        "  {:#010x}:  {:<24} {d}",
                        image.base as usize + off,
                        bytes.join(" ")
                    );
                    off += d.len;
                }
                Err(e) => return Err(format!("disassembly failed at {off:#x}: {e}")),
            }
        }
    }
    Ok(())
}

/// `pgsd cache stats|clear` — inspect or empty the persistent store.
/// The directory is `--cache-dir` when given, else `.pgsd-cache`.
fn cmd_cache(rest: &[String], g: &Globals) -> Result<(), String> {
    let dir = g
        .cache_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from(".pgsd-cache"));
    let action = rest
        .first()
        .ok_or("usage: pgsd cache <stats|clear> [--cache-dir DIR]")?;
    if let Some(extra) = rest.get(1) {
        return Err(format!("unexpected argument `{extra}`"));
    }
    match action.as_str() {
        "stats" => {
            if !dir.is_dir() {
                println!("cache at {}: empty (no cache directory)", dir.display());
                return Ok(());
            }
            let cache = Cache::persistent(&dir)
                .map_err(|e| format!("cannot open cache `{}`: {e}", dir.display()))?;
            let stats = cache.stats();
            println!(
                "cache at {}: {} artifact(s), {} bytes on disk",
                dir.display(),
                stats.disk_entries,
                stats.disk_bytes
            );
            Ok(())
        }
        "clear" => {
            let removed = Cache::clear_dir(&dir)
                .map_err(|e| format!("cannot clear cache `{}`: {e}", dir.display()))?;
            println!("cache at {}: removed {} file(s)", dir.display(), removed);
            Ok(())
        }
        other => Err(format!(
            "unknown cache action `{other}` (expected `stats` or `clear`)"
        )),
    }
}

fn cmd_fuzz(rest: &[String], g: &Globals) -> Result<(), String> {
    let allowed = allowed_flags("fuzz");
    let mut config = FuzzConfig::default();
    if let Some(threads) = g.threads {
        config.threads = threads;
    }
    let mut corpus = String::from("corpus");
    let mut replay_dir: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let a = arg.as_str();
        if !a.starts_with("--") {
            return Err(format!(
                "unexpected argument `{a}` — `pgsd fuzz` takes no positional arguments"
            ));
        }
        if !allowed.contains(&a) {
            return Err(flag_error("fuzz", a, &allowed));
        }
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a {
            "--iters" => {
                config.iters = value(a)?.parse().map_err(|e| format!("bad iters: {e}"))?;
            }
            "--seed" => {
                config.seed = value(a)?.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--variants" => {
                config.variants_per_set = value(a)?
                    .parse()
                    .map_err(|e| format!("bad variants: {e}"))?;
            }
            "--transforms" => {
                let list = value(a)?;
                config.transforms = list
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| {
                        TransformSet::parse(s.trim()).ok_or_else(|| {
                            format!("bad transform `{s}` (expected nop, subst, shift or combo)")
                        })
                    })
                    .collect::<Result<_, _>>()?;
                if config.transforms.is_empty() {
                    return Err("--transforms needs at least one of nop,subst,shift,combo".into());
                }
            }
            "--corpus" => corpus = value(a)?,
            "--replay" => replay_dir = Some(value(a)?),
            "--trace" => trace = Some(value(a)?),
            "--metrics" => metrics = Some(value(a)?),
            _ => unreachable!("flag table and match arms out of sync"),
        }
    }

    if let Some(dir) = replay_dir {
        let report = replay(Path::new(&dir))?;
        for case in &report.cases {
            if case.passing {
                println!("replay {}: ok", case.id);
            } else {
                eprintln!("replay {}: {}", case.id, case.detail);
            }
        }
        println!(
            "replayed {} reproducer(s): {} passing",
            report.cases.len(),
            report.passing()
        );
        return if report.all_passing() {
            Ok(())
        } else {
            Err(format!(
                "{} reproducer(s) still failing",
                report.cases.len() - report.passing()
            ))
        };
    }

    let tel = if trace.is_some() || metrics.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let result = fuzz(&config, Some(Path::new(&corpus)), &tel);
    if let Some(path) = &trace {
        std::fs::write(path, tel.trace_json())
            .map_err(|e| format!("cannot write trace `{path}`: {e}"))?;
        eprintln!("trace written to {path}");
    }
    if let Some(path) = &metrics {
        std::fs::write(path, tel.metrics_json())
            .map_err(|e| format!("cannot write metrics `{path}`: {e}"))?;
        eprintln!("metrics written to {path}");
    }
    let report = result?;
    println!(
        "fuzzed {} programs ({} cases, transforms {}, {} variants each): \
         {} divergences, {} static rejections, {} build errors, {} skipped (gas)",
        report.programs,
        report.cases,
        report.transforms.join(","),
        report.variants_per_set,
        report.divergences,
        report.static_rejections,
        report.build_errors,
        report.skipped_out_of_gas
    );
    println!("report written to {corpus}/report.json");
    if report.findings.is_empty()
        && report.divergences == 0
        && report.static_rejections == 0
        && report.build_errors == 0
    {
        Ok(())
    } else {
        for f in &report.findings {
            eprintln!(
                "finding {}: transforms={} variant_seed={} shrunk {} → {} statements \
                 (dynamic={}, static={}) — see {corpus}/{}.mc",
                f.id,
                f.tset.label(),
                f.variant_seed,
                f.stmts_before,
                f.stmts_after,
                f.dynamic_diverged,
                f.static_rejected,
                f.id
            );
        }
        Err(format!(
            "{} divergence(s), {} static rejection(s), {} build error(s)",
            report.divergences, report.static_rejections, report.build_errors
        ))
    }
}

fn cmd_bench(rest: &[String], g: &Globals) -> Result<(), String> {
    let allowed = allowed_flags("bench");
    let mut out = String::from("BENCH_pgsd.json");
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let a = arg.as_str();
        if !a.starts_with("--") {
            return Err(format!(
                "unexpected argument `{a}` — `pgsd bench` takes no positional arguments"
            ));
        }
        if !allowed.contains(&a) {
            return Err(flag_error("bench", a, &allowed));
        }
        match a {
            "--out" => {
                out = it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("{a} needs a value"))?;
            }
            _ => unreachable!("flag table and match arms out of sync"),
        }
    }
    let threads = pgsd::exec::resolve_threads(g.threads);

    eprintln!(
        "bench slice: {} × {} paper configs × {} seeds, threads 1 then {threads}, \
         then a warm-cache pass",
        pgsd::bench::BENCH_SLICE_WORKLOADS.join(", "),
        Strategy::paper_configs().len(),
        pgsd::bench::BENCH_SLICE_SEEDS,
    );
    // Each prepared slice owns a fresh in-memory cache, so the first
    // measurement over it is a true cold pass; re-measuring the second
    // slice is the warm pass — every variant image is a cache hit.
    let serial_prep = pgsd::bench::prepare_bench_slice();
    let serial = pgsd::bench::measure_bench_slice(&serial_prep, 1);
    let warm_prep = pgsd::bench::prepare_bench_slice();
    let parallel = pgsd::bench::measure_bench_slice(&warm_prep, threads);
    let warm = pgsd::bench::measure_bench_slice(&warm_prep, threads);
    for (label, pass) in [("parallel", &parallel), ("warm-cache", &warm)] {
        if pass.cycles != serial.cycles {
            return Err(format!(
                "cycle totals diverged: {} at 1 thread vs {} in the {label} pass — \
                 builds and runs are supposed to be deterministic",
                serial.cycles, pass.cycles
            ));
        }
    }
    let speedup = serial.wall_ms / parallel.wall_ms;
    let warm_speedup = parallel.wall_ms / warm.wall_ms;

    let sink = pgsd::bench::MetricsSink::new("bench");
    sink.gauge("bench.threads", threads as f64);
    // The speedup only means something relative to the cores actually
    // present (e.g. 4 threads on a 1-core box is a slowdown).
    sink.gauge(
        "bench.host_parallelism",
        pgsd::exec::available_threads() as f64,
    );
    sink.gauge_labeled(
        "bench.wall_ms",
        &[("cache", "cold"), ("threads", "1")],
        serial.wall_ms,
    );
    sink.gauge_labeled(
        "bench.wall_ms",
        &[("cache", "cold"), ("threads", &threads.to_string())],
        parallel.wall_ms,
    );
    sink.gauge_labeled(
        "bench.wall_ms",
        &[("cache", "warm"), ("threads", &threads.to_string())],
        warm.wall_ms,
    );
    sink.gauge("bench.speedup_vs_1thread", speedup);
    sink.gauge("bench.cache_warm_speedup", warm_speedup);
    sink.gauge("bench.emulated_mcycles", parallel.cycles as f64 / 1e6);
    sink.count("bench.builds", parallel.builds);
    sink.count("bench.runs", parallel.runs);
    let path = sink.finish_to(Path::new(&out));

    println!(
        "bench slice: {:.0} ms at 1 thread, {:.0} ms at {threads} threads \
         ({speedup:.2}× speedup), {:.0} ms warm ({warm_speedup:.2}× vs cold), \
         {:.1} Mcycles emulated per pass",
        serial.wall_ms,
        parallel.wall_ms,
        warm.wall_ms,
        parallel.cycles as f64 / 1e6
    );
    println!("results written to {}", path.display());
    Ok(())
}

fn cmd_report(rest: &[String]) -> Result<(), String> {
    let [path] = rest else {
        return Err("usage: pgsd report <metrics.json>".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let doc = MetricsDoc::from_json(&text).map_err(|e| format!("`{path}`: {e}"))?;
    print!("{}", doc.summary_table());
    Ok(())
}
