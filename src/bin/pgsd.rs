//! `pgsd` — command-line front door to the diversifying toolchain.
//!
//! ```text
//! pgsd run <file.mc> [args…]                      compile and execute
//! pgsd diversify <file.mc> [options] [args…]      diversified build + run
//! pgsd check <file.mc> [options]                  statically validate a variant
//! pgsd gadgets <file.mc> [--seed N] [--pnop SPEC] gadget / Survivor report
//! pgsd disasm <file.mc> [--func NAME]             disassemble the image
//!
//! diversify / check options:
//!   --pnop SPEC      uniform `0.5` or profile-guided range `0.0-0.3`
//!                    (default 0.0-0.3, the paper's cheapest setting)
//!   --seed N         RNG seed (default 1)
//!   --train LIST     comma-separated ints for the training run
//!                    (default: the program's run arguments)
//!   --shift          also apply basic-block shifting (§6)
//!   --subst          also apply equivalent-instruction substitution (§6)
//!   --regrand        also randomize register allocation (§6)
//!   --validate       (diversify only) run the divcheck validator after
//!                    the build and fail on any finding
//! ```

use std::process::ExitCode;

use pgsd::analysis::check_images;
use pgsd::cc::driver::frontend;
use pgsd::cc::emit::Image;
use pgsd::core::driver::{build, run, train, BuildConfig, Input, DEFAULT_GAS};
use pgsd::core::Strategy;
use pgsd::gadget::{find_gadgets, survivor, ScanConfig};
use pgsd::x86::decode;
use pgsd::x86::nop::NopTable;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pgsd: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("usage: pgsd <run|diversify|gadgets|disasm> <file.mc> …  (see --help)".into());
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        print!("{}", HELP);
        return Ok(());
    }
    let rest = &args[1..];
    match cmd.as_str() {
        "run" => cmd_run(rest),
        "diversify" => cmd_diversify(rest),
        "check" => cmd_check(rest),
        "gadgets" => cmd_gadgets(rest),
        "disasm" => cmd_disasm(rest),
        other => Err(format!("unknown command `{other}` (try --help)")),
    }
}

const HELP: &str = "\
pgsd — profile-guided software diversity toolchain (CGO 2013 reproduction)

  pgsd run <file.mc> [args…]
  pgsd diversify <file.mc> [--pnop SPEC] [--seed N] [--train LIST]
                           [--shift] [--subst] [--regrand] [--validate] [args…]
  pgsd check <file.mc> [--pnop SPEC] [--seed N] [--shift] [--subst] [--regrand]
  pgsd gadgets <file.mc> [--pnop SPEC] [--seed N]
  pgsd disasm <file.mc> [--func NAME]

SPEC is a probability (`0.5`) for uniform insertion or a range (`0.0-0.3`)
for the profile-guided strategy; ranges trigger a training run.

`check` builds a baseline and a diversified variant, then statically proves
the two equivalent modulo the declared transforms (translation validation:
inserted bytes are NOP-table identities, substitutions stay in the known
equivalence classes, shifts are a jump over dead padding, register
randomization is a clean bijection, branches land on mapped targets).
";

struct Parsed {
    source_name: String,
    source: String,
    run_args: Vec<i32>,
    pnop: Strategy,
    seed: u64,
    train_args: Option<Vec<i32>>,
    shift: bool,
    subst: bool,
    regrand: bool,
    validate: bool,
    func: Option<String>,
}

fn parse(rest: &[String]) -> Result<Parsed, String> {
    let Some(path) = rest.first() else {
        return Err("missing source file".into());
    };
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let mut parsed = Parsed {
        source_name: path.clone(),
        source,
        run_args: Vec::new(),
        pnop: Strategy::range(0.0, 0.30),
        seed: 1,
        train_args: None,
        shift: false,
        subst: false,
        regrand: false,
        validate: false,
        func: None,
    };
    let mut it = rest[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--pnop" => {
                let spec = it.next().ok_or("--pnop needs a value")?;
                parsed.pnop = parse_strategy(spec)?;
            }
            "--seed" => {
                parsed.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--train" => {
                let list = it.next().ok_or("--train needs a value")?;
                parsed.train_args = Some(parse_ints(list)?);
            }
            "--func" => parsed.func = Some(it.next().ok_or("--func needs a value")?.clone()),
            "--shift" => parsed.shift = true,
            "--subst" => parsed.subst = true,
            "--regrand" => parsed.regrand = true,
            "--validate" => parsed.validate = true,
            other => {
                let v: i32 = other
                    .parse()
                    .map_err(|_| format!("unexpected argument `{other}`"))?;
                parsed.run_args.push(v);
            }
        }
    }
    Ok(parsed)
}

fn parse_strategy(spec: &str) -> Result<Strategy, String> {
    let parse_p = |s: &str| -> Result<f64, String> {
        let v: f64 = s
            .parse()
            .map_err(|e| format!("bad probability `{s}`: {e}"))?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("probability {v} outside [0, 1]"));
        }
        Ok(v)
    };
    match spec.split_once('-') {
        Some((lo, hi)) => {
            let (lo, hi) = (parse_p(lo)?, parse_p(hi)?);
            if lo > hi {
                return Err(format!("range {lo}-{hi} is inverted"));
            }
            Ok(Strategy::range(lo, hi))
        }
        None => Ok(Strategy::uniform(parse_p(spec)?)),
    }
}

fn parse_ints(list: &str) -> Result<Vec<i32>, String> {
    list.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|e| format!("bad integer `{s}`: {e}"))
        })
        .collect()
}

fn compile_baseline(p: &Parsed) -> Result<(pgsd::cc::ir::Module, Image), String> {
    let module = frontend(&p.source_name, &p.source).map_err(|e| e.to_string())?;
    let image = build(&module, None, &BuildConfig::baseline()).map_err(|e| e.to_string())?;
    Ok((module, image))
}

fn report_run(image: &Image, args: &[i32]) -> u64 {
    let (exit, stats) = run(image, args, DEFAULT_GAS);
    for v in &stats.output {
        println!("{v}");
    }
    match exit.status() {
        Some(s) => println!(
            "exit {s}   ({} instructions, {} cycles, {} d-cache misses)",
            stats.instructions, stats.cycles, stats.dcache_misses
        ),
        None => println!("abnormal exit: {exit:?}"),
    }
    stats.cycles
}

fn cmd_run(rest: &[String]) -> Result<(), String> {
    let p = parse(rest)?;
    let (_, image) = compile_baseline(&p)?;
    println!(
        "compiled `{}`: {} bytes of text, {} functions",
        p.source_name,
        image.text.len(),
        image.funcs.len()
    );
    report_run(&image, &p.run_args);
    Ok(())
}

fn config_of(p: &Parsed) -> BuildConfig {
    BuildConfig {
        strategy: Some(p.pnop),
        with_xchg: false,
        shift_max_pad: if p.shift { Some(24) } else { None },
        substitution: if p.subst { Some(p.pnop) } else { None },
        reg_randomize: p.regrand,
        seed: p.seed,
        validate: p.validate,
    }
}

fn build_diversified(p: &Parsed, module: &pgsd::cc::ir::Module) -> Result<Image, String> {
    let profile = if p.pnop.needs_profile() || p.subst {
        let t_args = p.train_args.clone().unwrap_or_else(|| p.run_args.clone());
        Some(
            train(module, &[Input::args(&t_args)], DEFAULT_GAS)
                .map_err(|e| format!("training failed: {e}"))?,
        )
    } else {
        None
    };
    build(module, profile.as_ref(), &config_of(p)).map_err(|e| e.to_string())
}

fn cmd_diversify(rest: &[String]) -> Result<(), String> {
    let p = parse(rest)?;
    let (module, baseline) = compile_baseline(&p)?;
    let image = build_diversified(&p, &module)?;
    println!(
        "diversified `{}` with {} (seed {}): text {} → {} bytes",
        p.source_name,
        p.pnop,
        p.seed,
        baseline.text.len(),
        image.text.len()
    );
    println!("— baseline:");
    let base_cycles = report_run(&baseline, &p.run_args);
    println!("— diversified:");
    let div_cycles = report_run(&image, &p.run_args);
    if base_cycles > 0 {
        println!(
            "overhead: {:+.2}%",
            (div_cycles as f64 / base_cycles as f64 - 1.0) * 100.0
        );
    }
    Ok(())
}

fn cmd_check(rest: &[String]) -> Result<(), String> {
    let mut p = parse(rest)?;
    // The checker runs here with its report printed, not inside `build`.
    p.validate = false;
    let (module, baseline) = compile_baseline(&p)?;
    let variant = build_diversified(&p, &module)?;
    let transforms = config_of(&p).transforms();
    match check_images(&baseline, &variant, &transforms) {
        Ok(report) => {
            println!(
                "`{}` seed {}: OK — {} functions, {} instructions matched, \
                 {} inserted NOPs, {} substitutions, {} shift jumps verified",
                p.source_name,
                p.seed,
                report.functions,
                report.matched,
                report.inserted_nops,
                report.substitutions,
                report.shift_jumps
            );
            Ok(())
        }
        Err(diags) => {
            for d in &diags {
                eprintln!("{d}");
            }
            Err(format!("validation failed with {} finding(s)", diags.len()))
        }
    }
}

fn cmd_gadgets(rest: &[String]) -> Result<(), String> {
    let p = parse(rest)?;
    let (module, baseline) = compile_baseline(&p)?;
    let cfg = ScanConfig::default();
    let gadgets = find_gadgets(&baseline.text, &cfg);
    println!(
        "`{}`: {} gadgets in {} bytes of text",
        p.source_name,
        gadgets.len(),
        baseline.text.len()
    );
    let image = build_diversified(&p, &module)?;
    let rep = survivor(&baseline.text, &image.text, &NopTable::new(), &cfg);
    println!(
        "after diversification ({}, seed {}): {} survive ({:.2}%)",
        p.pnop,
        p.seed,
        rep.count(),
        100.0 * rep.surviving_fraction()
    );
    Ok(())
}

fn cmd_disasm(rest: &[String]) -> Result<(), String> {
    let p = parse(rest)?;
    let (_, image) = compile_baseline(&p)?;
    for f in &image.funcs {
        if let Some(filter) = &p.func {
            if &f.name != filter {
                continue;
            }
        }
        println!(
            "\n{}:  ; {:#010x}..{:#010x}{}",
            f.name,
            f.start,
            f.end,
            if f.diversified {
                ""
            } else {
                "  (runtime, undiversified)"
            }
        );
        let mut off = (f.start - image.base) as usize;
        let end = (f.end - image.base) as usize;
        while off < end {
            match decode(&image.text[off..]) {
                Ok(d) => {
                    let bytes: Vec<String> = image.text[off..off + d.len]
                        .iter()
                        .map(|b| format!("{b:02x}"))
                        .collect();
                    println!(
                        "  {:#010x}:  {:<24} {d}",
                        image.base as usize + off,
                        bytes.join(" ")
                    );
                    off += d.len;
                }
                Err(e) => return Err(format!("disassembly failed at {off:#x}: {e}")),
            }
        }
    }
    Ok(())
}
