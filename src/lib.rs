//! # pgsd — profile-guided automated software diversity
//!
//! Umbrella crate of the reproduction of Homescu, Neisius, Larsen,
//! Brunthaler & Franz, *"Profile-guided Automated Software Diversity"*
//! (CGO 2013). Re-exports every subsystem:
//!
//! * [`x86`] — IA-32 instruction model, encoder, decoder, NOP table;
//! * [`cc`] — the MiniC optimizing compiler (frontend → IR → LIR → image);
//! * [`analysis`] — machine-code dataflow framework and the `divcheck`
//!   translation validator for diversified variants;
//! * [`profile`] — spanning-tree edge profiling and count reconstruction;
//! * [`emu`] — deterministic x86-32 emulator with a cycle cost model;
//! * [`core`] — **the paper's contribution**: profile-guided NOP insertion;
//! * [`gadget`] — gadget scanning, the Survivor comparison, attack
//!   feasibility;
//! * [`workloads`] — the synthetic SPEC CPU 2006 suite and the PHP-like VM;
//! * [`telemetry`] — spans, metrics and trace export threaded through the
//!   whole compile → diversify → execute pipeline;
//! * [`fuzz`] — differential fuzzing of diversified variants: program
//!   generator, dynamic-vs-static oracle cross-check, shrinker, corpus;
//! * [`exec`] — zero-dependency deterministic parallel job queue used by
//!   every population / sweep / fuzz fan-out;
//! * [`cache`] — content-addressed two-level artifact cache behind
//!   [`core::Session`]'s incremental builds;
//! * [`mod@bench`] — experiment-harness plumbing shared by the `pgsd bench`
//!   subcommand and the table/figure binaries;
//! * [`proto`] — the schema-versioned request/response envelope and the
//!   framed wire protocol shared by the daemon, `pgsd fetch`, and every
//!   CLI `--json` document;
//! * [`serve`] — the `pgsd serve` variant-distribution daemon: bounded
//!   request queue, worker pool, HTTP health/metrics shim, ledgered seed
//!   sequence, graceful drain.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Examples
//!
//! ```
//! use pgsd::core::{BuildConfig, Input, Session, Strategy};
//!
//! let session = Session::from_source("demo", "int main(int n) { return n + 1; }")
//!     .config(BuildConfig::diversified(Strategy::uniform(0.5), 7));
//! let outcome = session.build_and_run(&Input::args(&[41]), 100_000)?;
//! assert_eq!(outcome.status(), Some(42));
//! # Ok::<(), pgsd::cc::error::CompileError>(())
//! ```

#![forbid(unsafe_code)]

pub use pgsd_analysis as analysis;
pub use pgsd_bench as bench;
pub use pgsd_cache as cache;
pub use pgsd_cc as cc;
pub use pgsd_core as core;
pub use pgsd_emu as emu;
pub use pgsd_exec as exec;
pub use pgsd_fuzz as fuzz;
pub use pgsd_gadget as gadget;
pub use pgsd_profile as profile;
pub use pgsd_proto as proto;
pub use pgsd_serve as serve;
pub use pgsd_telemetry as telemetry;
pub use pgsd_workloads as workloads;
pub use pgsd_x86 as x86;
