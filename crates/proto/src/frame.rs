//! Length-prefixed framing for the `pgsd serve` wire protocol.
//!
//! Every frame is a 9-byte header followed by the payload:
//!
//! ```text
//! [4-byte magic "PGSD"] [1-byte kind] [4-byte big-endian length] [payload]
//! ```
//!
//! Kinds: `1` = JSON (a request or response document), `2` = binary (a
//! variant image artifact in the `pgsd-cache` self-checking encoding).
//! A conversation is one JSON request frame from the client, one JSON
//! response frame from the server, and — when the response announces a
//! payload — exactly one binary frame after it.
//!
//! Decoding is strict and typed: a wrong magic, unknown kind, length
//! above [`MAX_FRAME_LEN`], or short read each produce a distinct
//! [`FrameError`] — a malformed peer can never make the reader allocate
//! unboundedly or misinterpret garbage as a request.

use std::io::{Read, Write};

/// The four bytes every frame starts with.
pub const FRAME_MAGIC: [u8; 4] = *b"PGSD";

/// Upper bound on a frame payload (64 MiB) — far above any real image,
/// and a hard cap on what a malformed length field can make the reader
/// allocate.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A JSON document (request or response envelope).
    Json,
    /// Opaque binary payload (an encoded image artifact).
    Bin,
}

impl FrameKind {
    fn byte(self) -> u8 {
        match self {
            FrameKind::Json => 1,
            FrameKind::Bin => 2,
        }
    }

    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Json),
            2 => Some(FrameKind::Bin),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Payload interpretation.
    pub kind: FrameKind,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

/// Typed framing failures.
#[derive(Debug)]
pub enum FrameError {
    /// The stream did not start with [`FRAME_MAGIC`].
    BadMagic([u8; 4]),
    /// The kind byte is not a known [`FrameKind`].
    BadKind(u8),
    /// The length field exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// The stream ended before the announced payload arrived.
    Truncated {
        /// Bytes the header announced.
        expected: usize,
        /// Bytes actually read before EOF.
        got: usize,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Oversized(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            FrameError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated frame: expected {expected} payload bytes, got {got}"
                )
            }
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates I/O failures.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`] — the writer sizes its
/// own payloads, so an oversized one is a caller bug.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> std::io::Result<()> {
    assert!(
        payload.len() <= MAX_FRAME_LEN as usize,
        "frame payload of {} bytes exceeds the cap",
        payload.len()
    );
    w.write_all(&FRAME_MAGIC)?;
    w.write_all(&[kind.byte()])?;
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, validating magic, kind and length before the
/// payload is touched.
///
/// # Errors
///
/// Returns a typed [`FrameError`] for malformed or truncated input.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut magic = [0u8; 4];
    read_exact_or_truncated(r, &mut magic, 4)?;
    read_frame_after_magic(r, magic)
}

/// Reads the rest of a frame when the caller already consumed (and
/// wants validated) the first four bytes — the server does this to
/// distinguish framed traffic from the HTTP shim.
///
/// # Errors
///
/// As [`read_frame`].
pub fn read_frame_after_magic(r: &mut impl Read, magic: [u8; 4]) -> Result<Frame, FrameError> {
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let mut head = [0u8; 5];
    read_exact_or_truncated(r, &mut head, 5)?;
    let kind = FrameKind::from_byte(head[0]).ok_or(FrameError::BadKind(head[0]))?;
    let len = u32::from_be_bytes([head[1], head[2], head[3], head[4]]);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or_truncated(r, &mut payload, len as usize)?;
    Ok(Frame { kind, payload })
}

/// `read_exact` that reports how many bytes arrived before EOF, so
/// truncation errors carry their evidence.
fn read_exact_or_truncated(
    r: &mut impl Read,
    buf: &mut [u8],
    expected: usize,
) -> Result<(), FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => return Err(FrameError::Truncated { expected, got }),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(kind: FrameKind, payload: &[u8]) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind, payload).unwrap();
        read_frame(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn frames_round_trip() {
        for (kind, payload) in [
            (FrameKind::Json, b"{\"k\":1}".as_slice()),
            (FrameKind::Bin, [0u8, 255, 7].as_slice()),
            (FrameKind::Json, b"".as_slice()),
        ] {
            let f = round_trip(kind, payload);
            assert_eq!(f.kind, kind);
            assert_eq!(f.payload, payload);
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Json, b"{}").unwrap();
        buf[0] = b'X';
        match read_frame(&mut buf.as_slice()) {
            Err(FrameError::BadMagic(m)) => assert_eq!(&m[1..], b"GSD"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn bad_kind_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Json, b"{}").unwrap();
        buf[4] = 9;
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(FrameError::BadKind(9))
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC);
        buf.push(1);
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(FrameError::Oversized(u32::MAX))
        ));
    }

    #[test]
    fn truncation_reports_expected_and_got() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Bin, &[1, 2, 3, 4]).unwrap();
        buf.truncate(buf.len() - 2);
        match read_frame(&mut buf.as_slice()) {
            Err(FrameError::Truncated { expected, got }) => {
                assert_eq!((expected, got), (4, 2));
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Truncated header too.
        assert!(matches!(
            read_frame(&mut buf[..6].as_ref()),
            Err(FrameError::Truncated { .. })
        ));
    }
}
