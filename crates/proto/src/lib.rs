//! # pgsd-proto — one request/response surface for the whole toolchain
//!
//! Every machine-readable result pgsd produces — daemon responses on the
//! wire, `pgsd fetch` output, and the CLI `--json` documents of `check`,
//! `audit`, `diversify`, `run`, `symbolicate`, `fuzz` and `cache stats`
//! — is one [`Envelope`]: a schema-versioned JSON object with a fixed
//! field order,
//!
//! ```json
//! {"schema_version":1,"tool":"pgsd-<command>","verdict":"<verdict>", …}
//! ```
//!
//! followed by command-specific fields in a deterministic order (no
//! floats beyond what the command computed deterministically, no
//! timestamps, no hash-ordered collections), so every document is
//! golden-test safe and `pgsd … --json | python3 -m json.tool` always
//! parses. The exit-code contract rides along: `0` when the verdict is
//! a success, `1` when the checked property failed (validation findings,
//! busy/error responses, abnormal exits, fuzz divergences, symbolication
//! misses), `2` for usage and I/O errors.
//!
//! The same types serve the `pgsd serve` wire protocol: a
//! length-prefixed [frame] carries one [`Request`]
//! JSON document to the daemon, which answers with one
//! [`Response`] envelope frame, optionally followed by a
//! single binary frame holding the variant image artifact. See the
//! module docs of [`frame`] and [`wire`] for the exact layouts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod wire;

pub use frame::{
    read_frame, write_frame, Frame, FrameError, FrameKind, FRAME_MAGIC, MAX_FRAME_LEN,
};
pub use wire::{DiversifyRequest, Request, Response, Target, VariantInfo};

use pgsd_telemetry::json::Value;

/// Schema version stamped into every envelope and wire frame. Bump on
/// any breaking change to the envelope layout or the wire types; old
/// clients then fail loudly instead of misparsing.
pub const PROTO_SCHEMA_VERSION: u32 = 1;

/// Escapes `s` as a JSON string literal, quotes included.
pub fn json_string(s: &str) -> String {
    Value::Str(s.to_owned()).to_string()
}

/// The shared schema-versioned JSON envelope.
///
/// Renders as `{"schema_version":N,"tool":…,"verdict":…,…fields}` with
/// fields in insertion order — build it in one deterministic order and
/// the document is byte-stable.
///
/// ```
/// let doc = pgsd_proto::Envelope::new("pgsd-check", "pass")
///     .raw("findings", "[]")
///     .to_json();
/// assert_eq!(
///     doc,
///     "{\"schema_version\":1,\"tool\":\"pgsd-check\",\"verdict\":\"pass\",\"findings\":[]}"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    tool: String,
    verdict: String,
    fields: Vec<(String, String)>,
}

impl Envelope {
    /// A fresh envelope for `tool` (by convention `pgsd-<command>`)
    /// carrying `verdict`.
    pub fn new(tool: &str, verdict: &str) -> Envelope {
        Envelope {
            tool: tool.to_owned(),
            verdict: verdict.to_owned(),
            fields: Vec::new(),
        }
    }

    /// Appends a field whose value is already-rendered JSON (an object,
    /// array, number or `null` produced by another deterministic
    /// renderer).
    #[must_use]
    pub fn raw(mut self, key: &str, json: impl Into<String>) -> Envelope {
        self.fields.push((key.to_owned(), json.into()));
        self
    }

    /// Appends a string field (escaped).
    #[must_use]
    pub fn str(self, key: &str, value: &str) -> Envelope {
        let quoted = json_string(value);
        self.raw(key, quoted)
    }

    /// Appends an unsigned integer field.
    #[must_use]
    pub fn u64(self, key: &str, value: u64) -> Envelope {
        self.raw(key, value.to_string())
    }

    /// Renders the envelope: schema version, tool and verdict first,
    /// then every field in insertion order.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{{\"schema_version\":{PROTO_SCHEMA_VERSION},\"tool\":{},\"verdict\":{}",
            json_string(&self.tool),
            json_string(&self.verdict),
        );
        for (k, v) in &self.fields {
            write!(out, ",{}:{v}", json_string(k)).expect("infallible");
        }
        out.push('}');
        out
    }
}

/// Typed protocol failures, used for malformed requests on the wire and
/// for `Error` responses. The `code` is stable (part of the schema);
/// the message is free-form diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable machine-readable code, e.g. `bad_request`.
    pub code: ErrorCode,
    /// Human-oriented detail.
    pub message: String,
}

impl ProtoError {
    /// A new error with `code` and `message`.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ProtoError {
        ProtoError {
            code,
            message: message.into(),
        }
    }

    /// Shorthand for a [`ErrorCode::BadRequest`] error.
    pub fn bad_request(message: impl Into<String>) -> ProtoError {
        ProtoError::new(ErrorCode::BadRequest, message)
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.label(), self.message)
    }
}

impl std::error::Error for ProtoError {}

/// Stable error codes carried by `Error` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request did not parse or failed schema validation.
    BadRequest,
    /// The request named a workload the server does not know.
    UnknownWorkload,
    /// Compilation, training, or validation of the variant failed.
    BuildFailed,
    /// The server is draining connections and accepts no new work.
    ShuttingDown,
    /// Anything else (I/O mid-conversation, internal invariants).
    Internal,
}

impl ErrorCode {
    /// Every code, in a stable order.
    pub const ALL: [ErrorCode; 5] = [
        ErrorCode::BadRequest,
        ErrorCode::UnknownWorkload,
        ErrorCode::BuildFailed,
        ErrorCode::ShuttingDown,
        ErrorCode::Internal,
    ];

    /// The stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownWorkload => "unknown_workload",
            ErrorCode::BuildFailed => "build_failed",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire label back to a code.
    pub fn parse(label: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.label() == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_field_order_is_insertion_order() {
        let doc = Envelope::new("pgsd-run", "ok")
            .u64("exit", 3)
            .str("label", "a\"b")
            .raw("stats", "{\"cycles\":9}")
            .to_json();
        assert_eq!(
            doc,
            "{\"schema_version\":1,\"tool\":\"pgsd-run\",\"verdict\":\"ok\",\
             \"exit\":3,\"label\":\"a\\\"b\",\"stats\":{\"cycles\":9}}"
        );
        // And it is valid JSON.
        pgsd_telemetry::json::parse(&doc).expect("parses");
    }

    #[test]
    fn error_codes_round_trip() {
        for code in ErrorCode::ALL {
            assert_eq!(ErrorCode::parse(code.label()), Some(code));
        }
        assert_eq!(ErrorCode::parse("nope"), None);
    }
}
