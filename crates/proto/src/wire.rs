//! Typed request/response documents for the `pgsd serve` protocol.
//!
//! Both sides exchange the same schema-versioned JSON the CLI `--json`
//! envelopes use. A request is
//!
//! ```json
//! {"schema_version":1,"kind":"diversify","target":{"workload":"470.lbm"},
//!  "pnop":"0.0-0.3","seed":7,"shift":true,"subst":false,"regrand":false,
//!  "train":[10],"validate":false}
//! ```
//!
//! (`seed` may be omitted — the server then assigns the next seed from
//! its ledgered sequence; `target` is either `{"workload":NAME}` or
//! `{"source_name":NAME,"source":TEXT}`). The other request kinds are
//! `health`, `metrics` and `shutdown`, which carry no further fields.
//!
//! A response is an [`Envelope`] whose verdict selects
//! the variant: `variant` (followed by one binary frame carrying the
//! image artifact), `busy`, `error`, `ok` (shutdown ack), `health`, or
//! `metrics`. [`Response::from_json`] folds unknown verdicts into a
//! typed error instead of guessing.

use pgsd_telemetry::json::{parse, Value};

use crate::{json_string, Envelope, ErrorCode, ProtoError, PROTO_SCHEMA_VERSION};

/// What a diversify request wants built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// A named workload from the built-in suite (e.g. `470.lbm`).
    Workload(String),
    /// Ad-hoc MiniC source shipped with the request.
    Source {
        /// Display name for diagnostics and ledger records.
        name: String,
        /// The program text.
        text: String,
    },
}

/// One variant-production request.
#[derive(Debug, Clone, PartialEq)]
pub struct DiversifyRequest {
    /// What to build.
    pub target: Target,
    /// NOP strategy spec (`0.5` or `0.0-0.3`); `None` = server default.
    pub pnop: Option<String>,
    /// Client-pinned seed; `None` = the server assigns the next seed
    /// from its ledgered sequence.
    pub seed: Option<u64>,
    /// Also apply basic-block shifting.
    pub shift: bool,
    /// Also apply instruction substitution.
    pub subst: bool,
    /// Also randomize register allocation.
    pub regrand: bool,
    /// Training inputs for profile-guided strategies (each inner value
    /// is one `main` argument; one training run per request is enough
    /// for the synthetic workloads). Workload targets default to their
    /// own train set.
    pub train: Option<Vec<i32>>,
    /// Statically validate the variant before shipping it.
    pub validate: bool,
}

impl DiversifyRequest {
    /// A minimal request for `target` with every knob at its default.
    pub fn new(target: Target) -> DiversifyRequest {
        DiversifyRequest {
            target,
            pnop: None,
            seed: None,
            shift: false,
            subst: false,
            regrand: false,
            train: None,
            validate: false,
        }
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Build (or fetch from cache) one diversified variant.
    Diversify(DiversifyRequest),
    /// Liveness probe (also served over the HTTP shim as `/healthz`).
    Health,
    /// Telemetry snapshot (also served over HTTP as `/metrics`).
    Metrics,
    /// Ask the server to drain and stop.
    Shutdown,
}

impl Request {
    /// Renders the request as its deterministic JSON document.
    pub fn to_json(&self) -> String {
        let kind = match self {
            Request::Diversify(_) => "diversify",
            Request::Health => "health",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        };
        let mut out = format!(
            "{{\"schema_version\":{PROTO_SCHEMA_VERSION},\"kind\":{}",
            json_string(kind)
        );
        if let Request::Diversify(d) = self {
            use std::fmt::Write as _;
            match &d.target {
                Target::Workload(w) => {
                    write!(out, ",\"target\":{{\"workload\":{}}}", json_string(w))
                }
                Target::Source { name, text } => write!(
                    out,
                    ",\"target\":{{\"source_name\":{},\"source\":{}}}",
                    json_string(name),
                    json_string(text)
                ),
            }
            .expect("infallible");
            if let Some(p) = &d.pnop {
                write!(out, ",\"pnop\":{}", json_string(p)).expect("infallible");
            }
            if let Some(s) = d.seed {
                write!(out, ",\"seed\":{s}").expect("infallible");
            }
            write!(
                out,
                ",\"shift\":{},\"subst\":{},\"regrand\":{}",
                d.shift, d.subst, d.regrand
            )
            .expect("infallible");
            if let Some(train) = &d.train {
                let items: Vec<String> = train.iter().map(ToString::to_string).collect();
                write!(out, ",\"train\":[{}]", items.join(",")).expect("infallible");
            }
            write!(out, ",\"validate\":{}", d.validate).expect("infallible");
        }
        out.push('}');
        out
    }

    /// Parses and schema-checks one request document.
    ///
    /// # Errors
    ///
    /// Every malformation is a [`ProtoError`] with code `bad_request`:
    /// unparsable JSON, missing or mistyped fields, an unknown `kind`,
    /// or a schema version this build does not speak.
    pub fn from_json(text: &str) -> Result<Request, ProtoError> {
        let doc = parse(text).map_err(|e| ProtoError::bad_request(format!("bad JSON: {e}")))?;
        let version = doc
            .get("schema_version")
            .and_then(Value::as_u64)
            .ok_or_else(|| ProtoError::bad_request("missing schema_version"))?;
        if version != u64::from(PROTO_SCHEMA_VERSION) {
            return Err(ProtoError::bad_request(format!(
                "unsupported schema_version {version} (this build speaks {PROTO_SCHEMA_VERSION})"
            )));
        }
        let kind = doc
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| ProtoError::bad_request("missing kind"))?;
        match kind {
            "health" => Ok(Request::Health),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            "diversify" => Ok(Request::Diversify(parse_diversify(&doc)?)),
            other => Err(ProtoError::bad_request(format!(
                "unknown request kind `{other}`"
            ))),
        }
    }
}

fn parse_diversify(doc: &Value) -> Result<DiversifyRequest, ProtoError> {
    let target = doc
        .get("target")
        .ok_or_else(|| ProtoError::bad_request("diversify request missing target"))?;
    let target = if let Some(w) = target.get("workload").and_then(Value::as_str) {
        Target::Workload(w.to_owned())
    } else {
        let name = target
            .get("source_name")
            .and_then(Value::as_str)
            .ok_or_else(|| ProtoError::bad_request("target needs workload or source_name"))?;
        let text = target
            .get("source")
            .and_then(Value::as_str)
            .ok_or_else(|| ProtoError::bad_request("source target missing source text"))?;
        Target::Source {
            name: name.to_owned(),
            text: text.to_owned(),
        }
    };
    let flag = |key: &str| -> Result<bool, ProtoError> {
        match doc.get(key) {
            None => Ok(false),
            Some(Value::Bool(b)) => Ok(*b),
            Some(_) => Err(ProtoError::bad_request(format!("{key} must be a boolean"))),
        }
    };
    let seed = match doc.get("seed") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| ProtoError::bad_request("seed must be an unsigned integer"))?,
        ),
    };
    let train = match doc.get("train") {
        None | Some(Value::Null) => None,
        Some(v) => {
            let items = v
                .as_arr()
                .ok_or_else(|| ProtoError::bad_request("train must be an array"))?;
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let n = item
                    .as_f64()
                    .filter(|f| f.fract() == 0.0 && (i32::MIN as f64..=i32::MAX as f64).contains(f))
                    .ok_or_else(|| ProtoError::bad_request("train values must be i32"))?;
                out.push(n as i32);
            }
            Some(out)
        }
    };
    let pnop = match doc.get("pnop") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| ProtoError::bad_request("pnop must be a string spec"))?
                .to_owned(),
        ),
    };
    Ok(DiversifyRequest {
        target,
        pnop,
        seed,
        shift: flag("shift")?,
        subst: flag("subst")?,
        regrand: flag("regrand")?,
        train,
        validate: flag("validate")?,
    })
}

/// Everything the server tells a client about a shipped variant; the
/// image artifact itself travels in the binary frame that follows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantInfo {
    /// Fleet identity: content hash of the variant text.
    pub variant_id: String,
    /// The seed the variant was built with (assigned or pinned).
    pub seed: u64,
    /// Whether the seed was pinned by the client (`false` = assigned
    /// from the server's sequence).
    pub seed_pinned: bool,
    /// Stable transform-set label, e.g. `nop+shift`.
    pub transforms: String,
    /// Strategy display label, e.g. `pNOP=0-30%`.
    pub strategy: String,
    /// Bytes of diversified text in the image.
    pub text_bytes: u64,
    /// Length of the binary frame that follows this envelope.
    pub payload_bytes: u64,
    /// Provenance: the ledger's module key (hex).
    pub module_key: String,
    /// Provenance: the ledger's configuration fingerprint (hex).
    pub config_key: String,
    /// Provenance: size of the ledgered baseline↔variant address map.
    pub addr_map_bytes: u64,
}

/// One server response (the JSON part; `Variant` is followed by a
/// binary frame carrying `payload_bytes` of image artifact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A variant was produced; the image artifact frame follows.
    Variant(VariantInfo),
    /// The request queue is full — retry later. Typed backpressure,
    /// never a hang.
    Busy {
        /// Connections queued when the request was refused.
        queue_depth: u64,
        /// The queue's capacity.
        capacity: u64,
    },
    /// The request failed; the code says how.
    Error {
        /// Stable machine-readable code.
        code: ErrorCode,
        /// Diagnostic detail.
        message: String,
    },
    /// Liveness: the server is accepting work.
    Health {
        /// Connections currently queued.
        queue_depth: u64,
        /// Worker threads serving requests.
        workers: u64,
    },
    /// A telemetry snapshot (the metrics-JSON document, verbatim).
    Metrics {
        /// The schema-versioned metrics document.
        metrics_json: String,
    },
    /// Shutdown acknowledged; the server is draining.
    Ok,
}

impl Response {
    /// Renders the response as its envelope document.
    pub fn to_json(&self) -> String {
        match self {
            Response::Variant(v) => Envelope::new("pgsd-serve", "variant")
                .str("variant_id", &v.variant_id)
                .u64("seed", v.seed)
                .raw("seed_pinned", if v.seed_pinned { "true" } else { "false" })
                .str("transforms", &v.transforms)
                .str("strategy", &v.strategy)
                .u64("text_bytes", v.text_bytes)
                .u64("payload_bytes", v.payload_bytes)
                .str("module_key", &v.module_key)
                .str("config_key", &v.config_key)
                .u64("addr_map_bytes", v.addr_map_bytes)
                .to_json(),
            Response::Busy {
                queue_depth,
                capacity,
            } => Envelope::new("pgsd-serve", "busy")
                .u64("queue_depth", *queue_depth)
                .u64("capacity", *capacity)
                .to_json(),
            Response::Error { code, message } => Envelope::new("pgsd-serve", "error")
                .str("code", code.label())
                .str("message", message)
                .to_json(),
            Response::Health {
                queue_depth,
                workers,
            } => Envelope::new("pgsd-serve", "health")
                .str("status", "ok")
                .u64("queue_depth", *queue_depth)
                .u64("workers", *workers)
                .to_json(),
            Response::Metrics { metrics_json } => Envelope::new("pgsd-serve", "metrics")
                .raw("metrics", metrics_json.clone())
                .to_json(),
            Response::Ok => Envelope::new("pgsd-serve", "ok").to_json(),
        }
    }

    /// Parses a response envelope.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] (code `bad_request`) on unparsable JSON, a wrong
    /// tool or schema version, a missing field, or an unknown verdict.
    pub fn from_json(text: &str) -> Result<Response, ProtoError> {
        let doc = parse(text).map_err(|e| ProtoError::bad_request(format!("bad JSON: {e}")))?;
        let version = doc
            .get("schema_version")
            .and_then(Value::as_u64)
            .ok_or_else(|| ProtoError::bad_request("missing schema_version"))?;
        if version != u64::from(PROTO_SCHEMA_VERSION) {
            return Err(ProtoError::bad_request(format!(
                "unsupported schema_version {version}"
            )));
        }
        let tool = doc.get("tool").and_then(Value::as_str).unwrap_or_default();
        if tool != "pgsd-serve" {
            return Err(ProtoError::bad_request(format!(
                "response from unexpected tool `{tool}`"
            )));
        }
        let verdict = doc
            .get("verdict")
            .and_then(Value::as_str)
            .ok_or_else(|| ProtoError::bad_request("missing verdict"))?;
        let str_field = |key: &str| -> Result<String, ProtoError> {
            doc.get(key)
                .and_then(Value::as_str)
                .map(ToOwned::to_owned)
                .ok_or_else(|| ProtoError::bad_request(format!("missing field {key}")))
        };
        let u64_field = |key: &str| -> Result<u64, ProtoError> {
            doc.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| ProtoError::bad_request(format!("missing field {key}")))
        };
        match verdict {
            "variant" => Ok(Response::Variant(VariantInfo {
                variant_id: str_field("variant_id")?,
                seed: u64_field("seed")?,
                seed_pinned: matches!(doc.get("seed_pinned"), Some(Value::Bool(true))),
                transforms: str_field("transforms")?,
                strategy: str_field("strategy")?,
                text_bytes: u64_field("text_bytes")?,
                payload_bytes: u64_field("payload_bytes")?,
                module_key: str_field("module_key")?,
                config_key: str_field("config_key")?,
                addr_map_bytes: u64_field("addr_map_bytes")?,
            })),
            "busy" => Ok(Response::Busy {
                queue_depth: u64_field("queue_depth")?,
                capacity: u64_field("capacity")?,
            }),
            "error" => Ok(Response::Error {
                code: ErrorCode::parse(&str_field("code")?).unwrap_or(ErrorCode::Internal),
                message: str_field("message")?,
            }),
            "health" => Ok(Response::Health {
                queue_depth: u64_field("queue_depth")?,
                workers: u64_field("workers")?,
            }),
            "metrics" => Ok(Response::Metrics {
                metrics_json: doc
                    .get("metrics")
                    .map(ToString::to_string)
                    .ok_or_else(|| ProtoError::bad_request("missing field metrics"))?,
            }),
            "ok" => Ok(Response::Ok),
            other => Err(ProtoError::bad_request(format!(
                "unknown response verdict `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Health,
            Request::Metrics,
            Request::Shutdown,
            Request::Diversify(DiversifyRequest {
                target: Target::Workload("470.lbm".into()),
                pnop: Some("0.0-0.3".into()),
                seed: Some(7),
                shift: true,
                subst: false,
                regrand: true,
                train: Some(vec![10, -3]),
                validate: true,
            }),
            Request::Diversify(DiversifyRequest::new(Target::Source {
                name: "demo.mc".into(),
                text: "int main() { return 0; }".into(),
            })),
        ];
        for req in reqs {
            let json = req.to_json();
            assert_eq!(Request::from_json(&json).unwrap(), req, "doc: {json}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Variant(VariantInfo {
                variant_id: "00ff".into(),
                seed: 9,
                seed_pinned: true,
                transforms: "nop+shift".into(),
                strategy: "pNOP=0-30%".into(),
                text_bytes: 1234,
                payload_bytes: 2048,
                module_key: "abcd".into(),
                config_key: "ef01".into(),
                addr_map_bytes: 99,
            }),
            Response::Busy {
                queue_depth: 5,
                capacity: 4,
            },
            Response::Error {
                code: ErrorCode::UnknownWorkload,
                message: "no such workload".into(),
            },
            Response::Health {
                queue_depth: 0,
                workers: 4,
            },
            Response::Metrics {
                metrics_json: "{\"schema_version\":1}".into(),
            },
            Response::Ok,
        ];
        for resp in resps {
            let json = resp.to_json();
            assert_eq!(Response::from_json(&json).unwrap(), resp, "doc: {json}");
        }
    }

    #[test]
    fn malformed_requests_are_typed_bad_request() {
        for doc in [
            "not json",
            "{}",
            "{\"schema_version\":1}",
            "{\"schema_version\":99,\"kind\":\"health\"}",
            "{\"schema_version\":1,\"kind\":\"explode\"}",
            "{\"schema_version\":1,\"kind\":\"diversify\"}",
            "{\"schema_version\":1,\"kind\":\"diversify\",\"target\":{}}",
            "{\"schema_version\":1,\"kind\":\"diversify\",\
             \"target\":{\"workload\":\"x\"},\"seed\":\"high\"}",
            "{\"schema_version\":1,\"kind\":\"diversify\",\
             \"target\":{\"workload\":\"x\"},\"train\":[1.5]}",
        ] {
            let err = Request::from_json(doc).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "doc: {doc}");
        }
    }

    #[test]
    fn unknown_response_verdict_is_rejected() {
        let doc = Envelope::new("pgsd-serve", "surprise").to_json();
        assert!(Response::from_json(&doc).is_err());
        let wrong_tool = Envelope::new("pgsd-check", "ok").to_json();
        assert!(Response::from_json(&wrong_tool).is_err());
    }
}
