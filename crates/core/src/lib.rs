//! # pgsd-core — profile-guided automated software diversity
//!
//! The primary contribution of Homescu et al. (CGO 2013), reproduced: a
//! diversifying compiler pass that inserts NOP instructions
//! probabilistically in the low-level representation, with the per-block
//! insertion probability driven by profiling data so that hot code stays
//! nearly untouched while cold code is heavily randomized.
//!
//! * [`curve`] — the probability strategies (uniform, and the
//!   linear/logarithmic profile-guided curves of §3.1);
//! * [`nop_pass`] — Algorithm 1, run on the LIR just before emission (§4);
//! * [`shift_pass`] — basic-block shifting, the §6 extension;
//! * [`driver`] — the end-to-end diversifying compiler: train → profile →
//!   diversify → emit, plus emulator glue for running images.
//!
//! * [`session`] — the [`Session`] front door: one handle over module,
//!   profile, configuration, parallelism, and the content-addressed
//!   artifact cache ([`pgsd_cache`]).
//!
//! # Examples
//!
//! Build two diversified versions of a program and check they differ in
//! code bytes but agree on behaviour:
//!
//! ```
//! use pgsd_core::{BuildConfig, Input, Session, Strategy};
//!
//! let session = Session::from_source("demo", "int main(int n) { return n * 2; }");
//! let a = session.build_with(&BuildConfig::diversified(Strategy::uniform(0.5), 1))?;
//! let b = session.build_with(&BuildConfig::diversified(Strategy::uniform(0.5), 2))?;
//! assert_ne!(a.text, b.text);
//! assert_eq!(session.run(&a, &Input::args(&[21]), 100_000, "a").status(), Some(42));
//! assert_eq!(session.run(&b, &Input::args(&[21]), 100_000, "b").status(), Some(42));
//! # Ok::<(), pgsd_cc::error::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curve;
pub mod driver;
pub mod nop_pass;
pub mod session;
pub mod shift_pass;
pub mod subst_pass;

pub use curve::{Curve, Strategy};
pub use driver::{build, compile_diversified, run, run_reported, BuildConfig, Input};
pub use nop_pass::{insert_nops, NopReport};
pub use session::{variant_id, AuditOutcome, RunOutcome, Session, Symbolicated};
pub use shift_pass::{shift_blocks, ShiftReport};
pub use subst_pass::{substitute, SubstReport};
