//! The NOP-insertion pass — the paper's Algorithm 1, with the
//! profile-guided probability extension of §3.1.
//!
//! The pass runs on the fully lowered LIR, after register allocation and
//! frame lowering and immediately before byte emission — the insertion
//! point the paper selects in §4, where every LIR instruction maps
//! one-to-one to a native instruction. For every instruction (including
//! block terminators) a Bernoulli trial with the block's probability
//! decides whether to *prepend* a NOP; on success a candidate is drawn
//! uniformly from the NOP table. Two sources of randomness, exactly as in
//! the paper: whether to insert, and what to insert.
//!
//! Functions with `diversify == false` (the runtime library, modeling the
//! undiversified libc) are skipped.

use pgsd_telemetry::{HeatBucket, Telemetry};
use pgsd_x86::nop::{NopKind, NopTable};
use rand::Rng;

use pgsd_cc::lir::{MFunction, MInst};
use pgsd_profile::Profile;

use crate::curve::Strategy;

/// Summary of one insertion run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NopReport {
    /// Instructions (including terminators) that were insertion
    /// candidates.
    pub sites: u64,
    /// NOPs actually inserted.
    pub inserted: u64,
    /// Code bytes added by the inserted NOPs.
    pub bytes: u64,
}

/// Runs NOP insertion over every diversifiable function.
///
/// `profile` supplies per-block execution counts for the
/// [`Strategy::Profiled`] strategies (ignored by uniform strategies;
/// `None` means every block is treated as cold).
pub fn insert_nops(
    funcs: &mut [MFunction],
    strategy: &Strategy,
    profile: Option<&Profile>,
    table: &NopTable,
    rng: &mut impl Rng,
) -> NopReport {
    insert_nops_with(funcs, strategy, profile, table, rng, &Telemetry::disabled())
}

/// Like [`insert_nops`], recording per-heat-bucket site/insertion/byte
/// counters, a `nop.p_pct` histogram of the curve's probability
/// decisions, and per-function insertion counts into `tel`.
pub fn insert_nops_with(
    funcs: &mut [MFunction],
    strategy: &Strategy,
    profile: Option<&Profile>,
    table: &NopTable,
    rng: &mut impl Rng,
    tel: &Telemetry,
) -> NopReport {
    assert!(!table.is_empty(), "NOP table must not be empty");
    let x_max = profile.map(|p| p.max_count()).unwrap_or(0);
    let mut report = NopReport::default();
    for func in funcs.iter_mut() {
        if !func.diversify {
            continue;
        }
        let fn_inserted_before = report.inserted;
        for block in &mut func.blocks {
            let count = match (profile, block.ir_block) {
                (Some(p), Some(ir)) => p.block_count(&func.name, ir as usize),
                _ => 0,
            };
            let p = strategy.probability(count, x_max);
            let heat = [("heat", HeatBucket::of(count, x_max).label())];
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            tel.observe("nop.p_pct", (p * 100.0).round() as u64);
            let block_sites_before = report.sites;
            let block_inserted_before = report.inserted;
            let block_bytes_before = report.bytes;
            let old = std::mem::take(&mut block.instrs);
            let mut new = Vec::with_capacity(old.len() + old.len() / 2);
            for inst in old {
                report.sites += 1;
                maybe_insert(&mut new, p, table, rng, &mut report);
                new.push(inst);
            }
            // The terminator is an instruction too; a NOP may precede it.
            report.sites += 1;
            maybe_insert(&mut new, p, table, rng, &mut report);
            block.instrs = new;
            tel.add_labeled("nop.sites", &heat, report.sites - block_sites_before);
            tel.add_labeled(
                "nop.inserted",
                &heat,
                report.inserted - block_inserted_before,
            );
            tel.add_labeled("nop.bytes_added", &heat, report.bytes - block_bytes_before);
        }
        if tel.is_enabled() {
            tel.add_labeled(
                "nop.inserted",
                &[("fn", &func.name)],
                report.inserted - fn_inserted_before,
            );
        }
    }
    tel.add("nop.sites", report.sites);
    tel.add("nop.inserted", report.inserted);
    tel.add("nop.bytes_added", report.bytes);
    report
}

fn maybe_insert(
    out: &mut Vec<MInst>,
    p: f64,
    table: &NopTable,
    rng: &mut impl Rng,
    report: &mut NopReport,
) -> Option<NopKind> {
    // Algorithm 1: roll ← random(0,1); if roll < pNOP then pick a
    // candidate uniformly.
    let roll: f64 = rng.gen();
    if roll < p {
        let idx = rng.gen_range(0..table.len());
        let kind = table.kind(idx);
        out.push(MInst::Nop { kind });
        report.inserted += 1;
        report.bytes += kind.bytes().len() as u64;
        Some(kind)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgsd_cc::driver::{frontend, lower_module};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lowered(src: &str) -> Vec<MFunction> {
        lower_module(&frontend("t", src).unwrap()).unwrap()
    }

    fn count_nops(funcs: &[MFunction]) -> u64 {
        funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, MInst::Nop { .. }))
            .count() as u64
    }

    const SRC: &str =
        "int main(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }";

    #[test]
    fn zero_probability_inserts_nothing() {
        let mut funcs = lowered(SRC);
        let mut rng = StdRng::seed_from_u64(1);
        let rep = insert_nops(
            &mut funcs,
            &Strategy::uniform(0.0),
            None,
            &NopTable::new(),
            &mut rng,
        );
        assert_eq!(rep.inserted, 0);
        assert_eq!(count_nops(&funcs), 0);
    }

    #[test]
    fn certainty_inserts_everywhere() {
        let mut funcs = lowered(SRC);
        let mut rng = StdRng::seed_from_u64(1);
        let rep = insert_nops(
            &mut funcs,
            &Strategy::uniform(1.0),
            None,
            &NopTable::new(),
            &mut rng,
        );
        assert_eq!(rep.inserted, rep.sites);
        assert_eq!(count_nops(&funcs), rep.inserted);
    }

    #[test]
    fn insertion_rate_tracks_probability() {
        let mut funcs = lowered(
            "int main(int n) { int s = 0;
             for (int i = 0; i < n; i++) { s += i * 3; s -= i / 2; s ^= i; }
             for (int j = 0; j < n; j++) { s += j; }
             return s; }",
        );
        let mut rng = StdRng::seed_from_u64(7);
        let rep = insert_nops(
            &mut funcs,
            &Strategy::uniform(0.5),
            None,
            &NopTable::new(),
            &mut rng,
        );
        let rate = rep.inserted as f64 / rep.sites as f64;
        assert!((rate - 0.5).abs() < 0.25, "rate {rate} far from 0.5");
    }

    #[test]
    fn runtime_functions_are_never_diversified() {
        let mut funcs = lowered(SRC);
        let mut rng = StdRng::seed_from_u64(1);
        insert_nops(
            &mut funcs,
            &Strategy::uniform(1.0),
            None,
            &NopTable::new(),
            &mut rng,
        );
        for f in funcs.iter().filter(|f| !f.diversify) {
            for b in &f.blocks {
                assert!(
                    b.instrs.iter().all(|i| !matches!(i, MInst::Nop { .. })),
                    "NOP in undiversified function {}",
                    f.name
                );
            }
        }
    }

    #[test]
    fn seeds_give_different_insertions_deterministically() {
        let build = |seed: u64| {
            let mut funcs = lowered(SRC);
            let mut rng = StdRng::seed_from_u64(seed);
            insert_nops(
                &mut funcs,
                &Strategy::uniform(0.5),
                None,
                &NopTable::new(),
                &mut rng,
            );
            funcs
        };
        assert_eq!(build(1), build(1), "same seed must reproduce");
        assert_ne!(build(1), build(2), "different seeds must diverge");
    }

    #[test]
    fn profile_guidance_spares_hot_blocks() {
        use pgsd_profile::{FuncProfile, Profile};
        // Build a synthetic profile: mark every block of main hot except
        // block 0.
        let funcs_probe = lowered(SRC);
        let main = funcs_probe.iter().find(|f| f.name == "main").unwrap();
        let n_ir_blocks = main.blocks.iter().filter_map(|b| b.ir_block).max().unwrap() as usize + 1;
        let mut counts = vec![1_000_000u64; n_ir_blocks];
        counts[0] = 0;
        let mut profile = Profile::default();
        profile.funcs.insert(
            "main".into(),
            FuncProfile {
                block_counts: counts,
                invocations: 1,
            },
        );

        let mut funcs = lowered(SRC);
        let mut rng = StdRng::seed_from_u64(3);
        insert_nops(
            &mut funcs,
            &Strategy::range(0.0, 1.0),
            Some(&profile),
            &NopTable::new(),
            &mut rng,
        );
        let main = funcs.iter().find(|f| f.name == "main").unwrap();
        for block in &main.blocks {
            let nops = block
                .instrs
                .iter()
                .filter(|i| matches!(i, MInst::Nop { .. }))
                .count();
            match block.ir_block {
                Some(0) => assert!(nops > 0, "cold block should be stuffed with NOPs"),
                Some(_) => assert_eq!(nops, 0, "hot block must stay clean"),
                None => {}
            }
        }
    }
}
