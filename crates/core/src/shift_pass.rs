//! Basic-block shifting (paper §6, future work).
//!
//! NOP insertion adds little diversity at the *start* of a function —
//! displacements accumulate with distance, so the first instructions
//! barely move. The paper proposes inserting "a dummy basic block of
//! random size at the beginning of each function" that execution jumps
//! over: near-zero dynamic cost (one jump), but every subsequent offset in
//! the function is shifted by a random amount.
//!
//! Implementation: each diversifiable function gets a new entry block that
//! jumps over a dead padding block filled with a random number of NOPs;
//! the padding block falls through into the original entry.

use pgsd_telemetry::Telemetry;
use pgsd_x86::nop::NopTable;
use rand::Rng;

use pgsd_cc::lir::{MBlock, MFunction, MInst, MTarget, MTerm};

/// Summary of one shifting run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShiftReport {
    /// Functions shifted.
    pub functions: u64,
    /// Total padding NOPs inserted.
    pub pad_nops: u64,
    /// Total padding bytes inserted.
    pub pad_bytes: u64,
}

/// Applies basic-block shifting to every diversifiable function, with a
/// uniform padding size in `0..=max_pad` NOPs drawn per function.
pub fn shift_blocks(
    funcs: &mut [MFunction],
    max_pad: usize,
    table: &NopTable,
    rng: &mut impl Rng,
) -> ShiftReport {
    shift_blocks_with(funcs, max_pad, table, rng, &Telemetry::disabled())
}

/// Like [`shift_blocks`], recording function/pad counters and a
/// `shift.pad_len` histogram of the drawn shift distances into `tel`.
pub fn shift_blocks_with(
    funcs: &mut [MFunction],
    max_pad: usize,
    table: &NopTable,
    rng: &mut impl Rng,
    tel: &Telemetry,
) -> ShiftReport {
    assert!(!table.is_empty(), "NOP table must not be empty");
    let mut report = ShiftReport::default();
    for func in funcs.iter_mut() {
        if !func.diversify || func.blocks.is_empty() {
            continue;
        }
        // Renumber: old block i becomes i + 2.
        for block in &mut func.blocks {
            retarget(&mut block.term, |t| t + 2);
        }
        let pad_len = rng.gen_range(0..=max_pad);
        let mut pad = Vec::with_capacity(pad_len);
        for _ in 0..pad_len {
            let idx = rng.gen_range(0..table.len());
            let kind = table.kind(idx);
            report.pad_bytes += kind.bytes().len() as u64;
            pad.push(MInst::Nop { kind });
        }
        tel.observe("shift.pad_len", pad_len as u64);
        report.pad_nops += pad_len as u64;
        report.functions += 1;
        // New block 0: jump over the padding to the original entry (now
        // block 2). New block 1: the dead padding, falling through.
        let jump = MBlock {
            instrs: Vec::new(),
            term: MTerm::Jmp(MTarget::M(2)),
            ir_block: func.blocks[0].ir_block,
        };
        let padding = MBlock {
            instrs: pad,
            term: MTerm::Jmp(MTarget::M(2)),
            ir_block: None,
        };
        func.blocks.splice(0..0, [jump, padding]);
    }
    tel.add("shift.functions", report.functions);
    tel.add("shift.pad_nops", report.pad_nops);
    tel.add("shift.pad_bytes", report.pad_bytes);
    report
}

fn retarget(term: &mut MTerm, f: impl Fn(u32) -> u32) {
    let fix = |t: &mut MTarget| {
        if let MTarget::M(n) = t {
            *n = f(*n);
        }
    };
    match term {
        MTerm::Jmp(t) => fix(t),
        MTerm::JCond { t, f: fl, .. } => {
            fix(t);
            fix(fl);
        }
        MTerm::Ret => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgsd_cc::driver::{emit_image, frontend, lower_module};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SRC: &str = "int add(int a, int b) { return a + b; }
                       int main(int n) { return add(n, 1); }";

    #[test]
    fn shifted_program_still_runs_correctly() {
        let module = frontend("t", SRC).unwrap();
        let mut funcs = lower_module(&module).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let rep = shift_blocks(&mut funcs, 24, &NopTable::new(), &mut rng);
        assert!(rep.functions >= 2);
        let image = emit_image(&funcs, &module).unwrap();

        let mut emu = pgsd_emu::Emulator::new(
            image.base,
            image.text.clone(),
            image.data_base,
            image.data.clone(),
            pgsd_cc::emit::STACK_TOP,
        );
        emu.call_entry(image.main_addr, image.exit_addr, &[41]);
        assert_eq!(emu.run(100_000), pgsd_emu::Exit::Exited(42));
    }

    #[test]
    fn function_bodies_are_displaced() {
        let module = frontend("t", SRC).unwrap();
        let baseline = emit_image(&lower_module(&module).unwrap(), &module).unwrap();

        let mut funcs = lower_module(&module).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        shift_blocks(&mut funcs, 32, &NopTable::new(), &mut rng);
        let shifted = emit_image(&funcs, &module).unwrap();

        // main's body must start at a different offset (pad > 0 with this
        // seed across two functions with overwhelming probability).
        assert_ne!(
            baseline.func("main").unwrap().start,
            shifted.func("main").unwrap().start
        );
    }

    #[test]
    fn padding_is_dead_code() {
        // Execution count must be identical with and without shifting.
        let module = frontend("t", SRC).unwrap();
        let run = |funcs: &[pgsd_cc::lir::MFunction]| {
            let image = emit_image(funcs, &module).unwrap();
            let mut emu = pgsd_emu::Emulator::new(
                image.base,
                image.text.clone(),
                image.data_base,
                image.data.clone(),
                pgsd_cc::emit::STACK_TOP,
            );
            emu.call_entry(image.main_addr, image.exit_addr, &[1]);
            let exit = emu.run(100_000);
            (exit, emu.stats.instructions)
        };
        let base_funcs = lower_module(&module).unwrap();
        let (e1, n1) = run(&base_funcs);
        let mut shifted = lower_module(&module).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        shift_blocks(&mut shifted, 32, &NopTable::new(), &mut rng);
        let (e2, n2) = run(&shifted);
        assert_eq!(e1, e2);
        // Only the entry jumps execute extra (one per function call).
        assert!(n2 >= n1 && n2 <= n1 + 4, "n1={n1} n2={n2}");
    }

    #[test]
    fn zero_max_pad_still_valid() {
        let module = frontend("t", SRC).unwrap();
        let mut funcs = lower_module(&module).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let rep = shift_blocks(&mut funcs, 0, &NopTable::new(), &mut rng);
        assert_eq!(rep.pad_nops, 0);
        assert!(emit_image(&funcs, &module).is_ok());
    }
}
