//! NOP-insertion probability strategies (paper §3 and §3.1).
//!
//! The uniform strategy is the paper's baseline ("blind insertion"); the
//! profile-guided strategies map a basic block's execution count `x` into
//! a probability from the range `[p_min, p_max]`: hot blocks get the
//! minimum, cold blocks the maximum. Two interpolation curves are
//! provided:
//!
//! * **linear** — `p(x) = pmax − (pmax − pmin)·x/x_max`, the paper's first
//!   candidate, which "polarizes the probabilities toward either the
//!   maximum or the minimum" because counts are exponentially distributed;
//! * **log** — `p(x) = pmax − (pmax − pmin)·log(1+x)/log(1+x_max)`, the
//!   paper's chosen heuristic.

use std::fmt;

/// Interpolation curve between `p_min` and `p_max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Curve {
    /// Linear in the raw execution count.
    Linear,
    /// Linear in `log(1 + count)` — the paper's heuristic.
    Log,
}

/// A NOP-insertion probability strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// The same probability at every instruction (paper's Algorithm 1
    /// without profiling).
    Uniform {
        /// Insertion probability in `[0, 1]`.
        p: f64,
    },
    /// Profile-guided: per-block probability from the execution count.
    Profiled {
        /// Probability assigned to the hottest block.
        p_min: f64,
        /// Probability assigned to never-executed blocks.
        p_max: f64,
        /// Interpolation curve.
        curve: Curve,
    },
}

impl Strategy {
    /// The paper's `pNOP = 50%` configuration (maximum diversity).
    pub fn uniform(p: f64) -> Strategy {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        Strategy::Uniform { p }
    }

    /// A profile-guided range with the paper's log curve, e.g.
    /// `Strategy::range(0.10, 0.50)` for "pNOP = 10–50%".
    pub fn range(p_min: f64, p_max: f64) -> Strategy {
        Strategy::with_curve(p_min, p_max, Curve::Log)
    }

    /// A profile-guided range with an explicit curve.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are outside `[0, 1]` or inverted.
    pub fn with_curve(p_min: f64, p_max: f64, curve: Curve) -> Strategy {
        assert!((0.0..=1.0).contains(&p_min), "p_min {p_min} out of range");
        assert!((0.0..=1.0).contains(&p_max), "p_max {p_max} out of range");
        assert!(p_min <= p_max, "p_min must not exceed p_max");
        Strategy::Profiled {
            p_min,
            p_max,
            curve,
        }
    }

    /// `true` if this strategy needs profile data.
    pub fn needs_profile(&self) -> bool {
        matches!(self, Strategy::Profiled { .. })
    }

    /// The insertion probability for a block executed `count` times in a
    /// program whose hottest block executed `x_max` times.
    pub fn probability(&self, count: u64, x_max: u64) -> f64 {
        match *self {
            Strategy::Uniform { p } => p,
            Strategy::Profiled {
                p_min,
                p_max,
                curve,
            } => {
                if x_max == 0 {
                    // No profile signal at all: everything is "cold".
                    return p_max;
                }
                let frac = match curve {
                    Curve::Linear => count.min(x_max) as f64 / x_max as f64,
                    Curve::Log => ((1.0 + count as f64).ln()) / ((1.0 + x_max as f64).ln()),
                };
                (p_max - (p_max - p_min) * frac.clamp(0.0, 1.0)).clamp(p_min, p_max)
            }
        }
    }

    /// Parses a command-line / wire spec: a single probability
    /// (`"0.5"` → uniform) or a `min-max` range (`"0.0-0.3"` → the
    /// profile-guided log curve). Shared by the `pgsd` CLI and the
    /// serve daemon so both sides accept identical specs.
    ///
    /// # Errors
    ///
    /// A human-readable message for unparsable numbers, probabilities
    /// outside `[0, 1]`, or an inverted range.
    pub fn parse(spec: &str) -> Result<Strategy, String> {
        let parse_p = |s: &str| -> Result<f64, String> {
            let v: f64 = s
                .parse()
                .map_err(|e| format!("bad probability `{s}`: {e}"))?;
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("probability {v} outside [0, 1]"));
            }
            Ok(v)
        };
        match spec.split_once('-') {
            Some((lo, hi)) => {
                let (lo, hi) = (parse_p(lo)?, parse_p(hi)?);
                if lo > hi {
                    return Err(format!("range {lo}-{hi} is inverted"));
                }
                Ok(Strategy::range(lo, hi))
            }
            None => Ok(Strategy::uniform(parse_p(spec)?)),
        }
    }

    /// The five configurations evaluated in the paper's Figure 4 and
    /// Tables 2–3, in presentation order: `50%`, `25–50%`, `10–50%`,
    /// `30%`, `0–30%`.
    pub fn paper_configs() -> Vec<(&'static str, Strategy)> {
        vec![
            ("pNOP=50%", Strategy::uniform(0.50)),
            ("pNOP=25-50%", Strategy::range(0.25, 0.50)),
            ("pNOP=10-50%", Strategy::range(0.10, 0.50)),
            ("pNOP=30%", Strategy::uniform(0.30)),
            ("pNOP=0-30%", Strategy::range(0.0, 0.30)),
        ]
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Strategy::Uniform { p } => write!(f, "pNOP={:.0}%", p * 100.0),
            Strategy::Profiled {
                p_min,
                p_max,
                curve,
            } => {
                write!(f, "pNOP={:.0}-{:.0}%", p_min * 100.0, p_max * 100.0)?;
                if curve == Curve::Linear {
                    write!(f, " (linear)")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_ignores_counts() {
        let s = Strategy::uniform(0.3);
        assert_eq!(s.probability(0, 100), 0.3);
        assert_eq!(s.probability(100, 100), 0.3);
    }

    #[test]
    fn extremes_hit_the_range_ends() {
        let s = Strategy::range(0.10, 0.50);
        assert!((s.probability(0, 1_000_000) - 0.50).abs() < 1e-9);
        assert!((s.probability(1_000_000, 1_000_000) - 0.10).abs() < 1e-9);
    }

    #[test]
    fn paper_worked_example_astar_median() {
        // Paper §3.1: with x_max ≈ 2·10⁹ and the 473.astar median count of
        // 117,635, the log curve gives p ≈ 30% for the range [10%, 50%]
        // (the paper's back-of-envelope: 50 − 40·5/10 = 30).
        let s = Strategy::range(0.10, 0.50);
        let p = s.probability(117_635, 2_000_000_000);
        assert!((p - 0.30).abs() < 0.03, "p = {p}");
        // …whereas the linear curve polarizes it to ≈ p_max (the paper's
        // 50 − 40·10⁵/10¹⁰ ≈ 50% argument).
        let lin = Strategy::with_curve(0.10, 0.50, Curve::Linear);
        let p_lin = lin.probability(117_635, 2_000_000_000);
        assert!(p_lin > 0.49, "p_lin = {p_lin}");
    }

    #[test]
    fn log_is_monotonically_decreasing_in_count() {
        let s = Strategy::range(0.0, 0.30);
        let mut last = f64::INFINITY;
        for count in [0u64, 1, 10, 1_000, 100_000, 10_000_000] {
            let p = s.probability(count, 10_000_000);
            assert!(p <= last + 1e-12);
            last = p;
        }
    }

    #[test]
    fn missing_profile_defaults_to_cold() {
        let s = Strategy::range(0.10, 0.50);
        assert_eq!(s.probability(0, 0), 0.50);
    }

    #[test]
    fn counts_above_xmax_clamp() {
        let s = Strategy::with_curve(0.10, 0.50, Curve::Linear);
        assert!((s.probability(200, 100) - 0.10).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_panics() {
        Strategy::uniform(1.5);
    }

    #[test]
    fn display_matches_paper_labels() {
        let labels: Vec<String> = Strategy::paper_configs()
            .iter()
            .map(|(_, s)| s.to_string())
            .collect();
        assert_eq!(
            labels,
            vec![
                "pNOP=50%",
                "pNOP=25-50%",
                "pNOP=10-50%",
                "pNOP=30%",
                "pNOP=0-30%"
            ]
        );
    }
}
