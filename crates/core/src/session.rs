//! The [`Session`] API: one handle over module, profile, configuration,
//! parallelism and cache for the whole diversification workflow.
//!
//! A session replaces the old `train`/`train_with`,
//! `run_input`/`run_input_with`, `population`/`population_par` free-
//! function pairs with one builder:
//!
//! ```
//! use pgsd_core::{BuildConfig, Input, Session, Strategy};
//!
//! let session = Session::from_source(
//!     "demo",
//!     "int main(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }",
//! )
//! .config(BuildConfig::diversified(Strategy::range(0.0, 0.5), 7));
//! session.train(&[Input::args(&[30])], 1_000_000)?;
//! let image = session.build()?;
//! let outcome = session.run(&image, &Input::args(&[10]), 1_000_000, "run");
//! assert_eq!(outcome.status(), Some(45));
//! # Ok::<(), pgsd_cc::error::CompileError>(())
//! ```
//!
//! # Incremental builds
//!
//! Every session owns a [`Cache`] (in-memory by default; pass
//! [`Cache::persistent`] to keep artifacts across processes, or
//! [`Cache::disabled`] to opt out). Pipeline artifacts are memoized
//! under content-derived keys:
//!
//! * the **seed-independent prefix** — source → optimized IR →
//!   baseline LIR (lowering + register allocation + frames) — is keyed
//!   by source hash × pipeline version, so [`Session::population`]
//!   pays frontend + optimizer + regalloc once and stamps out per-seed
//!   variants via the diversifying passes only;
//! * **seed-dependent products** — images, validation verdicts — are
//!   keyed by prefix-key × build-configuration fingerprint (seed,
//!   strategy, transforms) × profile fingerprint;
//! * **profiles** are keyed by prefix-key × training inputs × gas.
//!
//! Cached and cold builds are byte-identical: a cache hit returns the
//! same `Image` value a cold build would produce (tests/cache.rs and
//! the CI `cache-smoke` job enforce this), and any key ingredient
//! change — source edit, config change, pipeline version bump — misses
//! and rebuilds. See DESIGN.md "Incremental variant production".
//!
//! # Determinism
//!
//! Parallel sections ([`Session::train`], [`Session::population`],
//! [`Session::audit`]) record telemetry into per-job child handles
//! merged in job order, and `population`/`audit` pre-warm the shared
//! baseline LIR *before* fanning out, so metrics, produced images, and
//! audit reports are byte-identical at any thread count.

use std::sync::{Arc, Mutex, OnceLock};

use pgsd_analysis::{
    audit_image, check_images_mapped, AddrMap, ImageAudit, Severity, SurvivorAuditReport,
    Transforms,
};
use pgsd_cache::{fnv64, Cache, Fnv64, Key, LedgerRecord};
use pgsd_cc::driver::{emit_image_with, frontend_with, lower_module_seeded_with};
use pgsd_cc::emit::Image;
use pgsd_cc::error::{CompileError, Result};
use pgsd_cc::ir::Module;
use pgsd_cc::lir::MFunction;
use pgsd_emu::{Exit, RunStats};
use pgsd_gadget::{find_gadgets, survivor, ScanConfig};
use pgsd_profile::{instrument, reconstruct, Profile};
use pgsd_telemetry::Telemetry;
use pgsd_x86::nop::NopTable;

use crate::driver::{
    apply_diversity, apply_pokes, is_diversifying, load, require_profile, validate_pair,
    BuildConfig, Input,
};

/// Version of the pipeline as far as cache keys are concerned. Folded
/// into every key: bump it whenever codegen, lowering, or the
/// diversifying passes change output for the same input, and every old
/// cache entry silently misses.
pub const PIPELINE_VERSION: u32 = 1;

fn keyer(kind: &str) -> Fnv64 {
    let mut h = Fnv64::new();
    h.write_u32(PIPELINE_VERSION);
    h.write_str(kind);
    h
}

/// Key of the optimized IR produced from `source` (the root of the
/// seed-independent prefix).
fn module_key_from_source(name: &str, source: &str) -> Key {
    let mut h = keyer("module/source");
    h.write_str(name);
    h.write_str(source);
    h.key()
}

/// Key of a module handed to us directly: the deterministic `Debug`
/// rendering is the content (the IR has no hash-ordered collections).
fn module_key_of(module: &Module) -> Key {
    use std::fmt::Write as _;
    let mut h = keyer("module/ir");
    write!(h, "{module:?}").expect("infallible");
    h.key()
}

/// Key of lowered + register-allocated + framed LIR.
fn lir_key(module_key: Key, reg_seed: Option<u64>, instrumented: bool) -> Key {
    let mut h = keyer("lir");
    h.write_u64(module_key.0);
    match reg_seed {
        None => h.write_u64(0),
        Some(s) => {
            h.write_u64(1);
            h.write_u64(s);
        }
    }
    h.write_u64(u64::from(instrumented));
    h.key()
}

/// Everything about a config that can change emitted bytes. For a
/// non-diversifying config that is nothing at all (the seed and
/// transform fields are dead), so every baseline build shares one key.
fn config_fingerprint(h: &mut Fnv64, config: &BuildConfig) {
    use std::fmt::Write as _;
    if !is_diversifying(config) {
        h.write_str("baseline");
        return;
    }
    write!(
        h,
        "{:?}|{:?}|{:?}|{}|{}|{}",
        config.strategy,
        config.substitution,
        config.shift_max_pad,
        config.with_xchg,
        config.reg_randomize,
        config.seed
    )
    .expect("infallible");
}

/// Key of an emitted image. The profile fingerprint participates
/// whenever a profile is present for a diversifying build — a coarser
/// rule than "the strategy consults it", which can only cause extra
/// misses, never stale hits.
fn image_key(module_key: Key, config: &BuildConfig, profile: Option<&Profile>) -> Key {
    let mut h = keyer("image");
    h.write_u64(module_key.0);
    config_fingerprint(&mut h, config);
    match profile {
        Some(p) if is_diversifying(config) => h.write_str(&p.to_text()),
        _ => h.write_str(""),
    }
    h.key()
}

/// Key of a training profile: module × inputs × gas.
fn profile_key(module_key: Key, inputs: &[Input], gas: u64) -> Key {
    let mut h = keyer("profile");
    h.write_u64(module_key.0);
    h.write_u64(gas);
    h.write_u64(inputs.len() as u64);
    for input in inputs {
        h.write_u64(input.args.len() as u64);
        for a in &input.args {
            h.write(&a.to_le_bytes());
        }
        h.write_u64(input.pokes.len() as u64);
        for (name, words) in &input.pokes {
            h.write_str(name);
            h.write_u64(words.len() as u64);
            for w in words {
                h.write(&w.to_le_bytes());
            }
        }
    }
    h.key()
}

/// Key of a validation verdict for the image under `image_key` (the
/// declared transforms are already part of the image key).
fn verdict_key(image_key: Key) -> Key {
    let mut h = keyer("verdict");
    h.write_u64(image_key.0);
    h.key()
}

/// Everything one emulator run produces: the exit, the execution
/// statistics, and — for abnormal exits — the deterministic crash
/// report ready for [`Session::symbolicate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Why execution stopped.
    pub exit: Exit,
    /// Instruction and cycle statistics.
    pub stats: RunStats,
    /// Crash context when the exit was abnormal, `None` on a clean
    /// [`Exit::Exited`].
    pub crash: Option<pgsd_emu::CrashReport>,
}

impl RunOutcome {
    /// The program's exit status when it terminated normally.
    pub fn status(&self) -> Option<i32> {
        match self.exit {
            Exit::Exited(code) => Some(code),
            _ => None,
        }
    }
}

type ModuleSlot = OnceLock<std::result::Result<(Arc<Module>, Key), CompileError>>;

/// A diversification session: one module (given directly or compiled
/// lazily from source), its active profile, a build configuration, a
/// worker count, and a [`Cache`].
///
/// Construct with [`Session::new`] or [`Session::from_source`],
/// configure with the chainable builder methods, then call the work
/// methods ([`build`](Session::build), [`train`](Session::train),
/// [`run`](Session::run), [`population`](Session::population)). Work
/// methods take `&self`: a configured session can be shared across
/// threads.
pub struct Session {
    name: String,
    source: Option<String>,
    module: ModuleSlot,
    profile: Mutex<Option<Arc<Profile>>>,
    config: BuildConfig,
    threads: usize,
    cache: Cache,
    ledger: bool,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("name", &self.name)
            .field("threads", &self.threads)
            .field("cache", &self.cache)
            .finish()
    }
}

impl Session {
    /// A session over an already-compiled module.
    pub fn new(module: Module) -> Session {
        let key = module_key_of(&module);
        let name = module.name.clone();
        let slot = ModuleSlot::new();
        slot.set(Ok((Arc::new(module), key))).expect("fresh slot");
        Session {
            name,
            source: None,
            module: slot,
            profile: Mutex::new(None),
            config: BuildConfig::baseline(),
            threads: pgsd_exec::default_threads(),
            cache: Cache::in_memory(),
            ledger: false,
        }
    }

    /// A session that compiles `source` on first use (under this
    /// session's telemetry, consulting the cache).
    pub fn from_source(name: &str, source: &str) -> Session {
        Session {
            name: name.to_owned(),
            source: Some(source.to_owned()),
            module: ModuleSlot::new(),
            profile: Mutex::new(None),
            config: BuildConfig::baseline(),
            threads: pgsd_exec::default_threads(),
            cache: Cache::in_memory(),
            ledger: false,
        }
    }

    /// Sets the active profile consulted by profile-guided strategies.
    /// ([`Session::train`] sets it automatically.)
    pub fn profile(self, profile: impl Into<Arc<Profile>>) -> Session {
        *self.profile.lock().unwrap() = Some(profile.into());
        self
    }

    /// Sets the build configuration ([`BuildConfig::baseline`] if never
    /// called).
    pub fn config(mut self, config: BuildConfig) -> Session {
        self.config = config;
        self
    }

    /// Routes telemetry for every stage into `tel` (shorthand for
    /// setting `config.telemetry`).
    pub fn telemetry(mut self, tel: Telemetry) -> Session {
        self.config.telemetry = tel;
        self
    }

    /// Sets the worker count for parallel sections (defaults to
    /// `PGSD_THREADS`, else available parallelism).
    pub fn threads(mut self, threads: usize) -> Session {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the artifact cache (in-memory by default).
    pub fn cache(mut self, cache: Cache) -> Session {
        self.cache = cache;
        self
    }

    /// Enables the variant provenance ledger (off by default): every
    /// diversified image produced by [`Session::build`] or
    /// [`Session::population`] is recorded in the session cache's
    /// ledger — seed, transform set, pipeline keys, and the compressed
    /// baseline↔variant address map — making its crashes
    /// symbolicatable via [`Session::symbolicate`].
    pub fn ledger(mut self, enabled: bool) -> Session {
        self.ledger = enabled;
        self
    }

    /// The build configuration in effect.
    pub fn build_config(&self) -> &BuildConfig {
        &self.config
    }

    /// The cache handle (cloneable; shares the store).
    pub fn cache_handle(&self) -> &Cache {
        &self.cache
    }

    /// The active profile, if trained or supplied.
    pub fn active_profile(&self) -> Option<Arc<Profile>> {
        self.profile.lock().unwrap().clone()
    }

    fn resolve(&self) -> Result<(&Arc<Module>, Key)> {
        let slot = self.module.get_or_init(|| {
            let source = self
                .source
                .as_deref()
                .expect("unresolved session has source");
            let tel = &self.config.telemetry;
            let key = module_key_from_source(&self.name, source);
            if let Some(module) = self.cache.get_module(key, tel) {
                return Ok((module, key));
            }
            let module = Arc::new(frontend_with(&self.name, source, tel)?);
            self.cache.put_module(key, Arc::clone(&module), tel);
            Ok((module, key))
        });
        match slot {
            Ok((module, key)) => Ok((module, *key)),
            Err(e) => Err(e.clone()),
        }
    }

    /// The session's optimized IR module, compiling it first if the
    /// session was created from source.
    ///
    /// # Errors
    ///
    /// Propagates frontend errors.
    pub fn module(&self) -> Result<&Module> {
        Ok(self.resolve()?.0)
    }

    /// The lowered, register-allocated, framed LIR for `reg_seed`
    /// (`None` = the deterministic baseline allocation) — the tail of
    /// the seed-independent pipeline prefix, memoized in the cache.
    ///
    /// # Errors
    ///
    /// Propagates frontend and lowering errors.
    pub fn lowered(&self, reg_seed: Option<u64>) -> Result<Arc<Vec<MFunction>>> {
        let (module, mkey) = self.resolve()?;
        lowered_cached(module, mkey, reg_seed, &self.cache, &self.config.telemetry)
    }

    /// Builds one image under the session's configuration.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors; fails if a profile-guided
    /// strategy is configured and no profile is set, or if validation
    /// is enabled and fails.
    pub fn build(&self) -> Result<Image> {
        self.build_with(&self.config)
    }

    /// Builds one image under an alternate configuration, sharing this
    /// session's module, profile, and cache. The configuration's own
    /// telemetry handle is used (set one with
    /// [`BuildConfig::with_telemetry`]).
    ///
    /// # Errors
    ///
    /// As [`Session::build`].
    pub fn build_with(&self, config: &BuildConfig) -> Result<Image> {
        let (module, mkey) = self.resolve()?;
        let profile = self.active_profile();
        let image = build_cached(module, mkey, profile.as_deref(), config, &self.cache)?;
        if self.ledger && is_diversifying(config) {
            record_ledger(
                module,
                mkey,
                profile.as_deref(),
                config,
                &image,
                &self.cache,
                &config.telemetry,
            )?;
            self.cache.flush_ledger();
        }
        Ok(image)
    }

    /// Compiles an instrumented build, runs it on each training input
    /// (in parallel on the session's worker count), reconstructs the
    /// profile from the accumulated edge counters (paper §3.1), sets it
    /// as the session's active profile, and returns it.
    ///
    /// The profile is memoized under module × inputs × gas: a warm
    /// cache skips the instrumented build and every training run.
    ///
    /// # Errors
    ///
    /// Fails if compilation fails or any training run does not exit
    /// cleanly; with several failed runs, the earliest input's error
    /// wins (matching the serial loop).
    pub fn train(&self, train_inputs: &[Input], gas: u64) -> Result<Arc<Profile>> {
        let (module, mkey) = self.resolve()?;
        let tel = self.config.telemetry.clone();
        let _span = tel.span("train");
        let pkey = profile_key(mkey, train_inputs, gas);
        if let Some(profile) = self.cache.get_profile(pkey, &tel) {
            *self.profile.lock().unwrap() = Some(Arc::clone(&profile));
            return Ok(profile);
        }
        let profile = Arc::new(train_cold(
            module,
            mkey,
            train_inputs,
            gas,
            &tel,
            self.threads,
            &self.cache,
        )?);
        self.cache.put_profile(pkey, Arc::clone(&profile), &tel);
        *self.profile.lock().unwrap() = Some(Arc::clone(&profile));
        Ok(profile)
    }

    /// Builds under the session's configuration and runs the image on
    /// `input` up to `gas` instructions.
    ///
    /// # Errors
    ///
    /// Propagates build failures.
    ///
    /// # Panics
    ///
    /// Panics if a poke names a global the image does not have — a
    /// workload definition bug.
    pub fn build_and_run(&self, input: &Input, gas: u64) -> Result<RunOutcome> {
        let image = self.build()?;
        Ok(self.run(&image, input, gas, "run"))
    }

    /// Runs an already-built image on `input`, recording an `execute`
    /// span and `emu.*{run=label}` counters into the session telemetry.
    ///
    /// The returned [`RunOutcome`] carries everything a run can
    /// produce: the exit, the statistics, and — for abnormal exits —
    /// the deterministic [`pgsd_emu::CrashReport`] (fault class,
    /// faulting pc, register snapshot, frame-pointer backtrace) ready
    /// to feed to [`Session::symbolicate`].
    ///
    /// # Panics
    ///
    /// Panics if a poke names a global the image does not have — a
    /// workload definition bug.
    pub fn run(&self, image: &Image, input: &Input, gas: u64, label: &str) -> RunOutcome {
        let (exit, stats, crash) =
            crate::driver::run_reported(image, input, gas, &self.config.telemetry, label);
        RunOutcome { exit, stats, crash }
    }

    /// Runs an already-built image, returning only exit and stats.
    #[deprecated(since = "0.1.0", note = "use Session::run, which returns a RunOutcome")]
    pub fn run_image(
        &self,
        image: &Image,
        input: &Input,
        gas: u64,
        label: &str,
    ) -> (Exit, RunStats) {
        let outcome = self.run(image, input, gas, label);
        (outcome.exit, outcome.stats)
    }

    /// Runs an already-built image, returning exit, stats and crash
    /// report as a tuple.
    #[deprecated(since = "0.1.0", note = "use Session::run, which returns a RunOutcome")]
    pub fn run_image_reported(
        &self,
        image: &Image,
        input: &Input,
        gas: u64,
        label: &str,
    ) -> (Exit, RunStats, Option<pgsd_emu::CrashReport>) {
        let outcome = self.run(image, input, gas, label);
        (outcome.exit, outcome.stats, outcome.crash)
    }

    /// Builds a population of `n` diversified versions with seeds
    /// `config.seed .. config.seed + n`, in parallel on the session's
    /// worker count.
    ///
    /// Unless register randomization makes the allocation
    /// seed-dependent, the shared baseline LIR is warmed *before* the
    /// fan-out, so a population build performs exactly one frontend +
    /// optimize + regalloc pass regardless of `n` — and zero with a
    /// warm cache. Each build records into a child telemetry handle;
    /// children merge in seed order, so images and metrics are
    /// byte-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Propagates failures from any build; with several failures, the
    /// one with the lowest seed wins (matching the serial loop).
    pub fn population(&self, n: usize) -> Result<Vec<Image>> {
        let (module, mkey) = self.resolve()?;
        let tel = &self.config.telemetry;
        let _span = tel.span("population");
        let profile = self.active_profile();
        if !self.config.reg_randomize {
            lowered_cached(module, mkey, None, &self.cache, tel)?;
        }
        let record = self.ledger && is_diversifying(&self.config);
        if record {
            // Pre-warm the shared baseline image so per-job ledger
            // recording hits the cache identically regardless of which
            // job would otherwise have built it first.
            let baseline_config = BuildConfig {
                telemetry: tel.clone(),
                ..BuildConfig::baseline()
            };
            build_cached(module, mkey, None, &baseline_config, &self.cache)?;
        }
        let seed_base = self.config.seed;
        let jobs = pgsd_exec::run_jobs(self.threads, n, |i| {
            let child = tel.child();
            let mut config = self.config.clone();
            config.seed = seed_base + i as u64;
            config.telemetry = child.clone();
            let result = build_cached(module, mkey, profile.as_deref(), &config, &self.cache)
                .and_then(|image| {
                    if record {
                        record_ledger(
                            module,
                            mkey,
                            profile.as_deref(),
                            &config,
                            &image,
                            &self.cache,
                            &child,
                        )?;
                    }
                    Ok(image)
                });
            (result, child)
        });
        let mut images = Vec::with_capacity(n);
        for (result, child) in jobs {
            tel.merge_from(&child);
            images.push(result?);
        }
        if record {
            self.cache.flush_ledger();
        }
        Ok(images)
    }

    /// Remaps a variant-space crash address to the baseline: looks up
    /// `variant_id` in the session cache's provenance ledger, decodes
    /// the stored address map, resolves `fault_addr` to the baseline
    /// instruction and function, and renders the instruction.
    ///
    /// Returns `Ok(None)` — counting `symbolicate.misses` — when the
    /// variant id is unknown, was ledgered for a different module, its
    /// stored map is corrupt, or the address falls outside every mapped
    /// function. A successful remap counts `symbolicate.hits`.
    ///
    /// # Errors
    ///
    /// Propagates baseline build failures only.
    pub fn symbolicate(&self, variant_id: &str, fault_addr: u32) -> Result<Option<Symbolicated>> {
        let (module, mkey) = self.resolve()?;
        let tel = &self.config.telemetry;
        let miss = |tel: &Telemetry| {
            tel.add("symbolicate.misses", 1);
            Ok(None)
        };
        let Some(record) = self.cache.ledger_get(variant_id) else {
            return miss(tel);
        };
        if record.module_key != mkey.hex() {
            return miss(tel);
        }
        let Ok(map) = AddrMap::decode(&record.addr_map) else {
            return miss(tel);
        };
        let Some(loc) = map.variant_to_baseline(fault_addr) else {
            return miss(tel);
        };
        let baseline_config = BuildConfig {
            telemetry: tel.clone(),
            ..BuildConfig::baseline()
        };
        let baseline = build_cached(module, mkey, None, &baseline_config, &self.cache)?;
        let inst = match baseline.text.get((loc.addr - baseline.base) as usize..) {
            Some(window) => match pgsd_x86::decode(window) {
                Ok(d) => match d.body {
                    pgsd_x86::Body::Known(i) => format!("{i:?}"),
                    pgsd_x86::Body::Other(o) => o.name.to_string(),
                },
                Err(_) => "<undecodable>".to_string(),
            },
            None => "<outside text>".to_string(),
        };
        tel.add("symbolicate.hits", 1);
        Ok(Some(Symbolicated {
            variant_id: variant_id.to_string(),
            variant_addr: fault_addr,
            baseline_addr: loc.addr,
            function: loc.function,
            line: None,
            inst,
            seed: record.seed,
            transforms: record.transforms,
        }))
    }

    /// Statically audits a population of `n` diversified versions with
    /// seeds `config.seed .. config.seed + n` (paper §5.2, hardened):
    /// builds each variant, runs the Survivor comparison against the
    /// shared baseline, then recovers the variant's CFG, abstractly
    /// interprets it, and classifies every surviving gadget by
    /// reachability. See the `pgsd-analysis` crate for the analyses.
    ///
    /// Like [`Session::population`], builds fan out on the session's
    /// worker count with per-job telemetry children merged in seed
    /// order, so the resulting [`AuditOutcome`] — including its JSON
    /// rendering — is byte-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Propagates failures from the baseline or any variant build; with
    /// several failures, the one with the lowest seed wins. Audit
    /// *findings* are not errors — inspect
    /// [`AuditOutcome::error_findings`] for a verdict.
    pub fn audit(&self, n: usize) -> Result<AuditOutcome> {
        let (module, mkey) = self.resolve()?;
        let tel = &self.config.telemetry;
        let _span = tel.span("audit");
        let profile = self.active_profile();
        let baseline_config = BuildConfig {
            telemetry: tel.clone(),
            ..BuildConfig::baseline()
        };
        let baseline = build_cached(module, mkey, None, &baseline_config, &self.cache)?;
        let scan = ScanConfig::default();
        let table = if self.config.with_xchg {
            NopTable::with_xchg()
        } else {
            NopTable::new()
        };
        let baseline_gadgets = find_gadgets(&baseline.text, &scan).len();
        if !self.config.reg_randomize {
            lowered_cached(module, mkey, None, &self.cache, tel)?;
        }
        let seed_base = self.config.seed;
        let jobs = pgsd_exec::run_jobs(self.threads, n, |i| {
            let child = tel.child();
            let mut config = self.config.clone();
            config.seed = seed_base + i as u64;
            config.telemetry = child.clone();
            let result =
                build_cached(module, mkey, profile.as_deref(), &config, &self.cache).map(|image| {
                    let rep = survivor(&baseline.text, &image.text, &table, &scan);
                    let audit = audit_image(&image, &rep.survivors);
                    child.add("audit.variants", 1);
                    child.add(
                        "audit.survivors.reachable",
                        audit.survivors.reachable as u64,
                    );
                    child.add(
                        "audit.survivors.unintended",
                        audit.survivors.unintended as u64,
                    );
                    child.add("audit.survivors.dead", audit.survivors.dead as u64);
                    child.add("audit.findings", audit.findings.len() as u64);
                    child.add("audit.wx_violations", audit.wx_violations as u64);
                    child.add(
                        "audit.unresolved_indirects",
                        audit.unresolved_indirects as u64,
                    );
                    audit
                });
            (result, child)
        });
        let mut audits = Vec::with_capacity(n);
        let mut survivors = SurvivorAuditReport {
            baseline_gadgets,
            ..SurvivorAuditReport::default()
        };
        for (result, child) in jobs {
            tel.merge_from(&child);
            let audit = result?;
            survivors.add_variant(&audit.survivors);
            audits.push(audit);
        }
        Ok(AuditOutcome {
            name: self.name.clone(),
            seed_base,
            baseline_gadgets,
            audits,
            survivors,
        })
    }
}

/// Result of [`Session::audit`]: one static audit per variant plus the
/// aggregated survivor classification across the population.
#[derive(Debug, Clone)]
pub struct AuditOutcome {
    /// Module / benchmark name.
    pub name: String,
    /// Seed of the first variant (variant *i* used `seed_base + i`).
    pub seed_base: u64,
    /// Gadgets found in the undiversified baseline text.
    pub baseline_gadgets: usize,
    /// Per-variant audits, in seed order.
    pub audits: Vec<ImageAudit>,
    /// Per-class survivor totals aggregated over all variants.
    pub survivors: SurvivorAuditReport,
}

impl AuditOutcome {
    /// Error-severity findings summed over every variant (the CI gate:
    /// nonzero means the audit failed).
    pub fn error_findings(&self) -> usize {
        self.audits
            .iter()
            .map(|a| a.findings_at_least(Severity::Error))
            .sum()
    }

    /// Total findings (any severity) summed over every variant.
    pub fn total_findings(&self) -> usize {
        self.audits.iter().map(|a| a.findings.len()).sum()
    }

    /// Deterministic JSON document for the whole audit: schema-versioned,
    /// fixed key order, no floats, no timestamps — byte-identical across
    /// thread counts and repeat runs.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let c = &self.survivors.counts;
        let mut out = format!(
            "{{\"schema_version\":{},\"tool\":\"pgsd-audit\",\"target\":\"{}\",\
             \"seed_base\":{},\"variants\":{},\"baseline_gadgets\":{},\
             \"survivors\":{{\"total\":{},\"reachable\":{},\"unintended_boundary\":{},\
             \"dead_bytes\":{}}},\"error_findings\":{},\"images\":[",
            pgsd_analysis::DIAG_SCHEMA_VERSION,
            pgsd_analysis::diag::json_escape(&self.name),
            self.seed_base,
            self.audits.len(),
            self.baseline_gadgets,
            c.total(),
            c.reachable,
            c.unintended,
            c.dead,
            self.error_findings(),
        );
        for (i, audit) in self.audits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "{}", audit.to_json()).expect("infallible");
        }
        out.push_str("]}");
        out
    }
}

/// A variant-space crash address remapped to the baseline build by
/// [`Session::symbolicate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbolicated {
    /// The variant's ledger identity (content hash of its text).
    pub variant_id: String,
    /// The crash address, in variant address space.
    pub variant_addr: u32,
    /// The baseline instruction the crash address maps to.
    pub baseline_addr: u32,
    /// Name of the containing function.
    pub function: String,
    /// Baseline source line, when the toolchain records one. The MiniC
    /// pipeline keeps no line table yet, so this is currently always
    /// `None` — the field pins the schema for when it does.
    pub line: Option<u32>,
    /// Rendering of the baseline instruction at `baseline_addr`.
    pub inst: String,
    /// Diversification seed the variant was built with.
    pub seed: u64,
    /// Transform set the variant was built with.
    pub transforms: String,
}

impl Symbolicated {
    /// Deterministic JSON rendering: fixed field order, hex addresses,
    /// no floats or timestamps.
    pub fn to_json(&self) -> String {
        let line = match self.line {
            Some(l) => l.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"variant_id\":\"{}\",\"variant_addr\":\"{:#010x}\",\
             \"baseline_addr\":\"{:#010x}\",\"function\":\"{}\",\"line\":{},\
             \"inst\":\"{}\",\"seed\":{},\"transforms\":\"{}\"}}",
            pgsd_analysis::diag::json_escape(&self.variant_id),
            self.variant_addr,
            self.baseline_addr,
            pgsd_analysis::diag::json_escape(&self.function),
            line,
            pgsd_analysis::diag::json_escape(&self.inst),
            self.seed,
            pgsd_analysis::diag::json_escape(&self.transforms),
        )
    }
}

/// The fleet-wide identity of an image: a content hash of its text
/// segment, as recorded in the provenance ledger and carried by crash
/// reports.
pub fn variant_id(image: &Image) -> String {
    format!("{:016x}", fnv64(&image.text))
}

/// Stable `+`-joined label for a transform set, e.g.
/// `"nop+subst+shift+regrand"`; `"none"` when empty.
fn transforms_label(t: &Transforms) -> String {
    let mut parts = Vec::new();
    if t.nops {
        parts.push("nop");
    }
    if t.subst {
        parts.push("subst");
    }
    if t.shift {
        parts.push("shift");
    }
    if t.regrand {
        parts.push("regrand");
    }
    if t.with_xchg {
        parts.push("xchg");
    }
    if parts.is_empty() {
        "none".to_string()
    } else {
        parts.join("+")
    }
}

/// Records one diversified image in the cache's provenance ledger:
/// builds (or fetches) the shared baseline, reruns the translation
/// validator to recover the baseline↔variant address map, and stores
/// the record under the image's content-hash id. A variant that fails
/// map recovery is a hard error — an unvalidatable variant must not
/// ship to a fleet that cannot symbolicate it.
fn record_ledger(
    module: &Module,
    mkey: Key,
    profile: Option<&Profile>,
    config: &BuildConfig,
    image: &Image,
    cache: &Cache,
    tel: &Telemetry,
) -> Result<()> {
    let baseline_config = BuildConfig {
        telemetry: tel.clone(),
        ..BuildConfig::baseline()
    };
    let baseline = build_cached(module, mkey, None, &baseline_config, cache)?;
    let t = config.transforms();
    let map = check_images_mapped(&baseline, image, &t).map_err(|diags| {
        CompileError::new(format!(
            "ledger map recovery failed for seed {}: {} finding(s), first: {}",
            config.seed,
            diags.len(),
            diags.first().map_or(String::new(), |d| d.message.clone()),
        ))
    })?;
    let mut pkey = keyer("profile/content");
    let profile_hex = match profile {
        Some(p) if is_diversifying(config) => {
            pkey.write_str(&p.to_text());
            pkey.key().hex()
        }
        _ => String::new(),
    };
    let mut ckey = keyer("config");
    config_fingerprint(&mut ckey, config);
    cache.ledger_put(
        LedgerRecord {
            variant_id: variant_id(image),
            seed: config.seed,
            transforms: transforms_label(&t),
            module_key: mkey.hex(),
            config: ckey.key().hex(),
            profile: profile_hex,
            addr_map: map.1.encode(),
        },
        tel,
    );
    Ok(())
}

/// The seed-independent prefix tail: memoized lowering.
fn lowered_cached(
    module: &Module,
    mkey: Key,
    reg_seed: Option<u64>,
    cache: &Cache,
    tel: &Telemetry,
) -> Result<Arc<Vec<MFunction>>> {
    let key = lir_key(mkey, reg_seed, false);
    if let Some(funcs) = cache.get_lir(key, tel) {
        return Ok(funcs);
    }
    let funcs = Arc::new(lower_module_seeded_with(module, reg_seed, tel)?);
    cache.put_lir(key, Arc::clone(&funcs), tel);
    Ok(funcs)
}

/// One cached build: image-level memoization, then the diversifying
/// delta over the memoized baseline LIR. Produces bytes identical to
/// [`crate::driver::build`] for the same inputs.
fn build_cached(
    module: &Module,
    mkey: Key,
    profile: Option<&Profile>,
    config: &BuildConfig,
    cache: &Cache,
) -> Result<Image> {
    let tel = &config.telemetry;
    let _build_span = tel.span("build");
    require_profile(config, profile)?;
    let diversifying = is_diversifying(config);
    let ikey = image_key(mkey, config, profile);
    if let Some(hit) = cache.get_image(ikey, tel) {
        let image = (*hit).clone();
        if config.validate && diversifying {
            ensure_validated(module, mkey, &image, ikey, config, cache)?;
        }
        return Ok(image);
    }
    let reg_seed = if config.reg_randomize {
        Some(config.seed)
    } else {
        None
    };
    let lowered = lowered_cached(module, mkey, reg_seed, cache, tel)?;
    let image = if diversifying {
        let mut funcs = (*lowered).clone();
        apply_diversity(&mut funcs, profile, config);
        emit_image_with(&funcs, module, tel)?
    } else {
        emit_image_with(&lowered, module, tel)?
    };
    if config.validate && diversifying {
        ensure_validated(module, mkey, &image, ikey, config, cache)?;
    }
    cache.put_image(ikey, Arc::new(image.clone()), tel);
    Ok(image)
}

/// Validates `image` against the (cached) baseline, memoizing passing
/// verdicts so a cache-hit build does not re-prove what it proved when
/// the image was first produced.
fn ensure_validated(
    module: &Module,
    mkey: Key,
    image: &Image,
    ikey: Key,
    config: &BuildConfig,
    cache: &Cache,
) -> Result<()> {
    let tel = &config.telemetry;
    let vkey = verdict_key(ikey);
    if cache.get_verdict(vkey, tel) == Some(true) {
        tel.add("validate.passed", 1);
        return Ok(());
    }
    let _span = tel.span("validate");
    let baseline_config = BuildConfig {
        telemetry: tel.clone(),
        ..BuildConfig::baseline()
    };
    let baseline = build_cached(module, mkey, None, &baseline_config, cache)?;
    validate_pair(&baseline, image, config)?;
    cache.put_verdict(vkey, true, tel);
    Ok(())
}

/// Cold training: instrumented build (LIR memoized — instrumentation is
/// seed-independent too) plus parallel training runs.
fn train_cold(
    module: &Module,
    mkey: Key,
    train_inputs: &[Input],
    gas: u64,
    tel: &Telemetry,
    threads: usize,
    cache: &Cache,
) -> Result<Profile> {
    let mut instrumented = module.clone();
    let plan = instrument(&mut instrumented);
    let ikey = lir_key(mkey, None, true);
    let funcs = match cache.get_lir(ikey, tel) {
        Some(f) => f,
        None => {
            let f = Arc::new(lower_module_seeded_with(&instrumented, None, tel)?);
            cache.put_lir(ikey, Arc::clone(&f), tel);
            f
        }
    };
    let image = emit_image_with(&funcs, &instrumented, tel)?;

    tel.add("train.inputs", train_inputs.len() as u64);
    tel.add("train.counters", u64::from(plan.num_counters));
    let runs = pgsd_exec::map_indexed(
        threads,
        train_inputs,
        |_, input| -> Result<(Vec<u64>, Telemetry)> {
            let child = tel.child();
            let _run_span = child.span("train_run");
            let mut emu = load(&image);
            apply_pokes(&image, &mut emu, input);
            emu.call_entry(image.main_addr, image.exit_addr, &input.args);
            let exit = emu.run(gas);
            if exit.status().is_none() {
                return Err(CompileError::new(format!(
                    "training run with args {:?} did not exit cleanly: {exit:?}",
                    input.args
                )));
            }
            let mut run_counters = vec![0u64; plan.num_counters as usize];
            for (i, c) in run_counters.iter_mut().enumerate() {
                let word = emu
                    .mem
                    .read_u32(image.counter_addr(i as u32))
                    .map_err(|f| CompileError::new(format!("counter readback failed: {f}")))?;
                *c = u64::from(word);
            }
            drop(_run_span);
            Ok((run_counters, child))
        },
    );
    let mut counters = vec![0u64; plan.num_counters as usize];
    for run in runs {
        let (run_counters, child) = run?;
        tel.merge_from(&child);
        for (c, r) in counters.iter_mut().zip(&run_counters) {
            *c += r;
        }
    }
    let profile = reconstruct(&plan, &counters);
    #[allow(clippy::cast_precision_loss)]
    tel.set_gauge("train.x_max", profile.max_count() as f64);
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::Strategy;
    use crate::driver::{build, run, DEFAULT_GAS};
    use pgsd_cc::driver::frontend;

    const SRC: &str = "int main(int n) {
        int s = 0;
        for (int i = 1; i <= n; i++) { s += i; }
        return s;
    }";

    #[test]
    fn session_build_matches_uncached_build() {
        let module = frontend("t", SRC).unwrap();
        for seed in 0..4 {
            let config = BuildConfig::diversified(Strategy::uniform(0.5), seed);
            let cold = build(&module, None, &config).unwrap();
            let session = Session::new(module.clone()).config(config.clone());
            let a = session.build().unwrap();
            let b = session.build().unwrap(); // cache hit
            assert_eq!(a, cold, "seed {seed}");
            assert_eq!(b, cold, "seed {seed} (warm)");
        }
    }

    #[test]
    fn from_source_compiles_lazily_and_runs() {
        let session = Session::from_source("t", SRC);
        let outcome = session
            .build_and_run(&Input::args(&[10]), 1_000_000)
            .unwrap();
        assert_eq!(outcome.exit, Exit::Exited(55));
        assert_eq!(outcome.crash, None);
    }

    #[test]
    fn from_source_propagates_frontend_errors() {
        let session = Session::from_source("t", "int main( {");
        assert!(session.build().is_err());
        // And keeps failing on reuse (the error is memoized).
        assert!(session.module().is_err());
    }

    #[test]
    fn train_memoizes_profiles() {
        let tel = Telemetry::enabled();
        let session = Session::from_source("t", SRC).telemetry(tel.clone());
        let p1 = session.train(&[Input::args(&[100])], DEFAULT_GAS).unwrap();
        let p2 = session.train(&[Input::args(&[100])], DEFAULT_GAS).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "second train must be a cache hit");
        let snap = tel.snapshot();
        assert_eq!(snap.counters.get("cache.hits{kind=profile}"), Some(&1));
        assert_eq!(snap.counters.get("train.inputs"), Some(&1), "trained once");
        // Different inputs are a different profile.
        let p3 = session.train(&[Input::args(&[5])], DEFAULT_GAS).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p3));
    }

    #[test]
    fn profiled_strategy_requires_profile() {
        let session = Session::from_source("t", SRC)
            .config(BuildConfig::diversified(Strategy::range(0.1, 0.5), 1));
        let err = session.build().unwrap_err();
        assert!(err.message.contains("requires profile"));
    }

    #[test]
    fn population_matches_per_seed_builds() {
        let module = frontend("t", SRC).unwrap();
        let session = Session::new(module.clone())
            .config(BuildConfig::diversified(Strategy::uniform(0.5), 100));
        let images = session.population(5).unwrap();
        for (i, img) in images.iter().enumerate() {
            let config = BuildConfig::diversified(Strategy::uniform(0.5), 100 + i as u64);
            let cold = build(&module, None, &config).unwrap();
            assert_eq!(*img, cold, "seed {}", 100 + i);
            let (exit, _) = run(img, &[7], 1_000_000);
            assert_eq!(exit, Exit::Exited(28));
        }
    }

    #[test]
    fn population_with_reg_randomize_matches_uncached() {
        let module = frontend("t", SRC).unwrap();
        let session = Session::new(module.clone())
            .config(BuildConfig::full_diversity(Strategy::uniform(0.4), 9));
        let images = session.population(3).unwrap();
        for (i, img) in images.iter().enumerate() {
            let config = BuildConfig::full_diversity(Strategy::uniform(0.4), 9 + i as u64);
            assert_eq!(*img, build(&module, None, &config).unwrap());
        }
    }

    #[test]
    fn validated_builds_cache_verdicts() {
        let tel = Telemetry::enabled();
        let module = frontend("t", SRC).unwrap();
        let config = BuildConfig::diversified(Strategy::uniform(0.5), 3)
            .validated()
            .with_telemetry(tel.clone());
        let session = Session::new(module).config(config);
        let a = session.build().unwrap();
        let b = session.build().unwrap();
        assert_eq!(a, b);
        let snap = tel.snapshot();
        assert_eq!(
            snap.counters.get("validate.passed"),
            Some(&2),
            "both builds report validation"
        );
        assert_eq!(
            snap.counters.get("cache.hits{kind=verdict}"),
            Some(&1),
            "second build reuses the verdict"
        );
    }

    #[test]
    fn audit_is_thread_count_invariant_and_total() {
        let module = frontend("t", SRC).unwrap();
        let mk = |threads| {
            Session::new(module.clone())
                .config(BuildConfig::diversified(Strategy::uniform(0.3), 42))
                .threads(threads)
        };
        let a = mk(1).audit(4).unwrap();
        let b = mk(4).audit(4).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "audit must not depend on threads");
        assert_eq!(a.audits.len(), 4);
        assert_eq!(a.survivors.variants, 4);
        // Classification is total: per-variant classes sum to the
        // aggregate, and every survivor offset landed in some class.
        let per_variant: usize = a.audits.iter().map(|x| x.survivors.total()).sum();
        assert_eq!(per_variant, a.survivors.counts.total());
        assert!(a.baseline_gadgets > 0);
        assert_eq!(a.error_findings(), 0, "clean builds audit clean");
    }

    const SRC_DIV: &str = "int main(int n) { return 7 / n; }";

    #[test]
    fn ledger_symbolicates_variant_crashes_to_the_baseline_instruction() {
        let tel = Telemetry::enabled();
        let session = Session::from_source("t", SRC_DIV)
            .config(
                BuildConfig::full_diversity(Strategy::uniform(0.5), 5).with_telemetry(tel.clone()),
            )
            .ledger(true);
        let images = session.population(3).unwrap();
        let baseline = session.build_with(&BuildConfig::baseline()).unwrap();
        let base = session.run(&baseline, &Input::args(&[0]), 1_000_000, "base");
        let Exit::DivideError { addr: baseline_pc } = base.exit else {
            panic!("baseline should divide by zero: {:?}", base.exit);
        };
        assert!(base.crash.is_some(), "abnormal exit carries a report");
        for img in &images {
            let outcome = session.run(img, &Input::args(&[0]), 1_000_000, "var");
            let Exit::DivideError { addr: pc } = outcome.exit else {
                panic!("variant should divide by zero: {:?}", outcome.exit);
            };
            let sym = session
                .symbolicate(&variant_id(img), pc)
                .unwrap()
                .expect("ledgered variant symbolicates");
            assert_eq!(sym.baseline_addr, baseline_pc, "remap hits the exact idiv");
            assert_eq!(sym.function, "main");
            assert!(sym.inst.contains("Idiv"), "inst was {}", sym.inst);
            assert_eq!(sym.transforms, "nop+subst+shift+regrand");
            assert!(sym.to_json().starts_with("{\"variant_id\":\""));
        }
        // Unknown variant id: a clean miss, not an error.
        assert!(session
            .symbolicate("ffffffffffffffff", 0x1000)
            .unwrap()
            .is_none());
        let snap = tel.snapshot();
        assert_eq!(snap.counters.get("ledger.records"), Some(&3));
        assert_eq!(snap.counters.get("symbolicate.hits"), Some(&3));
        assert_eq!(snap.counters.get("symbolicate.misses"), Some(&1));
        assert_eq!(
            snap.counters.get("crash.reports{class=divide_error}"),
            Some(&4),
            "baseline + 3 variants all crashed"
        );
    }

    #[test]
    fn corrupt_ledger_map_degrades_to_a_symbolicate_miss() {
        let session = Session::from_source("t", SRC_DIV)
            .config(BuildConfig::diversified(Strategy::uniform(0.5), 1))
            .ledger(true);
        let image = session.build().unwrap();
        let id = variant_id(&image);
        // Overwrite the stored record with a garbage address map.
        let mut rec = session.cache_handle().ledger_get(&id).unwrap();
        rec.addr_map = vec![0xde, 0xad];
        rec.variant_id = "0000000000000bad".into();
        session
            .cache_handle()
            .ledger_put(rec, &Telemetry::disabled());
        assert!(
            session
                .symbolicate("0000000000000bad", image.main_addr)
                .unwrap()
                .is_none(),
            "corrupt map must miss, not panic"
        );
        // The intact record still works.
        assert!(session.symbolicate(&id, image.main_addr).unwrap().is_some());
    }

    #[test]
    fn ledger_json_is_thread_count_invariant() {
        let mk = |threads: usize, tag: &str| {
            let dir = std::env::temp_dir()
                .join(format!("pgsd-session-ledger-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let session = Session::from_source("t", SRC_DIV)
                .config(BuildConfig::diversified(Strategy::uniform(0.5), 40))
                .cache(Cache::persistent(&dir).unwrap())
                .ledger(true)
                .threads(threads);
            session.population(6).unwrap();
            let text = std::fs::read_to_string(dir.join(pgsd_cache::LEDGER_FILE)).unwrap();
            std::fs::remove_dir_all(&dir).unwrap();
            text
        };
        assert_eq!(
            mk(1, "t1"),
            mk(4, "t4"),
            "ledger.json must be byte-identical at any thread count"
        );
    }

    #[test]
    fn disabled_cache_still_builds_correctly() {
        let session = Session::from_source("t", SRC)
            .config(BuildConfig::diversified(Strategy::uniform(0.5), 1))
            .cache(Cache::disabled());
        let a = session.build().unwrap();
        let module = frontend("t", SRC).unwrap();
        let cold = build(
            &module,
            None,
            &BuildConfig::diversified(Strategy::uniform(0.5), 1),
        )
        .unwrap();
        assert_eq!(a, cold);
    }
}
