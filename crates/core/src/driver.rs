//! High-level diversification driver: the "diversifying compiler" a user
//! of the paper's system would invoke.
//!
//! Ties the whole toolchain together:
//!
//! ```text
//! source ──frontend──► IR ──┬────────────────lower──► LIR ──nop pass──► image   (measurement)
//!                           └─instrument──► LIR ──► image ──run(train)──► profile
//! ```
//!
//! # Configuring a build
//!
//! [`BuildConfig`] describes one build. Start from a preset —
//! [`BuildConfig::baseline`] (no diversification),
//! [`BuildConfig::diversified`] (NOP insertion, the paper's main
//! configuration), or [`BuildConfig::full_diversity`] (NOPs plus all
//! three §6 extensions: block shifting, instruction substitution,
//! register randomization) — then refine it with the chainable
//! modifiers: [`BuildConfig::validated`] makes the build prove the
//! variant equivalent to its baseline with `pgsd-analysis`'s `divcheck`
//! and fail otherwise, and [`BuildConfig::with_telemetry`] records
//! spans and counters for every stage into a [`Telemetry`] handle.
//! Hand the result to a [`crate::Session`]:
//!
//! ```
//! use pgsd_core::{BuildConfig, Input, Session, Strategy};
//! use pgsd_telemetry::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! let config = BuildConfig::full_diversity(Strategy::range(0.0, 0.5), 42)
//!     .validated()
//!     .with_telemetry(tel.clone());
//! let session = Session::from_source(
//!     "demo",
//!     "int main(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }",
//! )
//! .config(config);
//! session.train(&[Input::args(&[30])], 1_000_000)?; // range strategy needs a profile
//! let image = session.build()?; // diversified, validated, fully traced
//! assert!(session.run(&image, &Input::args(&[10]), 1_000_000, "run").status() == Some(45));
//! # Ok::<(), pgsd_cc::error::CompileError>(())
//! ```
//!
//! Parallel work goes through [`crate::Session`] too: `Session::train`,
//! `Session::population`, and `Session::audit` fan out on the session's
//! worker count (`Session::threads`), merging per-job telemetry in job
//! order so results and metrics are byte-identical at any thread count.

use rand::rngs::StdRng;
use rand::SeedableRng;

use pgsd_analysis::divcheck::Transforms;
use pgsd_cc::driver::{emit_image, emit_image_with, lower_module, lower_module_seeded_with};
use pgsd_cc::emit::{Image, STACK_TOP};
use pgsd_cc::error::{CompileError, Result};
use pgsd_cc::ir::Module;
use pgsd_emu::{Emulator, Exit, InstClass, RunStats};
use pgsd_profile::Profile;
use pgsd_telemetry::Telemetry;
use pgsd_x86::nop::NopTable;

use crate::curve::Strategy;
use crate::nop_pass::insert_nops_with;
use crate::shift_pass::shift_blocks_with;
use crate::subst_pass::substitute_with;

/// Default instruction budget for emulated runs (generous for the
/// synthetic workloads, small enough to catch runaways).
pub const DEFAULT_GAS: u64 = 500_000_000;

/// Configuration of one diversified build.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildConfig {
    /// The NOP-insertion strategy, or `None` for a baseline build.
    pub strategy: Option<Strategy>,
    /// Include the bus-locking `xchg` candidates in the NOP table
    /// (paper's compile-time opt-in).
    pub with_xchg: bool,
    /// Also apply basic-block shifting (§6) with this maximum pad size.
    pub shift_max_pad: Option<usize>,
    /// Also apply equivalent-instruction substitution (§6) with this
    /// probability strategy.
    pub substitution: Option<Strategy>,
    /// Also randomize the register-allocation order per function (§6).
    pub reg_randomize: bool,
    /// RNG seed; distinct seeds produce distinct program versions.
    pub seed: u64,
    /// After a diversified build, statically validate the variant against
    /// a freshly built baseline with `pgsd-analysis`'s `divcheck` and fail
    /// the build if the proof does not go through.
    pub validate: bool,
    /// Telemetry handle: spans and counters for every stage of the build
    /// are recorded here. Defaults to disabled (no overhead).
    pub telemetry: Telemetry,
}

impl BuildConfig {
    /// A baseline (undiversified) build.
    pub fn baseline() -> BuildConfig {
        BuildConfig {
            strategy: None,
            with_xchg: false,
            shift_max_pad: None,
            substitution: None,
            reg_randomize: false,
            seed: 0,
            validate: false,
            telemetry: Telemetry::disabled(),
        }
    }

    /// A diversified build with `strategy` and `seed` (NOP insertion
    /// only — the paper's main configuration).
    pub fn diversified(strategy: Strategy, seed: u64) -> BuildConfig {
        BuildConfig {
            strategy: Some(strategy),
            seed,
            ..BuildConfig::baseline()
        }
    }

    /// Everything on: NOP insertion plus all three §6 extensions with the
    /// same probability strategy (see the [module docs](self) for how
    /// the presets and modifiers compose).
    pub fn full_diversity(strategy: Strategy, seed: u64) -> BuildConfig {
        BuildConfig {
            strategy: Some(strategy),
            with_xchg: false,
            shift_max_pad: Some(24),
            substitution: Some(strategy),
            reg_randomize: true,
            seed,
            validate: false,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Returns this configuration with post-build validation enabled
    /// (see the [module docs](self)).
    pub fn validated(mut self) -> BuildConfig {
        self.validate = true;
        self
    }

    /// Returns this configuration recording into `tel` (see the
    /// [module docs](self)).
    pub fn with_telemetry(mut self, tel: Telemetry) -> BuildConfig {
        self.telemetry = tel;
        self
    }

    /// The transform declaration `divcheck` validates against.
    pub fn transforms(&self) -> Transforms {
        Transforms {
            nops: self.strategy.is_some(),
            shift: self.shift_max_pad.is_some(),
            subst: self.substitution.is_some(),
            regrand: self.reg_randomize,
            with_xchg: self.with_xchg,
        }
    }
}

impl Default for BuildConfig {
    fn default() -> BuildConfig {
        BuildConfig::baseline()
    }
}

/// Compiles `module` according to `config`, consulting `profile` for
/// profile-guided strategies.
///
/// # Errors
///
/// Propagates compilation errors; fails if a profile-guided strategy is
/// requested without a profile.
pub fn build(module: &Module, profile: Option<&Profile>, config: &BuildConfig) -> Result<Image> {
    let tel = &config.telemetry;
    let _build_span = tel.span("build");
    require_profile(config, profile)?;
    let diversifying = is_diversifying(config);
    let reg_seed = if config.reg_randomize {
        Some(config.seed)
    } else {
        None
    };
    let mut funcs = lower_module_seeded_with(module, reg_seed, tel)?;
    if diversifying {
        apply_diversity(&mut funcs, profile, config);
    }
    let image = emit_image_with(&funcs, module, tel)?;
    if config.validate && diversifying {
        let _s = tel.span("validate");
        let baseline = emit_image(&lower_module(module)?, module)?;
        validate_pair(&baseline, &image, config)?;
    }
    Ok(image)
}

/// Fails if a configured strategy needs profile data and none is given.
pub(crate) fn require_profile(config: &BuildConfig, profile: Option<&Profile>) -> Result<()> {
    for s in config.strategy.iter().chain(config.substitution.iter()) {
        if s.needs_profile() && profile.is_none() {
            return Err(CompileError::new(format!(
                "strategy {s} requires profile data; run training first"
            )));
        }
    }
    Ok(())
}

/// Whether `config` applies any diversifying transform at all.
pub(crate) fn is_diversifying(config: &BuildConfig) -> bool {
    config.strategy.is_some()
        || config.substitution.is_some()
        || config.shift_max_pad.is_some()
        || config.reg_randomize
}

/// The seed-dependent delta of a diversified build: shift, substitution
/// and NOP passes over already-lowered functions, in pipeline order,
/// from one RNG seeded with `config.seed`. Telemetry goes to
/// `config.telemetry`.
pub(crate) fn apply_diversity(
    funcs: &mut [pgsd_cc::lir::MFunction],
    profile: Option<&Profile>,
    config: &BuildConfig,
) {
    let tel = &config.telemetry;
    let table = if config.with_xchg {
        NopTable::with_xchg()
    } else {
        NopTable::new()
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    if let Some(max_pad) = config.shift_max_pad {
        let _s = tel.span("shift_pass");
        shift_blocks_with(funcs, max_pad, &table, &mut rng, tel);
    }
    if let Some(strategy) = &config.substitution {
        let _s = tel.span("subst_pass");
        substitute_with(funcs, strategy, profile, &mut rng, tel);
    }
    if let Some(strategy) = &config.strategy {
        let _s = tel.span("nop_pass");
        insert_nops_with(funcs, strategy, profile, &table, &mut rng, tel);
    }
}

/// Checks `image` against `baseline` under the transforms `config`
/// declares, recording verdict counters; a refused proof is an error.
pub(crate) fn validate_pair(baseline: &Image, image: &Image, config: &BuildConfig) -> Result<()> {
    let tel = &config.telemetry;
    match pgsd_analysis::check_images(baseline, image, &config.transforms()) {
        Ok(_) => {
            tel.add("validate.passed", 1);
            Ok(())
        }
        Err(diags) => {
            tel.add("validate.failed", 1);
            tel.add("validate.findings", diags.len() as u64);
            let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
            Err(CompileError::new(format!(
                "variant failed static validation:\n{}",
                rendered.join("\n")
            )))
        }
    }
}

/// A training or measurement input: arguments to `main` plus optional
/// data-section pokes (written into named globals before the run —
/// workload data such as the PHP VM's bytecode arrives this way).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Input {
    /// Arguments passed to `main`.
    pub args: Vec<i32>,
    /// `(global name, words)` pairs written before execution.
    pub pokes: Vec<(String, Vec<i32>)>,
}

impl Input {
    /// An input with arguments only.
    pub fn args(args: &[i32]) -> Input {
        Input {
            args: args.to_vec(),
            pokes: Vec::new(),
        }
    }

    /// Adds a data poke.
    pub fn poke(mut self, global: &str, words: &[i32]) -> Input {
        self.pokes.push((global.to_owned(), words.to_vec()));
        self
    }
}

/// Loads `image` into a fresh emulator. The image's text and data
/// buffers are `Arc`-shared with the emulator's segments (copy-on-write
/// in [`pgsd_emu`]'s memory), so repeated loads across seeds or inputs
/// never copy the binary.
pub fn load(image: &Image) -> Emulator {
    Emulator::new(
        image.base,
        std::sync::Arc::clone(&image.text),
        image.data_base,
        std::sync::Arc::clone(&image.data),
        STACK_TOP,
    )
}

/// Runs `image` with `args` passed to `main`, up to `gas` instructions.
///
/// Returns the exit reason and execution statistics (cycles, instruction
/// count, printed output).
pub fn run(image: &Image, args: &[i32], gas: u64) -> (Exit, RunStats) {
    run_input_impl(
        image,
        &Input::args(args),
        gas,
        &Telemetry::disabled(),
        "run",
    )
}

/// Shared run mechanics behind [`run`] and
/// [`crate::Session::run`].
pub(crate) fn run_input_impl(
    image: &Image,
    input: &Input,
    gas: u64,
    tel: &Telemetry,
    label: &str,
) -> (Exit, RunStats) {
    let (exit, stats, _) = run_reported(image, input, gas, tel, label);
    (exit, stats)
}

/// Runs `image` like [`run`], additionally capturing the deterministic
/// [`pgsd_emu::CrashReport`] — fault class, faulting pc, register file,
/// frame-pointer backtrace — when the exit is abnormal (`None` for
/// clean exits and gas exhaustion). Every abnormal exit also counts a
/// `crash.reports{class=…}` telemetry event.
pub fn run_reported(
    image: &Image,
    input: &Input,
    gas: u64,
    tel: &Telemetry,
    label: &str,
) -> (Exit, RunStats, Option<pgsd_emu::CrashReport>) {
    let _span = tel.span("execute");
    let mut emu = load(image);
    apply_pokes(image, &mut emu, input);
    emu.call_entry(image.main_addr, image.exit_addr, &input.args);
    let exit = emu.run(gas);
    record_run(tel, label, &emu.stats);
    let report = emu.crash_report(&exit);
    if let Some(r) = &report {
        tel.add_labeled("crash.reports", &[("class", r.class.label())], 1);
    }
    (exit, emu.stats, report)
}

/// Records one run's [`RunStats`] as `emu.*` counters labeled
/// `{run=label}`: cycles, instructions, retired NOPs, the data-cache
/// hit/miss split, the branch taken/not-taken split, slack-hidden
/// instructions, and the per-class instruction mix.
pub fn record_run(tel: &Telemetry, label: &str, stats: &RunStats) {
    if !tel.is_enabled() {
        return;
    }
    let run = [("run", label)];
    tel.add_labeled("emu.cycles", &run, stats.cycles);
    tel.add_labeled("emu.instructions", &run, stats.instructions);
    tel.add_labeled("emu.nops_retired", &run, stats.nops_retired);
    tel.add_labeled("emu.dcache_hits", &run, stats.dcache_hits);
    tel.add_labeled("emu.dcache_misses", &run, stats.dcache_misses);
    tel.add_labeled("emu.dcache_accesses", &run, stats.dcache_accesses);
    tel.add_labeled("emu.branch_taken", &run, stats.branch_taken);
    tel.add_labeled("emu.branch_not_taken", &run, stats.branch_not_taken);
    tel.add_labeled("emu.slack_hidden", &run, stats.slack_hidden);
    tel.add_labeled("emu.output_values", &run, stats.output.len() as u64);
    for class in InstClass::ALL {
        let n = stats.mix(class);
        if n > 0 {
            tel.add_labeled(
                "emu.inst_mix",
                &[("run", label), ("class", class.label())],
                n,
            );
        }
    }
}

pub(crate) fn apply_pokes(image: &Image, emu: &mut Emulator, input: &Input) {
    for (name, words) in &input.pokes {
        let addr = image
            .global_addr(name)
            .unwrap_or_else(|| panic!("poke target `{name}` is not a global of this image"));
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        emu.mem
            .write_bytes(addr, &bytes)
            .expect("poke within the data segment");
    }
}

/// End-to-end convenience: compile `source`, train on `train_inputs` when
/// the strategy needs a profile, and return the diversified image.
///
/// # Errors
///
/// Propagates failures from any stage.
pub fn compile_diversified(
    name: &str,
    source: &str,
    config: &BuildConfig,
    train_inputs: &[Input],
) -> Result<Image> {
    let session = crate::Session::from_source(name, source).config(config.clone());
    let needs = config
        .strategy
        .as_ref()
        .is_some_and(Strategy::needs_profile);
    if needs {
        session.train(train_inputs, DEFAULT_GAS)?;
    }
    session.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgsd_cc::driver::frontend;

    const SRC: &str = "int main(int n) {
        int s = 0;
        for (int i = 1; i <= n; i++) { s += i; }
        return s;
    }";

    #[test]
    fn baseline_runs_correctly() {
        let module = frontend("t", SRC).unwrap();
        let image = build(&module, None, &BuildConfig::baseline()).unwrap();
        let (exit, _) = run(&image, &[10], 1_000_000);
        assert_eq!(exit, Exit::Exited(55));
    }

    #[test]
    fn uniform_diversified_builds_preserve_semantics() {
        let module = frontend("t", SRC).unwrap();
        for seed in 0..5 {
            let config = BuildConfig::diversified(Strategy::uniform(0.5), seed);
            let image = build(&module, None, &config).unwrap();
            let (exit, _) = run(&image, &[10], 1_000_000);
            assert_eq!(exit, Exit::Exited(55), "seed {seed}");
        }
    }

    #[test]
    fn profiled_strategy_requires_profile() {
        let module = frontend("t", SRC).unwrap();
        let config = BuildConfig::diversified(Strategy::range(0.1, 0.5), 1);
        let err = build(&module, None, &config).unwrap_err();
        assert!(err.message.contains("requires profile"));
    }

    #[test]
    fn training_produces_sane_counts() {
        let module = frontend("t", SRC).unwrap();
        let session = crate::Session::new(module);
        let profile = session.train(&[Input::args(&[100])], DEFAULT_GAS).unwrap();
        let main = profile.func("main").expect("main profiled");
        assert_eq!(main.invocations, 1);
        // The loop body ran 100 times; x_max reflects it.
        assert!(profile.max_count() >= 100, "{profile}");
    }

    #[test]
    fn profile_guided_build_runs_and_is_faster_than_uniform() {
        let module = frontend("t", SRC).unwrap();
        let profile = crate::Session::new(module.clone())
            .train(&[Input::args(&[50])], DEFAULT_GAS)
            .unwrap();

        let base = build(&module, None, &BuildConfig::baseline()).unwrap();
        let (e0, s0) = run(&base, &[200], 10_000_000);
        assert_eq!(e0, Exit::Exited(20100));

        // Average over a few seeds to dodge per-seed luck.
        let mut uni_cycles = 0u64;
        let mut pgo_cycles = 0u64;
        let seeds = 6;
        for seed in 0..seeds {
            let uni = build(
                &module,
                None,
                &BuildConfig::diversified(Strategy::uniform(0.5), seed),
            )
            .unwrap();
            let (e1, s1) = run(&uni, &[200], 10_000_000);
            assert_eq!(e1, Exit::Exited(20100));
            uni_cycles += s1.cycles;

            let pgo = build(
                &module,
                Some(&profile),
                &BuildConfig::diversified(Strategy::range(0.0, 0.5), seed),
            )
            .unwrap();
            let (e2, s2) = run(&pgo, &[200], 10_000_000);
            assert_eq!(e2, Exit::Exited(20100));
            pgo_cycles += s2.cycles;
        }
        let base_total = s0.cycles * seeds;
        assert!(uni_cycles > base_total, "uniform NOPs must cost cycles");
        assert!(
            pgo_cycles < uni_cycles,
            "profile guidance must reduce overhead: pgo={pgo_cycles} uni={uni_cycles}"
        );
    }

    #[test]
    fn population_versions_differ_in_text() {
        let module = frontend("t", SRC).unwrap();
        let images = crate::Session::new(module)
            .config(BuildConfig::diversified(Strategy::uniform(0.5), 100))
            .population(5)
            .unwrap();
        for w in images.windows(2) {
            assert_ne!(w[0].text, w[1].text);
        }
        // All versions still compute the same result.
        for img in &images {
            let (exit, _) = run(img, &[7], 1_000_000);
            assert_eq!(exit, Exit::Exited(28));
        }
    }

    #[test]
    fn validated_builds_pass_divcheck() {
        let module = frontend("t", SRC).unwrap();
        for seed in 0..4 {
            let nop_only = BuildConfig::diversified(Strategy::uniform(0.5), seed).validated();
            build(&module, None, &nop_only).unwrap_or_else(|e| {
                panic!("nop-only seed {seed} failed validation:\n{}", e.message)
            });
            let full = BuildConfig::full_diversity(Strategy::uniform(0.5), seed).validated();
            build(&module, None, &full).unwrap_or_else(|e| {
                panic!(
                    "full-diversity seed {seed} failed validation:\n{}",
                    e.message
                )
            });
        }
    }

    #[test]
    fn validation_rejects_undeclared_transforms() {
        // Build with substitution but validate as if only NOPs were
        // declared: the checker must refuse the proof.
        let module = frontend("t", SRC).unwrap();
        let config = BuildConfig::full_diversity(Strategy::uniform(1.0), 3);
        let variant = build(&module, None, &config).unwrap();
        let baseline = build(&module, None, &BuildConfig::baseline()).unwrap();
        let narrow = pgsd_analysis::Transforms {
            nops: true,
            ..pgsd_analysis::Transforms::none()
        };
        assert!(pgsd_analysis::check_images(&baseline, &variant, &narrow).is_err());
    }

    #[test]
    fn end_to_end_compile_diversified() {
        let config = BuildConfig::diversified(Strategy::range(0.0, 0.3), 42);
        let image = compile_diversified("t", SRC, &config, &[Input::args(&[25])]).unwrap();
        let (exit, _) = run(&image, &[4], 1_000_000);
        assert_eq!(exit, Exit::Exited(10));
    }
}
