//! Equivalent-instruction substitution (paper §6, future work; one of
//! Cohen's original program-evolution techniques).
//!
//! Replaces instructions with semantically equivalent encodings of
//! different lengths and byte patterns — `mov r, 0` ↔ `xor r, r`,
//! `mov d, s` ↔ `lea d, [s]` ↔ `push s; pop d`, `add r, i` ↔ `sub r, −i`,
//! `inc r` ↔ `add r, 1`, `shl r, 1` ↔ `add r, r` — so that even code the
//! NOP pass leaves alone changes shape between versions. Like NOP
//! insertion, the substitution probability is profile-guided: hot blocks
//! keep their original (often faster) encodings.
//!
//! Safety: many substitutions change the arithmetic flags, so the pass
//! consults the shared EFLAGS-liveness analysis from `pgsd-analysis`
//! (`flags_live_after`, the generalized worklist form of the analysis
//! this pass originally carried privately) and substitutes a
//! flag-affecting pattern only where the flags are provably dead.
//! `esp`-involving moves keep their original form except for the
//! verified-safe `push src; pop dst` rewrite (Intel pushes the *old* esp).

use pgsd_analysis::flags::flags_live_after;
use pgsd_telemetry::{HeatBucket, Telemetry};
use pgsd_x86::{AluOp, Reg, ShiftOp};
use rand::Rng;

use pgsd_cc::lir::{MAddr, MFunction, MInst, MReg, MRhs, ShiftCount};
use pgsd_profile::Profile;

use crate::curve::Strategy;

/// Summary of one substitution run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubstReport {
    /// Instructions that had at least one safe equivalent available.
    pub candidates: u64,
    /// Substitutions performed.
    pub substituted: u64,
}

fn is_esp(r: MReg) -> bool {
    matches!(r, MReg::P(Reg::Esp))
}

/// The safe equivalents of `inst`. `flags_dead` permits flag-visible
/// rewrites.
fn equivalents(inst: &MInst, flags_dead: bool) -> Vec<Vec<MInst>> {
    let mut out = Vec::new();
    match *inst {
        MInst::MovRI { dst, imm: 0 } if flags_dead && !is_esp(dst) => {
            out.push(vec![MInst::Alu {
                op: AluOp::Xor,
                dst,
                rhs: MRhs::Reg(dst),
            }]);
        }
        MInst::Alu {
            op: AluOp::Xor,
            dst,
            rhs: MRhs::Reg(r),
        } if r == dst && flags_dead => {
            out.push(vec![MInst::MovRI { dst, imm: 0 }]);
        }
        MInst::MovRR { dst, src } if dst != src && !is_esp(dst) => {
            // mov d, s ≡ lea d, [s]  (no flags — always safe).
            if !is_esp(src) {
                out.push(vec![MInst::Lea {
                    dst,
                    addr: MAddr::base_imm(src, 0),
                }]);
            }
            // mov d, s ≡ push s; pop d (pushes the pre-decrement esp, so
            // src = esp is fine; Intel SDM PUSH).
            out.push(vec![
                MInst::Push {
                    rhs: MRhs::Reg(src),
                },
                MInst::Pop { dst },
            ]);
        }
        MInst::Lea { dst, addr } if addr.index.is_none() && !is_esp(dst) => {
            if let (Some(base), pgsd_cc::lir::Disp::Imm(0)) = (addr.base, addr.disp) {
                if base != dst && !is_esp(base) {
                    out.push(vec![MInst::MovRR { dst, src: base }]);
                }
            }
        }
        MInst::Alu {
            op: op @ (AluOp::Add | AluOp::Sub),
            dst,
            rhs: MRhs::Imm(imm),
        } if flags_dead && imm != i32::MIN && !is_esp(dst) => {
            let flipped = if op == AluOp::Add {
                AluOp::Sub
            } else {
                AluOp::Add
            };
            out.push(vec![MInst::Alu {
                op: flipped,
                dst,
                rhs: MRhs::Imm(-imm),
            }]);
            if imm == 1 {
                out.push(vec![MInst::IncDec {
                    dst,
                    inc: op == AluOp::Add,
                }]);
            }
        }
        MInst::IncDec { dst, inc } if flags_dead && !is_esp(dst) => {
            let op = if inc { AluOp::Add } else { AluOp::Sub };
            out.push(vec![MInst::Alu {
                op,
                dst,
                rhs: MRhs::Imm(1),
            }]);
        }
        MInst::Shift {
            op: ShiftOp::Shl,
            dst,
            count: ShiftCount::Imm(1),
        } if flags_dead && !is_esp(dst) => {
            out.push(vec![MInst::Alu {
                op: AluOp::Add,
                dst,
                rhs: MRhs::Reg(dst),
            }]);
        }
        _ => {}
    }
    out
}

/// Runs equivalent-instruction substitution over every diversifiable
/// function, with the per-block probability from `strategy` (profile
/// guided, as §6 suggests for this family of transformations).
pub fn substitute(
    funcs: &mut [MFunction],
    strategy: &Strategy,
    profile: Option<&Profile>,
    rng: &mut impl Rng,
) -> SubstReport {
    substitute_with(funcs, strategy, profile, rng, &Telemetry::disabled())
}

/// Like [`substitute`], recording per-heat-bucket candidate/substitution
/// counters and a `subst.p_pct` probability histogram into `tel`.
pub fn substitute_with(
    funcs: &mut [MFunction],
    strategy: &Strategy,
    profile: Option<&Profile>,
    rng: &mut impl Rng,
    tel: &Telemetry,
) -> SubstReport {
    let x_max = profile.map(|p| p.max_count()).unwrap_or(0);
    let mut report = SubstReport::default();
    for func in funcs.iter_mut() {
        if !func.diversify {
            continue;
        }
        let liveness = flags_live_after(func);
        for (bi, block) in func.blocks.iter_mut().enumerate() {
            let count = match (profile, block.ir_block) {
                (Some(p), Some(ir)) => p.block_count(&func.name, ir as usize),
                _ => 0,
            };
            let p = strategy.probability(count, x_max);
            let heat = [("heat", HeatBucket::of(count, x_max).label())];
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            tel.observe("subst.p_pct", (p * 100.0).round() as u64);
            let cand_before = report.candidates;
            let subst_before = report.substituted;
            let old = std::mem::take(&mut block.instrs);
            let mut new = Vec::with_capacity(old.len());
            for (ii, inst) in old.into_iter().enumerate() {
                let options = equivalents(&inst, !liveness[bi][ii]);
                if options.is_empty() {
                    new.push(inst);
                    continue;
                }
                report.candidates += 1;
                let roll: f64 = rng.gen();
                if roll < p {
                    let pick = rng.gen_range(0..options.len());
                    new.extend(options[pick].iter().cloned());
                    report.substituted += 1;
                } else {
                    new.push(inst);
                }
            }
            block.instrs = new;
            tel.add_labeled("subst.candidates", &heat, report.candidates - cand_before);
            tel.add_labeled(
                "subst.substituted",
                &heat,
                report.substituted - subst_before,
            );
        }
    }
    tel.add("subst.candidates", report.candidates);
    tel.add("subst.substituted", report.substituted);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgsd_cc::driver::{emit_image, frontend, lower_module};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SRC: &str = "int g;
        int f(int a, int b) { g = a; int x = 0; x += 1; return (a << 1) + b - 1 + x + g; }
        int main(int a, int b) { return f(a, b) * 2; }";

    fn run_src(funcs: &[MFunction], module: &pgsd_cc::ir::Module, args: &[i32]) -> i32 {
        let image = emit_image(funcs, module).unwrap();
        let mut emu = pgsd_emu::Emulator::new(
            image.base,
            image.text.clone(),
            image.data_base,
            image.data.clone(),
            pgsd_cc::emit::STACK_TOP,
        );
        emu.call_entry(image.main_addr, image.exit_addr, args);
        emu.run(10_000_000).status().expect("clean exit")
    }

    #[test]
    fn substitution_preserves_semantics() {
        let module = frontend("t", SRC).unwrap();
        let baseline = lower_module(&module).unwrap();
        let want = run_src(&baseline, &module, &[21, 5]);
        for seed in 0..24 {
            let mut funcs = lower_module(&module).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            substitute(&mut funcs, &Strategy::uniform(1.0), None, &mut rng);
            assert_eq!(run_src(&funcs, &module, &[21, 5]), want, "seed {seed}");
        }
    }

    #[test]
    fn substitution_changes_bytes() {
        let module = frontend("t", SRC).unwrap();
        let base_funcs = lower_module(&module).unwrap();
        let base = emit_image(&base_funcs, &module).unwrap();
        let mut funcs = lower_module(&module).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let rep = substitute(&mut funcs, &Strategy::uniform(1.0), None, &mut rng);
        assert!(rep.substituted > 0, "{rep:?}");
        let img = emit_image(&funcs, &module).unwrap();
        assert_ne!(base.text, img.text);
    }

    #[test]
    fn flag_sensitive_rewrites_respect_liveness() {
        // `a - 1` feeds a comparison: the sub's flags are dead (the cmp
        // redefines them), but a cmp directly feeding jcc must never be
        // rewritten — covered by running many seeds at p=1 and asserting
        // semantics (branches stay correct).
        let src = "int main(int a) {
            int n = 0;
            for (int i = a; i > 0; i--) { n += i; }
            if (n == 15) { return 1; }
            return 0;
        }";
        let module = frontend("t", src).unwrap();
        let baseline = lower_module(&module).unwrap();
        let want = run_src(&baseline, &module, &[5]);
        assert_eq!(want, 1);
        for seed in 0..16 {
            let mut funcs = lower_module(&module).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            substitute(&mut funcs, &Strategy::uniform(1.0), None, &mut rng);
            assert_eq!(run_src(&funcs, &module, &[5]), want, "seed {seed}");
        }
    }

    #[test]
    fn runtime_functions_untouched() {
        let module = frontend("t", SRC).unwrap();
        let mut funcs = lower_module(&module).unwrap();
        let before: Vec<_> = funcs.iter().filter(|f| !f.diversify).cloned().collect();
        let mut rng = StdRng::seed_from_u64(2);
        substitute(&mut funcs, &Strategy::uniform(1.0), None, &mut rng);
        let after: Vec<_> = funcs.iter().filter(|f| !f.diversify).cloned().collect();
        assert_eq!(before, after);
    }
}
