//! Table-driven verification of the decoder against the IA-32 opcode map.
//!
//! The gadget scanner's validity judgments (and therefore the paper's
//! Table 2/3 counts) rest on this decoder, so every opcode family gets a
//! representative encoding checked for length, mnemonic and class — the
//! facts a disassembler like objdump would report.

use pgsd_x86::{decode, Body, CfKind, Class, DecodeError, Decoded};

fn d(bytes: &[u8]) -> Decoded {
    decode(bytes).unwrap_or_else(|e| panic!("{bytes:02x?} should decode: {e}"))
}

fn name(dec: &Decoded) -> String {
    match &dec.body {
        Body::Known(i) => format!("{i}"),
        Body::Other(o) => o.name.to_string(),
    }
}

/// (encoding, expected length, substring of the rendered mnemonic).
const CASES: &[(&[u8], usize, &str)] = &[
    // ALU rows, all forms.
    (&[0x00, 0xC1], 2, "add"),                       // add r/m8, r8
    (&[0x01, 0xC1], 2, "add ecx, eax"),              // add r/m32, r32
    (&[0x02, 0x01], 2, "add"),                       // add r8, [ecx]
    (&[0x03, 0x04, 0x8D, 0, 0, 0, 0], 7, "add eax"), // SIB, no base
    (&[0x04, 0x7F], 2, "add"),                       // add al, imm8
    (&[0x05, 1, 0, 0, 0], 5, "add eax, 0x1"),        // add eax, imm32
    (&[0x29, 0xD8], 2, "sub eax, ebx"),
    (&[0x31, 0xC0], 2, "xor eax, eax"),
    (&[0x39, 0xCB], 2, "cmp ebx, ecx"),
    (&[0x3D, 0x10, 0, 0, 0], 5, "cmp eax"),
    // Segment push/pop and BCD exotica.
    (&[0x06], 1, "push es"),
    (&[0x1F], 1, "pop ds"),
    (&[0x27], 1, "daa"),
    (&[0x37], 1, "aaa"),
    (&[0x3F], 1, "aas"),
    // inc/dec/push/pop register rows.
    (&[0x47], 1, "inc edi"),
    (&[0x4B], 1, "dec ebx"),
    (&[0x55], 1, "push ebp"),
    (&[0x5D], 1, "pop ebp"),
    // 0x60 block.
    (&[0x60], 1, "pusha"),
    (&[0x61], 1, "popa"),
    (&[0x68, 1, 2, 3, 4], 5, "push"),
    (&[0x69, 0xC0, 1, 0, 0, 0], 6, "imul eax, eax"),
    (&[0x6A, 0x80], 2, "push"),
    (&[0x6B, 0xD9, 3], 3, "imul ebx, ecx"),
    // Conditional jumps, short.
    (&[0x74, 0x00], 2, "je"),
    (&[0x7F, 0xFE], 2, "jg"),
    // Group 1 immediates.
    (&[0x80, 0xC0, 5], 3, "alu8"),
    (&[0x81, 0xC3, 1, 0, 0, 0], 6, "add ebx"),
    (&[0x83, 0xEC, 8], 3, "sub esp"),
    // test/xchg/mov.
    (&[0x85, 0xC0], 2, "test eax, eax"),
    (&[0x87, 0xD9], 2, "xchg ecx, ebx"),
    (&[0x89, 0x45, 0xFC], 3, "mov dword [ebp-0x4], eax"),
    (&[0x8B, 0x04, 0x24], 3, "mov eax, dword [esp]"),
    (&[0x8D, 0x44, 0x24, 0x08], 4, "lea eax, [esp+0x8]"),
    (&[0x8F, 0x00], 2, "pop"),
    // 0x90 row.
    (&[0x90], 1, "nop"),
    (&[0x93], 1, "xchg eax, ebx"),
    (&[0x99], 1, "cdq"),
    (&[0x9C], 1, "pushf"),
    // moffs + string ops.
    (&[0xA1, 0, 0, 0x10, 0], 5, "mov moffs"),
    (&[0xA5], 1, "movs"),
    (&[0xAB], 1, "stos"),
    (&[0xA8, 0x01], 2, "test8"),
    // mov immediate rows.
    (&[0xB0, 0x41], 2, "mov8"),
    (&[0xBF, 1, 2, 3, 4], 5, "mov edi"),
    // Group 2 shifts.
    (&[0xC0, 0xE0, 3], 3, "shift8"),
    (&[0xC1, 0xE0, 4], 3, "shl eax, 4"),
    (&[0xD1, 0xF8], 2, "sar eax, 1"),
    (&[0xD3, 0xE2], 2, "shl edx, cl"),
    // Returns and calls.
    (&[0xC2, 8, 0], 3, "ret 0x8"),
    (&[0xC3], 1, "ret"),
    (&[0xC9], 1, "leave"),
    (&[0xCA, 4, 0], 3, "retf"),
    (&[0xCC], 1, "int3"),
    (&[0xCD, 0x80], 2, "int 0x80"),
    (&[0xCF], 1, "iret"),
    (&[0xC6, 0x00, 7], 3, "mov8"),
    (&[0xC7, 0x00, 1, 0, 0, 0], 6, "mov dword [eax], 0x1"),
    (&[0xC8, 0x10, 0, 0], 4, "enter"),
    // BCD/misc.
    (&[0xD4, 0x0A], 2, "aam"),
    (&[0xD7], 1, "xlat"),
    (&[0xD9, 0xC0], 2, "x87"),
    (&[0xDD, 0x05, 0, 0, 0, 0x10], 6, "x87"),
    // Loops, I/O, near branches.
    (&[0xE2, 0xFB], 2, "loop"),
    (&[0xE4, 0x60], 2, "in/out"),
    (&[0xE8, 0, 0, 0, 0], 5, "call"),
    (&[0xE9, 0, 0, 0, 0], 5, "jmp"),
    (&[0xEB, 0x10], 2, "jmp short"),
    (&[0xEE], 1, "in/out"),
    // Group 3/4/5 and flags.
    (&[0xF5], 1, "cmc"),
    (&[0xF6, 0xC0, 1], 3, "grp3-8"),
    (&[0xF7, 0xD8], 2, "neg eax"),
    (&[0xF7, 0xD2], 2, "not edx"),
    (&[0xF7, 0xF9], 2, "idiv ecx"),
    (&[0xF7, 0xE3], 2, "mul"),
    (&[0xF8], 1, "flag"),
    (&[0xFB], 1, "cli/sti"),
    (&[0xFE, 0xC0], 2, "inc/dec8"),
    (&[0xFF, 0x30], 2, "push dword [eax]"),
    // Two-byte opcodes.
    (&[0x0F, 0x1F, 0x40, 0x00], 4, "nopl"),
    (&[0x0F, 0x31], 2, "rdtsc"),
    (&[0x0F, 0x44, 0xC8], 3, "cmov"),
    (&[0x0F, 0x84, 0, 0, 0, 0], 6, "je"),
    (&[0x0F, 0x94, 0xC0], 3, "setcc"),
    (&[0x0F, 0xA2], 2, "cpuid"),
    (&[0x0F, 0xA4, 0xC8, 3], 4, "shld"),
    (&[0x0F, 0xAF, 0xC3], 3, "imul eax, ebx"),
    (&[0x0F, 0xB6, 0xC0], 3, "movzx"),
    (&[0x0F, 0xBD, 0xC8], 3, "bsf/bsr"),
    (&[0x0F, 0xC1, 0xC8], 3, "xadd"),
    (&[0x0F, 0xC9], 2, "bswap"),
];

#[test]
fn opcode_map_lengths_and_mnemonics() {
    for (bytes, len, needle) in CASES {
        let dec = d(bytes);
        assert_eq!(dec.len, *len, "length of {bytes:02x?} ({})", name(&dec));
        let n = name(&dec);
        assert!(
            n.contains(needle),
            "{bytes:02x?} decoded to `{n}`, expected to contain `{needle}`"
        );
    }
}

#[test]
fn control_flow_classes() {
    let free: &[&[u8]] = &[
        &[0xC3],
        &[0xC2, 0, 0],
        &[0xCB],
        &[0xCF],
        &[0xFF, 0xE3],
        &[0xFF, 0x10],
        &[0xFF, 0x64, 0x24, 0x04],
    ];
    for bytes in free {
        assert!(d(bytes).is_free_branch(), "{bytes:02x?}");
    }
    let cf_not_free: &[&[u8]] = &[
        &[0xE8, 0, 0, 0, 0],       // call rel32
        &[0xE9, 0, 0, 0, 0],       // jmp rel32
        &[0x74, 0],                // je
        &[0xE2, 0],                // loop
        &[0xCD, 0x80],             // int
        &[0x0F, 0x34],             // sysenter
        &[0x9A, 0, 0, 0, 0, 0, 0], // callf
    ];
    for bytes in cf_not_free {
        let dec = d(bytes);
        assert!(dec.is_control_flow(), "{bytes:02x?}");
        assert!(!dec.is_free_branch(), "{bytes:02x?}");
    }
    // The syscall gates get the Syscall kind (the attack scanner's
    // terminator extension keys on it).
    assert_eq!(
        d(&[0xCD, 0x80]).class(),
        Class::ControlFlow(CfKind::Syscall)
    );
    assert_eq!(
        d(&[0x0F, 0x34]).class(),
        Class::ControlFlow(CfKind::Syscall)
    );
}

#[test]
fn invalid_encodings_rejected() {
    let invalid: &[&[u8]] = &[
        &[0x0F, 0x0B],             // ud2
        &[0x0F, 0x05],             // syscall (not IA-32)
        &[0x0F, 0xFF, 0x00],       // undefined two-byte
        &[0x8D, 0xC0],             // lea with register operand
        &[0x8F, 0x48, 0x00],       // pop r/m with /1
        &[0xC6, 0x48, 0, 0],       // mov imm8 with /1
        &[0xC7, 0xC8, 0, 0, 0, 0], // mov imm32 with /1
        &[0xFE, 0xF8],             // grp4 /7
        &[0xFF, 0xF8],             // grp5 /7
        &[0xC0, 0xF0, 1],          // shift group /6
    ];
    for bytes in invalid {
        match decode(bytes) {
            Err(DecodeError::Invalid) => {}
            other => panic!("{bytes:02x?} should be invalid, got {other:?}"),
        }
    }
}

#[test]
fn prefixes_compose() {
    // 66: operand size (imm shrinks to 16 bits).
    assert_eq!(d(&[0x66, 0x05, 0x34, 0x12]).len, 4);
    // 67: address size (16-bit ModRM).
    assert_eq!(d(&[0x67, 0x8B, 0x00]).len, 3);
    // F3 (rep) + string op.
    assert_eq!(d(&[0xF3, 0xA4]).len, 2);
    // Segment override + ordinary instruction.
    assert_eq!(d(&[0x64, 0x8B, 0x00]).len, 3);
    // Stacked prefixes.
    assert_eq!(d(&[0x66, 0x2E, 0x05, 0x01, 0x00]).len, 5);
}
