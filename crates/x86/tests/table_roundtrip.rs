//! Encode→decode→encode roundtrips over the two instruction families the
//! diversifying passes inject: the full NOP candidate table and every
//! shape the substitution pass's equivalence classes can emit.
//!
//! The diversified-image validator works by decoding variant bytes and
//! matching them against these families, so each emitted byte sequence
//! must (a) decode to exactly one instruction, (b) decode to the
//! *intended* instruction, and (c) re-encode to the identical bytes —
//! i.e. the encoder must be canonical on this subset. A non-canonical
//! encoding would make byte-level comparisons (Survivor stripping,
//! divcheck matching) silently unsound.

use pgsd_x86::nop::{NopKind, NopTable};
use pgsd_x86::{decode, encode, AluOp, Body, Inst, Mem, Reg, ShiftOp};

/// Asserts `inst` encodes, decodes back to itself, and re-encodes to the
/// same bytes; returns the canonical encoding.
fn roundtrip(inst: &Inst) -> Vec<u8> {
    let mut bytes = Vec::new();
    encode(inst, &mut bytes).unwrap_or_else(|e| panic!("{inst:?} does not encode: {e}"));
    let d = decode(&bytes).unwrap_or_else(|e| panic!("{inst:?} bytes do not decode: {e}"));
    assert_eq!(d.len, bytes.len(), "{inst:?}: length mismatch");
    assert_eq!(d.body, Body::Known(*inst), "{inst:?}: decode mismatch");
    let mut again = Vec::new();
    encode(inst, &mut again).unwrap();
    assert_eq!(again, bytes, "{inst:?}: encoder is not deterministic");
    bytes
}

#[test]
fn full_nop_table_bytes_decode_to_their_architectural_identity() {
    for kind in NopKind::ALL {
        let bytes = kind.bytes();
        let d = decode(bytes).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(d.len, bytes.len(), "{kind:?}: trailing bytes");
        assert_eq!(
            d.body,
            Body::Known(kind.as_inst()),
            "{kind:?}: wrong identity"
        );
        // The canonical encoding of the identity is the table's bytes —
        // encode(decode(bytes)) == bytes.
        let mut re = Vec::new();
        encode(&kind.as_inst(), &mut re).unwrap();
        assert_eq!(re.as_slice(), bytes, "{kind:?}: re-encoding differs");
    }
}

#[test]
fn nop_table_variants_cover_the_kind_list() {
    // Both table variants must contain only NopKind encodings, and the
    // xchg table exactly the two extra bus-locking kinds.
    let plain = NopTable::new();
    let xchg = NopTable::with_xchg();
    assert_eq!(plain.len(), 5);
    assert_eq!(xchg.len(), 7);
    for kind in NopKind::ALL {
        assert_eq!(
            plain.iter().any(|k| k == kind),
            !kind.locks_bus(),
            "{kind:?} in default table"
        );
        assert!(
            xchg.iter().any(|k| k == kind),
            "{kind:?} missing from xchg table"
        );
    }
}

/// Registers the substitution pass may rewrite (it never touches `esp`).
const SUBST_REGS: [Reg; 7] = [
    Reg::Eax,
    Reg::Ecx,
    Reg::Edx,
    Reg::Ebx,
    Reg::Ebp,
    Reg::Esi,
    Reg::Edi,
];

fn reg_direct(base: Reg) -> Mem {
    Mem {
        base: Some(base),
        index: None,
        disp: 0,
    }
}

#[test]
fn zero_idiom_class_roundtrips() {
    // mov r, 0  ↔  xor r, r
    for r in SUBST_REGS {
        roundtrip(&Inst::MovRI(r, 0));
        roundtrip(&Inst::AluRR(AluOp::Xor, r, r));
    }
}

#[test]
fn register_move_class_roundtrips() {
    // mov d, s  ↔  lea d, [s]  ↔  push s; pop d
    for d in SUBST_REGS {
        for s in SUBST_REGS {
            if d == s {
                continue;
            }
            roundtrip(&Inst::MovRR(d, s));
            roundtrip(&Inst::Lea(d, reg_direct(s)));
            roundtrip(&Inst::PushR(s));
            roundtrip(&Inst::PopR(d));
        }
    }
}

#[test]
fn immediate_add_sub_class_roundtrips() {
    // add r, i ↔ sub r, −i across the imm8/imm32 encoding boundary, plus
    // the ±1 ↔ inc/dec corner.
    for r in SUBST_REGS {
        for imm in [1, 2, 127, 128, 4096, -1, -127, -128, i32::MAX] {
            roundtrip(&Inst::AluRI(AluOp::Add, r, imm));
            roundtrip(&Inst::AluRI(AluOp::Sub, r, imm));
        }
        roundtrip(&Inst::IncR(r));
        roundtrip(&Inst::DecR(r));
    }
}

#[test]
fn shift_double_class_roundtrips() {
    // shl r, 1  ↔  add r, r
    for r in SUBST_REGS {
        roundtrip(&Inst::ShiftRI(ShiftOp::Shl, r, 1));
        roundtrip(&Inst::AluRR(AluOp::Add, r, r));
    }
}

#[test]
fn class_members_decode_unambiguously() {
    // No two distinct class-member encodings may share bytes: collect
    // every canonical encoding above and require uniqueness per inst.
    let mut seen: Vec<(Vec<u8>, Inst)> = Vec::new();
    let mut check = |inst: Inst| {
        let bytes = roundtrip(&inst);
        if let Some((_, prior)) = seen.iter().find(|(b, _)| *b == bytes) {
            panic!("{inst:?} and {prior:?} share encoding {bytes:02x?}");
        }
        seen.push((bytes, inst));
    };
    for r in SUBST_REGS {
        check(Inst::MovRI(r, 0));
        check(Inst::AluRR(AluOp::Xor, r, r));
        check(Inst::IncR(r));
        check(Inst::DecR(r));
        check(Inst::ShiftRI(ShiftOp::Shl, r, 1));
        check(Inst::AluRR(AluOp::Add, r, r));
        check(Inst::PushR(r));
        check(Inst::PopR(r));
    }
    for kind in NopKind::ALL {
        check(kind.as_inst());
    }
}
