//! Structured model of the IA-32 instruction subset that the pgsd toolchain
//! emits, decodes and emulates.
//!
//! The same [`Inst`] type is produced by the assembler layer of the compiler
//! backend and by [`decode`](crate::decode::decode) for bytes inside the
//! modeled subset, which gives the whole toolchain a single vocabulary and
//! lets the test suite check `decode(encode(i)) == i`.

use std::fmt;

use crate::{Cond, Reg};

/// Index scale factor of a memory operand (`[base + index*scale + disp]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum Scale {
    /// `index * 1`
    #[default]
    S1 = 0,
    /// `index * 2`
    S2 = 1,
    /// `index * 4`
    S4 = 2,
    /// `index * 8`
    S8 = 3,
}

impl Scale {
    /// The multiplication factor (1, 2, 4 or 8).
    #[inline]
    pub fn factor(self) -> u32 {
        1 << (self as u32)
    }

    /// Looks up a scale by the two-bit SIB `ss` field.
    #[inline]
    pub fn from_bits(bits: u8) -> Scale {
        match bits & 3 {
            0 => Scale::S1,
            1 => Scale::S2,
            2 => Scale::S4,
            _ => Scale::S8,
        }
    }
}

/// A 32-bit memory operand: `[base + index*scale + disp]`.
///
/// Any component may be absent; `Mem::abs(0x0804_9000)` is a bare
/// absolute address, `Mem::base_disp(Reg::Ebp, -8)` a frame slot.
///
/// `index` may not be [`Reg::Esp`] (the SIB encoding reserves index
/// number 4 to mean "no index"); the encoder validates this.
///
/// # Examples
///
/// ```
/// use pgsd_x86::{Mem, Reg, Scale};
/// let slot = Mem::base_disp(Reg::Ebp, -4);
/// let elem = Mem::base_index(Reg::Eax, Reg::Ecx, Scale::S4, 0);
/// assert_eq!(slot.to_string(), "[ebp-0x4]");
/// assert_eq!(elem.to_string(), "[eax+ecx*4]");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mem {
    /// Optional base register.
    pub base: Option<Reg>,
    /// Optional scaled index register (never `Esp`).
    pub index: Option<(Reg, Scale)>,
    /// Signed 32-bit displacement.
    pub disp: i32,
}

impl Mem {
    /// An absolute address operand `[disp]`.
    pub fn abs(addr: u32) -> Mem {
        Mem {
            base: None,
            index: None,
            disp: addr as i32,
        }
    }

    /// A `[base + disp]` operand.
    pub fn base_disp(base: Reg, disp: i32) -> Mem {
        Mem {
            base: Some(base),
            index: None,
            disp,
        }
    }

    /// A `[base + index*scale + disp]` operand.
    pub fn base_index(base: Reg, index: Reg, scale: Scale, disp: i32) -> Mem {
        Mem {
            base: Some(base),
            index: Some((index, scale)),
            disp,
        }
    }

    /// An `[index*scale + disp]` operand with no base register.
    pub fn index_disp(index: Reg, scale: Scale, disp: i32) -> Mem {
        Mem {
            base: None,
            index: Some((index, scale)),
            disp,
        }
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut wrote = false;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            wrote = true;
        }
        if let Some((i, s)) = self.index {
            if wrote {
                write!(f, "+")?;
            }
            write!(f, "{i}")?;
            if s != Scale::S1 {
                write!(f, "*{}", s.factor())?;
            }
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote {
                if self.disp < 0 {
                    write!(f, "-{:#x}", -(self.disp as i64))?;
                } else {
                    write!(f, "+{:#x}", self.disp)?;
                }
            } else {
                write!(f, "{:#x}", self.disp as u32)?;
            }
        }
        write!(f, "]")
    }
}

/// Binary ALU operation selector shared by the `00`–`3B` opcode rows and the
/// group-1 immediate forms.
///
/// The discriminant is the group-1 `/r` extension (and the row number of the
/// register forms), so it plugs straight into the encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // variants are standard x86 mnemonics
pub enum AluOp {
    Add = 0,
    Or = 1,
    Adc = 2,
    Sbb = 3,
    And = 4,
    Sub = 5,
    Xor = 6,
    Cmp = 7,
}

impl AluOp {
    /// All eight ALU operations in encoding order.
    pub const ALL: [AluOp; 8] = [
        AluOp::Add,
        AluOp::Or,
        AluOp::Adc,
        AluOp::Sbb,
        AluOp::And,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::Cmp,
    ];

    /// Looks up the operation from its group-1 extension number.
    #[inline]
    pub fn from_number(n: u8) -> Option<AluOp> {
        AluOp::ALL.get(usize::from(n)).copied()
    }

    /// The lowercase mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Or => "or",
            AluOp::Adc => "adc",
            AluOp::Sbb => "sbb",
            AluOp::And => "and",
            AluOp::Sub => "sub",
            AluOp::Xor => "xor",
            AluOp::Cmp => "cmp",
        }
    }

    /// `true` for `cmp`, which only sets flags and writes no destination.
    #[inline]
    pub fn is_compare(self) -> bool {
        self == AluOp::Cmp
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Shift/rotate operation selector (group-2 `/r` extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // variants are standard x86 mnemonics
pub enum ShiftOp {
    Rol = 0,
    Ror = 1,
    Rcl = 2,
    Rcr = 3,
    /// Logical left shift (`shl`/`sal`).
    Shl = 4,
    /// Logical right shift.
    Shr = 5,
    /// Arithmetic right shift.
    Sar = 7,
}

impl ShiftOp {
    /// Looks up the operation from its group-2 extension number.
    ///
    /// Returns `None` for 6, which Intel documents as an alias of `shl`
    /// that assemblers never emit.
    #[inline]
    pub fn from_number(n: u8) -> Option<ShiftOp> {
        match n {
            0 => Some(ShiftOp::Rol),
            1 => Some(ShiftOp::Ror),
            2 => Some(ShiftOp::Rcl),
            3 => Some(ShiftOp::Rcr),
            4 => Some(ShiftOp::Shl),
            5 => Some(ShiftOp::Shr),
            7 => Some(ShiftOp::Sar),
            _ => None,
        }
    }

    /// The lowercase mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            ShiftOp::Rol => "rol",
            ShiftOp::Ror => "ror",
            ShiftOp::Rcl => "rcl",
            ShiftOp::Rcr => "rcr",
            ShiftOp::Shl => "shl",
            ShiftOp::Shr => "shr",
            ShiftOp::Sar => "sar",
        }
    }
}

impl fmt::Display for ShiftOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An instruction from the modeled IA-32 subset.
///
/// This covers everything the MiniC backend emits (including the
/// diversifying NOPs of the paper's Table 1) plus the handful of extra forms
/// the emulator and the gadget classifier care about (`push`/`pop`,
/// `xchg`, `int`).
///
/// Branch targets are stored as *resolved* rel32/rel8 displacements relative
/// to the end of the instruction, exactly as encoded; layout happens in the
/// compiler's emitter, which patches these fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `mov r32, imm32` (B8+r).
    MovRI(Reg, i32),
    /// `mov r32, r32` (89 /r, register form).
    MovRR(Reg, Reg),
    /// `mov r32, m32` (8B /r).
    MovRM(Reg, Mem),
    /// `mov m32, r32` (89 /r).
    MovMR(Mem, Reg),
    /// `mov m32, imm32` (C7 /0).
    MovMI(Mem, i32),
    /// ALU op, register–register (`op r32, r32`).
    AluRR(AluOp, Reg, Reg),
    /// ALU op, register–memory (`op r32, m32`).
    AluRM(AluOp, Reg, Mem),
    /// ALU op, memory–register (`op m32, r32`).
    AluMR(AluOp, Mem, Reg),
    /// ALU op, register–immediate (`op r32, imm`; encoder picks 83/81).
    AluRI(AluOp, Reg, i32),
    /// ALU op, memory–immediate (`op m32, imm`).
    AluMI(AluOp, Mem, i32),
    /// `test r32, r32` (85 /r).
    TestRR(Reg, Reg),
    /// `imul r32, r32` (0F AF /r).
    ImulRR(Reg, Reg),
    /// `imul r32, m32` (0F AF /r).
    ImulRM(Reg, Mem),
    /// `imul r32, r32, imm32` (69 /r or 6B /r).
    ImulRRI(Reg, Reg, i32),
    /// `cdq` (99): sign-extend EAX into EDX:EAX.
    Cdq,
    /// `idiv r32` (F7 /7): signed divide EDX:EAX by r32.
    IdivR(Reg),
    /// `neg r32` (F7 /3).
    NegR(Reg),
    /// `not r32` (F7 /2).
    NotR(Reg),
    /// `inc r32` (40+r).
    IncR(Reg),
    /// `dec r32` (48+r).
    DecR(Reg),
    /// `inc m32` / `dec m32` (FF /0, FF /1); `true` = inc.
    IncDecM(bool, Mem),
    /// Shift by immediate (`C1 /r imm8`, or `D1 /r` when the count is 1).
    ShiftRI(ShiftOp, Reg, u8),
    /// Shift by CL (`D3 /r`).
    ShiftRCl(ShiftOp, Reg),
    /// `push r32` (50+r).
    PushR(Reg),
    /// `push imm32` (68).
    PushI(i32),
    /// `push m32` (FF /6).
    PushM(Mem),
    /// `pop r32` (58+r).
    PopR(Reg),
    /// `lea r32, m` (8D /r).
    Lea(Reg, Mem),
    /// `xchg r32, r32` (87 /r; 90+r for the EAX forms is *not* used by the
    /// encoder to keep `nop` unambiguous).
    XchgRR(Reg, Reg),
    /// `call rel32` (E8).
    CallRel(i32),
    /// `call r32` (FF /2).
    CallR(Reg),
    /// `ret` (C3).
    Ret,
    /// `ret imm16` (C2).
    RetImm(u16),
    /// `jmp rel32` (E9).
    JmpRel(i32),
    /// `jmp rel8` (EB).
    JmpRel8(i8),
    /// `jmp r32` (FF /4).
    JmpR(Reg),
    /// `jcc rel32` (0F 80+cc).
    Jcc(Cond, i32),
    /// `jcc rel8` (70+cc).
    Jcc8(Cond, i8),
    /// `int imm8` (CD).
    Int(u8),
    /// `hlt` (F4) — used as a trap/sentinel in test images.
    Hlt,
    /// One of the diversifying no-operation candidates of the paper's
    /// Table 1.
    Nop(crate::nop::NopKind),
}

impl Inst {
    /// `true` if executing this instruction may transfer control anywhere
    /// other than the next instruction.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Inst::CallRel(_)
                | Inst::CallR(_)
                | Inst::Ret
                | Inst::RetImm(_)
                | Inst::JmpRel(_)
                | Inst::JmpRel8(_)
                | Inst::JmpR(_)
                | Inst::Jcc(..)
                | Inst::Jcc8(..)
                | Inst::Int(_)
                | Inst::Hlt
        )
    }

    /// `true` for the *free branches* a return-oriented-programming gadget
    /// may end in: returns and indirect jumps/calls (paper §5.2).
    pub fn is_free_branch(&self) -> bool {
        matches!(
            self,
            Inst::Ret | Inst::RetImm(_) | Inst::CallR(_) | Inst::JmpR(_)
        )
    }
}

/// Formats a signed displacement as `+0x…`/`-0x…` (hex magnitude with
/// explicit sign), the conventional disassembly style for relative targets.
fn fmt_rel(f: &mut fmt::Formatter<'_>, v: i64) -> fmt::Result {
    if v < 0 {
        write!(f, "-{:#x}", -v)
    } else {
        write!(f, "+{v:#x}")
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::MovRI(r, i) => write!(f, "mov {r}, {i:#x}"),
            Inst::MovRR(d, s) => write!(f, "mov {d}, {s}"),
            Inst::MovRM(r, m) => write!(f, "mov {r}, dword {m}"),
            Inst::MovMR(m, r) => write!(f, "mov dword {m}, {r}"),
            Inst::MovMI(m, i) => write!(f, "mov dword {m}, {i:#x}"),
            Inst::AluRR(op, d, s) => write!(f, "{op} {d}, {s}"),
            Inst::AluRM(op, d, m) => write!(f, "{op} {d}, dword {m}"),
            Inst::AluMR(op, m, s) => write!(f, "{op} dword {m}, {s}"),
            Inst::AluRI(op, r, i) => write!(f, "{op} {r}, {i:#x}"),
            Inst::AluMI(op, m, i) => write!(f, "{op} dword {m}, {i:#x}"),
            Inst::TestRR(a, b) => write!(f, "test {a}, {b}"),
            Inst::ImulRR(d, s) => write!(f, "imul {d}, {s}"),
            Inst::ImulRM(d, m) => write!(f, "imul {d}, dword {m}"),
            Inst::ImulRRI(d, s, i) => write!(f, "imul {d}, {s}, {i:#x}"),
            Inst::Cdq => write!(f, "cdq"),
            Inst::IdivR(r) => write!(f, "idiv {r}"),
            Inst::NegR(r) => write!(f, "neg {r}"),
            Inst::NotR(r) => write!(f, "not {r}"),
            Inst::IncR(r) => write!(f, "inc {r}"),
            Inst::DecR(r) => write!(f, "dec {r}"),
            Inst::IncDecM(true, m) => write!(f, "inc dword {m}"),
            Inst::IncDecM(false, m) => write!(f, "dec dword {m}"),
            Inst::ShiftRI(op, r, n) => write!(f, "{op} {r}, {n}"),
            Inst::ShiftRCl(op, r) => write!(f, "{op} {r}, cl"),
            Inst::PushR(r) => write!(f, "push {r}"),
            Inst::PushI(i) => write!(f, "push {i:#x}"),
            Inst::PushM(m) => write!(f, "push dword {m}"),
            Inst::PopR(r) => write!(f, "pop {r}"),
            Inst::Lea(r, m) => write!(f, "lea {r}, {m}"),
            Inst::XchgRR(a, b) => write!(f, "xchg {a}, {b}"),
            Inst::CallRel(d) => {
                write!(f, "call ")?;
                fmt_rel(f, i64::from(*d))
            }
            Inst::CallR(r) => write!(f, "call {r}"),
            Inst::Ret => write!(f, "ret"),
            Inst::RetImm(n) => write!(f, "ret {n:#x}"),
            Inst::JmpRel(d) => {
                write!(f, "jmp ")?;
                fmt_rel(f, i64::from(*d))
            }
            Inst::JmpRel8(d) => {
                write!(f, "jmp short ")?;
                fmt_rel(f, i64::from(*d))
            }
            Inst::JmpR(r) => write!(f, "jmp {r}"),
            Inst::Jcc(c, d) => {
                write!(f, "j{c} ")?;
                fmt_rel(f, i64::from(*d))
            }
            Inst::Jcc8(c, d) => {
                write!(f, "j{c} short ")?;
                fmt_rel(f, i64::from(*d))
            }
            Inst::Int(n) => write!(f, "int {n:#x}"),
            Inst::Hlt => write!(f, "hlt"),
            Inst::Nop(k) => write!(f, "{k}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_display_forms() {
        assert_eq!(Mem::abs(0x0804_9000).to_string(), "[0x8049000]");
        assert_eq!(Mem::base_disp(Reg::Ebp, -8).to_string(), "[ebp-0x8]");
        assert_eq!(Mem::base_disp(Reg::Esp, 4).to_string(), "[esp+0x4]");
        assert_eq!(
            Mem::base_index(Reg::Ebx, Reg::Esi, Scale::S4, 16).to_string(),
            "[ebx+esi*4+0x10]"
        );
        assert_eq!(
            Mem::index_disp(Reg::Ecx, Scale::S2, 0).to_string(),
            "[ecx*2]"
        );
    }

    #[test]
    fn scale_factors() {
        assert_eq!(Scale::S1.factor(), 1);
        assert_eq!(Scale::S8.factor(), 8);
        for bits in 0..4 {
            assert_eq!(Scale::from_bits(bits) as u8, bits);
        }
    }

    #[test]
    fn alu_round_trip() {
        for op in AluOp::ALL {
            assert_eq!(AluOp::from_number(op as u8), Some(op));
        }
        assert_eq!(AluOp::from_number(8), None);
    }

    #[test]
    fn shift_six_is_unused() {
        assert_eq!(ShiftOp::from_number(6), None);
        assert_eq!(ShiftOp::from_number(4), Some(ShiftOp::Shl));
    }

    #[test]
    fn free_branches_are_control_flow() {
        let frees = [
            Inst::Ret,
            Inst::RetImm(8),
            Inst::CallR(Reg::Eax),
            Inst::JmpR(Reg::Ecx),
        ];
        for i in frees {
            assert!(i.is_free_branch(), "{i}");
            assert!(i.is_control_flow(), "{i}");
        }
        assert!(!Inst::CallRel(0).is_free_branch());
        assert!(Inst::CallRel(0).is_control_flow());
        assert!(!Inst::MovRR(Reg::Eax, Reg::Ebx).is_control_flow());
    }

    #[test]
    fn display_smoke() {
        assert_eq!(Inst::MovRI(Reg::Eax, 5).to_string(), "mov eax, 0x5");
        assert_eq!(
            Inst::AluRR(AluOp::Add, Reg::Eax, Reg::Ebx).to_string(),
            "add eax, ebx"
        );
        assert_eq!(Inst::Jcc8(Cond::Ne, -2).to_string(), "jne short -0x2");
        assert_eq!(
            Inst::ShiftRCl(ShiftOp::Sar, Reg::Edx).to_string(),
            "sar edx, cl"
        );
    }
}
