//! IA-32 machine-code encoder for the modeled instruction subset.
//!
//! The encoder is deterministic: each [`Inst`] has exactly one encoding, so
//! instruction lengths are stable and the backend can lay out branches in a
//! single relaxation pass. The decoder accepts a superset of what the
//! encoder produces; the round-trip `decode(encode(i)) == i` holds for every
//! encodable instruction and is checked by property tests.

use std::error::Error;
use std::fmt;

use crate::inst::{Inst, Mem};
use crate::Reg;

/// Error returned when an [`Inst`] cannot be encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The memory operand uses `esp` as an index register, which the SIB
    /// byte cannot express.
    EspIndex,
    /// A shift count above 31 is meaningless for 32-bit operands.
    ShiftCountTooLarge(u8),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::EspIndex => write!(f, "esp cannot be used as an index register"),
            EncodeError::ShiftCountTooLarge(n) => {
                write!(f, "shift count {n} exceeds 31")
            }
        }
    }
}

impl Error for EncodeError {}

/// Encodes `inst`, appending its bytes to `out`.
///
/// Returns the number of bytes written.
///
/// # Errors
///
/// Returns an [`EncodeError`] if the instruction's operands cannot be
/// expressed in machine code (see the error variants).
///
/// # Examples
///
/// ```
/// use pgsd_x86::{encode, Inst, Reg};
/// let mut buf = Vec::new();
/// encode(&Inst::Ret, &mut buf)?;
/// assert_eq!(buf, [0xC3]);
/// # Ok::<(), pgsd_x86::EncodeError>(())
/// ```
pub fn encode(inst: &Inst, out: &mut Vec<u8>) -> Result<usize, EncodeError> {
    let start = out.len();
    encode_inner(inst, out)?;
    Ok(out.len() - start)
}

/// The encoded length of `inst` in bytes, without materializing the bytes.
///
/// # Errors
///
/// Fails in exactly the cases [`encode`] fails.
pub fn encoded_len(inst: &Inst) -> Result<usize, EncodeError> {
    // Lengths are cheap enough to compute by encoding into a small buffer;
    // the longest modeled instruction is 11 bytes.
    let mut buf = Vec::with_capacity(12);
    encode(inst, &mut buf)
}

fn imm_fits_i8(v: i32) -> bool {
    v >= i32::from(i8::MIN) && v <= i32::from(i8::MAX)
}

/// Emits a ModRM byte plus any SIB/displacement for a register operand in
/// the `reg` field and a memory operand in the `rm` field.
fn put_modrm_mem(reg_field: u8, mem: &Mem, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    if let Some((idx, _)) = mem.index {
        if idx == Reg::Esp {
            return Err(EncodeError::EspIndex);
        }
    }
    match (mem.base, mem.index) {
        (None, None) => {
            // [disp32]: mod=00, rm=101.
            out.push(modrm(0, reg_field, 5));
            out.extend_from_slice(&mem.disp.to_le_bytes());
        }
        (Some(base), None) if base != Reg::Esp => {
            // [base + disp]; EBP with mod=00 means disp32, so EBP always
            // carries a displacement.
            let (md, disp_bytes) = disp_mode(mem.disp, base == Reg::Ebp);
            out.push(modrm(md, reg_field, base.number()));
            push_disp(disp_bytes, mem.disp, out);
        }
        (Some(base), index) => {
            // SIB form: needed for ESP base or any index.
            let (md, disp_bytes) = disp_mode(mem.disp, base == Reg::Ebp);
            out.push(modrm(md, reg_field, 4));
            out.push(sib_byte(Some(base), index));
            push_disp(disp_bytes, mem.disp, out);
        }
        (None, Some(_)) => {
            // [index*scale + disp32]: mod=00, rm=100, SIB base=101.
            out.push(modrm(0, reg_field, 4));
            out.push(sib_byte(None, mem.index));
            out.extend_from_slice(&mem.disp.to_le_bytes());
        }
    }
    Ok(())
}

/// Chooses between no displacement, disp8 and disp32.
/// `force_disp` handles the `[ebp]` encoding hole (mod=00 rm=101 is
/// `[disp32]`, so `[ebp]` must be encoded as `[ebp+0x0]`).
fn disp_mode(disp: i32, force_disp: bool) -> (u8, u8) {
    if disp == 0 && !force_disp {
        (0, 0)
    } else if imm_fits_i8(disp) {
        (1, 1)
    } else {
        (2, 4)
    }
}

fn push_disp(n_bytes: u8, disp: i32, out: &mut Vec<u8>) {
    match n_bytes {
        0 => {}
        1 => out.push(disp as i8 as u8),
        _ => out.extend_from_slice(&disp.to_le_bytes()),
    }
}

fn modrm(md: u8, reg: u8, rm: u8) -> u8 {
    (md << 6) | ((reg & 7) << 3) | (rm & 7)
}

fn sib_byte(base: Option<Reg>, index: Option<(Reg, crate::Scale)>) -> u8 {
    let (ss, idx) = match index {
        Some((r, s)) => (s as u8, r.number()),
        None => (0, 4), // index=100 means "none"
    };
    let base_bits = match base {
        Some(r) => r.number(),
        None => 5, // with mod=00: disp32, no base
    };
    (ss << 6) | (idx << 3) | base_bits
}

fn put_modrm_reg(reg_field: u8, rm_reg: Reg, out: &mut Vec<u8>) {
    out.push(modrm(3, reg_field, rm_reg.number()));
}

fn encode_inner(inst: &Inst, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    match *inst {
        Inst::MovRI(r, imm) => {
            out.push(0xB8 + r.number());
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Inst::MovRR(dst, src) => {
            // 89 /r: mov r/m32, r32 — matches the paper's Table 1 encodings
            // for `mov esp, esp` (89 E4) and `mov ebp, ebp` (89 ED).
            out.push(0x89);
            put_modrm_reg(src.number(), dst, out);
        }
        Inst::MovRM(dst, ref m) => {
            out.push(0x8B);
            put_modrm_mem(dst.number(), m, out)?;
        }
        Inst::MovMR(ref m, src) => {
            out.push(0x89);
            put_modrm_mem(src.number(), m, out)?;
        }
        Inst::MovMI(ref m, imm) => {
            out.push(0xC7);
            put_modrm_mem(0, m, out)?;
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Inst::AluRR(op, dst, src) => {
            // row base + 1: op r/m32, r32.
            out.push((op as u8) * 8 + 0x01);
            put_modrm_reg(src.number(), dst, out);
        }
        Inst::AluRM(op, dst, ref m) => {
            // row base + 3: op r32, r/m32.
            out.push((op as u8) * 8 + 0x03);
            put_modrm_mem(dst.number(), m, out)?;
        }
        Inst::AluMR(op, ref m, src) => {
            out.push((op as u8) * 8 + 0x01);
            put_modrm_mem(src.number(), m, out)?;
        }
        Inst::AluRI(op, r, imm) => {
            if imm_fits_i8(imm) {
                out.push(0x83);
                put_modrm_reg(op as u8, r, out);
                out.push(imm as i8 as u8);
            } else {
                out.push(0x81);
                put_modrm_reg(op as u8, r, out);
                out.extend_from_slice(&imm.to_le_bytes());
            }
        }
        Inst::AluMI(op, ref m, imm) => {
            if imm_fits_i8(imm) {
                out.push(0x83);
                put_modrm_mem(op as u8, m, out)?;
                out.push(imm as i8 as u8);
            } else {
                out.push(0x81);
                put_modrm_mem(op as u8, m, out)?;
                out.extend_from_slice(&imm.to_le_bytes());
            }
        }
        Inst::TestRR(a, b) => {
            out.push(0x85);
            put_modrm_reg(b.number(), a, out);
        }
        Inst::ImulRR(dst, src) => {
            out.push(0x0F);
            out.push(0xAF);
            put_modrm_reg(dst.number(), src, out);
        }
        Inst::ImulRM(dst, ref m) => {
            out.push(0x0F);
            out.push(0xAF);
            put_modrm_mem(dst.number(), m, out)?;
        }
        Inst::ImulRRI(dst, src, imm) => {
            if imm_fits_i8(imm) {
                out.push(0x6B);
                put_modrm_reg(dst.number(), src, out);
                out.push(imm as i8 as u8);
            } else {
                out.push(0x69);
                put_modrm_reg(dst.number(), src, out);
                out.extend_from_slice(&imm.to_le_bytes());
            }
        }
        Inst::Cdq => out.push(0x99),
        Inst::IdivR(r) => {
            out.push(0xF7);
            put_modrm_reg(7, r, out);
        }
        Inst::NegR(r) => {
            out.push(0xF7);
            put_modrm_reg(3, r, out);
        }
        Inst::NotR(r) => {
            out.push(0xF7);
            put_modrm_reg(2, r, out);
        }
        Inst::IncR(r) => out.push(0x40 + r.number()),
        Inst::DecR(r) => out.push(0x48 + r.number()),
        Inst::IncDecM(inc, ref m) => {
            out.push(0xFF);
            put_modrm_mem(if inc { 0 } else { 1 }, m, out)?;
        }
        Inst::ShiftRI(op, r, count) => {
            if count > 31 {
                return Err(EncodeError::ShiftCountTooLarge(count));
            }
            if count == 1 {
                out.push(0xD1);
                put_modrm_reg(op as u8, r, out);
            } else {
                out.push(0xC1);
                put_modrm_reg(op as u8, r, out);
                out.push(count);
            }
        }
        Inst::ShiftRCl(op, r) => {
            out.push(0xD3);
            put_modrm_reg(op as u8, r, out);
        }
        Inst::PushR(r) => out.push(0x50 + r.number()),
        Inst::PushI(imm) => {
            if imm_fits_i8(imm) {
                out.push(0x6A);
                out.push(imm as i8 as u8);
            } else {
                out.push(0x68);
                out.extend_from_slice(&imm.to_le_bytes());
            }
        }
        Inst::PushM(ref m) => {
            out.push(0xFF);
            put_modrm_mem(6, m, out)?;
        }
        Inst::PopR(r) => out.push(0x58 + r.number()),
        Inst::Lea(r, ref m) => {
            out.push(0x8D);
            put_modrm_mem(r.number(), m, out)?;
        }
        Inst::XchgRR(a, b) => {
            // Always 87 /r, never the 90+r short forms, so that 0x90 is
            // unambiguously `nop`.
            out.push(0x87);
            put_modrm_reg(b.number(), a, out);
        }
        Inst::CallRel(rel) => {
            out.push(0xE8);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Inst::CallR(r) => {
            out.push(0xFF);
            put_modrm_reg(2, r, out);
        }
        Inst::Ret => out.push(0xC3),
        Inst::RetImm(n) => {
            out.push(0xC2);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Inst::JmpRel(rel) => {
            out.push(0xE9);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Inst::JmpRel8(rel) => {
            out.push(0xEB);
            out.push(rel as u8);
        }
        Inst::JmpR(r) => {
            out.push(0xFF);
            put_modrm_reg(4, r, out);
        }
        Inst::Jcc(cc, rel) => {
            out.push(0x0F);
            out.push(0x80 + cc.number());
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Inst::Jcc8(cc, rel) => {
            out.push(0x70 + cc.number());
            out.push(rel as u8);
        }
        Inst::Int(n) => {
            out.push(0xCD);
            out.push(n);
        }
        Inst::Hlt => out.push(0xF4),
        Inst::Nop(kind) => out.extend_from_slice(kind.bytes()),
    }
    Ok(())
}

/// Convenience assembler: encodes a whole instruction sequence.
///
/// # Errors
///
/// Fails on the first instruction [`encode`] rejects.
///
/// # Examples
///
/// ```
/// use pgsd_x86::{assemble, Inst, Reg};
/// let bytes = assemble(&[Inst::PushR(Reg::Ebp), Inst::Ret])?;
/// assert_eq!(bytes, [0x55, 0xC3]);
/// # Ok::<(), pgsd_x86::EncodeError>(())
/// ```
pub fn assemble(insts: &[Inst]) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::with_capacity(insts.len() * 4);
    for i in insts {
        encode(i, &mut out)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Scale, ShiftOp};
    use crate::nop::NopKind;
    use crate::Cond;

    fn enc(i: Inst) -> Vec<u8> {
        let mut v = Vec::new();
        encode(&i, &mut v).expect("encodable");
        v
    }

    #[test]
    fn mov_forms() {
        assert_eq!(
            enc(Inst::MovRI(Reg::Eax, 0x12345678)),
            [0xB8, 0x78, 0x56, 0x34, 0x12]
        );
        assert_eq!(enc(Inst::MovRR(Reg::Esp, Reg::Esp)), [0x89, 0xE4]);
        assert_eq!(enc(Inst::MovRR(Reg::Ebp, Reg::Ebp)), [0x89, 0xED]);
        assert_eq!(
            enc(Inst::MovRM(Reg::Eax, Mem::base_disp(Reg::Ebp, -4))),
            [0x8B, 0x45, 0xFC]
        );
        assert_eq!(
            enc(Inst::MovMR(Mem::abs(0x0804_A000), Reg::Ecx)),
            [0x89, 0x0D, 0x00, 0xA0, 0x04, 0x08]
        );
    }

    #[test]
    fn ebp_without_disp_still_gets_disp8() {
        // [ebp] cannot be encoded with mod=00; must become [ebp+0].
        assert_eq!(
            enc(Inst::MovRM(Reg::Eax, Mem::base_disp(Reg::Ebp, 0))),
            [0x8B, 0x45, 0x00]
        );
    }

    #[test]
    fn esp_base_needs_sib() {
        assert_eq!(
            enc(Inst::MovRM(Reg::Eax, Mem::base_disp(Reg::Esp, 0))),
            [0x8B, 0x04, 0x24]
        );
        assert_eq!(
            enc(Inst::MovRM(Reg::Eax, Mem::base_disp(Reg::Esp, 8))),
            [0x8B, 0x44, 0x24, 0x08]
        );
    }

    #[test]
    fn sib_scaled_index() {
        assert_eq!(
            enc(Inst::MovRM(
                Reg::Edx,
                Mem::base_index(Reg::Ebx, Reg::Esi, Scale::S4, 0)
            )),
            [0x8B, 0x14, 0xB3]
        );
        assert_eq!(
            enc(Inst::Lea(
                Reg::Eax,
                Mem::index_disp(Reg::Ecx, Scale::S8, 0x10)
            )),
            [0x8D, 0x04, 0xCD, 0x10, 0x00, 0x00, 0x00]
        );
    }

    #[test]
    fn esp_index_rejected() {
        let m = Mem::base_index(Reg::Eax, Reg::Esp, Scale::S1, 0);
        assert_eq!(
            encode(&Inst::Lea(Reg::Eax, m), &mut Vec::new()),
            Err(EncodeError::EspIndex)
        );
    }

    #[test]
    fn alu_rows() {
        assert_eq!(
            enc(Inst::AluRR(AluOp::Add, Reg::Eax, Reg::Ebx)),
            [0x01, 0xD8]
        );
        assert_eq!(
            enc(Inst::AluRR(AluOp::Sub, Reg::Ecx, Reg::Edx)),
            [0x29, 0xD1]
        );
        assert_eq!(
            enc(Inst::AluRR(AluOp::Cmp, Reg::Esi, Reg::Edi)),
            [0x39, 0xFE]
        );
        assert_eq!(
            enc(Inst::AluRI(AluOp::Add, Reg::Esp, 8)),
            [0x83, 0xC4, 0x08]
        );
        assert_eq!(
            enc(Inst::AluRI(AluOp::And, Reg::Eax, 0x1234)),
            [0x81, 0xE0, 0x34, 0x12, 0x00, 0x00]
        );
    }

    #[test]
    fn imm8_selection_boundaries() {
        assert_eq!(enc(Inst::AluRI(AluOp::Add, Reg::Eax, 127)).len(), 3);
        assert_eq!(enc(Inst::AluRI(AluOp::Add, Reg::Eax, 128)).len(), 6);
        assert_eq!(enc(Inst::AluRI(AluOp::Add, Reg::Eax, -128)).len(), 3);
        assert_eq!(enc(Inst::AluRI(AluOp::Add, Reg::Eax, -129)).len(), 6);
        assert_eq!(enc(Inst::PushI(-1)), [0x6A, 0xFF]);
        assert_eq!(enc(Inst::PushI(300)), [0x68, 0x2C, 0x01, 0x00, 0x00]);
    }

    #[test]
    fn group3_and_shifts() {
        assert_eq!(enc(Inst::IdivR(Reg::Ebx)), [0xF7, 0xFB]);
        assert_eq!(enc(Inst::NegR(Reg::Eax)), [0xF7, 0xD8]);
        assert_eq!(enc(Inst::NotR(Reg::Edx)), [0xF7, 0xD2]);
        assert_eq!(enc(Inst::ShiftRI(ShiftOp::Shl, Reg::Eax, 1)), [0xD1, 0xE0]);
        assert_eq!(
            enc(Inst::ShiftRI(ShiftOp::Sar, Reg::Eax, 4)),
            [0xC1, 0xF8, 0x04]
        );
        assert_eq!(enc(Inst::ShiftRCl(ShiftOp::Shr, Reg::Ecx)), [0xD3, 0xE9]);
        assert_eq!(
            encode(&Inst::ShiftRI(ShiftOp::Shl, Reg::Eax, 32), &mut Vec::new()),
            Err(EncodeError::ShiftCountTooLarge(32))
        );
    }

    #[test]
    fn control_flow() {
        assert_eq!(enc(Inst::CallRel(0x10)), [0xE8, 0x10, 0x00, 0x00, 0x00]);
        assert_eq!(enc(Inst::Ret), [0xC3]);
        assert_eq!(enc(Inst::RetImm(8)), [0xC2, 0x08, 0x00]);
        assert_eq!(enc(Inst::JmpRel(-5)), [0xE9, 0xFB, 0xFF, 0xFF, 0xFF]);
        assert_eq!(enc(Inst::JmpRel8(-2)), [0xEB, 0xFE]);
        assert_eq!(enc(Inst::Jcc(Cond::E, 0)), [0x0F, 0x84, 0, 0, 0, 0]);
        assert_eq!(enc(Inst::Jcc8(Cond::Ne, 4)), [0x75, 0x04]);
        assert_eq!(enc(Inst::CallR(Reg::Eax)), [0xFF, 0xD0]);
        assert_eq!(enc(Inst::JmpR(Reg::Ebx)), [0xFF, 0xE3]);
        assert_eq!(enc(Inst::Int(0x80)), [0xCD, 0x80]);
    }

    #[test]
    fn nops_match_table1() {
        for kind in NopKind::ALL {
            assert_eq!(enc(Inst::Nop(kind)), kind.bytes());
        }
    }

    #[test]
    fn encoded_len_matches_encode() {
        let samples = [
            Inst::MovRI(Reg::Eax, 1),
            Inst::AluRI(AluOp::Sub, Reg::Esp, 0x100),
            Inst::Jcc(Cond::G, 7),
            Inst::Lea(Reg::Esi, Mem::base_index(Reg::Eax, Reg::Ebx, Scale::S2, -3)),
        ];
        for i in samples {
            assert_eq!(encoded_len(&i).unwrap(), enc(i).len());
        }
    }
}
