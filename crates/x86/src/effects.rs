//! Per-instruction def/use and flag metadata.
//!
//! [`Inst::effects`] summarizes which registers an instruction reads and
//! writes, whether it touches EFLAGS, and whether it accesses memory.
//! [`Inst::is_identity`] recognizes instructions that provably leave the
//! entire architectural state unchanged — the property that makes the
//! Table-1 NOP candidates safe to insert anywhere.  The validator in
//! `pgsd-analysis` builds on both, and [`Inst::regs`] / [`Inst::map_regs`]
//! expose the syntactic register operands for register-renaming checks.

use crate::inst::{AluOp, Inst, Mem};
use crate::reg::Reg;

/// A compact set of the eight general-purpose registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct RegSet(u8);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);

    /// Builds a set from a slice of registers.
    pub fn of(regs: &[Reg]) -> RegSet {
        let mut s = RegSet::EMPTY;
        for &r in regs {
            s.insert(r);
        }
        s
    }

    /// Adds `r` to the set.
    pub fn insert(&mut self, r: Reg) {
        self.0 |= 1 << r.number();
    }

    /// Removes `r` from the set.
    pub fn remove(&mut self, r: Reg) {
        self.0 &= !(1 << r.number());
    }

    /// `true` if `r` is in the set.
    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1 << r.number()) != 0
    }

    /// `true` if the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Members of this set minus members of `other`.
    pub fn minus(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Iterates the members in register-number order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        Reg::ALL.into_iter().filter(move |r| self.contains(*r))
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }
}

impl std::fmt::Display for RegSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", r.name())?;
        }
        write!(f, "}}")
    }
}

/// Architectural side effects of one instruction.
///
/// The register sets are *syntactic plus implicit*: `push eax` reads
/// `{eax, esp}` and writes `{esp}`; `cdq` reads `{eax}` and writes `{edx}`.
/// EFLAGS effects are conservative — an instruction that writes any subset
/// of the arithmetic flags reports `writes_flags`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Effects {
    /// Registers whose value the instruction observes.
    pub reads: RegSet,
    /// Registers the instruction may modify.
    pub writes: RegSet,
    /// `true` if the instruction's behavior depends on EFLAGS.
    pub reads_flags: bool,
    /// `true` if the instruction modifies any EFLAGS bit.
    pub writes_flags: bool,
    /// `true` if the instruction loads from memory.
    pub reads_mem: bool,
    /// `true` if the instruction stores to memory.
    pub writes_mem: bool,
}

impl Effects {
    fn mem_addr(&mut self, m: &Mem) {
        if let Some(b) = m.base {
            self.reads.insert(b);
        }
        if let Some((i, _)) = m.index {
            self.reads.insert(i);
        }
    }
}

impl Inst {
    /// Computes the def/use/flags/memory summary of this instruction.
    ///
    /// Control-flow instructions report their implicit stack traffic
    /// (`call` pushes, `ret` pops) but not the transfer itself; use
    /// [`Inst::is_control_flow`] for that. `int` is modeled as a full
    /// barrier: it reads and writes every register, flags and memory.
    pub fn effects(&self) -> Effects {
        use Inst::*;
        let mut e = Effects::default();
        match self {
            MovRI(d, _) => {
                e.writes.insert(*d);
            }
            MovRR(d, s) => {
                e.reads.insert(*s);
                e.writes.insert(*d);
            }
            MovRM(d, m) => {
                e.mem_addr(m);
                e.reads_mem = true;
                e.writes.insert(*d);
            }
            MovMR(m, s) => {
                e.mem_addr(m);
                e.reads.insert(*s);
                e.writes_mem = true;
            }
            MovMI(m, _) => {
                e.mem_addr(m);
                e.writes_mem = true;
            }
            AluRR(op, d, s) => {
                e.reads.insert(*d);
                e.reads.insert(*s);
                if !op.is_compare() {
                    e.writes.insert(*d);
                }
                e.writes_flags = true;
                e.reads_flags = matches!(op, AluOp::Adc | AluOp::Sbb);
            }
            AluRM(op, d, m) => {
                e.reads.insert(*d);
                e.mem_addr(m);
                e.reads_mem = true;
                if !op.is_compare() {
                    e.writes.insert(*d);
                }
                e.writes_flags = true;
                e.reads_flags = matches!(op, AluOp::Adc | AluOp::Sbb);
            }
            AluMR(op, m, s) => {
                e.mem_addr(m);
                e.reads.insert(*s);
                e.reads_mem = true;
                if !op.is_compare() {
                    e.writes_mem = true;
                }
                e.writes_flags = true;
                e.reads_flags = matches!(op, AluOp::Adc | AluOp::Sbb);
            }
            AluRI(op, d, _) => {
                e.reads.insert(*d);
                if !op.is_compare() {
                    e.writes.insert(*d);
                }
                e.writes_flags = true;
                e.reads_flags = matches!(op, AluOp::Adc | AluOp::Sbb);
            }
            AluMI(op, m, _) => {
                e.mem_addr(m);
                e.reads_mem = true;
                if !op.is_compare() {
                    e.writes_mem = true;
                }
                e.writes_flags = true;
                e.reads_flags = matches!(op, AluOp::Adc | AluOp::Sbb);
            }
            TestRR(a, b) => {
                e.reads.insert(*a);
                e.reads.insert(*b);
                e.writes_flags = true;
            }
            ImulRR(d, s) => {
                e.reads.insert(*d);
                e.reads.insert(*s);
                e.writes.insert(*d);
                e.writes_flags = true;
            }
            ImulRM(d, m) => {
                e.reads.insert(*d);
                e.mem_addr(m);
                e.reads_mem = true;
                e.writes.insert(*d);
                e.writes_flags = true;
            }
            ImulRRI(d, s, _) => {
                e.reads.insert(*s);
                e.writes.insert(*d);
                e.writes_flags = true;
            }
            Cdq => {
                e.reads.insert(Reg::Eax);
                e.writes.insert(Reg::Edx);
            }
            IdivR(r) => {
                e.reads = RegSet::of(&[*r, Reg::Eax, Reg::Edx]);
                e.writes = RegSet::of(&[Reg::Eax, Reg::Edx]);
                e.writes_flags = true; // flags are left undefined
            }
            NegR(r) => {
                e.reads.insert(*r);
                e.writes.insert(*r);
                e.writes_flags = true;
            }
            NotR(r) => {
                e.reads.insert(*r);
                e.writes.insert(*r);
            }
            IncR(r) | DecR(r) => {
                e.reads.insert(*r);
                e.writes.insert(*r);
                e.writes_flags = true;
            }
            IncDecM(_, m) => {
                e.mem_addr(m);
                e.reads_mem = true;
                e.writes_mem = true;
                e.writes_flags = true;
            }
            ShiftRI(_, r, count) => {
                e.reads.insert(*r);
                e.writes.insert(*r);
                if *count != 0 {
                    e.writes_flags = true;
                }
            }
            ShiftRCl(_, r) => {
                e.reads.insert(*r);
                e.reads.insert(Reg::Ecx);
                e.writes.insert(*r);
                e.writes_flags = true;
            }
            PushR(r) => {
                e.reads = RegSet::of(&[*r, Reg::Esp]);
                e.writes.insert(Reg::Esp);
                e.writes_mem = true;
            }
            PushI(_) => {
                e.reads.insert(Reg::Esp);
                e.writes.insert(Reg::Esp);
                e.writes_mem = true;
            }
            PushM(m) => {
                e.mem_addr(m);
                e.reads.insert(Reg::Esp);
                e.reads_mem = true;
                e.writes.insert(Reg::Esp);
                e.writes_mem = true;
            }
            PopR(r) => {
                e.reads.insert(Reg::Esp);
                e.writes.insert(*r);
                e.writes.insert(Reg::Esp);
                e.reads_mem = true;
            }
            Lea(d, m) => {
                e.mem_addr(m); // address computation only: no memory access
                e.writes.insert(*d);
            }
            XchgRR(a, b) => {
                e.reads.insert(*a);
                e.reads.insert(*b);
                e.writes.insert(*a);
                e.writes.insert(*b);
            }
            CallRel(_) => {
                e.reads.insert(Reg::Esp);
                e.writes.insert(Reg::Esp);
                e.writes_mem = true;
            }
            CallR(r) => {
                e.reads = RegSet::of(&[*r, Reg::Esp]);
                e.writes.insert(Reg::Esp);
                e.writes_mem = true;
            }
            Ret | RetImm(_) => {
                e.reads.insert(Reg::Esp);
                e.writes.insert(Reg::Esp);
                e.reads_mem = true;
            }
            JmpRel(_) | JmpRel8(_) | Hlt => {}
            JmpR(r) => {
                e.reads.insert(*r);
            }
            Jcc(..) | Jcc8(..) => {
                e.reads_flags = true;
            }
            Int(_) => {
                e.reads = RegSet::of(&Reg::ALL);
                e.writes = RegSet::of(&Reg::ALL);
                e.reads_flags = true;
                e.writes_flags = true;
                e.reads_mem = true;
                e.writes_mem = true;
            }
            Nop(k) => {
                if !matches!(k, crate::nop::NopKind::Nop) {
                    e = k.as_inst().effects();
                }
            }
        }
        e
    }

    /// `true` if executing this instruction provably leaves every register,
    /// every EFLAGS bit and all of memory unchanged.
    ///
    /// This covers exactly the shapes the Table-1 NOP candidates take:
    /// `nop`, `mov r, r`, `xchg r, r`, and `lea r, [r]` / `lea r, [r*1]`
    /// with zero displacement.
    pub fn is_identity(&self) -> bool {
        use Inst::*;
        match self {
            Nop(k) => matches!(k, crate::nop::NopKind::Nop) || k.as_inst().is_identity(),
            MovRR(d, s) => d == s,
            XchgRR(a, b) => a == b,
            Lea(d, m) => {
                m.disp == 0
                    && match (m.base, m.index) {
                        (Some(b), None) => b == *d,
                        (None, Some((i, s))) => i == *d && s.factor() == 1,
                        _ => false,
                    }
            }
            _ => false,
        }
    }

    /// The syntactic register operands, in operand order (memory operands
    /// contribute base then index). Implicit registers (`esp` of push/pop,
    /// `eax`/`edx` of `cdq`…) are *not* included; see [`Inst::effects`].
    pub fn regs(&self) -> Vec<Reg> {
        use Inst::*;
        fn mem(out: &mut Vec<Reg>, m: &Mem) {
            if let Some(b) = m.base {
                out.push(b);
            }
            if let Some((i, _)) = m.index {
                out.push(i);
            }
        }
        let mut out = Vec::new();
        match self {
            MovRI(r, _)
            | AluRI(_, r, _)
            | NegR(r)
            | NotR(r)
            | IncR(r)
            | DecR(r)
            | ShiftRI(_, r, _)
            | ShiftRCl(_, r)
            | PushR(r)
            | PopR(r)
            | IdivR(r)
            | CallR(r)
            | JmpR(r) => out.push(*r),
            MovRR(a, b) | AluRR(_, a, b) | TestRR(a, b) | ImulRR(a, b) | XchgRR(a, b) => {
                out.push(*a);
                out.push(*b);
            }
            ImulRRI(d, s, _) => {
                out.push(*d);
                out.push(*s);
            }
            MovRM(r, m) | AluRM(_, r, m) | ImulRM(r, m) | Lea(r, m) => {
                out.push(*r);
                mem(&mut out, m);
            }
            MovMR(m, r) | AluMR(_, m, r) => {
                mem(&mut out, m);
                out.push(*r);
            }
            MovMI(m, _) | AluMI(_, m, _) | IncDecM(_, m) | PushM(m) => mem(&mut out, m),
            Cdq | PushI(_) | CallRel(_) | Ret | RetImm(_) | JmpRel(_) | JmpRel8(_) | Jcc(..)
            | Jcc8(..) | Int(_) | Hlt | Nop(_) => {}
        }
        out
    }

    /// Returns a copy of this instruction with every syntactic register
    /// operand replaced by `f(reg)`. Implicit registers are untouched, so
    /// renaming `esp`/`ebp` through `f` does not affect push/pop/call
    /// stack traffic semantics.
    pub fn map_regs(&self, mut f: impl FnMut(Reg) -> Reg) -> Inst {
        use Inst::*;
        fn fm(m: &Mem, f: &mut dyn FnMut(Reg) -> Reg) -> Mem {
            Mem {
                base: m.base.map(&mut *f),
                index: m.index.map(|(r, s)| (f(r), s)),
                disp: m.disp,
            }
        }
        match *self {
            MovRI(r, i) => MovRI(f(r), i),
            MovRR(a, b) => MovRR(f(a), f(b)),
            MovRM(r, m) => MovRM(f(r), fm(&m, &mut f)),
            MovMR(m, r) => {
                let m = fm(&m, &mut f);
                MovMR(m, f(r))
            }
            MovMI(m, i) => MovMI(fm(&m, &mut f), i),
            AluRR(op, a, b) => AluRR(op, f(a), f(b)),
            AluRM(op, r, m) => {
                let r = f(r);
                AluRM(op, r, fm(&m, &mut f))
            }
            AluMR(op, m, r) => {
                let m = fm(&m, &mut f);
                AluMR(op, m, f(r))
            }
            AluRI(op, r, i) => AluRI(op, f(r), i),
            AluMI(op, m, i) => AluMI(op, fm(&m, &mut f), i),
            TestRR(a, b) => TestRR(f(a), f(b)),
            ImulRR(a, b) => ImulRR(f(a), f(b)),
            ImulRM(r, m) => {
                let r = f(r);
                ImulRM(r, fm(&m, &mut f))
            }
            ImulRRI(d, s, i) => ImulRRI(f(d), f(s), i),
            Cdq => Cdq,
            IdivR(r) => IdivR(f(r)),
            NegR(r) => NegR(f(r)),
            NotR(r) => NotR(f(r)),
            IncR(r) => IncR(f(r)),
            DecR(r) => DecR(f(r)),
            IncDecM(inc, m) => IncDecM(inc, fm(&m, &mut f)),
            ShiftRI(op, r, c) => ShiftRI(op, f(r), c),
            ShiftRCl(op, r) => ShiftRCl(op, f(r)),
            PushR(r) => PushR(f(r)),
            PushI(i) => PushI(i),
            PushM(m) => PushM(fm(&m, &mut f)),
            PopR(r) => PopR(f(r)),
            Lea(r, m) => {
                let r = f(r);
                Lea(r, fm(&m, &mut f))
            }
            XchgRR(a, b) => XchgRR(f(a), f(b)),
            CallRel(d) => CallRel(d),
            CallR(r) => CallR(f(r)),
            Ret => Ret,
            RetImm(n) => RetImm(n),
            JmpRel(d) => JmpRel(d),
            JmpRel8(d) => JmpRel8(d),
            JmpR(r) => JmpR(f(r)),
            Jcc(c, d) => Jcc(c, d),
            Jcc8(c, d) => Jcc8(c, d),
            Int(n) => Int(n),
            Hlt => Hlt,
            Nop(k) => Nop(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Scale;
    use crate::nop::{NopKind, NopTable};

    #[test]
    fn regset_basic_ops() {
        let mut s = RegSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Reg::Eax);
        s.insert(Reg::Edi);
        assert!(s.contains(Reg::Eax) && s.contains(Reg::Edi));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Reg::Eax, Reg::Edi]);
        s.remove(Reg::Eax);
        assert!(!s.contains(Reg::Eax));
        let t = RegSet::of(&[Reg::Edi, Reg::Esi]);
        assert_eq!(s.union(t), t);
        assert_eq!(s.intersect(t), RegSet::of(&[Reg::Edi]));
        assert_eq!(t.minus(s), RegSet::of(&[Reg::Esi]));
        assert_eq!(format!("{t}"), "{esi,edi}");
    }

    #[test]
    fn push_pop_track_esp() {
        let e = Inst::PushR(Reg::Ebx).effects();
        assert!(e.reads.contains(Reg::Ebx) && e.reads.contains(Reg::Esp));
        assert!(e.writes.contains(Reg::Esp) && e.writes_mem && !e.writes_flags);
        let e = Inst::PopR(Reg::Ebx).effects();
        assert!(e.writes.contains(Reg::Ebx) && e.writes.contains(Reg::Esp) && e.reads_mem);
    }

    #[test]
    fn alu_flags_and_compare() {
        let e = Inst::AluRR(AluOp::Cmp, Reg::Eax, Reg::Ebx).effects();
        assert!(e.writes.is_empty() && e.writes_flags);
        let e = Inst::AluRI(AluOp::Adc, Reg::Eax, 1).effects();
        assert!(e.reads_flags && e.writes_flags && e.writes.contains(Reg::Eax));
        let e = Inst::Jcc(crate::Cond::E, 0).effects();
        assert!(e.reads_flags && !e.writes_flags);
    }

    #[test]
    fn cdq_idiv_implicits() {
        let e = Inst::Cdq.effects();
        assert!(e.reads.contains(Reg::Eax) && e.writes.contains(Reg::Edx) && !e.writes_flags);
        let e = Inst::IdivR(Reg::Ecx).effects();
        assert!(e.reads.contains(Reg::Eax) && e.reads.contains(Reg::Edx));
        assert!(e.writes.contains(Reg::Eax) && e.writes.contains(Reg::Edx));
    }

    /// Every Table-1 NOP candidate must be an architectural identity that
    /// leaves EFLAGS alone — this is what makes `divcheck`'s "inserted
    /// bytes are harmless" argument sound.
    #[test]
    fn nop_table_entries_are_flagless_identities() {
        for kind in NopKind::ALL {
            let inst = kind.as_inst();
            let e = inst.effects();
            assert!(inst.is_identity(), "{kind:?} not an identity: {inst:?}");
            assert!(!e.writes_flags, "{kind:?} writes EFLAGS");
            assert!(!e.reads_flags, "{kind:?} reads EFLAGS");
            assert!(!e.reads_mem && !e.writes_mem, "{kind:?} touches memory");
            // Any register it writes it also reads, and the value written
            // is the value read (identity), so no live value is clobbered.
            assert_eq!(
                e.writes.minus(e.reads),
                RegSet::EMPTY,
                "{kind:?} defines fresh value"
            );
            assert!(!inst.is_control_flow(), "{kind:?} is control flow");
        }
    }

    /// The encoded bytes of each candidate must decode back to that same
    /// identity instruction — the validator re-derives safety from decoded
    /// variant bytes, not from the generator's intent.
    #[test]
    fn nop_table_bytes_decode_to_identities() {
        for table in [NopTable::new(), NopTable::with_xchg()] {
            for kind in table.iter() {
                let d = crate::decode(kind.bytes()).expect("candidate decodes");
                assert_eq!(d.len, kind.len());
                match d.body {
                    crate::Body::Known(inst) => {
                        assert!(inst.is_identity(), "{kind:?} decodes to {inst:?}");
                        assert!(!inst.effects().writes_flags);
                    }
                    crate::Body::Other(o) => panic!("{kind:?} decodes to Other({o:?})"),
                }
            }
        }
    }

    #[test]
    fn non_identities_are_rejected() {
        assert!(!Inst::MovRR(Reg::Eax, Reg::Ebx).is_identity());
        assert!(!Inst::Lea(Reg::Esi, Mem::base_disp(Reg::Esi, 4)).is_identity());
        assert!(!Inst::Lea(Reg::Esi, Mem::base_disp(Reg::Edi, 0)).is_identity());
        assert!(!Inst::AluRI(AluOp::Add, Reg::Eax, 0).is_identity());
        assert!(!Inst::XchgRR(Reg::Eax, Reg::Ebx).is_identity());
    }

    #[test]
    fn map_regs_and_regs_roundtrip() {
        let swap = |r| match r {
            Reg::Ebx => Reg::Esi,
            Reg::Esi => Reg::Ebx,
            other => other,
        };
        let m = Mem {
            base: Some(Reg::Ebx),
            index: Some((Reg::Esi, Scale::S4)),
            disp: 8,
        };
        let inst = Inst::MovRM(Reg::Eax, m);
        assert_eq!(inst.regs(), vec![Reg::Eax, Reg::Ebx, Reg::Esi]);
        let mapped = inst.map_regs(swap);
        assert_eq!(mapped.regs(), vec![Reg::Eax, Reg::Esi, Reg::Ebx]);
        assert_eq!(mapped.map_regs(swap), inst);
        // Displacements and immediates survive renaming.
        assert_eq!(
            Inst::AluRI(AluOp::Add, Reg::Ebx, 42).map_regs(swap),
            Inst::AluRI(AluOp::Add, Reg::Esi, 42)
        );
    }
}
