//! Condition codes (`cc`) used by `Jcc` and `SETcc`.

use std::fmt;

/// An IA-32 condition code.
///
/// The discriminant is the 4-bit condition number `tttn` from the Intel SDM,
/// so `cc as u8` can be OR-ed into the `0x70 + cc` (short `Jcc`) and
/// `0x0F 0x80 + cc` (near `Jcc`) opcodes.
///
/// # Examples
///
/// ```
/// use pgsd_x86::Cond;
/// assert_eq!(Cond::E.number(), 4);
/// assert_eq!(Cond::E.negated(), Cond::Ne);
/// assert_eq!(Cond::L.to_string(), "l");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Overflow (OF=1).
    O = 0,
    /// Not overflow (OF=0).
    No = 1,
    /// Below / carry (CF=1), unsigned `<`.
    B = 2,
    /// Above or equal (CF=0), unsigned `>=`.
    Ae = 3,
    /// Equal / zero (ZF=1).
    E = 4,
    /// Not equal / not zero (ZF=0).
    Ne = 5,
    /// Below or equal (CF=1 or ZF=1), unsigned `<=`.
    Be = 6,
    /// Above (CF=0 and ZF=0), unsigned `>`.
    A = 7,
    /// Sign (SF=1).
    S = 8,
    /// Not sign (SF=0).
    Ns = 9,
    /// Parity even (PF=1).
    P = 10,
    /// Parity odd (PF=0).
    Np = 11,
    /// Less (SF≠OF), signed `<`.
    L = 12,
    /// Greater or equal (SF=OF), signed `>=`.
    Ge = 13,
    /// Less or equal (ZF=1 or SF≠OF), signed `<=`.
    Le = 14,
    /// Greater (ZF=0 and SF=OF), signed `>`.
    G = 15,
}

impl Cond {
    /// All sixteen condition codes in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::O,
        Cond::No,
        Cond::B,
        Cond::Ae,
        Cond::E,
        Cond::Ne,
        Cond::Be,
        Cond::A,
        Cond::S,
        Cond::Ns,
        Cond::P,
        Cond::Np,
        Cond::L,
        Cond::Ge,
        Cond::Le,
        Cond::G,
    ];

    /// The 4-bit `tttn` condition number.
    #[inline]
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Looks up a condition code by its `tttn` number.
    ///
    /// Returns `None` if `n >= 16`.
    #[inline]
    pub fn from_number(n: u8) -> Option<Cond> {
        Cond::ALL.get(usize::from(n)).copied()
    }

    /// The logical negation (flips the lowest bit of the encoding).
    ///
    /// `Jcc target` followed by fall-through is equivalent to
    /// `J(!cc) fallthrough; jmp target`.
    #[inline]
    pub fn negated(self) -> Cond {
        Cond::from_number(self.number() ^ 1).expect("negation stays in range")
    }

    /// The condition that holds after swapping the two comparison operands,
    /// e.g. `L` becomes `G` (`a < b` iff `b > a`).
    pub fn swapped_operands(self) -> Cond {
        match self {
            Cond::B => Cond::A,
            Cond::A => Cond::B,
            Cond::Ae => Cond::Be,
            Cond::Be => Cond::Ae,
            Cond::L => Cond::G,
            Cond::G => Cond::L,
            Cond::Ge => Cond::Le,
            Cond::Le => Cond::Ge,
            other => other,
        }
    }

    /// The canonical mnemonic suffix, e.g. `"e"` for `je`.
    pub fn name(self) -> &'static str {
        match self {
            Cond::O => "o",
            Cond::No => "no",
            Cond::B => "b",
            Cond::Ae => "ae",
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::S => "s",
            Cond::Ns => "ns",
            Cond::P => "p",
            Cond::Np => "np",
            Cond::L => "l",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::G => "g",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_number(c.number()), Some(c));
        }
        assert_eq!(Cond::from_number(16), None);
    }

    #[test]
    fn negation_is_involution() {
        for c in Cond::ALL {
            assert_eq!(c.negated().negated(), c);
            assert_ne!(c.negated(), c);
        }
    }

    #[test]
    fn swap_is_involution() {
        for c in Cond::ALL {
            assert_eq!(c.swapped_operands().swapped_operands(), c);
        }
    }

    #[test]
    fn signed_negations() {
        assert_eq!(Cond::L.negated(), Cond::Ge);
        assert_eq!(Cond::Le.negated(), Cond::G);
        assert_eq!(Cond::E.negated(), Cond::Ne);
    }
}
