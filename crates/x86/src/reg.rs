//! General-purpose 32-bit registers of the IA-32 architecture.

use std::fmt;

/// A 32-bit general-purpose register.
///
/// The discriminant is the hardware register number used in ModRM/SIB
/// encodings, so `reg as u8` is directly usable by the encoder.
///
/// # Examples
///
/// ```
/// use pgsd_x86::Reg;
/// assert_eq!(Reg::Esp.number(), 4);
/// assert_eq!(Reg::from_number(4), Some(Reg::Esp));
/// assert_eq!(Reg::Eax.to_string(), "eax");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // variants are the standard register names
pub enum Reg {
    Eax = 0,
    Ecx = 1,
    Edx = 2,
    Ebx = 3,
    Esp = 4,
    Ebp = 5,
    Esi = 6,
    Edi = 7,
}

impl Reg {
    /// All eight registers in encoding order.
    pub const ALL: [Reg; 8] = [
        Reg::Eax,
        Reg::Ecx,
        Reg::Edx,
        Reg::Ebx,
        Reg::Esp,
        Reg::Ebp,
        Reg::Esi,
        Reg::Edi,
    ];

    /// The hardware encoding number (0–7) of this register.
    #[inline]
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Looks up a register by its hardware encoding number.
    ///
    /// Returns `None` if `n >= 8`.
    #[inline]
    pub fn from_number(n: u8) -> Option<Reg> {
        Reg::ALL.get(usize::from(n)).copied()
    }

    /// The canonical lowercase mnemonic, e.g. `"eax"`.
    pub fn name(self) -> &'static str {
        match self {
            Reg::Eax => "eax",
            Reg::Ecx => "ecx",
            Reg::Edx => "edx",
            Reg::Ebx => "ebx",
            Reg::Esp => "esp",
            Reg::Ebp => "ebp",
            Reg::Esi => "esi",
            Reg::Edi => "edi",
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_number(r.number()), Some(r));
        }
    }

    #[test]
    fn out_of_range_is_none() {
        assert_eq!(Reg::from_number(8), None);
        assert_eq!(Reg::from_number(255), None);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Reg::Ebp.to_string(), "ebp");
        assert_eq!(format!("{}", Reg::Edi), "edi");
    }
}
