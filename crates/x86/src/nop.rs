//! The NOP candidate table of the paper (Table 1).
//!
//! The paper selects no-operation instructions that (a) preserve the entire
//! processor state — registers, memory *and* flags — and (b) are unlikely to
//! give an attacker useful bytes: the second byte of every two-byte candidate
//! decodes to something harmless or unusable (`in`, a segment-override
//! prefix, or `aas`).
//!
//! Two additional `xchg`-based candidates preserve state equally well but pay
//! a bus-lock penalty on real implementations (Intel SDM), so the default
//! candidate set excludes them; [`NopTable::with_xchg`] opts in, matching the
//! paper's compile-time switch.

use std::fmt;

use crate::{Inst, Mem, Reg};

/// One diversifying NOP candidate from the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NopKind {
    /// `nop` — `90`.
    Nop,
    /// `mov esp, esp` — `89 E4`; second byte decodes to `in`.
    MovEspEsp,
    /// `mov ebp, ebp` — `89 ED`; second byte decodes to `in`.
    MovEbpEbp,
    /// `lea esi, [esi]` — `8D 36`; second byte decodes to an `ss:` prefix.
    LeaEsiEsi,
    /// `lea edi, [edi]` — `8D 3F`; second byte decodes to `aas`.
    LeaEdiEdi,
    /// `xchg esp, esp` — `87 E4`; bus-locking, disabled by default.
    XchgEspEsp,
    /// `xchg ebp, ebp` — `87 ED`; bus-locking, disabled by default.
    XchgEbpEbp,
}

impl NopKind {
    /// All seven candidates, in the paper's Table 1 order.
    pub const ALL: [NopKind; 7] = [
        NopKind::Nop,
        NopKind::MovEspEsp,
        NopKind::MovEbpEbp,
        NopKind::LeaEsiEsi,
        NopKind::LeaEdiEdi,
        NopKind::XchgEspEsp,
        NopKind::XchgEbpEbp,
    ];

    /// The machine-code encoding of this candidate.
    pub fn bytes(self) -> &'static [u8] {
        match self {
            NopKind::Nop => &[0x90],
            NopKind::MovEspEsp => &[0x89, 0xE4],
            NopKind::MovEbpEbp => &[0x89, 0xED],
            NopKind::LeaEsiEsi => &[0x8D, 0x36],
            NopKind::LeaEdiEdi => &[0x8D, 0x3F],
            NopKind::XchgEspEsp => &[0x87, 0xE4],
            NopKind::XchgEbpEbp => &[0x87, 0xED],
        }
    }

    /// Encoded length in bytes (1 or 2).
    #[inline]
    #[allow(clippy::len_without_is_empty)] // a NOP always has bytes
    pub fn len(self) -> usize {
        self.bytes().len()
    }

    /// The assembly text of this candidate.
    pub fn asm(self) -> &'static str {
        match self {
            NopKind::Nop => "nop",
            NopKind::MovEspEsp => "mov esp, esp",
            NopKind::MovEbpEbp => "mov ebp, ebp",
            NopKind::LeaEsiEsi => "lea esi, [esi]",
            NopKind::LeaEdiEdi => "lea edi, [edi]",
            NopKind::XchgEspEsp => "xchg esp, esp",
            NopKind::XchgEbpEbp => "xchg ebp, ebp",
        }
    }

    /// What the *second* byte of the encoding decodes to on its own —
    /// the "Second Byte Decoding" column of Table 1 (`None` for the
    /// single-byte `nop`).
    pub fn second_byte_decoding(self) -> Option<&'static str> {
        match self {
            NopKind::Nop => None,
            NopKind::MovEspEsp | NopKind::MovEbpEbp => Some("in"),
            NopKind::LeaEsiEsi => Some("ss:"),
            NopKind::LeaEdiEdi => Some("aas"),
            NopKind::XchgEspEsp | NopKind::XchgEbpEbp => Some("in"),
        }
    }

    /// `true` for the `xchg`-based candidates, which lock the memory bus on
    /// current x86 implementations and therefore cost far more than the
    /// other candidates (paper §3).
    #[inline]
    pub fn locks_bus(self) -> bool {
        matches!(self, NopKind::XchgEspEsp | NopKind::XchgEbpEbp)
    }

    /// The equivalent structured instruction, as the decoder would report it.
    pub fn as_inst(self) -> Inst {
        match self {
            NopKind::Nop => Inst::Nop(NopKind::Nop),
            NopKind::MovEspEsp => Inst::MovRR(Reg::Esp, Reg::Esp),
            NopKind::MovEbpEbp => Inst::MovRR(Reg::Ebp, Reg::Ebp),
            NopKind::LeaEsiEsi => Inst::Lea(Reg::Esi, Mem::base_disp(Reg::Esi, 0)),
            NopKind::LeaEdiEdi => Inst::Lea(Reg::Edi, Mem::base_disp(Reg::Edi, 0)),
            NopKind::XchgEspEsp => Inst::XchgRR(Reg::Esp, Reg::Esp),
            NopKind::XchgEbpEbp => Inst::XchgRR(Reg::Ebp, Reg::Ebp),
        }
    }
}

impl fmt::Display for NopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.asm())
    }
}

/// The set of NOP candidates the insertion pass draws from.
///
/// # Examples
///
/// ```
/// use pgsd_x86::nop::NopTable;
/// let table = NopTable::new();
/// assert_eq!(table.len(), 5);
/// let full = NopTable::with_xchg();
/// assert_eq!(full.len(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NopTable {
    kinds: Vec<NopKind>,
}

impl NopTable {
    /// The default table: the five candidates that do not lock the bus.
    pub fn new() -> NopTable {
        NopTable {
            kinds: NopKind::ALL
                .iter()
                .copied()
                .filter(|k| !k.locks_bus())
                .collect(),
        }
    }

    /// The full seven-candidate table including the `xchg` forms
    /// (the paper's compile-time opt-in for extra diversity).
    pub fn with_xchg() -> NopTable {
        NopTable {
            kinds: NopKind::ALL.to_vec(),
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` if the table has no candidates (never the case for the
    /// provided constructors).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The candidate at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn kind(&self, index: usize) -> NopKind {
        self.kinds[index]
    }

    /// Iterates over the candidates in table order.
    pub fn iter(&self) -> impl Iterator<Item = NopKind> + '_ {
        self.kinds.iter().copied()
    }

    /// Strips every *complete* candidate encoding from `bytes`, returning the
    /// normalized residue. This is the normalization step of the paper's
    /// Survivor comparison: it removes all potentially-inserted NOPs before
    /// comparing an original and a diversified instruction sequence.
    ///
    /// Matching is greedy left-to-right and always prefers the two-byte
    /// candidates, so that `89 E4` is removed as a unit rather than leaving
    /// a stray `E4` behind. Because stripping can only make two sequences
    /// *more* similar, the comparison built on it conservatively
    /// overestimates survivors, as in the paper.
    pub fn strip(&self, bytes: &[u8]) -> Vec<u8> {
        // Prefer longer encodings so two-byte candidates are removed
        // atomically.
        let mut kinds: Vec<NopKind> = self.kinds.clone();
        kinds.sort_by_key(|k| std::cmp::Reverse(k.len()));
        let mut out = Vec::with_capacity(bytes.len());
        let mut i = 0;
        'outer: while i < bytes.len() {
            for &k in &kinds {
                let enc = k.bytes();
                if bytes[i..].starts_with(enc) {
                    i += enc.len();
                    continue 'outer;
                }
            }
            out.push(bytes[i]);
            i += 1;
        }
        out
    }
}

impl Default for NopTable {
    fn default() -> NopTable {
        NopTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_encodings() {
        assert_eq!(NopKind::Nop.bytes(), &[0x90]);
        assert_eq!(NopKind::MovEspEsp.bytes(), &[0x89, 0xE4]);
        assert_eq!(NopKind::MovEbpEbp.bytes(), &[0x89, 0xED]);
        assert_eq!(NopKind::LeaEsiEsi.bytes(), &[0x8D, 0x36]);
        assert_eq!(NopKind::LeaEdiEdi.bytes(), &[0x8D, 0x3F]);
        assert_eq!(NopKind::XchgEspEsp.bytes(), &[0x87, 0xE4]);
        assert_eq!(NopKind::XchgEbpEbp.bytes(), &[0x87, 0xED]);
    }

    #[test]
    fn default_table_excludes_bus_locking_candidates() {
        let t = NopTable::new();
        assert_eq!(t.len(), 5);
        assert!(t.iter().all(|k| !k.locks_bus()));
        assert!(NopTable::with_xchg().iter().any(|k| k.locks_bus()));
    }

    #[test]
    fn strip_removes_all_candidates() {
        let t = NopTable::with_xchg();
        let mut bytes = Vec::new();
        for k in NopKind::ALL {
            bytes.extend_from_slice(k.bytes());
        }
        bytes.push(0xC3);
        assert_eq!(t.strip(&bytes), vec![0xC3]);
    }

    #[test]
    fn strip_keeps_partial_patterns() {
        let t = NopTable::new();
        // 0x89 alone (no valid second byte) must survive.
        assert_eq!(t.strip(&[0x89, 0xC0]), vec![0x89, 0xC0]);
        // An interleaved real instruction survives around NOPs.
        assert_eq!(t.strip(&[0x90, 0x40, 0x89, 0xE4, 0xC3]), vec![0x40, 0xC3]);
    }

    #[test]
    fn second_byte_column_matches_paper() {
        assert_eq!(NopKind::MovEspEsp.second_byte_decoding(), Some("in"));
        assert_eq!(NopKind::LeaEsiEsi.second_byte_decoding(), Some("ss:"));
        assert_eq!(NopKind::LeaEdiEdi.second_byte_decoding(), Some("aas"));
        assert_eq!(NopKind::Nop.second_byte_decoding(), None);
    }
}
