//! # pgsd-x86 — IA-32 instruction model, encoder and decoder
//!
//! Foundation crate of the *profile-guided automated software diversity*
//! reproduction (Homescu et al., CGO 2013). Everything in the toolchain that
//! touches machine code goes through this crate:
//!
//! * the compiler backend assembles [`Inst`] values with [`encode()`];
//! * the emulator and the gadget scanner disassemble raw bytes with
//!   [`decode()`], which accepts the full one-byte opcode map (plus common
//!   `0F` opcodes) so that *arbitrary* byte sequences — the gadget scanner's
//!   bread and butter — can be classified as valid or invalid x86;
//! * the diversifying NOP candidates of the paper's Table 1 live in
//!   [`nop`].
//!
//! # Examples
//!
//! Assemble, then disassemble, a function epilogue:
//!
//! ```
//! use pgsd_x86::{assemble, decode_all, Inst, Reg};
//!
//! let bytes = assemble(&[Inst::PopR(Reg::Ebp), Inst::Ret])?;
//! let insts = decode_all(&bytes);
//! assert_eq!(insts.len(), 2);
//! assert!(insts[1].1.is_free_branch());
//! # Ok::<(), pgsd_x86::EncodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cond;
pub mod decode;
mod effects;
pub mod encode;
mod inst;
pub mod nop;
mod reg;

pub use cond::Cond;
pub use decode::{decode, decode_all, Body, CfKind, Class, DecodeError, Decoded, OtherInst};
pub use effects::{Effects, RegSet};
pub use encode::{assemble, encode, encoded_len, EncodeError};
pub use inst::{AluOp, Inst, Mem, Scale, ShiftOp};
pub use reg::Reg;
