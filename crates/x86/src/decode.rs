//! General IA-32 instruction decoder.
//!
//! Unlike the encoder, which only produces the compiler's instruction
//! subset, the decoder accepts the *full one-byte opcode map* plus the
//! commonly used two-byte (`0F`) opcodes. This is required by the gadget
//! scanner, which must decode arbitrary byte sequences at arbitrary offsets
//! and decide whether they form valid x86 code (paper §5.2), and by the
//! emulator, which re-decodes the bytes it executes.
//!
//! Instructions inside the modeled subset decode to a structured
//! [`crate::Inst`]; everything else decodes to an [`OtherInst`] that
//! carries the mnemonic and a coarse [`Class`] sufficient for gadget
//! classification and cost modeling.

use std::error::Error;
use std::fmt;

use crate::inst::{AluOp, Inst, Mem, Scale, ShiftOp};
use crate::nop::NopKind;
use crate::{Cond, Reg};

/// Maximum legal instruction length, including prefixes (Intel SDM).
pub const MAX_INST_LEN: usize = 15;

/// Why a byte sequence failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// More bytes are needed to finish decoding.
    Truncated,
    /// The bytes do not form a valid instruction (undefined opcode,
    /// undefined group extension, register operand where memory is
    /// required, or more than [`MAX_INST_LEN`] bytes of prefixes).
    Invalid,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction is truncated"),
            DecodeError::Invalid => write!(f, "invalid instruction encoding"),
        }
    }
}

impl Error for DecodeError {}

/// Control-flow categorization of a decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CfKind {
    /// `ret` / `ret imm16` — a free branch.
    RetNear,
    /// `retf` / `retf imm16` / `iret` — also counted as free.
    RetFar,
    /// Direct relative jump.
    JmpRel,
    /// Indirect jump through register or memory — a free branch.
    JmpInd,
    /// Far direct jump.
    JmpFar,
    /// Direct relative call.
    CallRel,
    /// Indirect call through register or memory — a free branch.
    CallInd,
    /// Far direct call.
    CallFar,
    /// Conditional relative jump (`jcc`, `loop*`, `jecxz`).
    CondJmp,
    /// Software interrupt (`int n`, `int3`, `into`) or `sysenter`.
    Syscall,
    /// `hlt`.
    Halt,
}

impl CfKind {
    /// `true` for the free branches a ROP gadget may end in (paper §5.2):
    /// returns, indirect calls and indirect jumps.
    pub fn is_free_branch(self) -> bool {
        matches!(
            self,
            CfKind::RetNear | CfKind::RetFar | CfKind::JmpInd | CfKind::CallInd
        )
    }
}

/// Coarse classification of a decoded instruction, used by the gadget
/// scanner and the emulator's cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Ordinary user-mode data instruction.
    Normal,
    /// String instruction (`movs`, `stos`, …) — possibly `rep`-prefixed.
    String,
    /// x87 floating-point instruction.
    Fpu,
    /// I/O or privileged instruction; faults in user mode (paper §3 notes
    /// this makes `in` harmless as a NOP second byte).
    PrivilegedOrIo,
    /// Control flow of the given kind.
    ControlFlow(CfKind),
}

impl Class {
    /// `true` if this instruction may redirect execution.
    pub fn is_control_flow(self) -> bool {
        matches!(self, Class::ControlFlow(_))
    }

    /// `true` if this is a gadget-terminating free branch.
    pub fn is_free_branch(self) -> bool {
        matches!(self, Class::ControlFlow(k) if k.is_free_branch())
    }
}

/// An instruction outside the modeled subset: mnemonic plus classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OtherInst {
    /// Lowercase mnemonic (without operands).
    pub name: &'static str,
    /// Coarse class.
    pub class: Class,
}

impl fmt::Display for OtherInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

/// The payload of a successfully decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Body {
    /// An instruction of the modeled subset.
    Known(Inst),
    /// Any other valid instruction.
    Other(OtherInst),
}

/// A successfully decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decoded {
    /// Total encoded length in bytes, including prefixes.
    pub len: usize,
    /// The decoded instruction.
    pub body: Body,
    /// Number of leading prefix bytes consumed.
    pub prefix_len: usize,
}

impl Decoded {
    /// The coarse class of the instruction.
    pub fn class(&self) -> Class {
        match &self.body {
            Body::Known(i) => known_class(i),
            Body::Other(o) => o.class,
        }
    }

    /// `true` if this instruction may transfer control.
    pub fn is_control_flow(&self) -> bool {
        self.class().is_control_flow()
    }

    /// `true` for gadget-terminating free branches (returns, indirect
    /// jumps/calls).
    pub fn is_free_branch(&self) -> bool {
        self.class().is_free_branch()
    }

    /// The structured instruction, if inside the modeled subset.
    pub fn known(&self) -> Option<&Inst> {
        match &self.body {
            Body::Known(i) => Some(i),
            Body::Other(_) => None,
        }
    }
}

impl fmt::Display for Decoded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.body {
            Body::Known(i) => i.fmt(f),
            Body::Other(o) => o.fmt(f),
        }
    }
}

fn known_class(i: &Inst) -> Class {
    match i {
        Inst::CallRel(_) => Class::ControlFlow(CfKind::CallRel),
        Inst::CallR(_) => Class::ControlFlow(CfKind::CallInd),
        Inst::Ret | Inst::RetImm(_) => Class::ControlFlow(CfKind::RetNear),
        Inst::JmpRel(_) | Inst::JmpRel8(_) => Class::ControlFlow(CfKind::JmpRel),
        Inst::JmpR(_) => Class::ControlFlow(CfKind::JmpInd),
        Inst::Jcc(..) | Inst::Jcc8(..) => Class::ControlFlow(CfKind::CondJmp),
        Inst::Int(_) => Class::ControlFlow(CfKind::Syscall),
        Inst::Hlt => Class::ControlFlow(CfKind::Halt),
        _ => Class::Normal,
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn i8(&mut self) -> Result<i8, DecodeError> {
        Ok(self.u8()? as i8)
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let lo = self.u8()?;
        let hi = self.u8()?;
        Ok(u16::from_le_bytes([lo, hi]))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let mut b = [0u8; 4];
        for slot in &mut b {
            *slot = self.u8()?;
        }
        Ok(i32::from_le_bytes(b))
    }

    /// Immediate of "operand size" width: 32-bit, or 16-bit under the 0x66
    /// prefix (sign-extended).
    fn imm_z(&mut self, opsize16: bool) -> Result<i32, DecodeError> {
        if opsize16 {
            Ok(i32::from(self.u16()? as i16))
        } else {
            self.i32()
        }
    }

    fn skip(&mut self, n: usize) -> Result<(), DecodeError> {
        if self.pos + n > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        self.pos += n;
        Ok(())
    }
}

/// Result of parsing a ModRM byte (plus SIB/displacement).
#[derive(Debug, Clone, Copy)]
enum Rm {
    Reg(Reg),
    Mem(Mem),
}

/// Parses ModRM with 32-bit addressing. Returns (reg field, rm operand).
fn parse_modrm32(c: &mut Cursor<'_>) -> Result<(u8, Rm), DecodeError> {
    let modrm = c.u8()?;
    let md = modrm >> 6;
    let reg = (modrm >> 3) & 7;
    let rm = modrm & 7;
    if md == 3 {
        return Ok((reg, Rm::Reg(Reg::from_number(rm).expect("3-bit register"))));
    }
    let mut mem = Mem {
        base: None,
        index: None,
        disp: 0,
    };
    let mut disp_size = match md {
        0 => 0usize,
        1 => 1,
        _ => 4,
    };
    if rm == 4 {
        // SIB byte.
        let sib = c.u8()?;
        let ss = sib >> 6;
        let idx = (sib >> 3) & 7;
        let base = sib & 7;
        if idx != 4 {
            mem.index = Some((
                Reg::from_number(idx).expect("3-bit register"),
                Scale::from_bits(ss),
            ));
        }
        if base == 5 && md == 0 {
            disp_size = 4;
        } else {
            mem.base = Some(Reg::from_number(base).expect("3-bit register"));
        }
    } else if rm == 5 && md == 0 {
        disp_size = 4;
    } else {
        mem.base = Some(Reg::from_number(rm).expect("3-bit register"));
    }
    mem.disp = match disp_size {
        0 => 0,
        1 => i32::from(c.i8()?),
        _ => c.i32()?,
    };
    Ok((reg, Rm::Mem(mem)))
}

/// Parses ModRM with 16-bit addressing (under the 0x67 prefix). The memory
/// operand is reported with a best-effort translation into the 32-bit
/// [`Mem`] model; the gadget scanner only needs validity and length.
fn parse_modrm16(c: &mut Cursor<'_>) -> Result<(u8, Rm), DecodeError> {
    let modrm = c.u8()?;
    let md = modrm >> 6;
    let reg = (modrm >> 3) & 7;
    let rm = modrm & 7;
    if md == 3 {
        return Ok((reg, Rm::Reg(Reg::from_number(rm).expect("3-bit register"))));
    }
    let disp_size = match (md, rm) {
        (0, 6) => 2usize,
        (0, _) => 0,
        (1, _) => 1,
        _ => 2,
    };
    let disp = match disp_size {
        0 => 0,
        1 => i32::from(c.i8()?),
        _ => i32::from(c.u16()? as i16),
    };
    let (base, index) = match rm {
        0 => (Some(Reg::Ebx), Some((Reg::Esi, Scale::S1))),
        1 => (Some(Reg::Ebx), Some((Reg::Edi, Scale::S1))),
        2 => (Some(Reg::Ebp), Some((Reg::Esi, Scale::S1))),
        3 => (Some(Reg::Ebp), Some((Reg::Edi, Scale::S1))),
        4 => (Some(Reg::Esi), None),
        5 => (Some(Reg::Edi), None),
        6 if md == 0 => (None, None),
        6 => (Some(Reg::Ebp), None),
        _ => (Some(Reg::Ebx), None),
    };
    Ok((reg, Rm::Mem(Mem { base, index, disp })))
}

#[derive(Debug, Default, Clone, Copy)]
struct Prefixes {
    opsize16: bool,
    addr16: bool,
    rep: bool,
    lock: bool,
    count: usize,
}

fn parse_prefixes(c: &mut Cursor<'_>) -> Result<Prefixes, DecodeError> {
    let mut p = Prefixes::default();
    loop {
        if p.count >= MAX_INST_LEN {
            return Err(DecodeError::Invalid);
        }
        let b = *c.bytes.get(c.pos).ok_or(DecodeError::Truncated)?;
        match b {
            0x66 => p.opsize16 = true,
            0x67 => p.addr16 = true,
            0xF0 => p.lock = true,
            0xF2 | 0xF3 => p.rep = true,
            0x26 | 0x2E | 0x36 | 0x3E | 0x64 | 0x65 => {}
            _ => return Ok(p),
        }
        c.pos += 1;
        p.count += 1;
    }
}

fn other(name: &'static str, class: Class) -> Body {
    Body::Other(OtherInst { name, class })
}

/// Decodes one instruction from the start of `bytes`.
///
/// # Errors
///
/// * [`DecodeError::Truncated`] if `bytes` ends mid-instruction.
/// * [`DecodeError::Invalid`] if the bytes are not a valid IA-32
///   instruction.
///
/// # Examples
///
/// ```
/// use pgsd_x86::{decode, Body, Inst};
/// let d = decode(&[0xC3])?;
/// assert_eq!(d.len, 1);
/// assert_eq!(d.body, Body::Known(Inst::Ret));
/// assert!(d.is_free_branch());
/// # Ok::<(), pgsd_x86::DecodeError>(())
/// ```
pub fn decode(bytes: &[u8]) -> Result<Decoded, DecodeError> {
    let mut c = Cursor { bytes, pos: 0 };
    let prefixes = parse_prefixes(&mut c)?;
    let prefix_len = c.pos;
    let body = decode_opcode(&mut c, prefixes)?;
    if c.pos > MAX_INST_LEN {
        return Err(DecodeError::Invalid);
    }
    Ok(Decoded {
        len: c.pos,
        body,
        prefix_len,
    })
}

fn modrm(c: &mut Cursor<'_>, p: Prefixes) -> Result<(u8, Rm), DecodeError> {
    if p.addr16 {
        parse_modrm16(c)
    } else {
        parse_modrm32(c)
    }
}

/// Skips a ModRM operand without caring about the fields.
fn skip_modrm(c: &mut Cursor<'_>, p: Prefixes) -> Result<(), DecodeError> {
    modrm(c, p).map(|_| ())
}

fn decode_opcode(c: &mut Cursor<'_>, p: Prefixes) -> Result<Body, DecodeError> {
    let op = c.u8()?;
    // The 0x00–0x3F block: ALU rows with interleaved one-byte specials.
    if op < 0x40 {
        return decode_low_block(c, p, op);
    }
    match op {
        0x40..=0x47 => Ok(Body::Known(Inst::IncR(
            Reg::from_number(op - 0x40).unwrap(),
        ))),
        0x48..=0x4F => Ok(Body::Known(Inst::DecR(
            Reg::from_number(op - 0x48).unwrap(),
        ))),
        0x50..=0x57 => Ok(Body::Known(Inst::PushR(
            Reg::from_number(op - 0x50).unwrap(),
        ))),
        0x58..=0x5F => Ok(Body::Known(Inst::PopR(
            Reg::from_number(op - 0x58).unwrap(),
        ))),
        0x60 => Ok(other("pusha", Class::Normal)),
        0x61 => Ok(other("popa", Class::Normal)),
        0x62 => {
            // BOUND requires a memory operand.
            match modrm(c, p)? {
                (_, Rm::Mem(_)) => Ok(other("bound", Class::Normal)),
                _ => Err(DecodeError::Invalid),
            }
        }
        0x63 => {
            skip_modrm(c, p)?;
            Ok(other("arpl", Class::PrivilegedOrIo))
        }
        0x68 => {
            let imm = c.imm_z(p.opsize16)?;
            Ok(Body::Known(Inst::PushI(imm)))
        }
        0x69 => {
            let (reg, rm) = modrm(c, p)?;
            let imm = c.imm_z(p.opsize16)?;
            match rm {
                Rm::Reg(r) => Ok(Body::Known(Inst::ImulRRI(
                    Reg::from_number(reg).unwrap(),
                    r,
                    imm,
                ))),
                Rm::Mem(_) => Ok(other("imul", Class::Normal)),
            }
        }
        0x6A => {
            let imm = i32::from(c.i8()?);
            Ok(Body::Known(Inst::PushI(imm)))
        }
        0x6B => {
            let (reg, rm) = modrm(c, p)?;
            let imm = i32::from(c.i8()?);
            match rm {
                Rm::Reg(r) => Ok(Body::Known(Inst::ImulRRI(
                    Reg::from_number(reg).unwrap(),
                    r,
                    imm,
                ))),
                Rm::Mem(_) => Ok(other("imul", Class::Normal)),
            }
        }
        0x6C..=0x6F => Ok(other("ins/outs", Class::PrivilegedOrIo)),
        0x70..=0x7F => {
            let cc = Cond::from_number(op - 0x70).unwrap();
            let rel = c.i8()?;
            Ok(Body::Known(Inst::Jcc8(cc, rel)))
        }
        0x80 | 0x82 => {
            skip_modrm(c, p)?;
            c.skip(1)?;
            Ok(other("alu8", Class::Normal))
        }
        0x81 => {
            let (reg, rm) = modrm(c, p)?;
            let imm = c.imm_z(p.opsize16)?;
            let alu = AluOp::from_number(reg).unwrap();
            Ok(Body::Known(match rm {
                Rm::Reg(r) => Inst::AluRI(alu, r, imm),
                Rm::Mem(m) => Inst::AluMI(alu, m, imm),
            }))
        }
        0x83 => {
            let (reg, rm) = modrm(c, p)?;
            let imm = i32::from(c.i8()?);
            let alu = AluOp::from_number(reg).unwrap();
            Ok(Body::Known(match rm {
                Rm::Reg(r) => Inst::AluRI(alu, r, imm),
                Rm::Mem(m) => Inst::AluMI(alu, m, imm),
            }))
        }
        0x84 => {
            skip_modrm(c, p)?;
            Ok(other("test8", Class::Normal))
        }
        0x85 => {
            let (reg, rm) = modrm(c, p)?;
            match rm {
                Rm::Reg(r) => Ok(Body::Known(Inst::TestRR(r, Reg::from_number(reg).unwrap()))),
                Rm::Mem(_) => Ok(other("test", Class::Normal)),
            }
        }
        0x86 => {
            skip_modrm(c, p)?;
            Ok(other("xchg8", Class::Normal))
        }
        0x87 => {
            let (reg, rm) = modrm(c, p)?;
            match rm {
                Rm::Reg(r) => Ok(Body::Known(Inst::XchgRR(r, Reg::from_number(reg).unwrap()))),
                Rm::Mem(_) => Ok(other("xchg", Class::Normal)),
            }
        }
        0x88 | 0x8A => {
            skip_modrm(c, p)?;
            Ok(other("mov8", Class::Normal))
        }
        0x89 => {
            let (reg, rm) = modrm(c, p)?;
            let src = Reg::from_number(reg).unwrap();
            Ok(Body::Known(match rm {
                Rm::Reg(dst) => Inst::MovRR(dst, src),
                Rm::Mem(m) => Inst::MovMR(m, src),
            }))
        }
        0x8B => {
            let (reg, rm) = modrm(c, p)?;
            let dst = Reg::from_number(reg).unwrap();
            Ok(Body::Known(match rm {
                Rm::Reg(src) => Inst::MovRR(dst, src),
                Rm::Mem(m) => Inst::MovRM(dst, m),
            }))
        }
        0x8C | 0x8E => {
            skip_modrm(c, p)?;
            Ok(other("mov sreg", Class::PrivilegedOrIo))
        }
        0x8D => {
            let (reg, rm) = modrm(c, p)?;
            match rm {
                // LEA with a register operand is #UD.
                Rm::Reg(_) => Err(DecodeError::Invalid),
                Rm::Mem(m) => Ok(Body::Known(Inst::Lea(Reg::from_number(reg).unwrap(), m))),
            }
        }
        0x8F => {
            let (reg, rm) = modrm(c, p)?;
            if reg != 0 {
                return Err(DecodeError::Invalid);
            }
            match rm {
                Rm::Reg(r) => Ok(Body::Known(Inst::PopR(r))),
                Rm::Mem(_) => Ok(other("pop", Class::Normal)),
            }
        }
        0x90 => Ok(Body::Known(Inst::Nop(NopKind::Nop))),
        0x91..=0x97 => Ok(Body::Known(Inst::XchgRR(
            Reg::Eax,
            Reg::from_number(op - 0x90).unwrap(),
        ))),
        0x98 => Ok(other("cwde", Class::Normal)),
        0x99 => Ok(Body::Known(Inst::Cdq)),
        0x9A => {
            c.skip(if p.opsize16 { 4 } else { 6 })?;
            Ok(other("callf", Class::ControlFlow(CfKind::CallFar)))
        }
        0x9B => Ok(other("wait", Class::Normal)),
        0x9C => Ok(other("pushf", Class::Normal)),
        0x9D => Ok(other("popf", Class::Normal)),
        0x9E => Ok(other("sahf", Class::Normal)),
        0x9F => Ok(other("lahf", Class::Normal)),
        0xA0..=0xA3 => {
            c.skip(if p.addr16 { 2 } else { 4 })?;
            Ok(other("mov moffs", Class::Normal))
        }
        0xA4..=0xA7 => Ok(other("movs/cmps", Class::String)),
        0xA8 => {
            c.skip(1)?;
            Ok(other("test8", Class::Normal))
        }
        0xA9 => {
            c.imm_z(p.opsize16)?;
            Ok(other("test", Class::Normal))
        }
        0xAA..=0xAF => Ok(other("stos/lods/scas", Class::String)),
        0xB0..=0xB7 => {
            c.skip(1)?;
            Ok(other("mov8", Class::Normal))
        }
        0xB8..=0xBF => {
            let imm = c.imm_z(p.opsize16)?;
            Ok(Body::Known(Inst::MovRI(
                Reg::from_number(op - 0xB8).unwrap(),
                imm,
            )))
        }
        0xC0 => {
            let (reg, _) = modrm(c, p)?;
            c.skip(1)?;
            if ShiftOp::from_number(reg).is_none() {
                return Err(DecodeError::Invalid);
            }
            Ok(other("shift8", Class::Normal))
        }
        0xC1 => {
            let (reg, rm) = modrm(c, p)?;
            let count = c.u8()?;
            let shop = ShiftOp::from_number(reg).ok_or(DecodeError::Invalid)?;
            match rm {
                Rm::Reg(r) if count <= 31 => Ok(Body::Known(Inst::ShiftRI(shop, r, count))),
                _ => Ok(other(shop.name(), Class::Normal)),
            }
        }
        0xC2 => Ok(Body::Known(Inst::RetImm(c.u16()?))),
        0xC3 => Ok(Body::Known(Inst::Ret)),
        0xC4 | 0xC5 => match modrm(c, p)? {
            (_, Rm::Mem(_)) => Ok(other("les/lds", Class::Normal)),
            _ => Err(DecodeError::Invalid),
        },
        0xC6 => {
            let (reg, _) = modrm(c, p)?;
            if reg != 0 {
                return Err(DecodeError::Invalid);
            }
            c.skip(1)?;
            Ok(other("mov8", Class::Normal))
        }
        0xC7 => {
            let (reg, rm) = modrm(c, p)?;
            if reg != 0 {
                return Err(DecodeError::Invalid);
            }
            let imm = c.imm_z(p.opsize16)?;
            Ok(Body::Known(match rm {
                Rm::Reg(r) => Inst::MovRI(r, imm),
                Rm::Mem(m) => Inst::MovMI(m, imm),
            }))
        }
        0xC8 => {
            c.skip(3)?;
            Ok(other("enter", Class::Normal))
        }
        0xC9 => Ok(other("leave", Class::Normal)),
        0xCA => {
            c.skip(2)?;
            Ok(other("retf", Class::ControlFlow(CfKind::RetFar)))
        }
        0xCB => Ok(other("retf", Class::ControlFlow(CfKind::RetFar))),
        0xCC => Ok(other("int3", Class::ControlFlow(CfKind::Syscall))),
        0xCD => Ok(Body::Known(Inst::Int(c.u8()?))),
        0xCE => Ok(other("into", Class::ControlFlow(CfKind::Syscall))),
        0xCF => Ok(other("iret", Class::ControlFlow(CfKind::RetFar))),
        0xD0 | 0xD2 => {
            let (reg, _) = modrm(c, p)?;
            if ShiftOp::from_number(reg).is_none() {
                return Err(DecodeError::Invalid);
            }
            Ok(other("shift8", Class::Normal))
        }
        0xD1 => {
            let (reg, rm) = modrm(c, p)?;
            let shop = ShiftOp::from_number(reg).ok_or(DecodeError::Invalid)?;
            match rm {
                Rm::Reg(r) => Ok(Body::Known(Inst::ShiftRI(shop, r, 1))),
                Rm::Mem(_) => Ok(other(shop.name(), Class::Normal)),
            }
        }
        0xD3 => {
            let (reg, rm) = modrm(c, p)?;
            let shop = ShiftOp::from_number(reg).ok_or(DecodeError::Invalid)?;
            match rm {
                Rm::Reg(r) => Ok(Body::Known(Inst::ShiftRCl(shop, r))),
                Rm::Mem(_) => Ok(other(shop.name(), Class::Normal)),
            }
        }
        0xD4 | 0xD5 => {
            c.skip(1)?;
            Ok(other("aam/aad", Class::Normal))
        }
        0xD6 => Ok(other("salc", Class::Normal)),
        0xD7 => Ok(other("xlat", Class::Normal)),
        0xD8..=0xDF => {
            skip_modrm(c, p)?;
            Ok(other("x87", Class::Fpu))
        }
        0xE0..=0xE3 => {
            c.skip(1)?;
            Ok(other("loop/jecxz", Class::ControlFlow(CfKind::CondJmp)))
        }
        0xE4..=0xE7 => {
            c.skip(1)?;
            Ok(other("in/out", Class::PrivilegedOrIo))
        }
        0xE8 => {
            let rel = c.imm_z(p.opsize16)?;
            Ok(Body::Known(Inst::CallRel(rel)))
        }
        0xE9 => {
            let rel = c.imm_z(p.opsize16)?;
            Ok(Body::Known(Inst::JmpRel(rel)))
        }
        0xEA => {
            c.skip(if p.opsize16 { 4 } else { 6 })?;
            Ok(other("jmpf", Class::ControlFlow(CfKind::JmpFar)))
        }
        0xEB => Ok(Body::Known(Inst::JmpRel8(c.i8()?))),
        0xEC..=0xEF => Ok(other("in/out", Class::PrivilegedOrIo)),
        0xF1 => Ok(other("int1", Class::PrivilegedOrIo)),
        0xF4 => Ok(Body::Known(Inst::Hlt)),
        0xF5 => Ok(other("cmc", Class::Normal)),
        0xF6 => {
            let (reg, _) = modrm(c, p)?;
            if reg == 0 || reg == 1 {
                c.skip(1)?;
            }
            Ok(other("grp3-8", Class::Normal))
        }
        0xF7 => {
            let (reg, rm) = modrm(c, p)?;
            match (reg, rm) {
                (0 | 1, _) => {
                    c.imm_z(p.opsize16)?;
                    Ok(other("test", Class::Normal))
                }
                (2, Rm::Reg(r)) => Ok(Body::Known(Inst::NotR(r))),
                (3, Rm::Reg(r)) => Ok(Body::Known(Inst::NegR(r))),
                (7, Rm::Reg(r)) => Ok(Body::Known(Inst::IdivR(r))),
                (2, _) => Ok(other("not", Class::Normal)),
                (3, _) => Ok(other("neg", Class::Normal)),
                (4, _) => Ok(other("mul", Class::Normal)),
                (5, _) => Ok(other("imul", Class::Normal)),
                (6, _) => Ok(other("div", Class::Normal)),
                (7, _) => Ok(other("idiv", Class::Normal)),
                _ => Err(DecodeError::Invalid),
            }
        }
        0xF8 | 0xF9 | 0xFC | 0xFD => Ok(other("flag", Class::Normal)),
        0xFA | 0xFB => Ok(other("cli/sti", Class::PrivilegedOrIo)),
        0xFE => {
            let (reg, _) = modrm(c, p)?;
            if reg > 1 {
                return Err(DecodeError::Invalid);
            }
            Ok(other("inc/dec8", Class::Normal))
        }
        0xFF => {
            let (reg, rm) = modrm(c, p)?;
            match (reg, rm) {
                (0, Rm::Reg(r)) => Ok(Body::Known(Inst::IncR(r))),
                (1, Rm::Reg(r)) => Ok(Body::Known(Inst::DecR(r))),
                (0, Rm::Mem(m)) => Ok(Body::Known(Inst::IncDecM(true, m))),
                (1, Rm::Mem(m)) => Ok(Body::Known(Inst::IncDecM(false, m))),
                (2, Rm::Reg(r)) => Ok(Body::Known(Inst::CallR(r))),
                (2, Rm::Mem(_)) => Ok(other("call", Class::ControlFlow(CfKind::CallInd))),
                (3, Rm::Mem(_)) => Ok(other("callf", Class::ControlFlow(CfKind::CallFar))),
                (4, Rm::Reg(r)) => Ok(Body::Known(Inst::JmpR(r))),
                (4, Rm::Mem(_)) => Ok(other("jmp", Class::ControlFlow(CfKind::JmpInd))),
                (5, Rm::Mem(_)) => Ok(other("jmpf", Class::ControlFlow(CfKind::JmpFar))),
                (6, Rm::Reg(r)) => Ok(Body::Known(Inst::PushR(r))),
                (6, Rm::Mem(m)) => Ok(Body::Known(Inst::PushM(m))),
                _ => Err(DecodeError::Invalid),
            }
        }
        0x0F => decode_0f(c, p),
        // Remaining bytes (0x64..0x67, 0xF0, 0xF2, 0xF3 prefixes) were
        // consumed by the prefix parser; anything reaching here is invalid.
        _ => Err(DecodeError::Invalid),
    }
}

fn decode_low_block(c: &mut Cursor<'_>, p: Prefixes, op: u8) -> Result<Body, DecodeError> {
    // Specials interleaved in the 0x00–0x3F block.
    match op {
        0x06 => return Ok(other("push es", Class::Normal)),
        0x07 => return Ok(other("pop es", Class::Normal)),
        0x0E => return Ok(other("push cs", Class::Normal)),
        0x0F => return decode_0f(c, p),
        0x16 => return Ok(other("push ss", Class::Normal)),
        0x17 => return Ok(other("pop ss", Class::Normal)),
        0x1E => return Ok(other("push ds", Class::Normal)),
        0x1F => return Ok(other("pop ds", Class::Normal)),
        0x27 => return Ok(other("daa", Class::Normal)),
        0x2F => return Ok(other("das", Class::Normal)),
        0x37 => return Ok(other("aaa", Class::Normal)),
        0x3F => return Ok(other("aas", Class::Normal)),
        _ => {}
    }
    let row = op >> 3;
    let col = op & 7;
    let alu = AluOp::from_number(row).expect("row < 8");
    match col {
        // op r/m8, r8 / op r8, r/m8
        0 | 2 => {
            skip_modrm(c, p)?;
            Ok(other(alu.name(), Class::Normal))
        }
        // op r/m32, r32
        1 => {
            let (reg, rm) = modrm(c, p)?;
            let src = Reg::from_number(reg).unwrap();
            Ok(Body::Known(match rm {
                Rm::Reg(dst) => Inst::AluRR(alu, dst, src),
                Rm::Mem(m) => Inst::AluMR(alu, m, src),
            }))
        }
        // op r32, r/m32
        3 => {
            let (reg, rm) = modrm(c, p)?;
            let dst = Reg::from_number(reg).unwrap();
            Ok(Body::Known(match rm {
                Rm::Reg(src) => Inst::AluRR(alu, dst, src),
                Rm::Mem(m) => Inst::AluRM(alu, dst, m),
            }))
        }
        // op al, imm8
        4 => {
            c.skip(1)?;
            Ok(other(alu.name(), Class::Normal))
        }
        // op eax, immz
        5 => {
            let imm = c.imm_z(p.opsize16)?;
            Ok(Body::Known(Inst::AluRI(alu, Reg::Eax, imm)))
        }
        _ => unreachable!("columns 6 and 7 handled as specials"),
    }
}

fn decode_0f(c: &mut Cursor<'_>, p: Prefixes) -> Result<Body, DecodeError> {
    let op = c.u8()?;
    match op {
        0x05 => Err(DecodeError::Invalid), // SYSCALL: not valid on IA-32
        0x0B => Err(DecodeError::Invalid), // UD2
        0x1F => {
            // Multi-byte NOP (0F 1F /0).
            let (reg, _) = modrm(c, p)?;
            if reg != 0 {
                return Err(DecodeError::Invalid);
            }
            Ok(other("nopl", Class::Normal))
        }
        0x31 => Ok(other("rdtsc", Class::Normal)),
        0x34 => Ok(other("sysenter", Class::ControlFlow(CfKind::Syscall))),
        0x35 => Ok(other("sysexit", Class::PrivilegedOrIo)),
        0x40..=0x4F => {
            skip_modrm(c, p)?;
            Ok(other("cmov", Class::Normal))
        }
        0x80..=0x8F => {
            let cc = Cond::from_number(op - 0x80).unwrap();
            let rel = c.imm_z(p.opsize16)?;
            Ok(Body::Known(Inst::Jcc(cc, rel)))
        }
        0x90..=0x9F => {
            skip_modrm(c, p)?;
            Ok(other("setcc", Class::Normal))
        }
        0xA0 => Ok(other("push fs", Class::Normal)),
        0xA1 => Ok(other("pop fs", Class::Normal)),
        0xA2 => Ok(other("cpuid", Class::Normal)),
        0xA3 | 0xAB | 0xB3 | 0xBB => {
            skip_modrm(c, p)?;
            Ok(other("bt", Class::Normal))
        }
        0xA4 | 0xAC => {
            skip_modrm(c, p)?;
            c.skip(1)?;
            Ok(other("shld/shrd", Class::Normal))
        }
        0xA5 | 0xAD => {
            skip_modrm(c, p)?;
            Ok(other("shld/shrd", Class::Normal))
        }
        0xA8 => Ok(other("push gs", Class::Normal)),
        0xA9 => Ok(other("pop gs", Class::Normal)),
        0xAF => {
            let (reg, rm) = modrm(c, p)?;
            let dst = Reg::from_number(reg).unwrap();
            Ok(Body::Known(match rm {
                Rm::Reg(src) => Inst::ImulRR(dst, src),
                Rm::Mem(m) => Inst::ImulRM(dst, m),
            }))
        }
        0xB6 | 0xB7 | 0xBE | 0xBF => {
            skip_modrm(c, p)?;
            Ok(other("movzx/movsx", Class::Normal))
        }
        0xBC | 0xBD => {
            skip_modrm(c, p)?;
            Ok(other("bsf/bsr", Class::Normal))
        }
        0xC0 | 0xC1 => {
            skip_modrm(c, p)?;
            Ok(other("xadd", Class::Normal))
        }
        0xC8..=0xCF => Ok(other("bswap", Class::Normal)),
        _ => Err(DecodeError::Invalid),
    }
}

/// Linear-sweep disassembly: decodes instructions one after another from
/// `bytes`, stopping at the first decode failure.
///
/// Returns `(offset, decoded)` pairs.
pub fn decode_all(bytes: &[u8]) -> Vec<(usize, Decoded)> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        match decode(&bytes[pos..]) {
            Ok(d) => {
                let len = d.len;
                out.push((pos, d));
                pos += len;
            }
            Err(_) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;

    fn d(bytes: &[u8]) -> Decoded {
        decode(bytes).expect("valid")
    }

    #[test]
    fn nop_table_second_bytes_decode_as_documented() {
        // Paper Table 1: the second byte of each two-byte NOP decodes to
        // `in` (E4/ED), an `ss:` prefix (36) or `aas` (3F).
        assert_eq!(d(&[0xE4, 0x00]).class(), Class::PrivilegedOrIo); // in al, imm8
        assert_eq!(d(&[0xED]).class(), Class::PrivilegedOrIo); // in eax, dx
        assert_eq!(format!("{}", d(&[0x3F])), "aas");
        // 0x36 alone is a bare prefix: decoding "36 C3" must give `ret`
        // with one prefix byte.
        let ss = d(&[0x36, 0xC3]);
        assert_eq!(ss.prefix_len, 1);
        assert_eq!(ss.body, Body::Known(Inst::Ret));
    }

    #[test]
    fn round_trip_sample() {
        use crate::inst::{AluOp, Mem, Scale, ShiftOp};
        let samples = [
            Inst::MovRI(Reg::Edi, -1),
            Inst::MovRR(Reg::Esp, Reg::Esp),
            Inst::MovRM(
                Reg::Eax,
                Mem::base_index(Reg::Ebx, Reg::Ecx, Scale::S4, 0x40),
            ),
            Inst::MovMR(Mem::abs(0x0804_9000), Reg::Edx),
            Inst::MovMI(Mem::base_disp(Reg::Ebp, -8), 42),
            Inst::AluRR(AluOp::Xor, Reg::Eax, Reg::Eax),
            Inst::AluRI(AluOp::Cmp, Reg::Ecx, 1000),
            Inst::AluMI(AluOp::Add, Mem::abs(0x0805_0000), 1),
            Inst::TestRR(Reg::Eax, Reg::Eax),
            Inst::ImulRR(Reg::Eax, Reg::Esi),
            Inst::ImulRRI(Reg::Eax, Reg::Eax, 100),
            Inst::Cdq,
            Inst::IdivR(Reg::Ecx),
            Inst::NegR(Reg::Ebx),
            Inst::IncR(Reg::Esi),
            Inst::DecR(Reg::Edi),
            Inst::IncDecM(true, Mem::abs(0x0805_1000)),
            Inst::ShiftRI(ShiftOp::Shl, Reg::Eax, 4),
            Inst::ShiftRI(ShiftOp::Sar, Reg::Edx, 1),
            Inst::ShiftRCl(ShiftOp::Shr, Reg::Ebx),
            Inst::PushR(Reg::Ebp),
            Inst::PushI(0x1000),
            Inst::PushM(Mem::base_disp(Reg::Esp, 12)),
            Inst::PopR(Reg::Ebp),
            Inst::Lea(Reg::Eax, Mem::base_index(Reg::Eax, Reg::Eax, Scale::S4, 0)),
            Inst::XchgRR(Reg::Ebp, Reg::Ebp),
            Inst::CallRel(0x1234),
            Inst::CallR(Reg::Eax),
            Inst::Ret,
            Inst::RetImm(12),
            Inst::JmpRel(-100),
            Inst::JmpRel8(5),
            Inst::JmpR(Reg::Edx),
            Inst::Jcc(Cond::Le, 0x40),
            Inst::Jcc8(Cond::O, -9),
            Inst::Int(0x80),
            Inst::Hlt,
        ];
        for inst in samples {
            let mut bytes = Vec::new();
            encode(&inst, &mut bytes).expect("encodable");
            let dec = decode(&bytes).expect("decodable");
            assert_eq!(dec.len, bytes.len(), "{inst}");
            assert_eq!(dec.body, Body::Known(inst), "{inst}");
        }
    }

    #[test]
    fn nop_candidates_round_trip() {
        for kind in NopKind::ALL {
            let dec = d(kind.bytes());
            assert_eq!(dec.len, kind.len());
            assert_eq!(dec.body, Body::Known(kind.as_inst()), "{kind}");
        }
    }

    #[test]
    fn free_branch_detection() {
        assert!(d(&[0xC3]).is_free_branch()); // ret
        assert!(d(&[0xC2, 0x08, 0x00]).is_free_branch()); // ret 8
        assert!(d(&[0xFF, 0xE0]).is_free_branch()); // jmp eax
        assert!(d(&[0xFF, 0xD0]).is_free_branch()); // call eax
        assert!(d(&[0xFF, 0x20]).is_free_branch()); // jmp [eax]
        assert!(d(&[0xFF, 0x10]).is_free_branch()); // call [eax]
        assert!(d(&[0xCB]).is_free_branch()); // retf
        assert!(!d(&[0xE8, 0, 0, 0, 0]).is_free_branch()); // call rel32
        assert!(!d(&[0xCD, 0x80]).is_free_branch()); // int 0x80
        assert!(d(&[0xCD, 0x80]).is_control_flow());
    }

    #[test]
    fn invalid_opcodes() {
        assert_eq!(decode(&[0x0F, 0x0B]), Err(DecodeError::Invalid)); // ud2
        assert_eq!(decode(&[0x0F, 0x05]), Err(DecodeError::Invalid)); // syscall
        assert_eq!(decode(&[0x8D, 0xC0]), Err(DecodeError::Invalid)); // lea reg,reg
        assert_eq!(decode(&[0xFF, 0xF8]), Err(DecodeError::Invalid)); // grp5 /7
        assert_eq!(decode(&[0xC7, 0xC8, 0, 0, 0, 0]), Err(DecodeError::Invalid));
        // C7 /1
    }

    #[test]
    fn truncation() {
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0xB8]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0xB8, 0x01, 0x02]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0x8B, 0x84]), Err(DecodeError::Truncated)); // needs SIB
        assert_eq!(decode(&[0x0F]), Err(DecodeError::Truncated));
    }

    #[test]
    fn prefix_handling() {
        // 66 ops-size: push imm16.
        let p = d(&[0x66, 0x68, 0x34, 0x12]);
        assert_eq!(p.len, 4);
        assert_eq!(p.body, Body::Known(Inst::PushI(0x1234)));
        // Sign extension of 16-bit immediates.
        let n = d(&[0x66, 0xB8, 0xFF, 0xFF]);
        assert_eq!(n.body, Body::Known(Inst::MovRI(Reg::Eax, -1)));
        // Excessive prefixes are invalid.
        let long = [0x66u8; 16];
        assert_eq!(decode(&long), Err(DecodeError::Invalid));
    }

    #[test]
    fn addr16_modrm() {
        // 67 8B 07: mov eax, [bx+si] (16-bit addressing).
        let m = d(&[0x67, 0x8B, 0x07]);
        assert_eq!(m.len, 3);
        // 67 8B 46 08: mov eax, [bp+8].
        assert_eq!(d(&[0x67, 0x8B, 0x46, 0x08]).len, 4);
        // 67 8B 06 34 12: mov eax, [0x1234].
        assert_eq!(d(&[0x67, 0x8B, 0x06, 0x34, 0x12]).len, 5);
    }

    #[test]
    fn sib_disp32_no_base() {
        // 8B 04 8D 10 00 00 00: mov eax, [ecx*4+0x10].
        let m = d(&[0x8B, 0x04, 0x8D, 0x10, 0, 0, 0]);
        assert_eq!(m.len, 7);
        match m.body {
            Body::Known(Inst::MovRM(Reg::Eax, mem)) => {
                assert_eq!(mem.base, None);
                assert_eq!(mem.index, Some((Reg::Ecx, Scale::S4)));
                assert_eq!(mem.disp, 0x10);
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn linear_sweep() {
        let bytes = [0x55, 0x89, 0xE5, 0x5D, 0xC3]; // push ebp; mov ebp,esp... wait 89 E5
        let insts = decode_all(&bytes);
        assert_eq!(insts.len(), 4);
        assert_eq!(insts[0].1.body, Body::Known(Inst::PushR(Reg::Ebp)));
        assert_eq!(insts[3].0, 4);
        assert!(insts[3].1.is_free_branch());
    }

    #[test]
    fn alternate_encodings_normalize() {
        // 8F C0 (pop eax, long form) decodes to the same Inst as 58.
        assert_eq!(d(&[0x8F, 0xC0]).body, d(&[0x58]).body);
        // FF C0 (inc eax, long form) decodes like 40.
        assert_eq!(d(&[0xFF, 0xC0]).body, d(&[0x40]).body);
        // FF F0 (push eax, long form) decodes like 50.
        assert_eq!(d(&[0xFF, 0xF0]).body, d(&[0x50]).body);
    }
}
