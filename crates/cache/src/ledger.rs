//! Variant provenance ledger: who is this binary, and how do I read
//! its crashes?
//!
//! A fleet of diversified variants is unsupportable unless every crash
//! can be mapped back to the baseline build (the paper's massive-scale
//! distribution scenario; ΔBreakpad's diversified crash reporting). The
//! ledger records, per variant — keyed by a content hash of its text
//! segment — the provenance needed to do that: the diversification seed,
//! the transform set, the module/config/profile keys that produced it,
//! and the compressed baseline↔variant address map computed by the
//! translation validator.
//!
//! Storage follows the artifact manifest's rules exactly: a single
//! schema-versioned `ledger.json` in the cache directory, rewritten
//! atomically (temp file + rename), where *any* irregularity on load —
//! missing file, parse error, wrong `kind` or `schema_version`,
//! malformed record — yields an empty ledger. Cold is always safe: the
//! records regenerate on the next population build. Records live in a
//! `BTreeMap` keyed by variant id, so the serialized form is
//! byte-identical no matter how many threads raced to insert.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use pgsd_telemetry::json::{parse, Value};

/// Schema version of `ledger.json`. Bump on any layout change; old
/// ledgers are then ignored wholesale (cold rebuild), never
/// misinterpreted.
pub const LEDGER_SCHEMA_VERSION: u64 = 1;

/// The `kind` tag of ledger files.
pub const LEDGER_KIND: &str = "pgsd-variant-ledger";

/// File name of the ledger inside a cache directory.
pub const LEDGER_FILE: &str = "ledger.json";

/// Provenance of one diversified variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerRecord {
    /// Content hash of the variant's text segment (hex) — the fleet-wide
    /// identity a crash report carries.
    pub variant_id: String,
    /// Diversification seed the variant was built with.
    pub seed: u64,
    /// Declared transform set, e.g. `"nop+subst+shift+regrand"`.
    pub transforms: String,
    /// Module key (source content hash, hex).
    pub module_key: String,
    /// Build-config fingerprint (hex).
    pub config: String,
    /// Profile key (hex), or empty when the build was unprofiled.
    pub profile: String,
    /// Encoded address-map artifact (`pgsd_analysis::AddrMap::encode`),
    /// stored hex-armored in JSON. The ledger treats it as an opaque
    /// blob: decoding (and decode-failure handling) belongs to the
    /// symbolication layer.
    pub addr_map: Vec<u8>,
}

/// In-memory ledger state: records plus a dirty flag so flushes are
/// skipped when nothing changed.
#[derive(Debug, Default)]
pub(crate) struct LedgerStore {
    pub(crate) records: BTreeMap<String, LedgerRecord>,
    pub(crate) dirty: bool,
}

impl LedgerStore {
    /// Total hex-armored payload bytes (the `addr_map` columns) — the
    /// quantity the `ledger.bytes` counter tracks.
    pub(crate) fn bytes(&self) -> u64 {
        self.records.values().map(|r| r.addr_map.len() as u64).sum()
    }
}

/// Serializes the ledger document (deterministic: `BTreeMap` order,
/// fixed field order per record).
pub(crate) fn ledger_json(records: &BTreeMap<String, LedgerRecord>) -> String {
    let rows: Vec<Value> = records
        .values()
        .map(|r| {
            Value::Obj(vec![
                ("variant_id".into(), Value::Str(r.variant_id.clone())),
                ("seed".into(), Value::u64(r.seed)),
                ("transforms".into(), Value::Str(r.transforms.clone())),
                ("module_key".into(), Value::Str(r.module_key.clone())),
                ("config".into(), Value::Str(r.config.clone())),
                ("profile".into(), Value::Str(r.profile.clone())),
                ("addr_map".into(), Value::Str(hex_encode(&r.addr_map))),
            ])
        })
        .collect();
    let doc = Value::Obj(vec![
        ("schema_version".into(), Value::u64(LEDGER_SCHEMA_VERSION)),
        ("kind".into(), Value::Str(LEDGER_KIND.into())),
        ("records".into(), Value::Arr(rows)),
    ]);
    let mut text = String::new();
    doc.write(&mut text);
    text.push('\n');
    text
}

/// Parses a ledger file. *Any* irregularity — missing file, parse
/// error, wrong `kind`, wrong `schema_version`, malformed record —
/// yields an empty ledger, mirroring the artifact manifest's
/// fall-back-cold contract.
pub(crate) fn load_ledger(path: &Path) -> BTreeMap<String, LedgerRecord> {
    let mut out = BTreeMap::new();
    let Ok(text) = fs::read_to_string(path) else {
        return out;
    };
    let Ok(doc) = parse(&text) else {
        return out;
    };
    if doc.get("schema_version").and_then(Value::as_u64) != Some(LEDGER_SCHEMA_VERSION)
        || doc.get("kind").and_then(Value::as_str) != Some(LEDGER_KIND)
    {
        return out;
    }
    let Some(rows) = doc.get("records").and_then(Value::as_arr) else {
        return out;
    };
    for row in rows {
        let Some(rec) = record_of(row) else {
            // One malformed record poisons the whole file: a partially
            // loaded ledger could silently mis-symbolicate.
            return BTreeMap::new();
        };
        out.insert(rec.variant_id.clone(), rec);
    }
    out
}

fn record_of(row: &Value) -> Option<LedgerRecord> {
    let field = |name: &str| row.get(name).and_then(Value::as_str).map(str::to_string);
    Some(LedgerRecord {
        variant_id: field("variant_id")?,
        seed: row.get("seed").and_then(Value::as_u64)?,
        transforms: field("transforms")?,
        module_key: field("module_key")?,
        config: field("config")?,
        profile: field("profile")?,
        addr_map: hex_decode(&field("addr_map")?)?,
    })
}

fn hex_encode(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        write!(s, "{b:02x}").expect("infallible");
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    s.as_bytes()
        .chunks(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            Some((hi * 16 + lo) as u8)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_record(id: &str, seed: u64) -> LedgerRecord {
        LedgerRecord {
            variant_id: id.to_string(),
            seed,
            transforms: "nop+subst".into(),
            module_key: "00000000deadbeef".into(),
            config: "0000000012345678".into(),
            profile: String::new(),
            addr_map: vec![0x50, 0x47, 0x53, 0x44, 0x00, 0xff],
        }
    }

    #[test]
    fn ledger_json_round_trips_and_is_deterministic() {
        let dir = std::env::temp_dir().join(format!("pgsd-ledger-rt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let mut records = BTreeMap::new();
        for (id, seed) in [("bb", 2), ("aa", 1), ("cc", 3)] {
            records.insert(id.to_string(), sample_record(id, seed));
        }
        let text = ledger_json(&records);
        // Insertion order does not leak: records serialize sorted by id.
        assert!(text.find("\"aa\"").unwrap() < text.find("\"bb\"").unwrap());
        let path = dir.join(LEDGER_FILE);
        fs::write(&path, &text).unwrap();
        let loaded = load_ledger(&path);
        assert_eq!(loaded, records);
        assert_eq!(ledger_json(&loaded), text);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn irregular_ledgers_load_empty_never_panic() {
        let dir = std::env::temp_dir().join(format!("pgsd-ledger-bad-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(LEDGER_FILE);
        // Missing file.
        assert!(load_ledger(&path).is_empty());
        // Unparseable.
        fs::write(&path, "{not json at all").unwrap();
        assert!(load_ledger(&path).is_empty());
        // Truncated mid-document.
        let mut records = BTreeMap::new();
        records.insert("aa".into(), sample_record("aa", 1));
        let text = ledger_json(&records);
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(load_ledger(&path).is_empty());
        // Wrong schema version.
        fs::write(
            &path,
            text.replace("\"schema_version\":1", "\"schema_version\":999"),
        )
        .unwrap();
        assert!(load_ledger(&path).is_empty());
        // Wrong kind tag.
        fs::write(&path, text.replace(LEDGER_KIND, "some-other-kind")).unwrap();
        assert!(load_ledger(&path).is_empty());
        // Malformed record (bad hex) poisons the file.
        fs::write(&path, text.replace(&hex_encode(&[0x50]), "zz")).unwrap();
        assert!(load_ledger(&path).is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hex_codec_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        assert!(hex_decode("0").is_none(), "odd length");
        assert!(hex_decode("zz").is_none(), "non-hex");
    }
}
