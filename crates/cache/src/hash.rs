//! Content hashing for cache keys.
//!
//! One streaming [FNV-1a] 64-bit hasher, shared by every key derivation
//! in the workspace (it is the same function `fuzz::corpus` uses for
//! finding ids). FNV is not cryptographic — keys name *trusted local
//! artifacts*, they do not authenticate anything — but it is fast,
//! dependency-free, and stable across platforms, which is what a
//! content-addressed store needs.
//!
//! Multi-field keys must be unambiguous: two different field sequences
//! must not concatenate to the same byte stream. [`Fnv64::write_str`]
//! and [`Fnv64::write_bytes`] therefore length-prefix their payload;
//! use the raw [`Fnv64::write`] only for fixed-width data.
//!
//! [FNV-1a]: http://www.isthe.com/chongo/tech/comp/fnv/

use std::fmt;

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64 {
            state: FNV_OFFSET_BASIS,
        }
    }

    /// Absorbs raw bytes (no framing).
    pub fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.state ^= u64::from(*b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u32` as 4 little-endian bytes.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs variable-length bytes, length-prefixed so field
    /// boundaries cannot alias.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write(bytes);
    }

    /// Absorbs a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// The current hash value as a [`Key`].
    pub fn key(&self) -> Key {
        Key(self.state)
    }
}

/// `fmt::Write` adapter: lets `write!(Fnv64, "{value:?}")` hash a
/// `Debug` rendering without materializing the intermediate string.
impl fmt::Write for Fnv64 {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write(s.as_bytes());
        Ok(())
    }
}

/// Hashes one byte slice in a single call.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// A content-derived cache key.
///
/// Displayed (and stored on disk) as 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(pub u64);

impl Key {
    /// The key as its canonical 16-hex-digit file-name form.
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the canonical 16-hex-digit form.
    pub fn from_hex(s: &str) -> Option<Key> {
        if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(Key)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_fnv1a_vectors() {
        // Classic published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }

    #[test]
    fn length_prefix_prevents_field_aliasing() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn key_hex_round_trips() {
        let k = Key(0x0123_4567_89ab_cdef);
        assert_eq!(k.hex(), "0123456789abcdef");
        assert_eq!(Key::from_hex(&k.hex()), Some(k));
        assert_eq!(Key::from_hex("xyz"), None);
        assert_eq!(Key::from_hex("0123"), None);
    }

    #[test]
    fn fmt_write_adapter_hashes_debug_renderings() {
        use std::fmt::Write as _;
        let mut h = Fnv64::new();
        write!(h, "{:?}", vec![1u8, 2, 3]).unwrap();
        assert_eq!(h.finish(), fnv64(b"[1, 2, 3]"));
    }
}
