//! pgsd-cache: content-addressed artifact cache for the pgsd pipeline.
//!
//! Variant fleets make redundant recompilation the dominant cost: the
//! diversifying passes are cheap, but every build pays frontend +
//! optimizer + register allocation from scratch. This crate memoizes
//! pipeline artifacts under content-derived keys so the seed-independent
//! prefix (source → AST → optimized IR → baseline LIR) is computed once
//! and per-seed variants are stamped out from the cached baseline LIR.
//!
//! # Two levels
//!
//! * **Memory** — every artifact kind ([`Kind`]), held as `Arc`
//!   snapshots in a byte-capped FIFO map. Always on (unless the cache
//!   is [`Cache::disabled`]); shared by cloning the handle.
//! * **Disk** — only self-contained final products (images, profiles),
//!   as hash-named checksummed files under a cache directory (by
//!   convention [`DEFAULT_DIR`]) plus a schema-versioned
//!   `manifest.json`. A version mismatch, unparseable manifest, or
//!   corrupt artifact file is *never* an error: the entry is treated as
//!   absent and the build falls back to a cold compile.
//!
//! Key derivation lives with the pipeline (`pgsd_core::session`); this
//! crate only stores blobs under [`Key`]s. Hits, misses, evictions,
//! corruption and bytes written are reported through [`pgsd_telemetry`]
//! counters (`cache.hits{kind=..}`, `cache.misses{kind=..}`,
//! `cache.disk_hits{kind=..}`, `cache.evictions`, `cache.corrupt`,
//! `cache.bytes_written{kind=..}`), so `pgsd report` surfaces cache
//! behaviour alongside the rest of the pipeline metrics.
//!
//! Counters are recorded on the [`Telemetry`] handle *passed to each
//! operation* (not one captured at construction) so parallel sections
//! can route them into per-job child handles and keep merged metrics
//! deterministic at any thread count.
//!
//! # Provenance ledger
//!
//! Alongside the artifact store, a disk-backed cache carries a variant
//! provenance [`ledger`] (`ledger.json`): per content-hash variant id,
//! the seed, transform set, pipeline keys, and compressed
//! baseline↔variant address map needed to symbolicate fleet crashes.
//! It follows the manifest's robustness contract (schema-versioned,
//! atomic rewrite, any corruption → empty) and reports through the
//! `ledger.records` / `ledger.bytes` counters.

pub mod artifact;
pub mod hash;
pub mod ledger;

pub use hash::{fnv64, Fnv64, Key};
pub use ledger::{LedgerRecord, LEDGER_FILE, LEDGER_KIND, LEDGER_SCHEMA_VERSION};

use ledger::LedgerStore;

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fs;
use std::io;
use std::mem;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use pgsd_cc::emit::Image;
use pgsd_cc::ir::Module;
use pgsd_cc::lir::{MFunction, MInst};
use pgsd_profile::Profile;
use pgsd_telemetry::json::{parse, Value};
use pgsd_telemetry::Telemetry;

/// Schema version of `manifest.json`. Bump on any layout change; old
/// manifests are then ignored wholesale (cold rebuild), never
/// misinterpreted.
pub const MANIFEST_SCHEMA_VERSION: u64 = 1;

/// The `kind` tag of manifest files.
pub const MANIFEST_KIND: &str = "pgsd-cache-manifest";

/// File name of the manifest inside a cache directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Conventional cache directory name (`pgsd --cache-dir` default).
pub const DEFAULT_DIR: &str = ".pgsd-cache";

/// Default in-memory byte cap. Generous on purpose: eviction order
/// under parallel insertion is schedule-dependent, so the cap is a
/// safety valve against unbounded growth, not a tuning knob.
pub const DEFAULT_MEM_CAP: u64 = 256 * 1024 * 1024;

/// What kind of artifact a key names. Keys of different kinds live in
/// disjoint namespaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Kind {
    /// Optimized IR module (frontend output).
    Module,
    /// Baseline (or per-reg-seed) LIR: lowered, allocated, framed.
    Lir,
    /// Emitted executable image.
    Image,
    /// Execution profile from a training run.
    Profile,
    /// Translation-validation verdict for an image.
    Verdict,
}

impl Kind {
    /// Stable lowercase label (telemetry `kind=` value, manifest tag).
    pub fn label(self) -> &'static str {
        match self {
            Kind::Module => "module",
            Kind::Lir => "lir",
            Kind::Image => "image",
            Kind::Profile => "profile",
            Kind::Verdict => "verdict",
        }
    }

    fn from_label(s: &str) -> Option<Kind> {
        Some(match s {
            "module" => Kind::Module,
            "lir" => Kind::Lir,
            "image" => Kind::Image,
            "profile" => Kind::Profile,
            "verdict" => Kind::Verdict,
            _ => return None,
        })
    }

    /// File name of this artifact inside the cache directory, or `None`
    /// if the kind is memory-only.
    fn file_name(self, key: Key) -> Option<String> {
        match self {
            Kind::Image => Some(format!("img-{}.bin", key.hex())),
            Kind::Profile => Some(format!("prof-{}.bin", key.hex())),
            _ => None,
        }
    }
}

/// One cached artifact (cheaply cloneable snapshot).
#[derive(Debug, Clone)]
enum Slot {
    Module(Arc<Module>),
    Lir(Arc<Vec<MFunction>>),
    Image(Arc<Image>),
    Profile(Arc<Profile>),
    Verdict(bool),
}

/// Approximate retained size, for the memory cap. Estimates only —
/// accounting needs to be monotone in content size, not exact.
fn slot_bytes(slot: &Slot) -> u64 {
    match slot {
        Slot::Module(m) => {
            let mut n = 256u64;
            for f in &m.funcs {
                n += 512;
                for b in &f.blocks {
                    n += 32 + 24 * b.instrs.len() as u64;
                }
            }
            n + 64 * m.globals.len() as u64
        }
        Slot::Lir(funcs) => {
            let mut n = 64u64;
            for f in funcs.iter() {
                n += 128 + f.name.len() as u64;
                for b in &f.blocks {
                    n += 48 + (mem::size_of::<MInst>() * b.instrs.len()) as u64;
                }
            }
            n
        }
        Slot::Image(img) => {
            let mut n = 128 + img.text.len() as u64 + img.data.len() as u64;
            for f in &img.funcs {
                n += 64 + f.name.len() as u64 + 4 * f.block_addrs.len() as u64;
            }
            n + 48 * img.globals.len() as u64
        }
        Slot::Profile(p) => {
            let mut n = 64u64;
            for (name, fp) in &p.funcs {
                n += 48 + name.len() as u64 + 8 * fp.block_counts.len() as u64;
            }
            n
        }
        Slot::Verdict(_) => 16,
    }
}

struct MemStore {
    map: HashMap<(Kind, Key), Slot>,
    /// Insertion order, for FIFO eviction.
    order: VecDeque<(Kind, Key)>,
    bytes: u64,
    cap: u64,
    evictions: u64,
}

impl MemStore {
    fn new(cap: u64) -> MemStore {
        MemStore {
            map: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
            cap,
            evictions: 0,
        }
    }

    fn get(&self, kind: Kind, key: Key) -> Option<Slot> {
        self.map.get(&(kind, key)).cloned()
    }

    /// Inserts, evicting oldest-first if over the cap. Returns the
    /// number of evictions performed.
    fn put(&mut self, kind: Kind, key: Key, slot: Slot) -> u64 {
        let sz = slot_bytes(&slot);
        if let Some(old) = self.map.insert((kind, key), slot) {
            // Overwrite in place: adjust accounting, keep FIFO position.
            self.bytes = self.bytes - slot_bytes(&old) + sz;
            return 0;
        }
        self.order.push_back((kind, key));
        self.bytes += sz;
        let mut evicted = 0;
        while self.bytes > self.cap && self.order.len() > 1 {
            let oldest = self.order.pop_front().expect("len > 1");
            if let Some(gone) = self.map.remove(&oldest) {
                self.bytes -= slot_bytes(&gone);
                evicted += 1;
            }
        }
        self.evictions += evicted;
        evicted
    }
}

/// The disk layer: artifact files plus an in-memory mirror of the
/// manifest, rewritten (atomically, via temp file + rename) on every
/// accepted put or dropped entry.
struct DiskStore {
    dir: PathBuf,
    manifest: Mutex<BTreeMap<(Kind, Key), u64>>,
}

impl DiskStore {
    fn open(dir: &Path) -> io::Result<DiskStore> {
        fs::create_dir_all(dir)?;
        let manifest = load_manifest(&dir.join(MANIFEST_FILE));
        Ok(DiskStore {
            dir: dir.to_path_buf(),
            manifest: Mutex::new(manifest),
        })
    }

    /// Best-effort manifest rewrite; callers treat the disk layer as an
    /// optimization, so IO errors degrade to "not cached".
    fn flush_manifest(&self, entries: &BTreeMap<(Kind, Key), u64>) {
        let rows: Vec<Value> = entries
            .iter()
            .map(|((kind, key), bytes)| {
                Value::Obj(vec![
                    ("kind".into(), Value::Str(kind.label().into())),
                    ("key".into(), Value::Str(key.hex())),
                    ("bytes".into(), Value::u64(*bytes)),
                ])
            })
            .collect();
        let doc = Value::Obj(vec![
            ("schema_version".into(), Value::u64(MANIFEST_SCHEMA_VERSION)),
            ("kind".into(), Value::Str(MANIFEST_KIND.into())),
            ("entries".into(), Value::Arr(rows)),
        ]);
        let mut text = String::new();
        doc.write(&mut text);
        text.push('\n');
        let tmp = self.dir.join("manifest.json.tmp");
        if fs::write(&tmp, &text).is_ok() {
            let _ = fs::rename(&tmp, self.dir.join(MANIFEST_FILE));
        }
    }

    /// Reads and decodes `kind/key`, dropping the entry on any failure.
    /// Returns `Ok(None)` when absent, `Err(())` when present but
    /// corrupt (so the caller can count it).
    fn get(&self, kind: Kind, key: Key) -> Result<Option<Slot>, ()> {
        let file = match kind.file_name(key) {
            Some(f) => f,
            None => return Ok(None),
        };
        {
            let manifest = self.manifest.lock().unwrap();
            if !manifest.contains_key(&(kind, key)) {
                return Ok(None);
            }
        }
        let path = self.dir.join(&file);
        let decoded = fs::read(&path)
            .map_err(|e| e.to_string())
            .and_then(|bytes| {
                Ok(match kind {
                    Kind::Image => Slot::Image(Arc::new(artifact::decode_image(&bytes)?)),
                    Kind::Profile => Slot::Profile(Arc::new(artifact::decode_profile(&bytes)?)),
                    _ => unreachable!("kind has a file name"),
                })
            });
        match decoded {
            Ok(slot) => Ok(Some(slot)),
            Err(_) => {
                // Unreadable or corrupt: forget it so the slot can be
                // refilled by the cold rebuild.
                let mut manifest = self.manifest.lock().unwrap();
                if manifest.remove(&(kind, key)).is_some() {
                    let _ = fs::remove_file(&path);
                    self.flush_manifest(&manifest);
                }
                Err(())
            }
        }
    }

    /// Encodes and writes `kind/key` if not already present. Returns
    /// bytes written (0 if already present or kind is memory-only).
    fn put(&self, kind: Kind, key: Key, slot: &Slot) -> u64 {
        let file = match kind.file_name(key) {
            Some(f) => f,
            None => return 0,
        };
        let bytes = match slot {
            Slot::Image(img) => artifact::encode_image(img),
            Slot::Profile(p) => artifact::encode_profile(p),
            _ => return 0,
        };
        let mut manifest = self.manifest.lock().unwrap();
        if manifest.contains_key(&(kind, key)) {
            return 0;
        }
        let path = self.dir.join(&file);
        let tmp = self.dir.join(format!("{file}.tmp"));
        if fs::write(&tmp, &bytes).is_err() || fs::rename(&tmp, &path).is_err() {
            return 0;
        }
        let n = bytes.len() as u64;
        manifest.insert((kind, key), n);
        self.flush_manifest(&manifest);
        n
    }

    fn stats(&self) -> (usize, u64) {
        let manifest = self.manifest.lock().unwrap();
        (manifest.len(), manifest.values().sum())
    }
}

/// Parses a manifest file. *Any* irregularity — missing file, parse
/// error, wrong `kind`, wrong `schema_version`, malformed entry —
/// yields an empty manifest: the store then behaves as cold, which is
/// always safe.
fn load_manifest(path: &Path) -> BTreeMap<(Kind, Key), u64> {
    let mut out = BTreeMap::new();
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return out,
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(_) => return out,
    };
    if doc.get("schema_version").and_then(Value::as_u64) != Some(MANIFEST_SCHEMA_VERSION)
        || doc.get("kind").and_then(Value::as_str) != Some(MANIFEST_KIND)
    {
        return out;
    }
    let entries = match doc.get("entries").and_then(Value::as_arr) {
        Some(e) => e,
        None => return out,
    };
    for row in entries {
        let kind = row
            .get("kind")
            .and_then(Value::as_str)
            .and_then(Kind::from_label);
        let key = row
            .get("key")
            .and_then(Value::as_str)
            .and_then(Key::from_hex);
        let bytes = row.get("bytes").and_then(Value::as_u64);
        if let (Some(kind), Some(key), Some(bytes)) = (kind, key, bytes) {
            if kind.file_name(key).is_some() {
                out.insert((kind, key), bytes);
            }
        }
    }
    out
}

struct Inner {
    mem: Mutex<MemStore>,
    disk: Option<DiskStore>,
    ledger: Mutex<LedgerStore>,
}

/// Point-in-time cache occupancy, for `pgsd cache stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Entries in the in-memory layer.
    pub mem_entries: usize,
    /// Approximate bytes retained in memory.
    pub mem_bytes: u64,
    /// Total in-memory evictions so far.
    pub evictions: u64,
    /// Artifact files recorded in the on-disk manifest.
    pub disk_entries: usize,
    /// Bytes of artifact files recorded in the manifest.
    pub disk_bytes: u64,
    /// Variant records in the provenance ledger.
    pub ledger_records: usize,
    /// Address-map payload bytes held by the ledger.
    pub ledger_bytes: u64,
}

/// Shared handle to a two-level artifact cache.
///
/// Cloning is cheap and shares the store ([`Telemetry`]-style). A
/// [`Cache::disabled`] handle stores nothing, returns nothing, and
/// records no telemetry — one branch per operation, zero overhead.
#[derive(Clone)]
pub struct Cache {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Cache(disabled)"),
            Some(inner) => f
                .debug_struct("Cache")
                .field("dir", &inner.disk.as_ref().map(|d| d.dir.clone()))
                .finish(),
        }
    }
}

impl Default for Cache {
    fn default() -> Self {
        Cache::in_memory()
    }
}

impl Cache {
    /// A no-op cache: every get is a miss, every put is dropped, and
    /// nothing is counted.
    pub fn disabled() -> Cache {
        Cache { inner: None }
    }

    /// A memory-only cache with the default byte cap.
    pub fn in_memory() -> Cache {
        Cache::in_memory_capped(DEFAULT_MEM_CAP)
    }

    /// A memory-only cache with an explicit byte cap (FIFO eviction).
    pub fn in_memory_capped(max_bytes: u64) -> Cache {
        Cache {
            inner: Some(Arc::new(Inner {
                mem: Mutex::new(MemStore::new(max_bytes)),
                disk: None,
                ledger: Mutex::new(LedgerStore::default()),
            })),
        }
    }

    /// A two-level cache backed by `dir` (created if absent). The
    /// manifest is loaded now; a version/schema mismatch or corrupt
    /// manifest silently yields an empty (cold) store.
    pub fn persistent(dir: &Path) -> io::Result<Cache> {
        let disk = DiskStore::open(dir)?;
        let records = ledger::load_ledger(&disk.dir.join(LEDGER_FILE));
        Ok(Cache {
            inner: Some(Arc::new(Inner {
                mem: Mutex::new(MemStore::new(DEFAULT_MEM_CAP)),
                disk: Some(disk),
                ledger: Mutex::new(LedgerStore {
                    records,
                    dirty: false,
                }),
            })),
        })
    }

    /// Whether this handle stores anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The backing directory, if this cache has a disk layer.
    pub fn dir(&self) -> Option<&Path> {
        self.inner
            .as_ref()
            .and_then(|i| i.disk.as_ref())
            .map(|d| d.dir.as_path())
    }

    fn get_slot(&self, kind: Kind, key: Key, tel: &Telemetry) -> Option<Slot> {
        let inner = self.inner.as_ref()?;
        if let Some(slot) = inner.mem.lock().unwrap().get(kind, key) {
            tel.add_labeled("cache.hits", &[("kind", kind.label())], 1);
            return Some(slot);
        }
        if let Some(disk) = &inner.disk {
            match disk.get(kind, key) {
                Ok(Some(slot)) => {
                    // Promote so later gets stay in memory.
                    let evicted = inner.mem.lock().unwrap().put(kind, key, slot.clone());
                    if evicted > 0 {
                        tel.add("cache.evictions", evicted);
                    }
                    tel.add_labeled("cache.hits", &[("kind", kind.label())], 1);
                    tel.add_labeled("cache.disk_hits", &[("kind", kind.label())], 1);
                    return Some(slot);
                }
                Ok(None) => {}
                Err(()) => tel.add("cache.corrupt", 1),
            }
        }
        tel.add_labeled("cache.misses", &[("kind", kind.label())], 1);
        None
    }

    fn put_slot(&self, kind: Kind, key: Key, slot: Slot, tel: &Telemetry) {
        let inner = match &self.inner {
            Some(i) => i,
            None => return,
        };
        let mut written = 0;
        if let Some(disk) = &inner.disk {
            written = disk.put(kind, key, &slot);
        }
        let evicted = inner.mem.lock().unwrap().put(kind, key, slot);
        if evicted > 0 {
            tel.add("cache.evictions", evicted);
        }
        if written > 0 {
            tel.add_labeled("cache.bytes_written", &[("kind", kind.label())], written);
        }
    }

    /// Looks up an optimized IR module.
    pub fn get_module(&self, key: Key, tel: &Telemetry) -> Option<Arc<Module>> {
        match self.get_slot(Kind::Module, key, tel)? {
            Slot::Module(m) => Some(m),
            _ => None,
        }
    }

    /// Stores an optimized IR module.
    pub fn put_module(&self, key: Key, module: Arc<Module>, tel: &Telemetry) {
        self.put_slot(Kind::Module, key, Slot::Module(module), tel);
    }

    /// Looks up baseline LIR (lowered + allocated + framed functions).
    pub fn get_lir(&self, key: Key, tel: &Telemetry) -> Option<Arc<Vec<MFunction>>> {
        match self.get_slot(Kind::Lir, key, tel)? {
            Slot::Lir(l) => Some(l),
            _ => None,
        }
    }

    /// Stores baseline LIR.
    pub fn put_lir(&self, key: Key, lir: Arc<Vec<MFunction>>, tel: &Telemetry) {
        self.put_slot(Kind::Lir, key, Slot::Lir(lir), tel);
    }

    /// Looks up an emitted image (memory first, then disk).
    pub fn get_image(&self, key: Key, tel: &Telemetry) -> Option<Arc<Image>> {
        match self.get_slot(Kind::Image, key, tel)? {
            Slot::Image(i) => Some(i),
            _ => None,
        }
    }

    /// Stores an emitted image (and persists it when disk-backed).
    pub fn put_image(&self, key: Key, image: Arc<Image>, tel: &Telemetry) {
        self.put_slot(Kind::Image, key, Slot::Image(image), tel);
    }

    /// Looks up a training profile (memory first, then disk).
    pub fn get_profile(&self, key: Key, tel: &Telemetry) -> Option<Arc<Profile>> {
        match self.get_slot(Kind::Profile, key, tel)? {
            Slot::Profile(p) => Some(p),
            _ => None,
        }
    }

    /// Stores a training profile (and persists it when disk-backed).
    pub fn put_profile(&self, key: Key, profile: Arc<Profile>, tel: &Telemetry) {
        self.put_slot(Kind::Profile, key, Slot::Profile(profile), tel);
    }

    /// Looks up a validation verdict.
    pub fn get_verdict(&self, key: Key, tel: &Telemetry) -> Option<bool> {
        match self.get_slot(Kind::Verdict, key, tel)? {
            Slot::Verdict(v) => Some(v),
            _ => None,
        }
    }

    /// Stores a validation verdict.
    pub fn put_verdict(&self, key: Key, ok: bool, tel: &Telemetry) {
        self.put_slot(Kind::Verdict, key, Slot::Verdict(ok), tel);
    }

    /// Records one variant in the provenance ledger. First insertion of
    /// an id counts `ledger.records` and `ledger.bytes`; re-recording
    /// the same variant (a cache hit rebuilding the same image) is a
    /// no-op, so counters stay deterministic across warm and cold runs.
    pub fn ledger_put(&self, record: LedgerRecord, tel: &Telemetry) {
        let inner = match &self.inner {
            Some(i) => i,
            None => return,
        };
        let mut ledger = inner.ledger.lock().unwrap();
        if ledger.records.contains_key(&record.variant_id) {
            return;
        }
        tel.add("ledger.records", 1);
        tel.add("ledger.bytes", record.addr_map.len() as u64);
        ledger.records.insert(record.variant_id.clone(), record);
        ledger.dirty = true;
    }

    /// Looks up one variant's provenance by id.
    pub fn ledger_get(&self, variant_id: &str) -> Option<LedgerRecord> {
        let inner = self.inner.as_ref()?;
        let ledger = inner.ledger.lock().unwrap();
        ledger.records.get(variant_id).cloned()
    }

    /// Writes `ledger.json` if this cache is disk-backed and the ledger
    /// changed since the last flush. Atomic (temp file + rename) and
    /// best-effort, like the manifest: an IO failure degrades to "not
    /// persisted", never an error.
    pub fn flush_ledger(&self) {
        let Some(inner) = &self.inner else { return };
        let Some(disk) = &inner.disk else { return };
        let mut ledger = inner.ledger.lock().unwrap();
        if !ledger.dirty {
            return;
        }
        let text = ledger::ledger_json(&ledger.records);
        let tmp = disk.dir.join(format!("{LEDGER_FILE}.tmp"));
        if fs::write(&tmp, &text).is_ok() && fs::rename(&tmp, disk.dir.join(LEDGER_FILE)).is_ok() {
            ledger.dirty = false;
        }
    }

    /// Current occupancy of both levels.
    pub fn stats(&self) -> CacheStats {
        let inner = match &self.inner {
            Some(i) => i,
            None => return CacheStats::default(),
        };
        let mem = inner.mem.lock().unwrap();
        let (disk_entries, disk_bytes) = inner.disk.as_ref().map(|d| d.stats()).unwrap_or((0, 0));
        let ledger = inner.ledger.lock().unwrap();
        CacheStats {
            mem_entries: mem.map.len(),
            mem_bytes: mem.bytes,
            evictions: mem.evictions,
            disk_entries,
            disk_bytes,
            ledger_records: ledger.records.len(),
            ledger_bytes: ledger.bytes(),
        }
    }

    /// Deletes every cache-owned file in `dir` (artifact files, the
    /// manifest, stray temp files); the directory itself is kept.
    /// Returns the number of files removed. A missing directory counts
    /// as already clear.
    pub fn clear_dir(dir: &Path) -> io::Result<usize> {
        let entries = match fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut removed = 0;
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let ours = name == MANIFEST_FILE
                || name == LEDGER_FILE
                || ((name.starts_with("img-") || name.starts_with("prof-"))
                    && name.ends_with(".bin"))
                || name.ends_with(".tmp");
            if ours && entry.file_type()?.is_file() {
                fs::remove_file(entry.path())?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgsd_profile::FuncProfile;

    fn tdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pgsd-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_image(byte: u8) -> Arc<Image> {
        Arc::new(Image {
            base: 0x0804_8000,
            text: Arc::new(vec![byte; 8]),
            data_base: 0x0810_0000,
            data: Arc::new(vec![]),
            main_addr: 0x0804_8000,
            exit_addr: 0x0804_8000,
            funcs: vec![],
            globals: vec![],
            counter_base: 0x0810_0000,
            num_counters: 0,
        })
    }

    fn sample_profile() -> Arc<Profile> {
        let mut p = Profile::default();
        p.funcs.insert(
            "main".into(),
            FuncProfile {
                block_counts: vec![4, 2],
                invocations: 4,
            },
        );
        Arc::new(p)
    }

    #[test]
    fn disabled_cache_is_inert() {
        let tel = Telemetry::enabled();
        let c = Cache::disabled();
        assert!(!c.is_enabled());
        c.put_image(Key(1), sample_image(1), &tel);
        assert!(c.get_image(Key(1), &tel).is_none());
        assert_eq!(c.stats(), CacheStats::default());
        let snap = tel.snapshot();
        assert!(
            snap.counters.is_empty(),
            "disabled cache must not count: {:?}",
            snap.counters
        );
    }

    #[test]
    fn memory_hit_miss_and_kind_namespacing() {
        let tel = Telemetry::enabled();
        let c = Cache::in_memory();
        assert!(c.get_image(Key(7), &tel).is_none());
        c.put_image(Key(7), sample_image(7), &tel);
        assert_eq!(c.get_image(Key(7), &tel).unwrap().text[0], 7);
        // Same key, different kind: disjoint namespace.
        assert!(c.get_profile(Key(7), &tel).is_none());
        let snap = tel.snapshot();
        assert_eq!(snap.counters.get("cache.hits{kind=image}"), Some(&1));
        assert_eq!(snap.counters.get("cache.misses{kind=image}"), Some(&1));
        assert_eq!(snap.counters.get("cache.misses{kind=profile}"), Some(&1));
    }

    #[test]
    fn verdicts_round_trip() {
        let tel = Telemetry::disabled();
        let c = Cache::in_memory();
        c.put_verdict(Key(3), true, &tel);
        assert_eq!(c.get_verdict(Key(3), &tel), Some(true));
        assert_eq!(c.get_verdict(Key(4), &tel), None);
    }

    #[test]
    fn fifo_eviction_respects_byte_cap() {
        let tel = Telemetry::enabled();
        let c = Cache::in_memory_capped(300);
        for i in 0..4u64 {
            c.put_image(Key(i), sample_image(i as u8), &tel);
        }
        let stats = c.stats();
        assert!(stats.mem_bytes <= 300, "cap exceeded: {stats:?}");
        assert!(stats.evictions > 0);
        // Newest entry survives; oldest was evicted.
        assert!(c.get_image(Key(3), &tel).is_some());
        assert!(c.get_image(Key(0), &tel).is_none());
        let snap = tel.snapshot();
        assert!(snap.counters.get("cache.evictions").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn persistent_cache_survives_reopen() {
        let dir = tdir("reopen");
        let tel = Telemetry::enabled();
        {
            let c = Cache::persistent(&dir).unwrap();
            c.put_image(Key(11), sample_image(11), &tel);
            c.put_profile(Key(12), sample_profile(), &tel);
            assert_eq!(c.stats().disk_entries, 2);
        }
        let c = Cache::persistent(&dir).unwrap();
        let tel2 = Telemetry::enabled();
        let img = c.get_image(Key(11), &tel2).expect("disk hit");
        assert_eq!(img.text[0], 11);
        let p = c.get_profile(Key(12), &tel2).expect("disk hit");
        assert_eq!(p.funcs["main"].invocations, 4);
        let snap = tel2.snapshot();
        assert_eq!(snap.counters.get("cache.disk_hits{kind=image}"), Some(&1));
        assert_eq!(snap.counters.get("cache.disk_hits{kind=profile}"), Some(&1));
        // Promoted: the second get is a pure memory hit.
        let tel3 = Telemetry::enabled();
        assert!(c.get_image(Key(11), &tel3).is_some());
        assert!(!tel3
            .snapshot()
            .counters
            .contains_key("cache.disk_hits{kind=image}"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_artifact_file_degrades_to_miss() {
        let dir = tdir("corrupt");
        let tel = Telemetry::disabled();
        {
            let c = Cache::persistent(&dir).unwrap();
            c.put_image(Key(5), sample_image(5), &tel);
        }
        // Bit-flip the stored artifact.
        let file = dir.join(format!("img-{}.bin", Key(5).hex()));
        let mut bytes = fs::read(&file).unwrap();
        bytes[20] ^= 0xff;
        fs::write(&file, &bytes).unwrap();

        let c = Cache::persistent(&dir).unwrap();
        let tel2 = Telemetry::enabled();
        assert!(c.get_image(Key(5), &tel2).is_none(), "corrupt entry served");
        let snap = tel2.snapshot();
        assert_eq!(snap.counters.get("cache.corrupt"), Some(&1));
        assert_eq!(snap.counters.get("cache.misses{kind=image}"), Some(&1));
        // The entry was dropped: refill works and subsequent opens are clean.
        c.put_image(Key(5), sample_image(5), &tel);
        assert!(c.get_image(Key(5), &Telemetry::disabled()).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_schema_mismatch_means_cold() {
        let dir = tdir("schema");
        let tel = Telemetry::disabled();
        {
            let c = Cache::persistent(&dir).unwrap();
            c.put_image(Key(9), sample_image(9), &tel);
        }
        let manifest = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&manifest).unwrap();
        fs::write(
            &manifest,
            text.replace("\"schema_version\":1", "\"schema_version\":999"),
        )
        .unwrap();
        let c = Cache::persistent(&dir).unwrap();
        assert!(c.get_image(Key(9), &tel).is_none());
        assert_eq!(c.stats().disk_entries, 0);

        // Unparseable manifest: also cold, not an error.
        fs::write(&manifest, "{not json").unwrap();
        let c = Cache::persistent(&dir).unwrap();
        assert!(c.get_image(Key(9), &tel).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clear_dir_removes_cache_files_only() {
        let dir = tdir("clear");
        let tel = Telemetry::disabled();
        {
            let c = Cache::persistent(&dir).unwrap();
            c.put_image(Key(1), sample_image(1), &tel);
            c.put_profile(Key(2), sample_profile(), &tel);
        }
        fs::write(dir.join("unrelated.txt"), "keep me").unwrap();
        let removed = Cache::clear_dir(&dir).unwrap();
        assert_eq!(removed, 3, "2 artifacts + manifest");
        assert!(dir.join("unrelated.txt").exists());
        assert_eq!(Cache::clear_dir(&dir).unwrap(), 0);
        // Clearing a directory that never existed is fine.
        assert_eq!(Cache::clear_dir(&dir.join("nope")).unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    fn sample_record(id: &str, seed: u64) -> LedgerRecord {
        LedgerRecord {
            variant_id: id.to_string(),
            seed,
            transforms: "nop".into(),
            module_key: "00000000deadbeef".into(),
            config: "0000000012345678".into(),
            profile: String::new(),
            addr_map: vec![1, 2, 3, 4],
        }
    }

    #[test]
    fn ledger_survives_reopen_and_counts_once() {
        let dir = tdir("ledger");
        let tel = Telemetry::enabled();
        {
            let c = Cache::persistent(&dir).unwrap();
            c.ledger_put(sample_record("aa", 7), &tel);
            c.ledger_put(sample_record("aa", 7), &tel); // duplicate: no-op
            c.ledger_put(sample_record("bb", 8), &tel);
            c.flush_ledger();
            c.flush_ledger(); // clean: skipped
        }
        let snap = tel.snapshot();
        assert_eq!(snap.counters.get("ledger.records"), Some(&2));
        assert_eq!(snap.counters.get("ledger.bytes"), Some(&8));
        let c = Cache::persistent(&dir).unwrap();
        assert_eq!(c.ledger_get("aa").unwrap().seed, 7);
        assert_eq!(c.ledger_get("bb").unwrap().seed, 8);
        assert_eq!(c.ledger_get("cc"), None, "unknown id is a clean miss");
        let stats = c.stats();
        assert_eq!(stats.ledger_records, 2);
        assert_eq!(stats.ledger_bytes, 8);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_or_mismatched_ledger_falls_back_cold() {
        let dir = tdir("ledger-corrupt");
        let tel = Telemetry::disabled();
        {
            let c = Cache::persistent(&dir).unwrap();
            c.ledger_put(sample_record("aa", 1), &tel);
            c.flush_ledger();
        }
        let path = dir.join(LEDGER_FILE);
        let text = fs::read_to_string(&path).unwrap();
        for bad in [
            "{truncated".to_string(),
            text[..text.len() / 2].to_string(),
            text.replace("\"schema_version\":1", "\"schema_version\":42"),
            text.replace(LEDGER_KIND, "wrong-kind"),
        ] {
            fs::write(&path, &bad).unwrap();
            let c = Cache::persistent(&dir).unwrap();
            assert_eq!(c.ledger_get("aa"), None, "must load cold, not serve junk");
            assert_eq!(c.stats().ledger_records, 0);
            // And the cold ledger can be refilled + reflushed.
            c.ledger_put(sample_record("aa", 1), &tel);
            c.flush_ledger();
        }
        let c = Cache::persistent(&dir).unwrap();
        assert_eq!(c.ledger_get("aa").unwrap().seed, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_only_ledger_works_without_a_disk_layer() {
        let tel = Telemetry::disabled();
        let c = Cache::in_memory();
        c.ledger_put(sample_record("aa", 3), &tel);
        c.flush_ledger(); // no disk: no-op, no panic
        assert_eq!(c.ledger_get("aa").unwrap().seed, 3);
        let d = Cache::disabled();
        d.ledger_put(sample_record("aa", 3), &tel);
        assert_eq!(d.ledger_get("aa"), None);
    }

    #[test]
    fn clear_dir_removes_the_ledger_too() {
        let dir = tdir("ledger-clear");
        let tel = Telemetry::disabled();
        {
            let c = Cache::persistent(&dir).unwrap();
            c.ledger_put(sample_record("aa", 1), &tel);
            c.flush_ledger();
        }
        assert!(dir.join(LEDGER_FILE).exists());
        // Only ledger.json: no artifact was stored, so no manifest.
        assert_eq!(Cache::clear_dir(&dir).unwrap(), 1);
        assert!(!dir.join(LEDGER_FILE).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_handle_shares_the_store() {
        let tel = Telemetry::disabled();
        let a = Cache::in_memory();
        let b = a.clone();
        a.put_verdict(Key(1), true, &tel);
        assert_eq!(b.get_verdict(Key(1), &tel), Some(true));
    }
}
