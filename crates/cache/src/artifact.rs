//! Binary codecs for the artifacts that can live on disk.
//!
//! Only two artifact kinds are persistable — [`Image`]s and
//! [`Profile`]s; everything else (IR modules, baseline LIR, validation
//! verdicts) is cheap enough to recompute that it stays in the
//! in-memory layer. Each on-disk artifact is a self-checking envelope:
//!
//! ```text
//! [8-byte magic+version tag] [payload] [8-byte FNV-1a of tag+payload, LE]
//! ```
//!
//! Decoding verifies the tag and the trailing checksum before touching
//! the payload, and every field read is bounds-checked, so a truncated,
//! bit-flipped, or wrong-version file decodes to `Err` — which the
//! store treats as a miss (cold rebuild), never as data.
//!
//! The image payload encodes *every* field of [`Image`], so
//! `decode(encode(img)) == img` by full structural equality — the
//! property the byte-identical cold-vs-warm guarantee rests on.
//! Profiles reuse the line-oriented [`Profile::to_text`] format inside
//! the same envelope.

use std::sync::Arc;

use pgsd_cc::emit::{DataSymbol, FuncLayout, Image};
use pgsd_profile::Profile;

use crate::hash::Fnv64;

/// Tag (magic + format version) of serialized images.
pub const IMAGE_TAG: &[u8; 8] = b"PGSDIMG1";
/// Tag (magic + format version) of serialized profiles.
pub const PROFILE_TAG: &[u8; 8] = b"PGSDPRF1";

fn seal(mut out: Vec<u8>) -> Vec<u8> {
    let mut h = Fnv64::new();
    h.write(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

/// Strips and verifies the envelope; returns the payload.
fn open<'a>(tag: &[u8; 8], bytes: &'a [u8]) -> Result<&'a [u8], String> {
    if bytes.len() < 16 {
        return Err("artifact too short".into());
    }
    let (body, sum) = bytes.split_at(bytes.len() - 8);
    let mut h = Fnv64::new();
    h.write(body);
    if sum != h.finish().to_le_bytes() {
        return Err("artifact checksum mismatch".into());
    }
    if &body[..8] != tag {
        return Err(format!(
            "artifact tag mismatch: expected {:?}",
            String::from_utf8_lossy(tag)
        ));
    }
    Ok(&body[8..])
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or("artifact truncated")?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn len(&mut self) -> Result<usize, String> {
        let n = self.u32()? as usize;
        // A length can never exceed what is left in the buffer; this
        // caps allocations on corrupt input.
        if n > self.bytes.len() - self.pos {
            return Err("artifact length field out of range".into());
        }
        Ok(n)
    }

    fn bytes(&mut self) -> Result<&'a [u8], String> {
        let n = self.len()?;
        self.take(n)
    }

    fn str(&mut self) -> Result<String, String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| "artifact string not UTF-8".into())
    }

    fn bool(&mut self) -> Result<bool, String> {
        match self.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err("artifact bool out of range".into()),
        }
    }

    fn done(&self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err("trailing bytes after artifact payload".into())
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Serializes an image, envelope included.
pub fn encode_image(img: &Image) -> Vec<u8> {
    let mut out = Vec::with_capacity(img.text.len() + img.data.len() + 256);
    out.extend_from_slice(IMAGE_TAG);
    put_u32(&mut out, img.base);
    put_u32(&mut out, img.data_base);
    put_u32(&mut out, img.main_addr);
    put_u32(&mut out, img.exit_addr);
    put_u32(&mut out, img.counter_base);
    put_u32(&mut out, img.num_counters);
    put_bytes(&mut out, &img.text);
    put_bytes(&mut out, &img.data);
    put_u32(&mut out, img.funcs.len() as u32);
    for f in &img.funcs {
        put_str(&mut out, &f.name);
        put_u32(&mut out, f.start);
        put_u32(&mut out, f.end);
        out.push(u8::from(f.diversified));
        put_u32(&mut out, f.block_addrs.len() as u32);
        for a in &f.block_addrs {
            put_u32(&mut out, *a);
        }
    }
    put_u32(&mut out, img.globals.len() as u32);
    for g in &img.globals {
        put_str(&mut out, &g.name);
        put_u32(&mut out, g.addr);
        put_u32(&mut out, g.words);
    }
    seal(out)
}

/// Deserializes an image; any corruption or version mismatch is `Err`.
pub fn decode_image(bytes: &[u8]) -> Result<Image, String> {
    let payload = open(IMAGE_TAG, bytes)?;
    let mut r = Reader::new(payload);
    let base = r.u32()?;
    let data_base = r.u32()?;
    let main_addr = r.u32()?;
    let exit_addr = r.u32()?;
    let counter_base = r.u32()?;
    let num_counters = r.u32()?;
    let text = r.bytes()?.to_vec();
    let data = r.bytes()?.to_vec();
    let nfuncs = r.len()?;
    let mut funcs = Vec::with_capacity(nfuncs);
    for _ in 0..nfuncs {
        let name = r.str()?;
        let start = r.u32()?;
        let end = r.u32()?;
        let diversified = r.bool()?;
        let nblocks = r.len()?;
        let mut block_addrs = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            block_addrs.push(r.u32()?);
        }
        funcs.push(FuncLayout {
            name,
            start,
            end,
            block_addrs,
            diversified,
        });
    }
    let nglobals = r.len()?;
    let mut globals = Vec::with_capacity(nglobals);
    for _ in 0..nglobals {
        let name = r.str()?;
        let addr = r.u32()?;
        let words = r.u32()?;
        globals.push(DataSymbol { name, addr, words });
    }
    r.done()?;
    Ok(Image {
        base,
        text: Arc::new(text),
        data_base,
        data: Arc::new(data),
        main_addr,
        exit_addr,
        funcs,
        globals,
        counter_base,
        num_counters,
    })
}

/// Serializes a profile, envelope included.
pub fn encode_profile(profile: &Profile) -> Vec<u8> {
    let text = profile.to_text();
    let mut out = Vec::with_capacity(text.len() + 24);
    out.extend_from_slice(PROFILE_TAG);
    put_str(&mut out, &text);
    seal(out)
}

/// Deserializes a profile; any corruption or version mismatch is `Err`.
pub fn decode_profile(bytes: &[u8]) -> Result<Profile, String> {
    let payload = open(PROFILE_TAG, bytes)?;
    let mut r = Reader::new(payload);
    let text = r.str()?;
    r.done()?;
    Profile::from_text(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgsd_profile::FuncProfile;

    fn sample_image() -> Image {
        Image {
            base: 0x0804_8000,
            text: Arc::new(vec![0x90, 0xc3, 0x31, 0xc0]),
            data_base: 0x0810_0000,
            data: Arc::new(vec![1, 0, 0, 0, 2, 0, 0, 0]),
            main_addr: 0x0804_8001,
            exit_addr: 0x0804_8000,
            funcs: vec![FuncLayout {
                name: "main".into(),
                start: 0x0804_8000,
                end: 0x0804_8004,
                block_addrs: vec![0x0804_8000, 0x0804_8002],
                diversified: true,
            }],
            globals: vec![DataSymbol {
                name: "g".into(),
                addr: 0x0810_0000,
                words: 2,
            }],
            counter_base: 0x0810_0008,
            num_counters: 3,
        }
    }

    #[test]
    fn image_round_trips_by_full_equality() {
        let img = sample_image();
        let decoded = decode_image(&encode_image(&img)).expect("decodes");
        assert_eq!(decoded, img);
    }

    #[test]
    fn image_corruption_is_rejected() {
        let img = sample_image();
        let good = encode_image(&img);
        // Flip every byte position in turn: each single-bit fault must
        // be caught by the checksum (or the tag check).
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(decode_image(&bad).is_err(), "flip at {i} was accepted");
        }
        // Truncations too.
        assert!(decode_image(&good[..good.len() - 1]).is_err());
        assert!(decode_image(&good[..4]).is_err());
        assert!(decode_image(b"").is_err());
    }

    #[test]
    fn image_tag_version_is_enforced() {
        let mut bytes = encode_image(&sample_image());
        // Pretend a future format version wrote this file: tag differs,
        // checksum is still valid.
        bytes[7] = b'9';
        let len = bytes.len();
        let mut h = Fnv64::new();
        h.write(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&h.finish().to_le_bytes());
        assert!(decode_image(&bytes).is_err());
    }

    #[test]
    fn profile_round_trips() {
        let mut p = Profile::default();
        p.funcs.insert(
            "main".into(),
            FuncProfile {
                block_counts: vec![10, 0, 7],
                invocations: 10,
            },
        );
        let decoded = decode_profile(&encode_profile(&p)).expect("decodes");
        assert_eq!(decoded.to_text(), p.to_text());
    }

    #[test]
    fn profile_corruption_is_rejected() {
        let mut p = Profile::default();
        p.funcs.insert(
            "f".into(),
            FuncProfile {
                block_counts: vec![1],
                invocations: 1,
            },
        );
        let good = encode_profile(&p);
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            assert!(decode_profile(&bad).is_err(), "flip at {i} was accepted");
        }
    }
}
