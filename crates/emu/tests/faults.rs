//! Fault-path edge cases: the differential fuzzer compares baseline and
//! diversified variants by fault *class*, so every abnormal exit must be
//! (a) the architecturally correct class and (b) bit-for-bit stable
//! across runs. A fault that drifted between runs — or between variants
//! executing the same abstract operation — would show up as a spurious
//! divergence.

use pgsd_emu::{CrashClass, Emulator, Exit, Fault, MAX_BACKTRACE_FRAMES};
use pgsd_x86::{assemble, Inst, Mem, Reg};

const TEXT_BASE: u32 = 0x1000;
const DATA_BASE: u32 = 0x10_0000;
const DATA_LEN: usize = 4096;
const STACK_TOP: u32 = 0x100_0000;
const GAS: u64 = 50_000_000;

/// Assembles and runs `insts` (no exit stub appended — these programs are
/// expected to fault), returning the exit status.
fn run(insts: &[Inst]) -> Exit {
    let text = assemble(insts).expect("assembles");
    let mut emu = Emulator::new(TEXT_BASE, text, DATA_BASE, vec![0; DATA_LEN], STACK_TOP);
    emu.cpu.eip = TEXT_BASE;
    emu.run(GAS)
}

/// Address of instruction `index` within the assembled `insts`.
fn addr_of(insts: &[Inst], index: usize) -> u32 {
    let prefix = assemble(&insts[..index]).expect("assembles");
    TEXT_BASE + prefix.len() as u32
}

/// Runs twice and asserts the exits are identical — fault codes must be a
/// pure function of the program.
fn run_deterministic(insts: &[Inst]) -> Exit {
    let first = run(insts);
    let second = run(insts);
    assert_eq!(first, second, "fault is not deterministic");
    first
}

#[test]
fn division_by_zero_raises_divide_error_at_the_idiv() {
    let insts = [
        Inst::MovRI(Reg::Eax, 7),
        Inst::Cdq,
        Inst::MovRI(Reg::Ecx, 0),
        Inst::IdivR(Reg::Ecx),
    ];
    let exit = run_deterministic(&insts);
    assert_eq!(
        exit,
        Exit::DivideError {
            addr: addr_of(&insts, 3)
        }
    );
}

#[test]
fn int_min_over_minus_one_raises_divide_error_not_wraparound() {
    // The quotient 2^31 does not fit in i32: #DE, same class as /0.
    let insts = [
        Inst::MovRI(Reg::Eax, i32::MIN),
        Inst::Cdq,
        Inst::MovRI(Reg::Ecx, -1),
        Inst::IdivR(Reg::Ecx),
    ];
    let exit = run_deterministic(&insts);
    assert_eq!(
        exit,
        Exit::DivideError {
            addr: addr_of(&insts, 3)
        }
    );
}

#[test]
fn store_past_the_data_segment_faults_unmapped_at_the_exact_address() {
    // One element past the end of a DATA_LEN-byte array.
    let oob = DATA_BASE + DATA_LEN as u32;
    let insts = [Inst::MovMI(
        Mem {
            base: None,
            index: None,
            disp: oob as i32,
        },
        0x5555_5555,
    )];
    let exit = run_deterministic(&insts);
    assert_eq!(
        exit,
        Exit::Fault {
            pc: addr_of(&insts, 0),
            fault: Fault::Unmapped { addr: oob },
        }
    );
}

#[test]
fn store_into_the_text_segment_is_write_protected() {
    let insts = [Inst::MovMI(
        Mem {
            base: None,
            index: None,
            disp: TEXT_BASE as i32,
        },
        0,
    )];
    let exit = run_deterministic(&insts);
    assert_eq!(
        exit,
        Exit::Fault {
            pc: addr_of(&insts, 0),
            fault: Fault::WriteProtected { addr: TEXT_BASE },
        }
    );
}

#[test]
fn jumping_into_the_data_segment_violates_w_xor_x() {
    let insts = [
        Inst::MovRI(Reg::Ecx, DATA_BASE as i32),
        Inst::JmpR(Reg::Ecx),
    ];
    let exit = run_deterministic(&insts);
    // A fetch fault's pc is the unfetchable address itself: eip already
    // left the text segment when the fault is raised.
    assert_eq!(
        exit,
        Exit::Fault {
            pc: DATA_BASE,
            fault: Fault::NotExecutable { addr: DATA_BASE },
        }
    );
}

#[test]
fn unbounded_recursion_exhausts_the_stack_deterministically() {
    // `call -5` is a one-instruction self-loop: each iteration pushes a
    // return address and re-enters itself, marching esp down through the
    // whole 1 MiB stack segment. The first push below the segment base
    // must fault Unmapped at exactly stack_base - 4 — not overwrite data,
    // not wrap, not run out of gas first.
    let stack_base = STACK_TOP - pgsd_emu::mem::STACK_SIZE;
    let exit = run_deterministic(&[Inst::CallRel(-5)]);
    assert_eq!(
        exit,
        Exit::Fault {
            pc: TEXT_BASE,
            fault: Fault::Unmapped {
                addr: stack_base - 4
            },
        }
    );
}

/// A two-frame program — `main` sets up an `ebp` frame and calls `f`,
/// which sets up its own frame and stores out of bounds — so the crash
/// report has a frame chain to walk.
fn two_frame_oob_store() -> (Vec<Inst>, u32) {
    let oob = DATA_BASE + DATA_LEN as u32;
    let insts = vec![
        // main:
        Inst::PushR(Reg::Ebp),
        Inst::MovRR(Reg::Ebp, Reg::Esp),
        Inst::CallRel(1), // f is directly after the (never-reached) hlt
        Inst::Hlt,
        // f:
        Inst::PushR(Reg::Ebp),
        Inst::MovRR(Reg::Ebp, Reg::Esp),
        Inst::MovMI(
            Mem {
                base: None,
                index: None,
                disp: oob as i32,
            },
            0x5555_5555,
        ),
    ];
    (insts, oob)
}

#[test]
fn crash_report_pins_class_pc_registers_and_backtrace() {
    let (insts, oob) = two_frame_oob_store();
    let text = assemble(&insts).expect("assembles");
    let mut emu = Emulator::new(TEXT_BASE, text, DATA_BASE, vec![0; DATA_LEN], STACK_TOP);
    emu.cpu.eip = TEXT_BASE;
    let exit = emu.run(GAS);
    let fault_pc = addr_of(&insts, 6);
    assert_eq!(
        exit,
        Exit::Fault {
            pc: fault_pc,
            fault: Fault::Unmapped { addr: oob },
        }
    );
    let report = emu.crash_report(&exit).expect("abnormal exit");
    assert_eq!(report.class, CrashClass::Unmapped);
    assert_eq!(report.pc, fault_pc);
    assert_eq!(report.addr, Some(oob));
    // Frame chain: f's frame links to main's; main's saved ebp is the
    // initial zero, which ends the walk. The one recovered return
    // address is the instruction after `call f`.
    assert_eq!(report.backtrace, vec![addr_of(&insts, 3)]);
    // Full register snapshot, every value architecturally forced:
    // esp == ebp == f's frame (three pushes below the start).
    let frame = STACK_TOP - 12;
    assert_eq!(
        report.regs,
        [0, 0, 0, 0, frame, frame, 0, 0],
        "eax ecx edx ebx esp ebp esi edi"
    );
    // The JSON rendering is deterministic.
    assert_eq!(report.to_json(), emu.crash_report(&exit).unwrap().to_json());
    assert!(report.to_json().starts_with("{\"class\":\"unmapped\""));
}

#[test]
fn crash_report_backtrace_is_capped_on_stack_exhaustion() {
    // Build an actual frame-pushing infinite recursion so the chain is
    // tens of thousands of frames deep: the report must cap the walk.
    let insts = [
        // f: push ebp; mov ebp, esp; call f
        Inst::PushR(Reg::Ebp),
        Inst::MovRR(Reg::Ebp, Reg::Esp),
        Inst::CallRel(-8), // back to f
        // Never reached, but keeps the call's return address inside the
        // text segment so the frame walk accepts it.
        Inst::Hlt,
    ];
    let text = assemble(&insts).expect("assembles");
    let mut emu = Emulator::new(TEXT_BASE, text, DATA_BASE, vec![0; DATA_LEN], STACK_TOP);
    emu.cpu.eip = TEXT_BASE;
    let exit = emu.run(GAS);
    assert!(
        matches!(
            exit,
            Exit::Fault {
                fault: Fault::Unmapped { .. },
                ..
            }
        ),
        "{exit:?}"
    );
    let report = emu.crash_report(&exit).expect("abnormal exit");
    assert_eq!(report.backtrace.len(), MAX_BACKTRACE_FRAMES);
    // Every recovered return address is the instruction after the call.
    let ret = addr_of(&insts, 2) + 5;
    assert!(report.backtrace.iter().all(|&r| r == ret));
}

#[test]
fn crash_report_is_none_for_clean_and_gas_exits() {
    let text = assemble(&[
        Inst::MovRI(Reg::Ebx, 0),
        Inst::MovRI(Reg::Eax, 1),
        Inst::Int(0x80),
    ])
    .expect("assembles");
    let mut emu = Emulator::new(TEXT_BASE, text, DATA_BASE, vec![0; DATA_LEN], STACK_TOP);
    emu.cpu.eip = TEXT_BASE;
    let exit = emu.run(GAS);
    assert_eq!(exit, Exit::Exited(0));
    assert!(emu.crash_report(&exit).is_none());
    assert!(emu.crash_report(&Exit::OutOfGas).is_none());
}

#[test]
fn every_fault_class_carries_the_faulting_instruction_address() {
    // The audit this test pins: all three memory-fault classes (and the
    // non-memory classes, checked in the tests above) surface the pc of
    // the instruction that faulted, not just the offending data address.
    let oob = DATA_BASE + DATA_LEN as u32;
    let store_oob = [
        Inst::Nop(pgsd_x86::nop::NopKind::Nop), // shift the pc off TEXT_BASE
        Inst::MovMI(
            Mem {
                base: None,
                index: None,
                disp: oob as i32,
            },
            1,
        ),
    ];
    match run_deterministic(&store_oob) {
        Exit::Fault { pc, fault } => {
            assert_eq!(pc, addr_of(&store_oob, 1));
            assert_eq!(fault, Fault::Unmapped { addr: oob });
        }
        other => panic!("expected fault, got {other:?}"),
    }
}

#[test]
fn gas_exhaustion_is_reported_as_out_of_gas_not_a_fault() {
    // The same self-loop under a tiny budget must exit OutOfGas: the
    // fuzzer's runner distinguishes "still running" from "crashed", and
    // a gas exit misclassified as a fault would be a false divergence.
    let text = assemble(&[Inst::CallRel(-5)]).expect("assembles");
    let mut emu = Emulator::new(TEXT_BASE, text, DATA_BASE, vec![0; DATA_LEN], STACK_TOP);
    emu.cpu.eip = TEXT_BASE;
    assert_eq!(emu.run(100), Exit::OutOfGas);
}
