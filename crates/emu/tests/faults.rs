//! Fault-path edge cases: the differential fuzzer compares baseline and
//! diversified variants by fault *class*, so every abnormal exit must be
//! (a) the architecturally correct class and (b) bit-for-bit stable
//! across runs. A fault that drifted between runs — or between variants
//! executing the same abstract operation — would show up as a spurious
//! divergence.

use pgsd_emu::{Emulator, Exit, Fault};
use pgsd_x86::{assemble, Inst, Mem, Reg};

const TEXT_BASE: u32 = 0x1000;
const DATA_BASE: u32 = 0x10_0000;
const DATA_LEN: usize = 4096;
const STACK_TOP: u32 = 0x100_0000;
const GAS: u64 = 50_000_000;

/// Assembles and runs `insts` (no exit stub appended — these programs are
/// expected to fault), returning the exit status.
fn run(insts: &[Inst]) -> Exit {
    let text = assemble(insts).expect("assembles");
    let mut emu = Emulator::new(TEXT_BASE, text, DATA_BASE, vec![0; DATA_LEN], STACK_TOP);
    emu.cpu.eip = TEXT_BASE;
    emu.run(GAS)
}

/// Address of instruction `index` within the assembled `insts`.
fn addr_of(insts: &[Inst], index: usize) -> u32 {
    let prefix = assemble(&insts[..index]).expect("assembles");
    TEXT_BASE + prefix.len() as u32
}

/// Runs twice and asserts the exits are identical — fault codes must be a
/// pure function of the program.
fn run_deterministic(insts: &[Inst]) -> Exit {
    let first = run(insts);
    let second = run(insts);
    assert_eq!(first, second, "fault is not deterministic");
    first
}

#[test]
fn division_by_zero_raises_divide_error_at_the_idiv() {
    let insts = [
        Inst::MovRI(Reg::Eax, 7),
        Inst::Cdq,
        Inst::MovRI(Reg::Ecx, 0),
        Inst::IdivR(Reg::Ecx),
    ];
    let exit = run_deterministic(&insts);
    assert_eq!(
        exit,
        Exit::DivideError {
            addr: addr_of(&insts, 3)
        }
    );
}

#[test]
fn int_min_over_minus_one_raises_divide_error_not_wraparound() {
    // The quotient 2^31 does not fit in i32: #DE, same class as /0.
    let insts = [
        Inst::MovRI(Reg::Eax, i32::MIN),
        Inst::Cdq,
        Inst::MovRI(Reg::Ecx, -1),
        Inst::IdivR(Reg::Ecx),
    ];
    let exit = run_deterministic(&insts);
    assert_eq!(
        exit,
        Exit::DivideError {
            addr: addr_of(&insts, 3)
        }
    );
}

#[test]
fn store_past_the_data_segment_faults_unmapped_at_the_exact_address() {
    // One element past the end of a DATA_LEN-byte array.
    let oob = DATA_BASE + DATA_LEN as u32;
    let insts = [Inst::MovMI(
        Mem {
            base: None,
            index: None,
            disp: oob as i32,
        },
        0x5555_5555,
    )];
    let exit = run_deterministic(&insts);
    assert_eq!(exit, Exit::Fault(Fault::Unmapped { addr: oob }));
}

#[test]
fn store_into_the_text_segment_is_write_protected() {
    let insts = [Inst::MovMI(
        Mem {
            base: None,
            index: None,
            disp: TEXT_BASE as i32,
        },
        0,
    )];
    let exit = run_deterministic(&insts);
    assert_eq!(exit, Exit::Fault(Fault::WriteProtected { addr: TEXT_BASE }));
}

#[test]
fn jumping_into_the_data_segment_violates_w_xor_x() {
    let insts = [
        Inst::MovRI(Reg::Ecx, DATA_BASE as i32),
        Inst::JmpR(Reg::Ecx),
    ];
    let exit = run_deterministic(&insts);
    assert_eq!(exit, Exit::Fault(Fault::NotExecutable { addr: DATA_BASE }));
}

#[test]
fn unbounded_recursion_exhausts_the_stack_deterministically() {
    // `call -5` is a one-instruction self-loop: each iteration pushes a
    // return address and re-enters itself, marching esp down through the
    // whole 1 MiB stack segment. The first push below the segment base
    // must fault Unmapped at exactly stack_base - 4 — not overwrite data,
    // not wrap, not run out of gas first.
    let stack_base = STACK_TOP - pgsd_emu::mem::STACK_SIZE;
    let exit = run_deterministic(&[Inst::CallRel(-5)]);
    assert_eq!(
        exit,
        Exit::Fault(Fault::Unmapped {
            addr: stack_base - 4
        })
    );
}

#[test]
fn gas_exhaustion_is_reported_as_out_of_gas_not_a_fault() {
    // The same self-loop under a tiny budget must exit OutOfGas: the
    // fuzzer's runner distinguishes "still running" from "crashed", and
    // a gas exit misclassified as a fault would be a false divergence.
    let text = assemble(&[Inst::CallRel(-5)]).expect("assembles");
    let mut emu = Emulator::new(TEXT_BASE, text, DATA_BASE, vec![0; DATA_LEN], STACK_TOP);
    emu.cpu.eip = TEXT_BASE;
    assert_eq!(emu.run(100), Exit::OutOfGas);
}
