//! Architectural-semantics tests for the emulator: flag behaviour and
//! corner cases of the IA-32 subset, checked against the Intel SDM rules.
//! These matter because diversified code interleaves NOPs with
//! flag-dependent sequences, and the equivalent-instruction substitution
//! pass relies on precise flag definitions.

use pgsd_emu::{Emulator, Exit};
use pgsd_x86::{assemble, AluOp, Cond, Inst, Reg, ShiftOp};

/// Assembles `insts`, appends an exit stub that returns `ebx`, runs, and
/// returns the exit status.
fn run(insts: &[Inst]) -> i32 {
    let mut program = insts.to_vec();
    program.extend([Inst::MovRI(Reg::Eax, 1), Inst::Int(0x80)]);
    let text = assemble(&program).expect("assembles");
    let mut emu = Emulator::new(0x1000, text, 0x10_0000, vec![0; 4096], 0x100_0000);
    emu.cpu.eip = 0x1000;
    match emu.run(100_000) {
        Exit::Exited(v) => v,
        other => panic!("program did not exit cleanly: {other:?}"),
    }
}

/// Materializes a condition into ebx: ebx = cc ? 1 : 0.
fn cond_to_ebx(setup: &[Inst], cc: Cond) -> i32 {
    let mut insts = setup.to_vec();
    insts.extend([
        Inst::MovRI(Reg::Ebx, 1),
        Inst::Jcc8(cc, 5), // skip `mov ebx, 0`
        Inst::MovRI(Reg::Ebx, 0),
    ]);
    run(&insts)
}

#[test]
fn adc_and_sbb_propagate_carry() {
    // 0xFFFFFFFF + 1 sets CF; adc adds it through.
    let v = run(&[
        Inst::MovRI(Reg::Eax, -1),
        Inst::AluRI(AluOp::Add, Reg::Eax, 1), // CF=1, eax=0
        Inst::MovRI(Reg::Ebx, 10),
        Inst::AluRI(AluOp::Adc, Reg::Ebx, 5), // ebx = 10 + 5 + CF = 16
    ]);
    assert_eq!(v, 16);

    // 0 - 1 borrows; sbb subtracts the borrow through.
    let v = run(&[
        Inst::MovRI(Reg::Eax, 0),
        Inst::AluRI(AluOp::Sub, Reg::Eax, 1), // CF=1
        Inst::MovRI(Reg::Ebx, 10),
        Inst::AluRI(AluOp::Sbb, Reg::Ebx, 5), // ebx = 10 - 5 - 1 = 4
    ]);
    assert_eq!(v, 4);
}

#[test]
fn inc_dec_preserve_carry() {
    // CF set by add, then `inc` must NOT clear it (Intel SDM), so the
    // following adc still sees it.
    let v = run(&[
        Inst::MovRI(Reg::Eax, -1),
        Inst::AluRI(AluOp::Add, Reg::Eax, 1), // CF=1
        Inst::IncR(Reg::Eax),                 // CF preserved
        Inst::MovRI(Reg::Ebx, 0),
        Inst::AluRI(AluOp::Adc, Reg::Ebx, 0), // ebx = CF = 1
    ]);
    assert_eq!(v, 1);
    let v = run(&[
        Inst::MovRI(Reg::Eax, -1),
        Inst::AluRI(AluOp::Add, Reg::Eax, 1), // CF=1
        Inst::DecR(Reg::Eax),
        Inst::MovRI(Reg::Ebx, 0),
        Inst::AluRI(AluOp::Adc, Reg::Ebx, 0),
    ]);
    assert_eq!(v, 1);
}

#[test]
fn signed_overflow_flag() {
    // i32::MAX + 1 overflows: OF set, SF set (result negative).
    let setup = [
        Inst::MovRI(Reg::Eax, i32::MAX),
        Inst::AluRI(AluOp::Add, Reg::Eax, 1),
    ];
    assert_eq!(cond_to_ebx(&setup, Cond::O), 1);
    assert_eq!(cond_to_ebx(&setup, Cond::S), 1);
    // A signed comparison straddling the overflow boundary still orders
    // correctly: MIN < MAX.
    let setup = [
        Inst::MovRI(Reg::Eax, i32::MIN),
        Inst::MovRI(Reg::Ecx, i32::MAX),
        Inst::AluRR(AluOp::Cmp, Reg::Eax, Reg::Ecx),
    ];
    assert_eq!(cond_to_ebx(&setup, Cond::L), 1);
    assert_eq!(cond_to_ebx(&setup, Cond::B), 0, "unsigned: MIN > MAX");
}

#[test]
fn unsigned_conditions() {
    let setup = [
        Inst::MovRI(Reg::Eax, -1), // 0xFFFFFFFF
        Inst::MovRI(Reg::Ecx, 1),
        Inst::AluRR(AluOp::Cmp, Reg::Eax, Reg::Ecx),
    ];
    assert_eq!(cond_to_ebx(&setup, Cond::A), 1, "0xFFFFFFFF above 1");
    assert_eq!(cond_to_ebx(&setup, Cond::G), 0, "-1 not greater than 1");
    assert_eq!(cond_to_ebx(&setup, Cond::Ae), 1);
    assert_eq!(cond_to_ebx(&setup, Cond::Be), 0);
}

#[test]
fn shift_counts_mask_to_five_bits() {
    // Shifting by 32 (cl = 32 & 31 = 0) leaves the value unchanged.
    let v = run(&[
        Inst::MovRI(Reg::Ebx, 0x1234),
        Inst::MovRI(Reg::Ecx, 32),
        Inst::ShiftRCl(ShiftOp::Shl, Reg::Ebx),
    ]);
    assert_eq!(v, 0x1234);
    // Count 33 & 31 = 1.
    let v = run(&[
        Inst::MovRI(Reg::Ebx, 3),
        Inst::MovRI(Reg::Ecx, 33),
        Inst::ShiftRCl(ShiftOp::Shl, Reg::Ebx),
    ]);
    assert_eq!(v, 6);
}

#[test]
fn sar_vs_shr_on_negative() {
    let v = run(&[
        Inst::MovRI(Reg::Ebx, -8),
        Inst::ShiftRI(ShiftOp::Sar, Reg::Ebx, 1),
    ]);
    assert_eq!(v, -4);
    let v = run(&[
        Inst::MovRI(Reg::Ebx, -8),
        Inst::ShiftRI(ShiftOp::Shr, Reg::Ebx, 1),
    ]);
    assert_eq!(v, 0x7FFF_FFFC);
}

#[test]
fn shift_carry_feeds_adc() {
    // shl of 0x80000000 by 1 pushes the top bit into CF.
    let v = run(&[
        Inst::MovRI(Reg::Eax, i32::MIN),
        Inst::ShiftRI(ShiftOp::Shl, Reg::Eax, 1),
        Inst::MovRI(Reg::Ebx, 0),
        Inst::AluRI(AluOp::Adc, Reg::Ebx, 0),
    ]);
    assert_eq!(v, 1);
    // shr of 1 by 1 pushes the low bit into CF.
    let v = run(&[
        Inst::MovRI(Reg::Eax, 1),
        Inst::ShiftRI(ShiftOp::Shr, Reg::Eax, 1),
        Inst::MovRI(Reg::Ebx, 0),
        Inst::AluRI(AluOp::Adc, Reg::Ebx, 0),
    ]);
    assert_eq!(v, 1);
}

#[test]
fn rotates_preserve_bits() {
    let v = run(&[
        Inst::MovRI(Reg::Ebx, 0x80000001u32 as i32),
        Inst::ShiftRI(ShiftOp::Rol, Reg::Ebx, 4),
    ]);
    assert_eq!(v as u32, 0x0000_0018);
    let v = run(&[
        Inst::MovRI(Reg::Ebx, 0x80000001u32 as i32),
        Inst::ShiftRI(ShiftOp::Ror, Reg::Ebx, 4),
    ]);
    assert_eq!(v as u32, 0x1800_0000);
}

#[test]
fn neg_sets_carry_unless_zero() {
    let setup = [Inst::MovRI(Reg::Eax, 5), Inst::NegR(Reg::Eax)];
    assert_eq!(cond_to_ebx(&setup, Cond::B), 1, "neg of nonzero sets CF");
    let setup = [Inst::MovRI(Reg::Eax, 0), Inst::NegR(Reg::Eax)];
    assert_eq!(cond_to_ebx(&setup, Cond::B), 0, "neg of zero clears CF");
}

#[test]
fn test_and_logic_ops_clear_carry() {
    let setup = [
        Inst::MovRI(Reg::Eax, -1),
        Inst::AluRI(AluOp::Add, Reg::Eax, 1), // CF=1
        Inst::MovRI(Reg::Ecx, 7),
        Inst::TestRR(Reg::Ecx, Reg::Ecx), // CF cleared, ZF=0
    ];
    assert_eq!(cond_to_ebx(&setup, Cond::B), 0);
    assert_eq!(cond_to_ebx(&setup, Cond::Ne), 1);
}

#[test]
fn parity_flag_of_low_byte() {
    // 3 = 0b11 → even parity → PF set.
    let setup = [
        Inst::MovRI(Reg::Eax, 0),
        Inst::AluRI(AluOp::Add, Reg::Eax, 3),
    ];
    assert_eq!(cond_to_ebx(&setup, Cond::P), 1);
    // 1 → odd parity.
    let setup = [
        Inst::MovRI(Reg::Eax, 0),
        Inst::AluRI(AluOp::Add, Reg::Eax, 1),
    ];
    assert_eq!(cond_to_ebx(&setup, Cond::P), 0);
    // Parity looks at the LOW BYTE only: 0x100 has low byte 0 → even.
    let setup = [
        Inst::MovRI(Reg::Eax, 0),
        Inst::AluRI(AluOp::Add, Reg::Eax, 0x100),
    ];
    assert_eq!(cond_to_ebx(&setup, Cond::P), 1);
}

#[test]
fn imul_overflow_flag() {
    let setup = [
        Inst::MovRI(Reg::Eax, 0x10000),
        Inst::ImulRRI(Reg::Eax, Reg::Eax, 0x10000), // 2^32: overflows
    ];
    assert_eq!(cond_to_ebx(&setup, Cond::O), 1);
    let setup = [
        Inst::MovRI(Reg::Eax, 1000),
        Inst::ImulRRI(Reg::Eax, Reg::Eax, 1000), // fits
    ];
    assert_eq!(cond_to_ebx(&setup, Cond::O), 0);
}

#[test]
fn push_esp_pushes_old_value() {
    // Intel SDM: PUSH ESP pushes the value before the decrement —
    // `push esp; pop ebx` therefore equals `mov ebx, esp`. The
    // substitution pass relies on this.
    let v = run(&[
        Inst::MovRR(Reg::Ecx, Reg::Esp), // save expected
        Inst::PushR(Reg::Esp),
        Inst::PopR(Reg::Ebx),
        Inst::AluRR(AluOp::Sub, Reg::Ebx, Reg::Ecx), // must be 0
    ]);
    assert_eq!(v, 0);
}

#[test]
fn xchg_swaps_without_flags() {
    let setup = [
        Inst::MovRI(Reg::Eax, -1),
        Inst::AluRI(AluOp::Add, Reg::Eax, 1), // CF=1
        Inst::MovRI(Reg::Ecx, 2),
        Inst::MovRI(Reg::Edx, 3),
        Inst::XchgRR(Reg::Ecx, Reg::Edx),
    ];
    // CF survives the xchg.
    assert_eq!(cond_to_ebx(&setup, Cond::B), 1);
    let v = run(&[
        Inst::MovRI(Reg::Ecx, 2),
        Inst::MovRI(Reg::Ebx, 3),
        Inst::XchgRR(Reg::Ebx, Reg::Ecx),
    ]);
    assert_eq!(v, 2);
}

#[test]
fn cdq_sign_extends() {
    let v = run(&[
        Inst::MovRI(Reg::Eax, -5),
        Inst::Cdq,
        Inst::MovRR(Reg::Ebx, Reg::Edx),
    ]);
    assert_eq!(v, -1);
    let v = run(&[
        Inst::MovRI(Reg::Eax, 5),
        Inst::Cdq,
        Inst::MovRR(Reg::Ebx, Reg::Edx),
    ]);
    assert_eq!(v, 0);
}

#[test]
fn idiv_rounds_toward_zero() {
    for (a, b, q, r) in [
        (7, 2, 3, 1),
        (-7, 2, -3, -1),
        (7, -2, -3, 1),
        (-7, -2, 3, -1),
    ] {
        let quotient = run(&[
            Inst::MovRI(Reg::Eax, a),
            Inst::Cdq,
            Inst::MovRI(Reg::Ecx, b),
            Inst::IdivR(Reg::Ecx),
            Inst::MovRR(Reg::Ebx, Reg::Eax),
        ]);
        assert_eq!(quotient, q, "{a}/{b}");
        let remainder = run(&[
            Inst::MovRI(Reg::Eax, a),
            Inst::Cdq,
            Inst::MovRI(Reg::Ecx, b),
            Inst::IdivR(Reg::Ecx),
            Inst::MovRR(Reg::Ebx, Reg::Edx),
        ]);
        assert_eq!(remainder, r, "{a}%{b}");
    }
}
