//! The promoted `RunStats` counters must be internally consistent: the
//! instruction-mix histogram partitions the retired-instruction count,
//! cache hits and misses partition the accesses, and the branch
//! taken/not-taken split partitions the conditional-branch class.

use pgsd_emu::{Emulator, Exit, InstClass, RunStats};
use pgsd_x86::nop::NopKind;
use pgsd_x86::{assemble, AluOp, Cond, Inst, Mem, Reg, ShiftOp};

fn run(insts: &[Inst]) -> (Exit, RunStats) {
    let text = assemble(insts).expect("assembles");
    let mut emu = Emulator::new(0x1000, text, 0x0010_0000, vec![0; 4096], 0x0100_0000);
    emu.cpu.eip = 0x1000;
    let exit = emu.run(1_000_000);
    (exit, emu.stats.clone())
}

/// A workload exercising every counter: a 20-trip loop touching memory
/// (misses on first touch, hits afterwards), arithmetic, shifts, stack
/// ops, NOPs, a division that banks slack, an `xchg`, and a call/ret/jmp
/// cluster.
fn workload() -> Vec<Inst> {
    // Loop body; the conditional branch displacement is computed from its
    // assembled size rather than hand-counted bytes.
    let body = vec![
        Inst::MovMR(Mem::abs(0x0010_0040), Reg::Ecx), // store
        Inst::MovRM(Reg::Eax, Mem::abs(0x0010_0040)), // load
        Inst::AluMI(AluOp::Add, Mem::abs(0x0010_0080), 3), // rmw
        Inst::AluRR(AluOp::Add, Reg::Esi, Reg::Eax),  // alu
        Inst::ShiftRI(ShiftOp::Shl, Reg::Eax, 1),     // shift
        Inst::PushR(Reg::Eax),                        // stack
        Inst::PopR(Reg::Edx),                         // stack
        Inst::Nop(NopKind::Nop),                      // nop
        Inst::Lea(Reg::Edi, Mem::base_disp(Reg::Esi, 4)), // lea
        Inst::DecR(Reg::Ecx),                         // alu
    ];
    let body_len = assemble(&body).expect("assembles").len() as i32;
    let jcc_len = 2; // Jcc8 encodes to 2 bytes

    let mut insts = vec![Inst::MovRI(Reg::Ecx, 20), Inst::MovRI(Reg::Esi, 0)];
    insts.extend(body);
    insts.push(Inst::Jcc8(Cond::Ne, (-(body_len + jcc_len)) as i8));
    insts.extend([
        // One division (banks slack so the NOPs right after hide in it).
        Inst::MovRI(Reg::Eax, 100),
        Inst::Cdq,
        Inst::MovRI(Reg::Ecx, 7),
        Inst::IdivR(Reg::Ecx),
        Inst::Nop(NopKind::Nop),
        Inst::Nop(NopKind::MovEspEsp),
        Inst::XchgRR(Reg::Eax, Reg::Edx), // xchg
        // call (5 bytes) targets the ret two bytes ahead; the ret returns
        // to the jmp, which hops over the 1-byte ret to the exit stub.
        Inst::CallRel(2),
        Inst::JmpRel8(1),
        Inst::Ret,
        Inst::MovRI(Reg::Ebx, 0),
        Inst::MovRI(Reg::Eax, 1),
        Inst::Int(0x80),
    ]);
    insts
}

#[test]
fn inst_mix_partitions_retired_instructions() {
    let (exit, stats) = run(&workload());
    assert_eq!(exit, Exit::Exited(0));
    let mix_total: u64 = stats.inst_mix.iter().sum();
    assert_eq!(mix_total, stats.instructions);
    // Every class the workload exercises is nonzero.
    for class in [
        InstClass::Mov,
        InstClass::Load,
        InstClass::Store,
        InstClass::Rmw,
        InstClass::Alu,
        InstClass::Div,
        InstClass::Shift,
        InstClass::Stack,
        InstClass::Lea,
        InstClass::Xchg,
        InstClass::Call,
        InstClass::Ret,
        InstClass::Jump,
        InstClass::CondBranch,
        InstClass::Syscall,
        InstClass::Nop,
    ] {
        assert!(stats.mix(class) > 0, "class {class:?} not counted");
    }
}

#[test]
fn cache_hits_and_misses_partition_accesses() {
    let (_, stats) = run(&workload());
    assert_eq!(
        stats.dcache_hits + stats.dcache_misses,
        stats.dcache_accesses
    );
    // The loop re-touches two lines 20 times: misses on first touch,
    // hits afterwards.
    assert!(stats.dcache_misses > 0);
    assert!(stats.dcache_hits > stats.dcache_misses);
}

#[test]
fn branch_split_partitions_conditional_branches() {
    let (_, stats) = run(&workload());
    assert_eq!(
        stats.branch_taken + stats.branch_not_taken,
        stats.mix(InstClass::CondBranch)
    );
    assert_eq!(stats.branch_taken, 19);
    assert_eq!(stats.branch_not_taken, 1);
}

#[test]
fn slack_hides_nops_after_long_latency_ops() {
    let (_, stats) = run(&workload());
    // The division banks slack; the NOPs right after it retire for free.
    assert!(stats.slack_hidden > 0);
}

#[test]
fn class_labels_are_unique_and_cover_all() {
    let mut labels: Vec<&str> = InstClass::ALL.iter().map(|c| c.label()).collect();
    assert_eq!(labels.len(), InstClass::COUNT);
    labels.sort_unstable();
    labels.dedup();
    assert_eq!(labels.len(), InstClass::COUNT, "duplicate class label");
}
