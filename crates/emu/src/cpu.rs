//! CPU state: registers and flags.

use pgsd_x86::{Cond, Reg};

/// Arithmetic flags (the subset x86 conditional branches consult).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Carry.
    pub cf: bool,
    /// Zero.
    pub zf: bool,
    /// Sign.
    pub sf: bool,
    /// Overflow.
    pub of: bool,
    /// Parity (of the low result byte).
    pub pf: bool,
}

impl Flags {
    /// Sets ZF/SF/PF from a result.
    pub fn set_zsp(&mut self, result: u32) {
        self.zf = result == 0;
        self.sf = (result as i32) < 0;
        self.pf = (result as u8).count_ones().is_multiple_of(2);
    }

    /// Evaluates a condition code against the current flags.
    pub fn cond(&self, cc: Cond) -> bool {
        match cc {
            Cond::O => self.of,
            Cond::No => !self.of,
            Cond::B => self.cf,
            Cond::Ae => !self.cf,
            Cond::E => self.zf,
            Cond::Ne => !self.zf,
            Cond::Be => self.cf || self.zf,
            Cond::A => !self.cf && !self.zf,
            Cond::S => self.sf,
            Cond::Ns => !self.sf,
            Cond::P => self.pf,
            Cond::Np => !self.pf,
            Cond::L => self.sf != self.of,
            Cond::Ge => self.sf == self.of,
            Cond::Le => self.zf || self.sf != self.of,
            Cond::G => !self.zf && self.sf == self.of,
        }
    }
}

/// Register file plus instruction pointer and flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cpu {
    regs: [u32; 8],
    /// Instruction pointer.
    pub eip: u32,
    /// Arithmetic flags.
    pub flags: Flags,
}

impl Cpu {
    /// Creates a zeroed CPU.
    pub fn new() -> Cpu {
        Cpu::default()
    }

    /// Reads a register.
    #[inline]
    pub fn get(&self, r: Reg) -> u32 {
        self.regs[r.number() as usize]
    }

    /// Writes a register.
    #[inline]
    pub fn set(&mut self, r: Reg, v: u32) {
        self.regs[r.number() as usize] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_conditions() {
        // 1 - 2: sf=1, of=0 → L true, G false.
        let mut f = Flags::default();
        let (res, borrow) = 1u32.overflowing_sub(2);
        f.cf = borrow;
        f.of = false;
        f.set_zsp(res);
        assert!(f.cond(Cond::L));
        assert!(f.cond(Cond::Ne));
        assert!(!f.cond(Cond::G));
        assert!(f.cond(Cond::Le));
        assert!(f.cond(Cond::B)); // unsigned: 1 < 2
    }

    #[test]
    fn negated_conditions_are_complements() {
        let f = Flags {
            cf: true,
            zf: false,
            sf: true,
            of: false,
            pf: true,
        };
        for cc in Cond::ALL {
            assert_eq!(f.cond(cc), !f.cond(cc.negated()), "{cc}");
        }
    }

    #[test]
    fn parity_of_low_byte_only() {
        let mut f = Flags::default();
        f.set_zsp(0x0000_0300); // low byte 0, even parity
        assert!(f.pf);
        f.set_zsp(0x0000_0001);
        assert!(!f.pf);
    }
}
