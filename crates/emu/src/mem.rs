//! Flat segmented memory with W⊕X enforcement.
//!
//! The address space mirrors the paper's Linux target: an executable,
//! read-only text segment at the image base; a writable data segment; and a
//! writable stack below `0x0BF0_0000`. The text segment is never writable
//! and the data/stack segments are never executable — the W⊕X policy
//! (paper §2.1) that forces attackers into code reuse in the first place.

//!
//! Segment contents are `Arc`-shared with copy-on-write semantics: a
//! fresh address space for a seed run borrows the image's text and data
//! buffers instead of copying them, and the first write to a segment
//! (data/stack stores, or an attack simulation's unchecked write into
//! text) un-shares just that segment via [`Arc::make_mut`]. Reads and
//! instruction fetches never copy.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Size of the stack segment in bytes (1 MiB).
pub const STACK_SIZE: u32 = 1 << 20;

/// A memory access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Address not mapped by any segment.
    Unmapped {
        /// Faulting address.
        addr: u32,
    },
    /// Write to a non-writable segment (the text section).
    WriteProtected {
        /// Faulting address.
        addr: u32,
    },
    /// Execution from a non-executable segment (W⊕X violation).
    NotExecutable {
        /// Faulting address.
        addr: u32,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Unmapped { addr } => write!(f, "unmapped address {addr:#010x}"),
            Fault::WriteProtected { addr } => {
                write!(f, "write to protected address {addr:#010x}")
            }
            Fault::NotExecutable { addr } => {
                write!(f, "execute from non-executable address {addr:#010x}")
            }
        }
    }
}

impl Error for Fault {}

struct Segment {
    base: u32,
    bytes: Arc<Vec<u8>>,
    writable: bool,
    executable: bool,
}

impl Segment {
    fn contains(&self, addr: u32, len: u32) -> bool {
        addr >= self.base && addr.wrapping_add(len) <= self.base + self.bytes.len() as u32
    }
}

/// The emulated 32-bit address space.
pub struct Memory {
    segments: Vec<Segment>,
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Memory({} segments)", self.segments.len())
    }
}

impl Memory {
    /// Builds the address space for a program image: text (R+X), data
    /// (R+W, extended by `extra_data` zero bytes of headroom), and a stack
    /// segment ending at `stack_top` (R+W).
    pub fn new(
        text_base: u32,
        text: impl Into<Arc<Vec<u8>>>,
        data_base: u32,
        data: impl Into<Arc<Vec<u8>>>,
        stack_top: u32,
    ) -> Memory {
        let mut data = data.into();
        // Give the data segment a little headroom so zero-length data
        // sections still accept counter-free programs writing globals.
        if data.is_empty() {
            data = Arc::new(vec![0; 4]);
        }
        Memory {
            segments: vec![
                Segment {
                    base: text_base,
                    bytes: text.into(),
                    writable: false,
                    executable: true,
                },
                Segment {
                    base: data_base,
                    bytes: data,
                    writable: true,
                    executable: false,
                },
                Segment {
                    base: stack_top - STACK_SIZE,
                    bytes: Arc::new(vec![0; STACK_SIZE as usize]),
                    writable: true,
                    executable: false,
                },
            ],
        }
    }

    fn find(&self, addr: u32, len: u32) -> Option<usize> {
        self.segments.iter().position(|s| s.contains(addr, len))
    }

    /// Reads a 32-bit little-endian word.
    ///
    /// # Errors
    ///
    /// Faults if the range is unmapped.
    pub fn read_u32(&self, addr: u32) -> Result<u32, Fault> {
        let si = self.find(addr, 4).ok_or(Fault::Unmapped { addr })?;
        let s = &self.segments[si];
        let off = (addr - s.base) as usize;
        Ok(u32::from_le_bytes(
            s.bytes[off..off + 4].try_into().expect("4 bytes"),
        ))
    }

    /// Writes a 32-bit little-endian word.
    ///
    /// # Errors
    ///
    /// Faults if the range is unmapped or not writable.
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), Fault> {
        let si = self.find(addr, 4).ok_or(Fault::Unmapped { addr })?;
        let s = &mut self.segments[si];
        if !s.writable {
            return Err(Fault::WriteProtected { addr });
        }
        let off = (addr - s.base) as usize;
        Arc::make_mut(&mut s.bytes)[off..off + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Returns up to `len` bytes starting at `addr` from an *executable*
    /// segment, for instruction fetch.
    ///
    /// # Errors
    ///
    /// Faults if `addr` is unmapped or the segment is not executable
    /// (W⊕X).
    pub fn fetch(&self, addr: u32, len: u32) -> Result<&[u8], Fault> {
        let si = self.find(addr, 1).ok_or(Fault::Unmapped { addr })?;
        let s = &self.segments[si];
        if !s.executable {
            return Err(Fault::NotExecutable { addr });
        }
        let off = (addr - s.base) as usize;
        let end = (off + len as usize).min(s.bytes.len());
        Ok(&s.bytes[off..end])
    }

    /// Reads a byte range for inspection (no permission checks).
    ///
    /// # Errors
    ///
    /// Faults if the range is unmapped.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], Fault> {
        let si = self.find(addr, len).ok_or(Fault::Unmapped { addr })?;
        let s = &self.segments[si];
        let off = (addr - s.base) as usize;
        Ok(&s.bytes[off..off + len as usize])
    }

    /// Writes raw bytes, honoring write protection.
    ///
    /// # Errors
    ///
    /// Faults if the range is unmapped or not writable.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Fault> {
        let si = self
            .find(addr, bytes.len() as u32)
            .ok_or(Fault::Unmapped { addr })?;
        let s = &mut self.segments[si];
        if !s.writable {
            return Err(Fault::WriteProtected { addr });
        }
        let off = (addr - s.base) as usize;
        Arc::make_mut(&mut s.bytes)[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Writes raw bytes, *bypassing* write protection. Used by attack
    /// simulations to model a memory-corruption primitive, and by the
    /// loader.
    ///
    /// # Errors
    ///
    /// Faults if the range is unmapped.
    pub fn write_bytes_unchecked(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Fault> {
        let si = self
            .find(addr, bytes.len() as u32)
            .ok_or(Fault::Unmapped { addr })?;
        let s = &mut self.segments[si];
        let off = (addr - s.base) as usize;
        Arc::make_mut(&mut s.bytes)[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::new(0x1000, vec![0xC3; 16], 0x8000, vec![0; 64], 0x10_0000)
    }

    #[test]
    fn data_round_trip() {
        let mut m = mem();
        m.write_u32(0x8000, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.read_u32(0x8000).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn stack_is_writable() {
        let mut m = mem();
        m.write_u32(0x10_0000 - 4, 7).unwrap();
        assert_eq!(m.read_u32(0x10_0000 - 4).unwrap(), 7);
    }

    #[test]
    fn text_is_write_protected() {
        let mut m = mem();
        assert_eq!(
            m.write_u32(0x1000, 0),
            Err(Fault::WriteProtected { addr: 0x1000 })
        );
        // …but fetchable.
        assert_eq!(m.fetch(0x1000, 1).unwrap(), &[0xC3]);
    }

    #[test]
    fn wxorx_blocks_stack_execution() {
        let m = mem();
        let sp = 0x10_0000 - 64;
        assert_eq!(m.fetch(sp, 1), Err(Fault::NotExecutable { addr: sp }));
        assert_eq!(
            m.fetch(0x8000, 1),
            Err(Fault::NotExecutable { addr: 0x8000 })
        );
    }

    #[test]
    fn unmapped_faults() {
        let m = mem();
        assert_eq!(
            m.read_u32(0x4000_0000),
            Err(Fault::Unmapped { addr: 0x4000_0000 })
        );
    }

    #[test]
    fn unchecked_write_pierces_protection() {
        let mut m = mem();
        m.write_bytes_unchecked(0x1000, &[0x90]).unwrap();
        assert_eq!(m.fetch(0x1000, 1).unwrap(), &[0x90]);
    }

    #[test]
    fn shared_segments_copy_on_write() {
        let text = Arc::new(vec![0xC3; 16]);
        let data = Arc::new(vec![0u8; 64]);
        let mut m = Memory::new(
            0x1000,
            Arc::clone(&text),
            0x8000,
            Arc::clone(&data),
            0x10_0000,
        );
        // Reads and fetches leave the buffers shared with the image.
        assert_eq!(m.read_u32(0x8000).unwrap(), 0);
        assert_eq!(m.fetch(0x1000, 1).unwrap(), &[0xC3]);
        assert_eq!(Arc::strong_count(&text), 2);
        assert_eq!(Arc::strong_count(&data), 2);
        // A data store un-shares only the data segment…
        m.write_u32(0x8000, 7).unwrap();
        assert_eq!(Arc::strong_count(&data), 1);
        assert_eq!(Arc::strong_count(&text), 2);
        assert_eq!(data[0], 0, "the image's buffer must be untouched");
        // …and an attack-sim write into text un-shares text too.
        m.write_bytes_unchecked(0x1000, &[0x90]).unwrap();
        assert_eq!(Arc::strong_count(&text), 1);
        assert_eq!(text[0], 0xC3, "the image's text must be untouched");
        assert_eq!(m.fetch(0x1000, 1).unwrap(), &[0x90]);
    }
}
