//! Crash context capture: a deterministic [`CrashReport`] for every
//! abnormal exit.
//!
//! Fleet operations (ΔBreakpad-style diversified crash reporting) need
//! more than an [`Exit`] discriminant: to remap a
//! variant-space crash back to the baseline, the reporter wants the
//! faulting program counter, the register file at fault time, and a
//! return-address backtrace. All of that is available in the emulator at
//! the moment execution stops, and — because the emulator is
//! deterministic — the whole report is reproducible bit-for-bit, which
//! lets the fault tests pin exact register values.
//!
//! The backtrace walks the frame-pointer chain the compiler always
//! emits (`push ebp; mov ebp, esp` — see `pgsd-cc`'s frame lowering):
//! `[ebp]` holds the caller's `ebp` and `[ebp + 4]` the return address.
//! The walk stops at the first frame whose return address leaves the
//! text segment, whose saved `ebp` does not grow upward, or whose slots
//! are unreadable — and is capped at [`MAX_BACKTRACE_FRAMES`] so a
//! stack-exhaustion crash (tens of thousands of live frames) yields a
//! bounded report.

use pgsd_x86::Reg;

use crate::exec::{Emulator, Exit};
use crate::mem::Fault;

/// Upper bound on captured backtrace frames.
pub const MAX_BACKTRACE_FRAMES: usize = 32;

/// Classification of an abnormal exit, for crash triage and the
/// `crash.reports{class=…}` telemetry counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CrashClass {
    /// Access to an address no segment maps.
    Unmapped,
    /// Write into the read-only text segment.
    WriteProtected,
    /// Instruction fetch from non-executable memory (W⊕X).
    NotExecutable,
    /// Bytes that do not decode.
    InvalidInstruction,
    /// A decodable instruction outside the emulated subset.
    Unsupported,
    /// `idiv` by zero or overflowing quotient.
    DivideError,
    /// `int` with an unknown vector or syscall number.
    BadSyscall,
    /// `hlt` executed.
    Halted,
}

impl CrashClass {
    /// Every class, in a stable order (report and metrics enumeration).
    pub const ALL: [CrashClass; 8] = [
        CrashClass::Unmapped,
        CrashClass::WriteProtected,
        CrashClass::NotExecutable,
        CrashClass::InvalidInstruction,
        CrashClass::Unsupported,
        CrashClass::DivideError,
        CrashClass::BadSyscall,
        CrashClass::Halted,
    ];

    /// Stable lowercase label (metrics `class=` value, JSON field).
    pub fn label(self) -> &'static str {
        match self {
            CrashClass::Unmapped => "unmapped",
            CrashClass::WriteProtected => "write_protected",
            CrashClass::NotExecutable => "not_executable",
            CrashClass::InvalidInstruction => "invalid_instruction",
            CrashClass::Unsupported => "unsupported",
            CrashClass::DivideError => "divide_error",
            CrashClass::BadSyscall => "bad_syscall",
            CrashClass::Halted => "halted",
        }
    }

    /// The class of an exit, or `None` for non-crash exits
    /// (clean exit, out of gas).
    pub fn of(exit: &Exit) -> Option<CrashClass> {
        Some(match exit {
            Exit::Exited(_) | Exit::OutOfGas => return None,
            Exit::Fault { fault, .. } => match fault {
                Fault::Unmapped { .. } => CrashClass::Unmapped,
                Fault::WriteProtected { .. } => CrashClass::WriteProtected,
                Fault::NotExecutable { .. } => CrashClass::NotExecutable,
            },
            Exit::InvalidInstruction { .. } => CrashClass::InvalidInstruction,
            Exit::Unsupported { .. } => CrashClass::Unsupported,
            Exit::DivideError { .. } => CrashClass::DivideError,
            Exit::BadSyscall { .. } => CrashClass::BadSyscall,
            Exit::Halted { .. } => CrashClass::Halted,
        })
    }
}

impl std::fmt::Display for CrashClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Deterministic crash context for one abnormal exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashReport {
    /// What went wrong.
    pub class: CrashClass,
    /// Address of the faulting instruction (`eip` at fault time; for a
    /// fetch fault, the unfetchable address itself).
    pub pc: u32,
    /// The offending *data* address for memory faults, `None` otherwise.
    pub addr: Option<u32>,
    /// The full register file at fault time, indexed by hardware
    /// register number ([`Reg::number`]).
    pub regs: [u32; 8],
    /// Return addresses recovered from the frame-pointer chain,
    /// innermost caller first, capped at [`MAX_BACKTRACE_FRAMES`].
    pub backtrace: Vec<u32>,
}

impl CrashReport {
    /// Deterministic JSON rendering: fixed field order, hex addresses,
    /// no floats or timestamps — byte-identical across runs.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{{\"class\":\"{}\",\"pc\":\"{:#010x}\",",
            self.class.label(),
            self.pc
        );
        match self.addr {
            Some(a) => write!(out, "\"addr\":\"{a:#010x}\",").expect("infallible"),
            None => out.push_str("\"addr\":null,"),
        }
        out.push_str("\"regs\":{");
        for (i, r) in Reg::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "\"{}\":\"{:#010x}\"", r.name(), self.regs[i]).expect("infallible");
        }
        out.push_str("},\"backtrace\":[");
        for (i, ret) in self.backtrace.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "\"{ret:#010x}\"").expect("infallible");
        }
        out.push_str("]}");
        out
    }
}

impl Emulator {
    /// Captures a [`CrashReport`] for an abnormal `exit`, or `None` for
    /// clean exits and gas exhaustion. Pure observation: reads CPU and
    /// memory state without modifying either, so it can be called any
    /// time after [`Emulator::run`] returns.
    pub fn crash_report(&self, exit: &Exit) -> Option<CrashReport> {
        let class = CrashClass::of(exit)?;
        let (pc, addr) = match *exit {
            Exit::Fault { pc, fault } => {
                let (Fault::Unmapped { addr }
                | Fault::WriteProtected { addr }
                | Fault::NotExecutable { addr }) = fault;
                (pc, Some(addr))
            }
            Exit::InvalidInstruction { addr }
            | Exit::Unsupported { addr, .. }
            | Exit::DivideError { addr }
            | Exit::Halted { addr }
            | Exit::BadSyscall { addr, .. } => (addr, None),
            Exit::Exited(_) | Exit::OutOfGas => unreachable!("classified as a crash"),
        };
        let mut regs = [0u32; 8];
        for r in Reg::ALL {
            regs[r.number() as usize] = self.cpu.get(r);
        }
        Some(CrashReport {
            class,
            pc,
            addr,
            regs,
            backtrace: self.backtrace(),
        })
    }

    /// Walks the `ebp` frame chain collecting return addresses,
    /// innermost caller first. See the module docs for the termination
    /// rules that keep the walk bounded and deterministic.
    pub fn backtrace(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut ebp = self.cpu.get(Reg::Ebp);
        while out.len() < MAX_BACKTRACE_FRAMES {
            let Ok(ret) = self.mem.read_u32(ebp.wrapping_add(4)) else {
                break;
            };
            if !self.in_text(ret) {
                break;
            }
            out.push(ret);
            let Ok(next) = self.mem.read_u32(ebp) else {
                break;
            };
            if next <= ebp {
                break;
            }
            ebp = next;
        }
        out
    }
}
