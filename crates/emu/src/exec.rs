//! The execution engine.
//!
//! A straightforward decode-and-dispatch interpreter over the modeled
//! instruction subset, with a per-address decode cache (text is
//! write-protected, so cached decodings can never go stale). The cache is
//! a flat lazily-filled `Vec<Option<(Inst, u8)>>` indexed by offset from
//! the text base — a single bounds-checked array access on the hot path
//! where a `HashMap` lookup used to hash every retired instruction;
//! addresses outside the text segment fall back to the full
//! fetch-and-decode path. W⊕X makes the cache sound: text is never
//! writable, so a cached decoding can only go stale if something pierces
//! protection with `Memory::write_bytes_unchecked` between executions —
//! exactly the situation the previous `HashMap` cache (which was also
//! never invalidated) had, so the staleness contract is unchanged.
//! Every executed instruction is
//! charged against the [`CostModel`]; the resulting cycle count is the
//! substitute for the paper's wall-clock SPEC measurements.

use std::sync::Arc;

use pgsd_x86::nop::NopKind;
use pgsd_x86::{decode, AluOp, Body, Inst, Mem, Reg, ShiftOp};

use crate::cost::CostModel;
use crate::cpu::Cpu;
use crate::mem::{Fault, Memory};

/// Why execution stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exit {
    /// The program exited via the exit syscall.
    Exited(i32),
    /// A memory access or W⊕X fault.
    Fault {
        /// Address of the faulting instruction. For a fetch fault
        /// (jumping outside executable memory) this is the unfetchable
        /// address itself — `eip` at fault time in every case.
        pc: u32,
        /// The memory-level fault, carrying the offending data address.
        fault: Fault,
    },
    /// Bytes at `addr` do not decode to a valid instruction.
    InvalidInstruction {
        /// Faulting instruction address.
        addr: u32,
    },
    /// A valid instruction outside the emulated subset.
    Unsupported {
        /// Faulting instruction address.
        addr: u32,
        /// Mnemonic of the unsupported instruction.
        name: &'static str,
    },
    /// `idiv` by zero or overflowing quotient (#DE).
    DivideError {
        /// Faulting instruction address.
        addr: u32,
    },
    /// The gas limit was reached before the program exited.
    OutOfGas,
    /// `hlt` executed.
    Halted {
        /// Address of the `hlt`.
        addr: u32,
    },
    /// `int` with an unknown vector or syscall number.
    BadSyscall {
        /// Address of the `int`.
        addr: u32,
        /// Value of `eax` at the gate.
        eax: u32,
    },
}

impl Exit {
    /// The exit status, if the program terminated normally.
    pub fn status(&self) -> Option<i32> {
        match self {
            Exit::Exited(s) => Some(*s),
            _ => None,
        }
    }
}

/// Coarse instruction classes for the retired-instruction mix histogram.
///
/// The classes follow the [`CostModel`]'s cost structure, so the mix
/// explains the cycle count: a run dominated by [`InstClass::Load`] and
/// [`InstClass::Div`] is memory/latency-bound (and hides inserted NOPs in
/// slack), one dominated by [`InstClass::Alu`] pays full price for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum InstClass {
    /// Register/immediate moves.
    Mov,
    /// Memory loads (`mov r, [m]` and ALU-with-memory-source).
    Load,
    /// Memory stores.
    Store,
    /// Read-modify-write memory operations.
    Rmw,
    /// Register ALU work (add/sub/logic/test/neg/not/inc/dec/cdq).
    Alu,
    /// Multiplies.
    Mul,
    /// Divides.
    Div,
    /// Shifts and rotates.
    Shift,
    /// `push`/`pop`.
    Stack,
    /// `lea`.
    Lea,
    /// `xchg` (bus-locking).
    Xchg,
    /// `call`.
    Call,
    /// `ret`.
    Ret,
    /// Unconditional jumps.
    Jump,
    /// Conditional branches.
    CondBranch,
    /// `int` syscall gates.
    Syscall,
    /// Recognized NOP-table forms.
    Nop,
    /// Everything else (`hlt`).
    Other,
}

impl InstClass {
    /// Number of classes (length of [`RunStats::inst_mix`]).
    pub const COUNT: usize = 18;

    /// All classes, in `inst_mix` index order.
    pub const ALL: [InstClass; InstClass::COUNT] = [
        InstClass::Mov,
        InstClass::Load,
        InstClass::Store,
        InstClass::Rmw,
        InstClass::Alu,
        InstClass::Mul,
        InstClass::Div,
        InstClass::Shift,
        InstClass::Stack,
        InstClass::Lea,
        InstClass::Xchg,
        InstClass::Call,
        InstClass::Ret,
        InstClass::Jump,
        InstClass::CondBranch,
        InstClass::Syscall,
        InstClass::Nop,
        InstClass::Other,
    ];

    /// The class of a decoded instruction.
    pub fn of(inst: &Inst) -> InstClass {
        match inst {
            Inst::MovRI(..) | Inst::MovRR(..) => InstClass::Mov,
            Inst::MovRM(..) | Inst::AluRM(..) => InstClass::Load,
            Inst::MovMR(..) | Inst::MovMI(..) => InstClass::Store,
            Inst::AluMR(..) | Inst::AluMI(..) | Inst::IncDecM(..) => InstClass::Rmw,
            Inst::AluRR(..)
            | Inst::AluRI(..)
            | Inst::TestRR(..)
            | Inst::NegR(..)
            | Inst::NotR(..)
            | Inst::IncR(..)
            | Inst::DecR(..)
            | Inst::Cdq => InstClass::Alu,
            Inst::ImulRR(..) | Inst::ImulRRI(..) | Inst::ImulRM(..) => InstClass::Mul,
            Inst::IdivR(..) => InstClass::Div,
            Inst::ShiftRI(..) | Inst::ShiftRCl(..) => InstClass::Shift,
            Inst::PushR(..) | Inst::PushI(..) | Inst::PushM(..) | Inst::PopR(..) => {
                InstClass::Stack
            }
            Inst::Lea(..) => InstClass::Lea,
            Inst::XchgRR(..) => InstClass::Xchg,
            Inst::CallRel(..) | Inst::CallR(..) => InstClass::Call,
            Inst::Ret | Inst::RetImm(..) => InstClass::Ret,
            Inst::JmpRel(..) | Inst::JmpRel8(..) | Inst::JmpR(..) => InstClass::Jump,
            Inst::Jcc(..) | Inst::Jcc8(..) => InstClass::CondBranch,
            Inst::Int(..) => InstClass::Syscall,
            Inst::Nop(..) => InstClass::Nop,
            Inst::Hlt => InstClass::Other,
        }
    }

    /// Stable lowercase label for metrics keys.
    pub fn label(self) -> &'static str {
        match self {
            InstClass::Mov => "mov",
            InstClass::Load => "load",
            InstClass::Store => "store",
            InstClass::Rmw => "rmw",
            InstClass::Alu => "alu",
            InstClass::Mul => "mul",
            InstClass::Div => "div",
            InstClass::Shift => "shift",
            InstClass::Stack => "stack",
            InstClass::Lea => "lea",
            InstClass::Xchg => "xchg",
            InstClass::Call => "call",
            InstClass::Ret => "ret",
            InstClass::Jump => "jump",
            InstClass::CondBranch => "cond_branch",
            InstClass::Syscall => "syscall",
            InstClass::Nop => "nop",
            InstClass::Other => "other",
        }
    }
}

/// Execution statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Modeled cycles consumed.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Diversifying NOP instructions retired (plain `nop` only; the
    /// two-byte candidates are indistinguishable from real code by
    /// design).
    pub nops_retired: u64,
    /// Data-cache misses.
    pub dcache_misses: u64,
    /// Data-cache hits (`dcache_hits + dcache_misses == dcache_accesses`).
    pub dcache_hits: u64,
    /// Data accesses sent through the modeled L1d.
    pub dcache_accesses: u64,
    /// Retired instructions per [`InstClass`], indexed by class
    /// discriminant; sums to `instructions`.
    pub inst_mix: [u64; InstClass::COUNT],
    /// Conditional branches that were taken.
    pub branch_taken: u64,
    /// Conditional branches that fell through.
    pub branch_not_taken: u64,
    /// Instructions retired for free inside the banked stall-slack window
    /// (the mechanism that makes NOPs cheap in memory-bound code).
    pub slack_hidden: u64,
    /// Values printed through the print syscall.
    pub output: Vec<i32>,
}

impl RunStats {
    /// Retired-instruction count for one class.
    pub fn mix(&self, class: InstClass) -> u64 {
        self.inst_mix[class as usize]
    }
}

/// The emulator: CPU, memory, cost model and statistics.
#[derive(Debug)]
pub struct Emulator {
    /// CPU state.
    pub cpu: Cpu,
    /// Address space.
    pub mem: Memory,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Statistics for the current run.
    pub stats: RunStats,
    /// Flat decode cache: slot `i` holds the decoded instruction at
    /// `text_base + i`, filled lazily on first execution.
    decode_cache: Vec<Option<(Inst, u8)>>,
    text_base: u32,
    fetch_accum: u32,
    slack: u64,
    /// Direct-mapped L1d tags (index = set, value = tag+1; 0 = empty).
    dcache: Vec<u32>,
}

/// Syscall numbers understood by the `int 0x80` gate.
const SYS_EXIT: u32 = 1;
const SYS_PRINT: u32 = 4;

impl Emulator {
    /// Creates an emulator for a loaded program.
    ///
    /// `stack_top` is the initial `esp`; the stack segment extends 1 MiB
    /// below it.
    pub fn new(
        text_base: u32,
        text: impl Into<Arc<Vec<u8>>>,
        data_base: u32,
        data: impl Into<Arc<Vec<u8>>>,
        stack_top: u32,
    ) -> Emulator {
        let text = text.into();
        let text_len = text.len();
        let mem = Memory::new(text_base, text, data_base, data.into(), stack_top);
        let mut cpu = Cpu::new();
        cpu.set(Reg::Esp, stack_top);
        Emulator {
            cpu,
            mem,
            cost: CostModel::default(),
            stats: RunStats::default(),
            decode_cache: vec![None; text_len],
            text_base,
            fetch_accum: 0,
            slack: 0,
            dcache: Vec::new(),
        }
    }

    /// Arranges a call: pushes `args` right-to-left, pushes `ret_addr`,
    /// and points `eip` at `entry` — exactly what the OS loader plus crt0
    /// would do before `main`.
    pub fn call_entry(&mut self, entry: u32, ret_addr: u32, args: &[i32]) {
        for &a in args.iter().rev() {
            self.push(a as u32).expect("stack is mapped");
        }
        self.push(ret_addr).expect("stack is mapped");
        self.cpu.eip = entry;
    }

    /// Whether `addr` lies inside the text segment (the decode cache
    /// covers exactly the text bytes).
    pub(crate) fn in_text(&self, addr: u32) -> bool {
        (addr.wrapping_sub(self.text_base) as usize) < self.decode_cache.len()
    }

    /// Pushes a 32-bit value.
    ///
    /// # Errors
    ///
    /// Faults if the stack is exhausted.
    pub fn push(&mut self, v: u32) -> Result<(), Fault> {
        let sp = self.cpu.get(Reg::Esp).wrapping_sub(4);
        self.mem.write_u32(sp, v)?;
        self.cpu.set(Reg::Esp, sp);
        Ok(())
    }

    /// Pops a 32-bit value.
    ///
    /// # Errors
    ///
    /// Faults if the stack is unmapped.
    pub fn pop(&mut self) -> Result<u32, Fault> {
        let sp = self.cpu.get(Reg::Esp);
        let v = self.mem.read_u32(sp)?;
        self.cpu.set(Reg::Esp, sp.wrapping_add(4));
        Ok(v)
    }

    /// Runs until exit, fault, or `gas` retired instructions.
    pub fn run(&mut self, gas: u64) -> Exit {
        let budget = self.stats.instructions.saturating_add(gas);
        loop {
            if self.stats.instructions >= budget {
                return Exit::OutOfGas;
            }
            if let Some(exit) = self.step() {
                return exit;
            }
        }
    }

    /// Executes one instruction; returns `Some` when execution stops.
    pub fn step(&mut self) -> Option<Exit> {
        let addr = self.cpu.eip;
        let off = addr.wrapping_sub(self.text_base) as usize;
        let cached = self.decode_cache.get(off).copied().flatten();
        let (inst, len) = match cached {
            Some((i, l)) => (i, u32::from(l)),
            None => {
                let bytes = match self.mem.fetch(addr, 16) {
                    Ok(b) => b,
                    Err(f) => return Some(Exit::Fault { pc: addr, fault: f }),
                };
                match decode(bytes) {
                    Ok(d) => match d.body {
                        Body::Known(i) => {
                            if let Some(slot) = self.decode_cache.get_mut(off) {
                                *slot = Some((i, d.len as u8));
                            }
                            (i, d.len as u32)
                        }
                        Body::Other(o) => return Some(Exit::Unsupported { addr, name: o.name }),
                    },
                    Err(_) => return Some(Exit::InvalidInstruction { addr }),
                }
            }
        };
        self.cpu.eip = addr.wrapping_add(len);
        self.stats.instructions += 1;
        self.stats.inst_mix[InstClass::of(&inst) as usize] += 1;
        // Removable NOPs hide in banked memory-stall slack; everything
        // else pays full price and long-latency instructions refill the
        // slack bank.
        if self.cost.hides_in_slack(&inst) && self.slack > 0 {
            self.slack -= 1;
            self.stats.slack_hidden += 1;
        } else {
            self.stats.cycles += self.cost.cost(&inst);
            self.slack = (self.slack + self.cost.slack_produced(&inst)).min(self.cost.slack_window);
        }
        self.fetch_accum += len;
        while self.fetch_accum >= 16 {
            self.fetch_accum -= 16;
            self.stats.cycles += self.cost.fetch_window;
        }
        match self.exec(addr, &inst) {
            Ok(None) => None,
            Ok(Some(exit)) => Some(exit),
            Err(f) => Some(Exit::Fault { pc: addr, fault: f }),
        }
    }

    /// Models one data access through the direct-mapped L1: on a miss,
    /// charges the miss penalty and banks it as slack.
    fn touch_data(&mut self, addr: u32) {
        let sets = 1usize << self.cost.cache_sets_log2;
        if self.dcache.len() != sets {
            self.dcache = vec![0; sets];
        }
        let line = addr >> 6;
        let set = (line as usize) & (sets - 1);
        let tag = (line >> self.cost.cache_sets_log2) + 1;
        self.stats.dcache_accesses += 1;
        if self.dcache[set] != tag {
            self.dcache[set] = tag;
            self.stats.cycles += self.cost.miss_penalty;
            self.stats.dcache_misses += 1;
            self.slack = (self.slack + self.cost.miss_penalty).min(self.cost.slack_window);
        } else {
            self.stats.dcache_hits += 1;
        }
    }

    fn ea(&self, m: &Mem) -> u32 {
        let mut a = m.disp as u32;
        if let Some(b) = m.base {
            a = a.wrapping_add(self.cpu.get(b));
        }
        if let Some((i, s)) = m.index {
            a = a.wrapping_add(self.cpu.get(i).wrapping_mul(s.factor()));
        }
        a
    }

    fn alu(&mut self, op: AluOp, a: u32, b: u32) -> u32 {
        let f = &mut self.cpu.flags;
        let cf_in = f.cf;
        let (res, cf, of) = match op {
            AluOp::Add => {
                let (r, c) = a.overflowing_add(b);
                (r, c, (a as i32).overflowing_add(b as i32).1)
            }
            AluOp::Adc => {
                let (r1, c1) = a.overflowing_add(b);
                let (r, c2) = r1.overflowing_add(cf_in as u32);
                let of = ((a ^ r) & (b ^ r) & 0x8000_0000) != 0;
                (r, c1 || c2, of)
            }
            AluOp::Sub | AluOp::Cmp => {
                let (r, c) = a.overflowing_sub(b);
                (r, c, (a as i32).overflowing_sub(b as i32).1)
            }
            AluOp::Sbb => {
                let (r1, c1) = a.overflowing_sub(b);
                let (r, c2) = r1.overflowing_sub(cf_in as u32);
                let of = ((a ^ b) & (a ^ r) & 0x8000_0000) != 0;
                (r, c1 || c2, of)
            }
            AluOp::And => (a & b, false, false),
            AluOp::Or => (a | b, false, false),
            AluOp::Xor => (a ^ b, false, false),
        };
        f.cf = cf;
        f.of = of;
        f.set_zsp(res);
        if op == AluOp::Cmp {
            a
        } else {
            res
        }
    }

    fn shift(&mut self, op: ShiftOp, val: u32, count: u8) -> Result<u32, &'static str> {
        let c = u32::from(count) & 31;
        if c == 0 {
            return Ok(val);
        }
        let f = &mut self.cpu.flags;
        let res = match op {
            ShiftOp::Shl => {
                f.cf = (val >> (32 - c)) & 1 == 1;
                let r = val.wrapping_shl(c);
                f.of = ((r >> 31) & 1 == 1) != f.cf;
                f.set_zsp(r);
                r
            }
            ShiftOp::Shr => {
                f.cf = (val >> (c - 1)) & 1 == 1;
                let r = val.wrapping_shr(c);
                f.of = (val >> 31) & 1 == 1;
                f.set_zsp(r);
                r
            }
            ShiftOp::Sar => {
                f.cf = ((val as i32) >> (c - 1)) & 1 == 1;
                let r = ((val as i32).wrapping_shr(c)) as u32;
                f.of = false;
                f.set_zsp(r);
                r
            }
            ShiftOp::Rol => {
                let r = val.rotate_left(c);
                f.cf = r & 1 == 1;
                r
            }
            ShiftOp::Ror => {
                let r = val.rotate_right(c);
                f.cf = (r >> 31) & 1 == 1;
                r
            }
            ShiftOp::Rcl | ShiftOp::Rcr => return Err("rcl/rcr"),
        };
        Ok(res)
    }

    fn imul_flags(&mut self, a: i32, b: i32) -> u32 {
        let full = i64::from(a) * i64::from(b);
        let res = full as i32;
        let overflow = i64::from(res) != full;
        self.cpu.flags.cf = overflow;
        self.cpu.flags.of = overflow;
        res as u32
    }

    fn exec(&mut self, addr: u32, inst: &Inst) -> Result<Option<Exit>, Fault> {
        use Inst::*;
        match *inst {
            MovRI(r, v) => self.cpu.set(r, v as u32),
            MovRR(d, s) => {
                let v = self.cpu.get(s);
                self.cpu.set(d, v);
            }
            MovRM(d, ref m) => {
                let a = self.ea(m);
                self.touch_data(a);
                let v = self.mem.read_u32(a)?;
                self.cpu.set(d, v);
            }
            MovMR(ref m, s) => {
                let a = self.ea(m);
                self.touch_data(a);
                let v = self.cpu.get(s);
                self.mem.write_u32(a, v)?;
            }
            MovMI(ref m, v) => {
                let a = self.ea(m);
                self.touch_data(a);
                self.mem.write_u32(a, v as u32)?;
            }
            AluRR(op, d, s) => {
                let (a, b) = (self.cpu.get(d), self.cpu.get(s));
                let r = self.alu(op, a, b);
                if !op.is_compare() {
                    self.cpu.set(d, r);
                }
            }
            AluRM(op, d, ref m) => {
                let ea = self.ea(m);
                self.touch_data(ea);
                let a = self.cpu.get(d);
                let b = self.mem.read_u32(ea)?;
                let r = self.alu(op, a, b);
                if !op.is_compare() {
                    self.cpu.set(d, r);
                }
            }
            AluMR(op, ref m, s) => {
                let addr = self.ea(m);
                self.touch_data(addr);
                let a = self.mem.read_u32(addr)?;
                let b = self.cpu.get(s);
                let r = self.alu(op, a, b);
                if !op.is_compare() {
                    self.mem.write_u32(addr, r)?;
                }
            }
            AluRI(op, d, v) => {
                let a = self.cpu.get(d);
                let r = self.alu(op, a, v as u32);
                if !op.is_compare() {
                    self.cpu.set(d, r);
                }
            }
            AluMI(op, ref m, v) => {
                let addr = self.ea(m);
                self.touch_data(addr);
                let a = self.mem.read_u32(addr)?;
                let r = self.alu(op, a, v as u32);
                if !op.is_compare() {
                    self.mem.write_u32(addr, r)?;
                }
            }
            TestRR(a, b) => {
                let (x, y) = (self.cpu.get(a), self.cpu.get(b));
                let f = &mut self.cpu.flags;
                f.cf = false;
                f.of = false;
                f.set_zsp(x & y);
            }
            ImulRR(d, s) => {
                let r = self.imul_flags(self.cpu.get(d) as i32, self.cpu.get(s) as i32);
                self.cpu.set(d, r);
            }
            ImulRM(d, ref m) => {
                let ea = self.ea(m);
                self.touch_data(ea);
                let b = self.mem.read_u32(ea)? as i32;
                let r = self.imul_flags(self.cpu.get(d) as i32, b);
                self.cpu.set(d, r);
            }
            ImulRRI(d, s, imm) => {
                let r = self.imul_flags(self.cpu.get(s) as i32, imm);
                self.cpu.set(d, r);
            }
            Cdq => {
                let v = if (self.cpu.get(Reg::Eax) as i32) < 0 {
                    u32::MAX
                } else {
                    0
                };
                self.cpu.set(Reg::Edx, v);
            }
            IdivR(r) => {
                let divisor = self.cpu.get(r) as i32 as i64;
                if divisor == 0 {
                    return Ok(Some(Exit::DivideError { addr }));
                }
                let dividend = ((u64::from(self.cpu.get(Reg::Edx)) << 32)
                    | u64::from(self.cpu.get(Reg::Eax))) as i64;
                let q = dividend.wrapping_div(divisor);
                let rem = dividend.wrapping_rem(divisor);
                if q > i64::from(i32::MAX) || q < i64::from(i32::MIN) {
                    return Ok(Some(Exit::DivideError { addr }));
                }
                self.cpu.set(Reg::Eax, q as i32 as u32);
                self.cpu.set(Reg::Edx, rem as i32 as u32);
            }
            NegR(r) => {
                let v = self.cpu.get(r);
                let res = (v as i32).wrapping_neg() as u32;
                self.cpu.flags.cf = v != 0;
                self.cpu.flags.of = v == 0x8000_0000;
                self.cpu.flags.set_zsp(res);
                self.cpu.set(r, res);
            }
            NotR(r) => {
                let v = !self.cpu.get(r);
                self.cpu.set(r, v);
            }
            IncR(r) => {
                let v = self.cpu.get(r).wrapping_add(1);
                self.cpu.flags.of = v == 0x8000_0000;
                self.cpu.flags.set_zsp(v);
                self.cpu.set(r, v);
            }
            DecR(r) => {
                let v = self.cpu.get(r).wrapping_sub(1);
                self.cpu.flags.of = v == 0x7FFF_FFFF;
                self.cpu.flags.set_zsp(v);
                self.cpu.set(r, v);
            }
            IncDecM(inc, ref m) => {
                let a = self.ea(m);
                self.touch_data(a);
                let v0 = self.mem.read_u32(a)?;
                let v = if inc {
                    v0.wrapping_add(1)
                } else {
                    v0.wrapping_sub(1)
                };
                self.cpu.flags.set_zsp(v);
                self.mem.write_u32(a, v)?;
            }
            ShiftRI(op, r, c) => {
                let v = self.cpu.get(r);
                match self.shift(op, v, c) {
                    Ok(res) => self.cpu.set(r, res),
                    Err(name) => return Ok(Some(Exit::Unsupported { addr, name })),
                }
            }
            ShiftRCl(op, r) => {
                let v = self.cpu.get(r);
                let c = self.cpu.get(Reg::Ecx) as u8;
                match self.shift(op, v, c) {
                    Ok(res) => self.cpu.set(r, res),
                    Err(name) => return Ok(Some(Exit::Unsupported { addr, name })),
                }
            }
            PushR(r) => {
                let v = self.cpu.get(r);
                self.push(v)?;
            }
            PushI(v) => self.push(v as u32)?,
            PushM(ref m) => {
                let ea = self.ea(m);
                self.touch_data(ea);
                let v = self.mem.read_u32(ea)?;
                self.push(v)?;
            }
            PopR(r) => {
                let v = self.pop()?;
                self.cpu.set(r, v);
            }
            Lea(r, ref m) => {
                let a = self.ea(m);
                self.cpu.set(r, a);
            }
            XchgRR(a, b) => {
                let (x, y) = (self.cpu.get(a), self.cpu.get(b));
                self.cpu.set(a, y);
                self.cpu.set(b, x);
            }
            CallRel(rel) => {
                let ret = self.cpu.eip;
                self.push(ret)?;
                self.cpu.eip = ret.wrapping_add(rel as u32);
            }
            CallR(r) => {
                let ret = self.cpu.eip;
                let target = self.cpu.get(r);
                self.push(ret)?;
                self.cpu.eip = target;
            }
            Ret => {
                self.cpu.eip = self.pop()?;
            }
            RetImm(n) => {
                self.cpu.eip = self.pop()?;
                let sp = self.cpu.get(Reg::Esp).wrapping_add(u32::from(n));
                self.cpu.set(Reg::Esp, sp);
            }
            JmpRel(rel) => self.cpu.eip = self.cpu.eip.wrapping_add(rel as u32),
            JmpRel8(rel) => self.cpu.eip = self.cpu.eip.wrapping_add(rel as i32 as u32),
            JmpR(r) => self.cpu.eip = self.cpu.get(r),
            Jcc(cc, rel) => {
                if self.cpu.flags.cond(cc) {
                    self.cpu.eip = self.cpu.eip.wrapping_add(rel as u32);
                    self.stats.cycles += self.cost.branch_taken;
                    self.stats.branch_taken += 1;
                } else {
                    self.stats.cycles += self.cost.branch_not_taken;
                    self.stats.branch_not_taken += 1;
                }
            }
            Jcc8(cc, rel) => {
                if self.cpu.flags.cond(cc) {
                    self.cpu.eip = self.cpu.eip.wrapping_add(rel as i32 as u32);
                    self.stats.cycles += self.cost.branch_taken;
                    self.stats.branch_taken += 1;
                } else {
                    self.stats.cycles += self.cost.branch_not_taken;
                    self.stats.branch_not_taken += 1;
                }
            }
            Int(0x80) => {
                let eax = self.cpu.get(Reg::Eax);
                let ebx = self.cpu.get(Reg::Ebx);
                match eax {
                    SYS_EXIT => return Ok(Some(Exit::Exited(ebx as i32))),
                    SYS_PRINT => {
                        self.stats.output.push(ebx as i32);
                        self.cpu.set(Reg::Eax, 0);
                    }
                    _ => return Ok(Some(Exit::BadSyscall { addr, eax })),
                }
            }
            Int(_) => {
                return Ok(Some(Exit::BadSyscall {
                    addr,
                    eax: self.cpu.get(Reg::Eax),
                }))
            }
            Hlt => return Ok(Some(Exit::Halted { addr })),
            Nop(NopKind::Nop) => self.stats.nops_retired += 1,
            Nop(_) => {}
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgsd_x86::assemble;

    fn emu(insts: &[Inst]) -> Emulator {
        let text = assemble(insts).expect("assembles");
        Emulator::new(0x1000, text, 0x0010_0000, vec![0; 256], 0x0100_0000)
    }

    fn run_to_exit(insts: &[Inst]) -> (Exit, RunStats) {
        let mut e = emu(insts);
        e.cpu.eip = 0x1000;
        let exit = e.run(100_000);
        (exit, e.stats.clone())
    }

    #[test]
    fn exit_syscall() {
        let (exit, _) = run_to_exit(&[
            Inst::MovRI(Reg::Ebx, 42),
            Inst::MovRI(Reg::Eax, 1),
            Inst::Int(0x80),
        ]);
        assert_eq!(exit, Exit::Exited(42));
    }

    #[test]
    fn arithmetic_and_branches() {
        // Sum 1..=10 with a loop, exit with the sum.
        let insts = [
            Inst::MovRI(Reg::Ebx, 0),
            Inst::MovRI(Reg::Ecx, 10),
            // loop: add ebx, ecx; dec ecx; jne loop(-5)
            Inst::AluRR(AluOp::Add, Reg::Ebx, Reg::Ecx), // 2 bytes
            Inst::DecR(Reg::Ecx),                        // 1 byte
            Inst::Jcc8(pgsd_x86::Cond::Ne, -5),          // 2 bytes
            Inst::MovRI(Reg::Eax, 1),
            Inst::Int(0x80),
        ];
        let (exit, stats) = run_to_exit(&insts);
        assert_eq!(exit, Exit::Exited(55));
        assert!(stats.instructions > 30);
    }

    #[test]
    fn memory_and_stack() {
        let insts = [
            Inst::MovRI(Reg::Eax, 7),
            Inst::MovMR(Mem::abs(0x0010_0010), Reg::Eax),
            Inst::PushR(Reg::Eax),
            Inst::PopR(Reg::Ebx),
            Inst::AluRM(AluOp::Add, Reg::Ebx, Mem::abs(0x0010_0010)),
            Inst::MovRI(Reg::Eax, 1),
            Inst::Int(0x80),
        ];
        let (exit, _) = run_to_exit(&insts);
        assert_eq!(exit, Exit::Exited(14));
    }

    #[test]
    fn signed_division() {
        let insts = [
            Inst::MovRI(Reg::Eax, -7),
            Inst::Cdq,
            Inst::MovRI(Reg::Ecx, 2),
            Inst::IdivR(Reg::Ecx),
            // quotient -3 in eax → move to ebx for exit
            Inst::MovRR(Reg::Ebx, Reg::Eax),
            Inst::MovRI(Reg::Eax, 1),
            Inst::Int(0x80),
        ];
        let (exit, _) = run_to_exit(&insts);
        assert_eq!(exit, Exit::Exited(-3));
    }

    #[test]
    fn divide_by_zero_traps() {
        let insts = [
            Inst::MovRI(Reg::Eax, 1),
            Inst::Cdq,
            Inst::MovRI(Reg::Ecx, 0),
            Inst::IdivR(Reg::Ecx),
        ];
        let (exit, _) = run_to_exit(&insts);
        assert!(matches!(exit, Exit::DivideError { .. }));
    }

    #[test]
    fn print_syscall_collects_output() {
        let insts = [
            Inst::MovRI(Reg::Ebx, 5),
            Inst::MovRI(Reg::Eax, 4),
            Inst::Int(0x80),
            Inst::MovRI(Reg::Ebx, 6),
            Inst::MovRI(Reg::Eax, 4),
            Inst::Int(0x80),
            Inst::MovRI(Reg::Ebx, 0),
            Inst::MovRI(Reg::Eax, 1),
            Inst::Int(0x80),
        ];
        let (exit, stats) = run_to_exit(&insts);
        assert_eq!(exit, Exit::Exited(0));
        assert_eq!(stats.output, vec![5, 6]);
    }

    #[test]
    fn nops_cost_cycles_but_change_nothing() {
        let base = [
            Inst::MovRI(Reg::Ebx, 3),
            Inst::MovRI(Reg::Eax, 1),
            Inst::Int(0x80),
        ];
        let mut with_nops = vec![Inst::Nop(NopKind::Nop), Inst::Nop(NopKind::MovEspEsp)];
        with_nops.extend_from_slice(&base);
        with_nops.insert(3, Inst::Nop(NopKind::LeaEsiEsi));
        let (e1, s1) = run_to_exit(&base);
        let (e2, s2) = run_to_exit(&with_nops);
        assert_eq!(e1, e2);
        assert!(s2.cycles > s1.cycles);
    }

    #[test]
    fn xchg_nop_costs_more_than_plain_nop() {
        let tail = [
            Inst::MovRI(Reg::Ebx, 0),
            Inst::MovRI(Reg::Eax, 1),
            Inst::Int(0x80),
        ];
        let mut plain = vec![Inst::Nop(NopKind::Nop)];
        plain.extend_from_slice(&tail);
        let mut locked = vec![Inst::Nop(NopKind::XchgEspEsp)];
        locked.extend_from_slice(&tail);
        let (_, s_plain) = run_to_exit(&plain);
        let (_, s_locked) = run_to_exit(&locked);
        assert!(s_locked.cycles > s_plain.cycles);
    }

    #[test]
    fn gas_limit_stops_infinite_loop() {
        let (exit, _) = run_to_exit(&[Inst::JmpRel8(-2)]);
        assert_eq!(exit, Exit::OutOfGas);
    }

    #[test]
    fn wxorx_stops_stack_execution() {
        let mut e = emu(&[Inst::Ret]);
        // "Inject" code onto the stack and jump to it.
        let sp = 0x0100_0000 - 64;
        e.mem.write_bytes(sp, &[0x90, 0xC3]).unwrap();
        e.cpu.eip = sp;
        let exit = e.run(10);
        assert_eq!(
            exit,
            Exit::Fault {
                pc: sp,
                fault: Fault::NotExecutable { addr: sp },
            }
        );
    }

    #[test]
    fn call_entry_sets_up_cdecl_frame() {
        // A function that returns its first argument: mov eax, [esp+4]; ret
        let insts = [
            Inst::MovRM(Reg::Eax, Mem::base_disp(Reg::Esp, 4)),
            Inst::Ret,
            // exit stub at +? — place directly after
            Inst::MovRR(Reg::Ebx, Reg::Eax),
            Inst::MovRI(Reg::Eax, 1),
            Inst::Int(0x80),
        ];
        let text = assemble(&insts).unwrap();
        // Offsets: mov=4 bytes? (8B 44 24 04) then C3 at +4, stub at +5.
        let stub = 0x1000 + 5;
        let mut e = Emulator::new(0x1000, text, 0x0010_0000, vec![0; 64], 0x0100_0000);
        e.call_entry(0x1000, stub, &[99, 1]);
        let exit = e.run(100);
        assert_eq!(exit, Exit::Exited(99));
    }
}
