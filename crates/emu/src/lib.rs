//! # pgsd-emu — deterministic x86-32 emulator with a cycle cost model
//!
//! The execution substrate of the reproduction: it plays the role of the
//! paper's Intel Xeon 5150 testbed. Programs produced by `pgsd-cc` run in a
//! sandboxed 32-bit address space with W⊕X enforced, and every retired
//! instruction is charged against a [`CostModel`]. Because the model is
//! deterministic, the relative overhead between a diversified and a
//! baseline build — the quantity the paper's Figure 4 reports — is
//! measured without noise.
//!
//! # Examples
//!
//! ```
//! use pgsd_emu::{Emulator, Exit};
//! use pgsd_x86::{assemble, Inst, Reg};
//!
//! let text = assemble(&[
//!     Inst::MovRI(Reg::Ebx, 7),
//!     Inst::MovRI(Reg::Eax, 1), // exit syscall
//!     Inst::Int(0x80),
//! ])?;
//! let mut emu = Emulator::new(0x1000, text, 0x10_0000, vec![0; 64], 0x100_0000);
//! emu.cpu.eip = 0x1000;
//! assert_eq!(emu.run(1000), Exit::Exited(7));
//! # Ok::<(), pgsd_x86::EncodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod cpu;
pub mod crash;
pub mod exec;
pub mod mem;

pub use cost::CostModel;
pub use cpu::{Cpu, Flags};
pub use crash::{CrashClass, CrashReport, MAX_BACKTRACE_FRAMES};
pub use exec::{Emulator, Exit, InstClass, RunStats};
pub use mem::{Fault, Memory};
