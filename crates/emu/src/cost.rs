//! Deterministic cycle-cost model.
//!
//! Replaces the paper's Xeon 5150 wall-clock measurements with a
//! reproducible timing substrate. The model follows the structure that
//! drives the paper's result: dynamic NOPs cost fetch/decode/retire
//! bandwidth (small but nonzero), `xchg`-based NOPs pay a bus-lock penalty
//! (paper §3 / Intel SDM), memory operations dominate simple ALU work, and
//! a per-16-byte instruction-fetch charge gives code bloat a secondary
//! cost. Absolute cycle counts are uncalibrated; Figure 4 only needs the
//! *relative* overhead between diversified and baseline builds of the same
//! program, which this model measures exactly.

use pgsd_x86::Inst;

/// Cycle costs per instruction class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Simple register-register ALU / mov / lea.
    pub simple: u64,
    /// Memory load (and the load half of read-modify-write).
    pub load: u64,
    /// Memory store.
    pub store: u64,
    /// `imul`.
    pub mul: u64,
    /// `idiv` (plus `cdq`).
    pub div: u64,
    /// `push`/`pop`.
    pub stack: u64,
    /// `call`/`ret`.
    pub call: u64,
    /// Taken branch.
    pub branch_taken: u64,
    /// Not-taken conditional branch.
    pub branch_not_taken: u64,
    /// Syscall gate (`int`).
    pub syscall: u64,
    /// A plain (non-bus-locking) NOP from the candidate table.
    pub nop: u64,
    /// The `xchg` NOPs, which lock the memory bus (paper Table 1).
    pub xchg_lock: u64,
    /// One instruction-fetch window (16 bytes of code consumed).
    pub fetch_window: u64,
    /// Maximum banked stall slack, in cycles. Cache misses and divisions
    /// bank their extra latency as *slack*; an inserted NOP retires for
    /// free while slack remains — modeling a superscalar core hiding
    /// removable instructions in the shadow of long stalls. This is what
    /// lets the paper's memory-bound 470.lbm show ≈0% NOP overhead while
    /// cache-resident ALU loops (482.sphinx3, 400.perlbench) pay full
    /// price.
    pub slack_window: u64,
    /// Extra cycles for a data-cache miss (on top of the hit cost) —
    /// FSB-era DRAM latency, matching the paper's Xeon 5150 testbed.
    pub miss_penalty: u64,
    /// log2 of the number of direct-mapped cache sets (64-byte lines);
    /// 9 → 512 sets → 32 KiB, the L1d size of the paper's Xeon 5150.
    pub cache_sets_log2: u32,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            simple: 1,
            load: 3,
            store: 2,
            mul: 4,
            div: 24,
            stack: 2,
            call: 4,
            branch_taken: 3,
            branch_not_taken: 1,
            syscall: 40,
            nop: 1,
            xchg_lock: 17,
            fetch_window: 1,
            slack_window: 200,
            miss_penalty: 200,
            cache_sets_log2: 9,
        }
    }
}

impl CostModel {
    /// Cost of executing `inst`. Branch costs are handled by the executor
    /// (taken vs. not-taken); this returns the non-branch base cost.
    pub fn cost(&self, inst: &Inst) -> u64 {
        match inst {
            Inst::Nop(k) => {
                if k.locks_bus() {
                    self.xchg_lock
                } else {
                    self.nop
                }
            }
            // `mov esp, esp` / `lea esi,[esi]` inserted as NOPs arrive here
            // as ordinary instructions; they cost `simple`, matching the
            // paper's observation that the non-xchg candidates are cheap.
            Inst::MovRI(..) | Inst::MovRR(..) => self.simple,
            Inst::MovRM(..) | Inst::AluRM(..) => self.load,
            Inst::ImulRM(..) => self.load + self.mul,
            Inst::MovMR(..) | Inst::MovMI(..) => self.store,
            Inst::AluMR(..) | Inst::AluMI(..) => self.load + self.store, // read-modify-write
            Inst::AluRR(..) | Inst::AluRI(..) | Inst::TestRR(..) => self.simple,
            Inst::ImulRR(..) | Inst::ImulRRI(..) => self.mul,
            Inst::Cdq => self.simple,
            Inst::IdivR(..) => self.div,
            Inst::NegR(..) | Inst::NotR(..) | Inst::IncR(..) | Inst::DecR(..) => self.simple,
            Inst::IncDecM(..) => self.load + self.store,
            Inst::ShiftRI(..) | Inst::ShiftRCl(..) => self.simple,
            Inst::PushR(..) | Inst::PushI(..) => self.stack,
            Inst::PushM(..) => self.stack + self.load,
            Inst::PopR(..) => self.stack,
            Inst::Lea(..) => self.simple,
            Inst::XchgRR(..) => self.xchg_lock,
            Inst::CallRel(..) | Inst::CallR(..) | Inst::Ret | Inst::RetImm(..) => self.call,
            Inst::JmpRel(..) | Inst::JmpRel8(..) | Inst::JmpR(..) => self.branch_taken,
            // Conditional branches: executor adds taken/not-taken cost.
            Inst::Jcc(..) | Inst::Jcc8(..) => 0,
            Inst::Int(..) => self.syscall,
            Inst::Hlt => self.simple,
        }
    }

    /// Slack cycles banked by executing `inst` (its latency beyond one
    /// issue slot). Only genuinely long-latency operations bank slack:
    /// divisions here, cache misses in the executor. Ordinary cache-hit
    /// loads do not — their few cycles pipeline away under the very
    /// instructions that follow them.
    pub fn slack_produced(&self, inst: &Inst) -> u64 {
        match inst {
            Inst::IdivR(..) => self.cost(inst).saturating_sub(1),
            _ => 0,
        }
    }

    /// `true` if `inst` is one of the removable diversifying NOP forms
    /// whose cost can hide in banked slack. The bus-locking `xchg` forms
    /// serialize and never hide (paper Table 1).
    pub fn hides_in_slack(&self, inst: &Inst) -> bool {
        match inst {
            Inst::Nop(k) => !k.locks_bus(),
            Inst::MovRR(a, b) => a == b,
            Inst::Lea(r, m) => m.base == Some(*r) && m.index.is_none() && m.disp == 0,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgsd_x86::nop::NopKind;
    use pgsd_x86::Reg;

    #[test]
    fn nops_are_cheap_except_xchg() {
        let m = CostModel::default();
        assert_eq!(m.cost(&Inst::Nop(NopKind::Nop)), m.nop);
        assert_eq!(m.cost(&Inst::Nop(NopKind::MovEspEsp)), m.nop);
        assert_eq!(m.cost(&Inst::Nop(NopKind::XchgEspEsp)), m.xchg_lock);
        // Decoded forms of the same bytes agree on the lock penalty.
        assert_eq!(m.cost(&Inst::XchgRR(Reg::Esp, Reg::Esp)), m.xchg_lock);
    }

    #[test]
    fn memory_costs_exceed_alu() {
        let m = CostModel::default();
        let alu = m.cost(&Inst::AluRR(pgsd_x86::AluOp::Add, Reg::Eax, Reg::Ebx));
        let load = m.cost(&Inst::MovRM(Reg::Eax, pgsd_x86::Mem::abs(0)));
        assert!(load > alu);
        assert!(m.cost(&Inst::IdivR(Reg::Ecx)) > load);
    }
}
