//! The fixed runtime library linked at the front of every image.
//!
//! Two hand-written stubs (`__exit`, `__print`) provide the syscall gate,
//! and a set of MiniC support routines (compiled through the normal
//! pipeline) models the *undiversified C library* of the paper's
//! evaluation: §5.2 attributes the constant tail of surviving gadgets —
//! roughly 40 per binary, independent of diversification parameters — to
//! "the small C library object files that the linker adds to the binary".
//! Because these functions are marked `diversify = false` and are laid out
//! at fixed offsets before any user code, their bytes are identical in
//! every diversified version, reproducing that effect.

use std::sync::OnceLock;

use pgsd_x86::Reg;

use crate::frontend::{lex, parse};
use crate::ir::builder::build;
use crate::ir::passes::optimize;
use crate::lir::frame::lower_frame;
use crate::lir::isel::{select, LowerCtx};
use crate::lir::regalloc::allocate;
use crate::lir::{MAddr, MBlock, MFunction, MInst, MReg, MRhs, MTerm};

/// Syscall number for `exit` (status in `ebx`) — mirrors Linux.
pub const SYS_EXIT: u8 = 1;
/// Syscall number for "print integer" (value in `ebx`) — takes the slot
/// Linux uses for `write`.
pub const SYS_PRINT: u8 = 4;

/// The `int` vector used for syscalls.
pub const SYSCALL_VECTOR: u8 = 0x80;

/// Index of `__exit` in the emitted function list.
pub const EXIT_INDEX: usize = 0;
/// Index of `__print` in the emitted function list.
pub const PRINT_INDEX: usize = 1;

/// MiniC source of the support routines. None of them reference globals
/// (the data section belongs to the user module) and they only call each
/// other, so their lowered call indices stay correct when prepended to any
/// user program.
const FILLER_SOURCE: &str = r#"
// Deliberately ordinary systems-code shapes: loops over buffers,
// comparisons, division helpers — the kind of code crt0/libc contributes.

int __rt_abs(int x) {
    if (x < 0) { return -x; }
    return x;
}

int __rt_min(int a, int b) { if (a < b) { return a; } return b; }
int __rt_max(int a, int b) { if (a > b) { return a; } return b; }

int __rt_clamp(int x, int lo, int hi) {
    if (x < lo) { return lo; }
    if (x > hi) { return hi; }
    return x;
}

// Software divide helper in the spirit of libgcc's __divsi3 wrappers.
int __rt_divmod(int a, int b, int want_mod) {
    if (b == 0) { return 0; }
    int q = a / b;
    int r = a % b;
    if (want_mod != 0) { return r; }
    return q;
}

// Hashing loop (FNV-ish) over synthesized bytes.
int __rt_hash(int seed, int n) {
    int h = 0x1003;
    int i = 0;
    while (i < n) {
        h = (h ^ (seed + i)) * 31;
        i = i + 1;
    }
    return h;
}
"#;

/// Builds the runtime function list: `[__exit, __print, filler…]`, all
/// fully lowered (allocated + framed) and marked non-diversifiable.
///
/// The result is deterministic; callers receive a clone of a cached copy.
pub fn runtime_functions() -> Vec<MFunction> {
    static CACHE: OnceLock<Vec<MFunction>> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            let mut out = vec![exit_stub(), print_stub()];
            out.extend(filler_functions());
            out
        })
        .clone()
}

/// `__exit`: receives the program result in `eax` (main's return value,
/// reached via the return address the loader pushes) and performs the exit
/// syscall with it in `ebx`.
fn exit_stub() -> MFunction {
    MFunction {
        name: "__exit".into(),
        params: 0,
        blocks: vec![MBlock {
            instrs: vec![
                MInst::MovRR {
                    dst: MReg::P(Reg::Ebx),
                    src: MReg::P(Reg::Eax),
                },
                MInst::MovRI {
                    dst: MReg::P(Reg::Eax),
                    imm: i32::from(SYS_EXIT),
                },
                MInst::Int { n: SYSCALL_VECTOR },
            ],
            term: MTerm::Ret, // unreachable; keeps the image well-formed
            ir_block: None,
        }],
        num_vregs: 0,
        slot_words: Vec::new(),
        diversify: false,
        raw: true,
    }
}

/// `__print(value)`: prints a 32-bit integer through the syscall gate,
/// preserving all registers except `eax` (caller-saved anyway).
fn print_stub() -> MFunction {
    MFunction {
        name: "__print".into(),
        params: 1,
        blocks: vec![MBlock {
            instrs: vec![
                MInst::Push {
                    rhs: MRhs::Reg(MReg::P(Reg::Ebx)),
                },
                // After the push, the argument sits at [esp + 8]
                // (saved ebx, return address, arg).
                MInst::Load {
                    dst: MReg::P(Reg::Ebx),
                    addr: MAddr::base_imm(MReg::P(Reg::Esp), 8),
                },
                MInst::MovRI {
                    dst: MReg::P(Reg::Eax),
                    imm: i32::from(SYS_PRINT),
                },
                MInst::Int { n: SYSCALL_VECTOR },
                MInst::Pop {
                    dst: MReg::P(Reg::Ebx),
                },
            ],
            term: MTerm::Ret,
            ir_block: None,
        }],
        num_vregs: 0,
        slot_words: Vec::new(),
        diversify: false,
        raw: true,
    }
}

fn filler_functions() -> Vec<MFunction> {
    let program =
        parse(lex(FILLER_SOURCE).expect("runtime filler lexes")).expect("runtime filler parses");
    let mut module = build("__runtime", &program).expect("runtime filler builds");
    assert!(
        module.globals.is_empty(),
        "runtime filler must not declare globals (data belongs to the user module)"
    );
    optimize(&mut module);
    let ctx = LowerCtx {
        print_index: PRINT_INDEX as u32,
        user_func_base: 2, // filler functions follow the two stubs
    };
    module
        .funcs
        .iter()
        .map(|f| {
            let mut mf = select(f, &ctx).expect("runtime filler lowers");
            allocate(&mut mf).expect("runtime filler allocates");
            lower_frame(&mut mf);
            mf.diversify = false;
            mf
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_layout_is_stable() {
        let rt = runtime_functions();
        assert_eq!(rt[EXIT_INDEX].name, "__exit");
        assert_eq!(rt[PRINT_INDEX].name, "__print");
        assert!(rt.len() > 5, "filler routines present");
        assert!(rt.iter().all(|f| !f.diversify));
        // Deterministic across calls.
        assert_eq!(rt, runtime_functions());
    }

    #[test]
    fn stubs_are_raw_and_filler_is_lowered() {
        let rt = runtime_functions();
        assert!(rt[EXIT_INDEX].raw);
        assert!(rt[PRINT_INDEX].raw);
        for f in &rt[2..] {
            assert!(!f.raw);
            for b in &f.blocks {
                for i in &b.instrs {
                    i.for_each_reg(|r, _| {
                        assert!(matches!(r, MReg::P(_)), "unallocated register in runtime");
                    });
                }
            }
        }
    }

    #[test]
    fn filler_has_substance() {
        let rt = runtime_functions();
        let instrs: usize = rt[2..].iter().map(|f| f.num_instrs()).sum();
        assert!(
            instrs > 50,
            "filler should be dozens of instructions, got {instrs}"
        );
    }
}
