//! Byte emission and image layout.
//!
//! Turns fully lowered [`MFunction`]s into an executable [`Image`]:
//! a text section at [`IMAGE_BASE`] (the classic Linux ELF load address the
//! paper mentions for non-ASLR binaries), a data section at a *fixed*
//! [`DATA_BASE`] so that global addresses embedded in code do not vary
//! between diversified versions (sections have fixed virtual addresses, as
//! on the paper's testbed), and symbol/layout metadata for the emulator,
//! the profiler, and the gadget scanner.

pub mod runtime;

use std::sync::Arc;

use pgsd_x86::{encode, AluOp, Inst, Mem, Reg};

use crate::error::{CompileError, Result};
use crate::ir;
use crate::lir::{Disp, MAddr, MFunction, MInst, MRhs, MTerm, ShiftCount};

/// Load address of the text section (`0x8048000`, as cited in paper §2.2
/// for non-PIE Linux binaries).
pub const IMAGE_BASE: u32 = 0x0804_8000;

/// Fixed load address of the data section. Chosen far above any plausible
/// text size so diversified text growth never collides with it.
pub const DATA_BASE: u32 = 0x0810_0000;

/// Initial stack pointer used by the emulator.
pub const STACK_TOP: u32 = 0x0BF0_0000;

/// Per-function layout information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncLayout {
    /// Function name.
    pub name: String,
    /// Address of the first byte.
    pub start: u32,
    /// Address one past the last byte.
    pub end: u32,
    /// Address of each machine block, in block order.
    pub block_addrs: Vec<u32>,
    /// Whether the diversity pass was allowed to touch this function.
    pub diversified: bool,
}

/// A named data-section symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSymbol {
    /// Global variable name.
    pub name: String,
    /// Virtual address.
    pub addr: u32,
    /// Size in 32-bit words.
    pub words: u32,
}

/// A linked, loadable program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Text section load address.
    pub base: u32,
    /// Text section bytes, `Arc`-shared so loading a run's address space
    /// (or cloning the image) never copies the binary.
    pub text: Arc<Vec<u8>>,
    /// Data section load address.
    pub data_base: u32,
    /// Initialized data section bytes (globals then counters, zero-filled
    /// where uninitialized), `Arc`-shared like [`Image::text`].
    pub data: Arc<Vec<u8>>,
    /// Address of `main`.
    pub main_addr: u32,
    /// Address of the `__exit` stub (the loader pushes this as `main`'s
    /// return address).
    pub exit_addr: u32,
    /// Per-function layout, in emission order.
    pub funcs: Vec<FuncLayout>,
    /// Global variable symbols.
    pub globals: Vec<DataSymbol>,
    /// Address of profiling counter 0.
    pub counter_base: u32,
    /// Number of profiling counters.
    pub num_counters: u32,
}

impl Image {
    /// Address of global variable `name`, if present.
    pub fn global_addr(&self, name: &str) -> Option<u32> {
        self.globals.iter().find(|g| g.name == name).map(|g| g.addr)
    }

    /// Address of profiling counter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_counters`.
    pub fn counter_addr(&self, i: u32) -> u32 {
        assert!(i < self.num_counters, "counter {i} out of range");
        self.counter_base + 4 * i
    }

    /// Layout record of function `name`, if present.
    pub fn func(&self, name: &str) -> Option<&FuncLayout> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// The text bytes of function `name`, if present.
    pub fn func_bytes(&self, name: &str) -> Option<&[u8]> {
        let f = self.func(name)?;
        let s = (f.start - self.base) as usize;
        let e = (f.end - self.base) as usize;
        Some(&self.text[s..e])
    }
}

/// Where a rel32 patch must point.
#[derive(Debug, Clone, Copy)]
enum FixTarget {
    Func(usize),
    Block(usize, usize),
}

/// Emits a linked image from fully lowered functions.
///
/// `funcs` must be in final layout order (runtime stubs and filler first,
/// then user functions); `module` supplies globals and the counter count;
/// `main` names the entry function.
///
/// # Errors
///
/// Returns an error if `main` is missing, a function still contains
/// virtual registers or unresolved slots, or an instruction cannot be
/// encoded.
pub fn emit(funcs: &[MFunction], module: &ir::Module, main: &str) -> Result<Image> {
    // Data layout: globals in order, then counters.
    let mut globals = Vec::with_capacity(module.globals.len());
    let mut word_off = 0u32;
    for g in &module.globals {
        globals.push(DataSymbol {
            name: g.name.clone(),
            addr: DATA_BASE + 4 * word_off,
            words: g.words,
        });
        word_off += g.words;
    }
    let counter_base = DATA_BASE + 4 * word_off;
    let data_words = word_off + module.num_counters;
    let mut data = vec![0u8; 4 * data_words as usize];
    let mut w = 0usize;
    for g in &module.globals {
        for (i, &v) in g.init.iter().enumerate() {
            let at = (w + i) * 4;
            data[at..at + 4].copy_from_slice(&v.to_le_bytes());
        }
        w += g.words as usize;
    }

    let resolve_global = |id: u32, offset: i32| -> Result<i32> {
        let g = globals
            .get(id as usize)
            .ok_or_else(|| CompileError::new(format!("global g{id} out of range")))?;
        Ok((g.addr as i32).wrapping_add(offset))
    };

    // Emission with fixups.
    let mut text = Vec::new();
    let mut layouts = Vec::with_capacity(funcs.len());
    let mut fixups: Vec<(usize, FixTarget)> = Vec::new();
    let mut block_offsets: Vec<Vec<usize>> = Vec::with_capacity(funcs.len());

    for (fi, func) in funcs.iter().enumerate() {
        let start = text.len();
        let mut blocks = Vec::with_capacity(func.blocks.len());
        for (bi, block) in func.blocks.iter().enumerate() {
            blocks.push(text.len());
            for inst in &block.instrs {
                let x = translate(inst, &resolve_global, counter_base)?;
                match x {
                    Translated::Plain(i) => {
                        encode(&i, &mut text).map_err(encode_err)?;
                    }
                    Translated::Call(target) => {
                        encode(&Inst::CallRel(0), &mut text).map_err(encode_err)?;
                        fixups.push((text.len() - 4, FixTarget::Func(target)));
                    }
                }
            }
            // Terminator.
            match block.term {
                MTerm::Ret => {
                    encode(&Inst::Ret, &mut text).map_err(encode_err)?;
                }
                MTerm::Jmp(t) => {
                    let t = t.m() as usize;
                    if t != bi + 1 {
                        encode(&Inst::JmpRel(0), &mut text).map_err(encode_err)?;
                        fixups.push((text.len() - 4, FixTarget::Block(fi, t)));
                    }
                }
                MTerm::JCond { cc, t, f } => {
                    let (t, f) = (t.m() as usize, f.m() as usize);
                    if f == bi + 1 {
                        encode(&Inst::Jcc(cc, 0), &mut text).map_err(encode_err)?;
                        fixups.push((text.len() - 4, FixTarget::Block(fi, t)));
                    } else if t == bi + 1 {
                        encode(&Inst::Jcc(cc.negated(), 0), &mut text).map_err(encode_err)?;
                        fixups.push((text.len() - 4, FixTarget::Block(fi, f)));
                    } else {
                        encode(&Inst::Jcc(cc, 0), &mut text).map_err(encode_err)?;
                        fixups.push((text.len() - 4, FixTarget::Block(fi, t)));
                        encode(&Inst::JmpRel(0), &mut text).map_err(encode_err)?;
                        fixups.push((text.len() - 4, FixTarget::Block(fi, f)));
                    }
                }
            }
        }
        block_offsets.push(blocks.clone());
        layouts.push(FuncLayout {
            name: func.name.clone(),
            start: IMAGE_BASE + start as u32,
            end: 0, // patched below
            block_addrs: blocks.iter().map(|&o| IMAGE_BASE + o as u32).collect(),
            diversified: func.diversify,
        });
        let end = text.len();
        layouts.last_mut().expect("just pushed").end = IMAGE_BASE + end as u32;
    }

    // Patch fixups.
    for (site, target) in fixups {
        let dest = match target {
            FixTarget::Func(fi) => {
                (layouts
                    .get(fi)
                    .ok_or_else(|| CompileError::new(format!("call target {fi} out of range")))?
                    .start
                    - IMAGE_BASE) as usize
            }
            FixTarget::Block(fi, bi) => *block_offsets[fi]
                .get(bi)
                .ok_or_else(|| CompileError::new(format!("branch target {fi}:{bi} missing")))?,
        };
        let rel = dest as i64 - (site as i64 + 4);
        let rel = i32::try_from(rel)
            .map_err(|_| CompileError::new("relative branch out of range".to_string()))?;
        text[site..site + 4].copy_from_slice(&rel.to_le_bytes());
    }

    let main_layout = layouts
        .iter()
        .find(|l| l.name == main)
        .ok_or_else(|| CompileError::new(format!("entry function `{main}` not found")))?;
    let exit_layout = layouts
        .iter()
        .find(|l| l.name == "__exit")
        .ok_or_else(|| CompileError::new("runtime `__exit` stub missing".to_string()))?;

    Ok(Image {
        base: IMAGE_BASE,
        main_addr: main_layout.start,
        exit_addr: exit_layout.start,
        text: Arc::new(text),
        data_base: DATA_BASE,
        data: Arc::new(data),
        funcs: layouts,
        globals,
        counter_base,
        num_counters: module.num_counters,
    })
}

// Taking the error by value keeps `.map_err(encode_err)` call sites
// point-free.
#[allow(clippy::needless_pass_by_value)]
fn encode_err(e: pgsd_x86::EncodeError) -> CompileError {
    CompileError::new(format!("encoding failed: {e}"))
}

enum Translated {
    Plain(Inst),
    Call(usize),
}

fn translate(
    inst: &MInst,
    resolve_global: &impl Fn(u32, i32) -> Result<i32>,
    counter_base: u32,
) -> Result<Translated> {
    let mem = |a: &MAddr| -> Result<Mem> {
        let disp = match a.disp {
            Disp::Imm(v) => v,
            Disp::Global { id, offset } => resolve_global(id, offset)?,
            Disp::Counter(id) => (counter_base + 4 * id) as i32,
            Disp::Slot { id, .. } => {
                return Err(CompileError::new(format!(
                    "slot {id} not resolved by frame lowering"
                )))
            }
        };
        Ok(Mem {
            base: a.base.map(|r| r.phys()),
            index: a.index.map(|(r, s)| (r.phys(), s)),
            disp,
        })
    };
    let rhs_inst = |dst: Reg, rhs: &MRhs, op: AluOp| -> Result<Inst> {
        Ok(match rhs {
            MRhs::Reg(r) => Inst::AluRR(op, dst, r.phys()),
            MRhs::Imm(v) => Inst::AluRI(op, dst, *v),
            MRhs::Mem(m) => Inst::AluRM(op, dst, mem(m)?),
        })
    };
    let out = match inst {
        MInst::MovRI { dst, imm } => Inst::MovRI(dst.phys(), *imm),
        MInst::MovRR { dst, src } => Inst::MovRR(dst.phys(), src.phys()),
        MInst::Load { dst, addr } => Inst::MovRM(dst.phys(), mem(addr)?),
        MInst::Store { addr, src } => Inst::MovMR(mem(addr)?, src.phys()),
        MInst::StoreImm { addr, imm } => Inst::MovMI(mem(addr)?, *imm),
        MInst::Alu { op, dst, rhs } => rhs_inst(dst.phys(), rhs, *op)?,
        MInst::AluMem { op, addr, imm } => Inst::AluMI(*op, mem(addr)?, *imm),
        MInst::Cmp { lhs, rhs } => rhs_inst(lhs.phys(), rhs, AluOp::Cmp)?,
        MInst::Test { a, b } => Inst::TestRR(a.phys(), b.phys()),
        MInst::Imul { dst, rhs } => match rhs {
            MRhs::Reg(r) => Inst::ImulRR(dst.phys(), r.phys()),
            MRhs::Imm(v) => Inst::ImulRRI(dst.phys(), dst.phys(), *v),
            MRhs::Mem(m) => Inst::ImulRM(dst.phys(), mem(m)?),
        },
        MInst::ImulImm { dst, src, imm } => Inst::ImulRRI(dst.phys(), src.phys(), *imm),
        MInst::IncDec { dst, inc: true } => Inst::IncR(dst.phys()),
        MInst::IncDec { dst, inc: false } => Inst::DecR(dst.phys()),
        MInst::Cdq => Inst::Cdq,
        MInst::Idiv { divisor } => Inst::IdivR(divisor.phys()),
        MInst::Neg { dst } => Inst::NegR(dst.phys()),
        MInst::Not { dst } => Inst::NotR(dst.phys()),
        MInst::Shift { op, dst, count } => match count {
            ShiftCount::Imm(n) => Inst::ShiftRI(*op, dst.phys(), *n),
            ShiftCount::Cl => Inst::ShiftRCl(*op, dst.phys()),
        },
        MInst::Push { rhs } => match rhs {
            MRhs::Reg(r) => Inst::PushR(r.phys()),
            MRhs::Imm(v) => Inst::PushI(*v),
            MRhs::Mem(m) => Inst::PushM(mem(m)?),
        },
        MInst::Pop { dst } => Inst::PopR(dst.phys()),
        MInst::Lea { dst, addr } => Inst::Lea(dst.phys(), mem(addr)?),
        MInst::Call { target } => return Ok(Translated::Call(target.0 as usize)),
        MInst::Int { n } => Inst::Int(*n),
        MInst::Nop { kind } => Inst::Nop(*kind),
    };
    Ok(Translated::Plain(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver;
    use pgsd_x86::decode_all;

    fn image(src: &str) -> Image {
        driver::compile("t", src).expect("compiles")
    }

    #[test]
    fn image_has_runtime_then_user_code() {
        let img = image("int main() { return 42; }");
        assert_eq!(img.funcs[0].name, "__exit");
        assert_eq!(img.funcs[1].name, "__print");
        let main = img.func("main").expect("main present");
        assert!(main.start > img.funcs[1].end - 1);
        assert_eq!(img.main_addr, main.start);
        assert_eq!(img.exit_addr, img.base);
    }

    #[test]
    fn text_disassembles_cleanly() {
        let img = image(
            "int g; int a[4];
             int add(int x, int y) { return x + y; }
             int main() { g = add(2, 3); a[1] = g * 7; print(a[1]); return g; }",
        );
        // Linear sweep over the whole text must decode with no leftovers.
        let insts = decode_all(&img.text);
        let covered: usize = insts.iter().map(|(_, d)| d.len).sum();
        assert_eq!(covered, img.text.len(), "undecodable bytes in text");
    }

    #[test]
    fn globals_have_fixed_addresses_and_init() {
        let img = image("int x = 7; int buf[3]; int y = -1; int main() { return x; }");
        assert_eq!(img.global_addr("x"), Some(DATA_BASE));
        assert_eq!(img.global_addr("buf"), Some(DATA_BASE + 4));
        assert_eq!(img.global_addr("y"), Some(DATA_BASE + 16));
        assert_eq!(&img.data[0..4], &7i32.to_le_bytes());
        assert_eq!(&img.data[16..20], &(-1i32).to_le_bytes());
        assert_eq!(&img.data[4..16], &[0u8; 12]);
    }

    #[test]
    fn missing_main_is_an_error() {
        assert!(driver::compile("t", "int f() { return 0; }").is_err());
    }

    #[test]
    fn branch_fixups_resolve() {
        let img = image(
            "int main() {
                int s = 0;
                for (int i = 0; i < 10; i++) { if (i % 2 == 0) { s += i; } else { s -= 1; } }
                return s;
             }",
        );
        // Every rel32 branch target must land inside the text section on
        // an instruction boundary (checked roughly: within bounds).
        let insts = decode_all(&img.text);
        let covered: usize = insts.iter().map(|(_, d)| d.len).sum();
        assert_eq!(covered, img.text.len());
    }
}
