//! # pgsd-cc — the MiniC optimizing compiler
//!
//! A small C-like language compiled through the pipeline of the paper's
//! Figure 3: source → AST → IR (+ optimizations) → LIR (instruction
//! selection, register allocation, frame lowering) → x86-32 machine code
//! in a loadable [`emit::Image`].
//!
//! The stages are public so the companion crates can hook in exactly where
//! the paper does: `pgsd-profile` instruments the optimized IR;
//! `pgsd-core` runs its NOP-insertion pass on the lowered LIR just before
//! emission.
//!
//! # Examples
//!
//! ```
//! let image = pgsd_cc::driver::compile(
//!     "demo",
//!     "int main() { int s = 0; for (int i = 1; i <= 10; i++) s += i; return s; }",
//! )?;
//! assert!(image.func("main").is_some());
//! # Ok::<(), pgsd_cc::error::CompileError>(())
//! ```

#![forbid(unsafe_code)]

pub mod driver;
pub mod emit;
pub mod error;
pub mod frontend;
pub mod ir;
pub mod lir;
