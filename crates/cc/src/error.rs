//! Compiler diagnostics.

use std::error::Error;
use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// The very start of a source file.
    pub const START: Pos = Pos { line: 1, col: 1 };
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An error produced anywhere in the MiniC compilation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Position the error was detected at, when known.
    pub pos: Option<Pos>,
    /// Human-readable description (lowercase, no trailing period).
    pub message: String,
}

impl CompileError {
    /// Creates an error with a source position.
    pub fn at(pos: Pos, message: impl Into<String>) -> CompileError {
        CompileError {
            pos: Some(pos),
            message: message.into(),
        }
    }

    /// Creates an error without a source position (backend errors).
    pub fn new(message: impl Into<String>) -> CompileError {
        CompileError {
            pos: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "{p}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl Error for CompileError {}

/// Convenient alias used across the compiler.
pub type Result<T> = std::result::Result<T, CompileError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_pos() {
        let e = CompileError::at(Pos { line: 3, col: 7 }, "unexpected token");
        assert_eq!(e.to_string(), "3:7: unexpected token");
        let e = CompileError::new("register allocation failed");
        assert_eq!(e.to_string(), "register allocation failed");
    }
}
