//! Instruction selection: IR → LIR.
//!
//! Lowering is mostly pattern-per-instruction. Two cases need care:
//!
//! * **Comparison fusion** — a `Cmp` whose single use is the block's own
//!   `CondBr` lowers to `cmp` + `jcc` without materializing a 0/1 value.
//! * **Aliasing of two-address operations** — x86 ALU ops read and write
//!   their destination, so `v3 = v1 - v3` must detour through a temporary.
//!
//! Division, remainder and variable shifts use the architectural fixed
//! registers (`eax`/`edx`/`cl`); those registers are reserved as scratch by
//! the register allocator, so no allocation constraints arise.

use pgsd_x86::{AluOp, Cond, Reg, Scale, ShiftOp};

use crate::error::Result;
use crate::ir::{self, BinOp, CmpOp, Instr, Operand, Term, UnOp, ValueId};

use super::{
    CallTarget, Disp, MAddr, MBlock, MFunction, MInst, MReg, MRhs, MTarget, MTerm, ShiftCount,
};

/// Context shared by all function lowerings of a module.
#[derive(Debug, Clone, Copy)]
pub struct LowerCtx {
    /// Index of the runtime `__print` routine in the final function list.
    pub print_index: u32,
    /// Index of the first user function in the final function list
    /// (user `FuncId(n)` emits a call to `user_func_base + n`).
    pub user_func_base: u32,
}

/// Lowers one optimized IR function to LIR with virtual registers.
///
/// # Errors
///
/// Returns an error for malformed IR (should be prevented by
/// [`crate::ir::verify`]).
pub fn select(func: &ir::Function, ctx: &LowerCtx) -> Result<MFunction> {
    Lowerer::new(func, ctx).run()
}

struct Lowerer<'a> {
    func: &'a ir::Function,
    ctx: &'a LowerCtx,
    out: MFunction,
    /// Machine-block index of each IR block's entry.
    ir_map: Vec<u32>,
    /// Current machine block being filled.
    cur: usize,
    next_vreg: u32,
    /// Total number of uses per value (for comparison fusion).
    use_counts: Vec<u32>,
    def_counts: Vec<u32>,
}

impl<'a> Lowerer<'a> {
    fn new(func: &'a ir::Function, ctx: &'a LowerCtx) -> Lowerer<'a> {
        let nv = func.num_values as usize;
        let mut use_counts = vec![0u32; nv];
        let mut def_counts = vec![0u32; nv];
        for p in 0..func.params {
            def_counts[p as usize] += 1;
        }
        for b in &func.blocks {
            for i in &b.instrs {
                i.for_each_use(|op| {
                    if let Operand::Value(v) = op {
                        use_counts[v.0 as usize] += 1;
                    }
                });
                if let Some(d) = i.dst() {
                    def_counts[d.0 as usize] += 1;
                }
            }
            match &b.term {
                Term::Ret(Some(Operand::Value(v)))
                | Term::CondBr {
                    cond: Operand::Value(v),
                    ..
                } => use_counts[v.0 as usize] += 1,
                _ => {}
            }
        }
        Lowerer {
            func,
            ctx,
            out: MFunction {
                name: func.name.clone(),
                params: func.params,
                blocks: Vec::new(),
                num_vregs: func.num_values,
                slot_words: func.slots.clone(),
                diversify: true,
                raw: false,
            },
            ir_map: vec![0; func.blocks.len()],
            cur: 0,
            next_vreg: func.num_values,
            use_counts,
            def_counts,
        }
    }

    fn run(mut self) -> Result<MFunction> {
        for (bi, block) in self.func.blocks.iter().enumerate() {
            let m = self.new_block(Some(bi as u32));
            self.ir_map[bi] = m;
            self.cur = m as usize;
            if bi == 0 {
                // Copy incoming arguments into their virtual registers.
                // cdecl: argument `i` lives at [ebp + 8 + 4i].
                for p in 0..self.func.params {
                    self.emit(MInst::Load {
                        dst: MReg::V(p),
                        addr: MAddr::base_imm(MReg::P(Reg::Ebp), 8 + 4 * p as i32),
                    });
                }
            }
            self.lower_block(block)?;
        }
        // Resolve symbolic branch targets.
        for b in &mut self.out.blocks {
            let fix = |t: &mut MTarget| {
                if let MTarget::Ir(n) = *t {
                    *t = MTarget::M(self.ir_map[n as usize]);
                }
            };
            match &mut b.term {
                MTerm::Jmp(t) => fix(t),
                MTerm::JCond { t, f, .. } => {
                    fix(t);
                    fix(f);
                }
                MTerm::Ret => {}
            }
        }
        self.out.num_vregs = self.next_vreg;
        Ok(self.out)
    }

    fn new_block(&mut self, ir_block: Option<u32>) -> u32 {
        let id = self.out.blocks.len() as u32;
        self.out.blocks.push(MBlock {
            instrs: Vec::new(),
            term: MTerm::Ret,
            ir_block,
        });
        id
    }

    fn emit(&mut self, i: MInst) {
        self.out.blocks[self.cur].instrs.push(i);
    }

    fn fresh(&mut self) -> MReg {
        let v = self.next_vreg;
        self.next_vreg += 1;
        MReg::V(v)
    }

    fn vreg(v: ValueId) -> MReg {
        MReg::V(v.0)
    }

    fn rhs(op: Operand) -> MRhs {
        match op {
            Operand::Value(v) => MRhs::Reg(Self::vreg(v)),
            Operand::Const(c) => MRhs::Imm(c),
        }
    }

    /// Emits `mov dst, op`, skipping the no-op move.
    fn move_into(&mut self, dst: MReg, op: Operand) {
        match op {
            Operand::Const(c) => self.emit(MInst::MovRI { dst, imm: c }),
            Operand::Value(v) => {
                let src = Self::vreg(v);
                if src != dst {
                    self.emit(MInst::MovRR { dst, src });
                }
            }
        }
    }

    fn aliases(op: Operand, dst: MReg) -> bool {
        matches!(op, Operand::Value(v) if Self::vreg(v) == dst)
    }

    fn lower_block(&mut self, block: &ir::Block) -> Result<()> {
        let n = block.instrs.len();
        // Detect the comparison-fusion pattern.
        let fused = matches!(
            (&block.term, block.instrs.last()),
            (
                Term::CondBr {
                    cond: Operand::Value(cv),
                    ..
                },
                Some(Instr::Cmp { dst, .. }),
            ) if cv == dst
                && self.use_counts[cv.0 as usize] == 1
                && self.def_counts[cv.0 as usize] == 1
        );
        let body = if fused {
            &block.instrs[..n - 1]
        } else {
            &block.instrs[..]
        };
        for ins in body {
            self.lower_instr(ins)?;
        }
        match &block.term {
            Term::Ret(op) => {
                if let Some(op) = op {
                    self.move_into(MReg::P(Reg::Eax), *op);
                } else {
                    self.emit(MInst::MovRI {
                        dst: MReg::P(Reg::Eax),
                        imm: 0,
                    });
                }
                self.out.blocks[self.cur].term = MTerm::Ret;
            }
            Term::Br(b) => {
                self.out.blocks[self.cur].term = MTerm::Jmp(MTarget::Ir(b.0));
            }
            Term::CondBr { cond, t, f } => {
                if fused {
                    let Some(Instr::Cmp { op, lhs, rhs, .. }) = block.instrs.last() else {
                        unreachable!("fusion checked the last instruction is a cmp");
                    };
                    let cc = self.emit_cmp_flags(*op, *lhs, *rhs);
                    self.out.blocks[self.cur].term = MTerm::JCond {
                        cc,
                        t: MTarget::Ir(t.0),
                        f: MTarget::Ir(f.0),
                    };
                } else {
                    match cond {
                        Operand::Const(c) => {
                            let target = if *c != 0 { t } else { f };
                            self.out.blocks[self.cur].term = MTerm::Jmp(MTarget::Ir(target.0));
                        }
                        Operand::Value(v) => {
                            self.emit(MInst::Cmp {
                                lhs: Self::vreg(*v),
                                rhs: MRhs::Imm(0),
                            });
                            self.out.blocks[self.cur].term = MTerm::JCond {
                                cc: Cond::Ne,
                                t: MTarget::Ir(t.0),
                                f: MTarget::Ir(f.0),
                            };
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Emits a flag-setting compare for `lhs op rhs` and returns the
    /// condition code under which the comparison is true.
    fn emit_cmp_flags(&mut self, op: CmpOp, lhs: Operand, rhs: Operand) -> Cond {
        let (reg_side, rhs_side, op) = match (lhs, rhs) {
            (Operand::Value(l), r) => (Self::vreg(l), Self::rhs(r), op),
            (Operand::Const(_), Operand::Value(r)) => {
                // cmp must have a register on the left: swap operands and
                // the comparison direction.
                (Self::vreg(r), Self::rhs(lhs), op.swapped())
            }
            (Operand::Const(lc), Operand::Const(_)) => {
                let tmp = self.fresh();
                self.emit(MInst::MovRI { dst: tmp, imm: lc });
                (tmp, Self::rhs(rhs), op)
            }
        };
        self.emit(MInst::Cmp {
            lhs: reg_side,
            rhs: rhs_side,
        });
        cmp_cond(op)
    }

    fn lower_instr(&mut self, ins: &Instr) -> Result<()> {
        match ins {
            Instr::Copy { dst, src } => {
                self.move_into(Self::vreg(*dst), *src);
            }
            Instr::Bin { dst, op, lhs, rhs } => self.lower_bin(Self::vreg(*dst), *op, *lhs, *rhs),
            Instr::Un { dst, op, src } => {
                let d = Self::vreg(*dst);
                self.move_into(d, *src);
                match op {
                    UnOp::Neg => self.emit(MInst::Neg { dst: d }),
                    UnOp::BitNot => self.emit(MInst::Not { dst: d }),
                }
            }
            Instr::Cmp { dst, op, lhs, rhs } => {
                // Materialize a 0/1 value with a small diamond:
                //   cmp …; mov dst, 1; jcc cont; fix: mov dst, 0; cont:
                let d = Self::vreg(*dst);
                let cc = self.emit_cmp_flags(*op, *lhs, *rhs);
                self.emit(MInst::MovRI { dst: d, imm: 1 });
                let ir_tag = self.out.blocks[self.cur].ir_block;
                let fix = self.new_block(ir_tag);
                let cont = self.new_block(ir_tag);
                self.out.blocks[self.cur].term = MTerm::JCond {
                    cc,
                    t: MTarget::M(cont),
                    f: MTarget::M(fix),
                };
                self.cur = fix as usize;
                self.emit(MInst::MovRI { dst: d, imm: 0 });
                self.out.blocks[self.cur].term = MTerm::Jmp(MTarget::M(cont));
                self.cur = cont as usize;
            }
            Instr::LoadG { dst, global, index } => {
                let addr = self.global_addr(global.0, *index);
                self.emit(MInst::Load {
                    dst: Self::vreg(*dst),
                    addr,
                });
            }
            Instr::StoreG { global, index, src } => {
                let addr = self.global_addr(global.0, *index);
                self.store(addr, *src);
            }
            Instr::LoadA { dst, slot, index } => {
                let addr = self.slot_addr(slot.0, *index);
                self.emit(MInst::Load {
                    dst: Self::vreg(*dst),
                    addr,
                });
            }
            Instr::StoreA { slot, index, src } => {
                let addr = self.slot_addr(slot.0, *index);
                self.store(addr, *src);
            }
            Instr::Call { dst, func, args } => {
                for a in args.iter().rev() {
                    self.emit(MInst::Push { rhs: Self::rhs(*a) });
                }
                self.emit(MInst::Call {
                    target: CallTarget(self.ctx.user_func_base + func.0),
                });
                if !args.is_empty() {
                    self.emit(MInst::Alu {
                        op: AluOp::Add,
                        dst: MReg::P(Reg::Esp),
                        rhs: MRhs::Imm(4 * args.len() as i32),
                    });
                }
                self.emit(MInst::MovRR {
                    dst: Self::vreg(*dst),
                    src: MReg::P(Reg::Eax),
                });
            }
            Instr::Print { src } => {
                self.emit(MInst::Push {
                    rhs: Self::rhs(*src),
                });
                self.emit(MInst::Call {
                    target: CallTarget(self.ctx.print_index),
                });
                self.emit(MInst::Alu {
                    op: AluOp::Add,
                    dst: MReg::P(Reg::Esp),
                    rhs: MRhs::Imm(4),
                });
            }
            Instr::ProfCtr { id } => {
                self.emit(MInst::AluMem {
                    op: AluOp::Add,
                    addr: MAddr::disp(Disp::Counter(*id)),
                    imm: 1,
                });
            }
        }
        Ok(())
    }

    fn global_addr(&mut self, id: u32, index: Option<Operand>) -> MAddr {
        match index {
            None => MAddr::disp(Disp::Global { id, offset: 0 }),
            Some(Operand::Const(c)) => MAddr::disp(Disp::Global {
                id,
                offset: c.wrapping_mul(4),
            }),
            Some(Operand::Value(v)) => MAddr {
                base: None,
                index: Some((Self::vreg(v), Scale::S4)),
                disp: Disp::Global { id, offset: 0 },
            },
        }
    }

    fn slot_addr(&mut self, id: u32, index: Operand) -> MAddr {
        match index {
            Operand::Const(c) => MAddr::disp(Disp::Slot {
                id,
                offset: c.wrapping_mul(4),
            }),
            Operand::Value(v) => MAddr {
                base: None,
                index: Some((Self::vreg(v), Scale::S4)),
                disp: Disp::Slot { id, offset: 0 },
            },
        }
    }

    fn store(&mut self, addr: MAddr, src: Operand) {
        match src {
            Operand::Const(c) => self.emit(MInst::StoreImm { addr, imm: c }),
            Operand::Value(v) => self.emit(MInst::Store {
                addr,
                src: Self::vreg(v),
            }),
        }
    }

    fn lower_bin(&mut self, dst: MReg, op: BinOp, lhs: Operand, rhs: Operand) {
        match op {
            BinOp::Add | BinOp::Sub | BinOp::And | BinOp::Or | BinOp::Xor => {
                let alu = match op {
                    BinOp::Add => AluOp::Add,
                    BinOp::Sub => AluOp::Sub,
                    BinOp::And => AluOp::And,
                    BinOp::Or => AluOp::Or,
                    _ => AluOp::Xor,
                };
                self.two_address(dst, lhs, rhs, |rhs| MInst::Alu { op: alu, dst, rhs });
            }
            BinOp::Mul => {
                if let Operand::Const(c) = rhs {
                    // Strength-reduce ×2ⁿ and use the three-operand imul
                    // form otherwise; both avoid the aliasing detour.
                    if c > 0 && (c as u32).is_power_of_two() && !Self::aliases(rhs, dst) {
                        self.move_into(dst, lhs);
                        self.emit(MInst::Shift {
                            op: ShiftOp::Shl,
                            dst,
                            count: ShiftCount::Imm(c.trailing_zeros() as u8),
                        });
                        return;
                    }
                    if let Operand::Value(l) = lhs {
                        self.emit(MInst::ImulImm {
                            dst,
                            src: Self::vreg(l),
                            imm: c,
                        });
                        return;
                    }
                }
                self.two_address(dst, lhs, rhs, |rhs| MInst::Imul { dst, rhs });
            }
            BinOp::Div | BinOp::Rem => {
                self.move_into(MReg::P(Reg::Eax), lhs);
                self.emit(MInst::Cdq);
                let divisor = match rhs {
                    Operand::Value(v) => Self::vreg(v),
                    Operand::Const(c) => {
                        self.emit(MInst::MovRI {
                            dst: MReg::P(Reg::Ecx),
                            imm: c,
                        });
                        MReg::P(Reg::Ecx)
                    }
                };
                self.emit(MInst::Idiv { divisor });
                let result = if op == BinOp::Div { Reg::Eax } else { Reg::Edx };
                self.emit(MInst::MovRR {
                    dst,
                    src: MReg::P(result),
                });
            }
            BinOp::Shl | BinOp::Shr => {
                let shop = if op == BinOp::Shl {
                    ShiftOp::Shl
                } else {
                    ShiftOp::Sar
                };
                match rhs {
                    Operand::Const(c) => {
                        self.move_into(dst, lhs);
                        let count = (c as u32 % 32) as u8;
                        if count != 0 {
                            self.emit(MInst::Shift {
                                op: shop,
                                dst,
                                count: ShiftCount::Imm(count),
                            });
                        }
                    }
                    Operand::Value(v) => {
                        // `cl` must be loaded *immediately* before the
                        // shift: any instruction in between may be
                        // rewritten by the spill pass, whose scratch pool
                        // includes ecx (this exact clobber was a real
                        // miscompile found by differential fuzzing). The
                        // value move therefore comes first; when the
                        // destination aliases the count, the result is
                        // built in a temporary.
                        let count = Self::vreg(v);
                        let target = if count == dst { self.fresh() } else { dst };
                        self.move_into(target, lhs);
                        self.emit(MInst::MovRR {
                            dst: MReg::P(Reg::Ecx),
                            src: count,
                        });
                        self.emit(MInst::Shift {
                            op: shop,
                            dst: target,
                            count: ShiftCount::Cl,
                        });
                        if target != dst {
                            self.emit(MInst::MovRR { dst, src: target });
                        }
                    }
                }
            }
        }
    }

    /// Lowers `dst = lhs op rhs` for a two-address operation, detouring
    /// through a temporary when `rhs` aliases `dst`.
    fn two_address(&mut self, dst: MReg, lhs: Operand, rhs: Operand, make: impl Fn(MRhs) -> MInst) {
        if Self::aliases(rhs, dst) && !Self::aliases(lhs, dst) {
            let tmp = self.fresh();
            self.move_into(tmp, lhs);
            // The closure captured `dst`; rebuild the instruction against
            // `tmp` by patching its destination.
            let mut inst = make(Self::rhs(rhs));
            patch_dst(&mut inst, tmp);
            self.emit(inst);
            self.emit(MInst::MovRR { dst, src: tmp });
        } else {
            self.move_into(dst, lhs);
            self.emit(make(Self::rhs(rhs)));
        }
    }
}

/// Rewrites the destination register of a freshly built two-address
/// instruction (`Alu` or `Imul`).
fn patch_dst(inst: &mut MInst, new_dst: MReg) {
    match inst {
        MInst::Alu { dst, .. } | MInst::Imul { dst, .. } => *dst = new_dst,
        other => unreachable!("patch_dst on unexpected instruction {other:?}"),
    }
}

/// Maps an IR comparison to the signed x86 condition code.
fn cmp_cond(op: CmpOp) -> Cond {
    match op {
        CmpOp::Eq => Cond::E,
        CmpOp::Ne => Cond::Ne,
        CmpOp::Lt => Cond::L,
        CmpOp::Le => Cond::Le,
        CmpOp::Gt => Cond::G,
        CmpOp::Ge => Cond::Ge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::{lexer::lex, parser::parse};
    use crate::ir::builder::build;
    use crate::ir::passes::optimize;

    fn lower(src: &str) -> Vec<MFunction> {
        let mut m = build("t", &parse(lex(src).unwrap()).unwrap()).unwrap();
        optimize(&mut m);
        let ctx = LowerCtx {
            print_index: 1,
            user_func_base: 2,
        };
        m.funcs.iter().map(|f| select(f, &ctx).unwrap()).collect()
    }

    fn all_instrs(f: &MFunction) -> Vec<&MInst> {
        f.blocks.iter().flat_map(|b| &b.instrs).collect()
    }

    #[test]
    fn params_are_loaded_from_frame() {
        let fs = lower("int f(int a, int b) { return a + b; }");
        let loads: Vec<_> = all_instrs(&fs[0])
            .into_iter()
            .filter(|i| matches!(i, MInst::Load { .. }))
            .collect();
        assert_eq!(loads.len(), 2);
    }

    #[test]
    fn cmp_fuses_into_branch() {
        let fs = lower("int f(int a) { if (a < 3) { return 1; } return 2; }");
        let f = &fs[0];
        // No 0/1 materialization: no MovRI{imm:1} diamond, exactly one Cmp,
        // terminator JCond with L.
        let has_jcond_l = f
            .blocks
            .iter()
            .any(|b| matches!(b.term, MTerm::JCond { cc: Cond::L, .. }));
        assert!(has_jcond_l, "{f}");
    }

    #[test]
    fn materialized_cmp_builds_diamond() {
        let fs = lower("int f(int a, int b) { int x = a < b; return x + x; }");
        let f = &fs[0];
        assert!(f.blocks.len() >= 3, "diamond expected: {f}");
    }

    #[test]
    fn division_uses_eax_edx() {
        let fs = lower("int f(int a, int b) { return a / b + a % b; }");
        let f = &fs[0];
        let cdqs = all_instrs(f)
            .into_iter()
            .filter(|i| matches!(i, MInst::Cdq))
            .count();
        assert_eq!(cdqs, 2);
    }

    #[test]
    fn mul_by_power_of_two_becomes_shift() {
        let fs = lower("int f(int a) { return a * 8; }");
        let shifts = all_instrs(&fs[0])
            .into_iter()
            .filter(|i| {
                matches!(
                    i,
                    MInst::Shift {
                        op: ShiftOp::Shl,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(shifts, 1);
    }

    #[test]
    fn aliasing_subtraction_is_safe() {
        // x = y - x: must not clobber x before reading it.
        let fs = lower("int f(int x, int y) { x = y - x; return x; }");
        let f = &fs[0];
        // Find the Alu sub; its dst must differ from the rhs register.
        let sub = all_instrs(f)
            .into_iter()
            .find_map(|i| match i {
                MInst::Alu {
                    op: AluOp::Sub,
                    dst,
                    rhs: MRhs::Reg(r),
                } => Some((*dst, *r)),
                _ => None,
            })
            .expect("sub instruction present");
        assert_ne!(sub.0, sub.1, "{f}");
    }

    #[test]
    fn global_array_indexing_uses_sib() {
        let fs = lower("int a[10]; int f(int i) { return a[i]; }");
        let has_index = all_instrs(&fs[0]).into_iter().any(|i| {
            matches!(
                i,
                MInst::Load {
                    addr: MAddr {
                        index: Some((_, Scale::S4)),
                        disp: Disp::Global { .. },
                        ..
                    },
                    ..
                }
            )
        });
        assert!(has_index);
    }

    #[test]
    fn call_pushes_args_right_to_left() {
        let fs = lower("int g(int a, int b) { return a - b; } int f() { return g(1, 2); }");
        let f = &fs[1];
        let pushes: Vec<_> = all_instrs(f)
            .into_iter()
            .filter_map(|i| match i {
                MInst::Push { rhs: MRhs::Imm(v) } => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(pushes, vec![2, 1]);
    }

    #[test]
    fn print_calls_runtime() {
        let fs = lower("int main() { print(7); return 0; }");
        let calls: Vec<_> = all_instrs(&fs[0])
            .into_iter()
            .filter_map(|i| match i {
                MInst::Call { target } => Some(target.0),
                _ => None,
            })
            .collect();
        assert_eq!(calls, vec![1]);
    }

    #[test]
    fn shift_by_variable_goes_through_cl() {
        let fs = lower("int f(int a, int n) { return a << n; }");
        let has_cl = all_instrs(&fs[0]).into_iter().any(|i| {
            matches!(
                i,
                MInst::Shift {
                    count: ShiftCount::Cl,
                    ..
                }
            )
        });
        assert!(has_cl);
    }
}
