//! Frame lowering: prologue/epilogue insertion and stack-slot resolution.
//!
//! Stack layout (cdecl, frame pointer `ebp`):
//!
//! ```text
//!   [ebp + 8 + 4i]  argument i
//!   [ebp + 4]       return address
//!   [ebp]           caller's ebp
//!   [ebp -  4]      saved ebx
//!   [ebp -  8]      saved esi
//!   [ebp - 12]      saved edi
//!   [ebp - 12 - …]  local array slots, then spill slots
//! ```
//!
//! All three callee-saved registers are always saved; this wastes a few
//! bytes in leaf functions but keeps slot offsets independent of register
//! usage, which keeps lowering deterministic — a property the diversity
//! experiments rely on (two compilations of the same module must differ
//! *only* by inserted NOPs).

use pgsd_x86::{AluOp, Reg};

use super::{Disp, MAddr, MFunction, MInst, MReg, MRhs, MTerm};

/// Byte distance from `ebp` down to the bottom of the saved-register area.
const SAVED_REGS_BYTES: i32 = 12;

/// Inserts prologue/epilogue code and resolves [`Disp::Slot`] references
/// to `ebp`-relative addresses. Raw functions are left untouched.
///
/// # Panics
///
/// Panics if a slot reference has a base register (slots provide their own
/// base) or if a slot id is out of range — both indicate lowering bugs.
pub fn lower_frame(func: &mut MFunction) {
    if func.raw {
        return;
    }
    // Slot k occupies words slot_words[k]; compute its offset below ebp.
    let mut base_off = Vec::with_capacity(func.slot_words.len());
    let mut cum = 0i32;
    for &words in &func.slot_words {
        cum += 4 * words as i32;
        base_off.push(SAVED_REGS_BYTES + cum);
    }
    let frame_bytes = cum;

    // Resolve slot displacements.
    for block in &mut func.blocks {
        for inst in &mut block.instrs {
            for_each_addr(inst, |addr| {
                if let Disp::Slot { id, offset } = addr.disp {
                    assert!(
                        addr.base.is_none(),
                        "slot address already has a base register: {addr}"
                    );
                    let off = base_off
                        .get(id as usize)
                        .unwrap_or_else(|| panic!("slot {id} out of range"));
                    addr.base = Some(MReg::P(Reg::Ebp));
                    addr.disp = Disp::Imm(-off + offset);
                }
            });
        }
    }

    // Prologue.
    let mut prologue = vec![
        MInst::Push {
            rhs: MRhs::Reg(MReg::P(Reg::Ebp)),
        },
        MInst::MovRR {
            dst: MReg::P(Reg::Ebp),
            src: MReg::P(Reg::Esp),
        },
        MInst::Push {
            rhs: MRhs::Reg(MReg::P(Reg::Ebx)),
        },
        MInst::Push {
            rhs: MRhs::Reg(MReg::P(Reg::Esi)),
        },
        MInst::Push {
            rhs: MRhs::Reg(MReg::P(Reg::Edi)),
        },
    ];
    if frame_bytes > 0 {
        prologue.push(MInst::Alu {
            op: AluOp::Sub,
            dst: MReg::P(Reg::Esp),
            rhs: MRhs::Imm(frame_bytes),
        });
    }
    func.blocks[0].instrs.splice(0..0, prologue);

    // Epilogue before every return. Stack pushes and pops are balanced by
    // construction (calls clean up their own arguments), so a plain
    // `add esp, N` releases the frame — the shape real compilers emit,
    // which also matters for the security analysis: `add esp, imm` keeps a
    // ROP chain alive (the attacker pads), whereas an `lea esp, …`
    // epilogue would make every function ending a stack pivot.
    for block in &mut func.blocks {
        if matches!(block.term, MTerm::Ret) {
            if frame_bytes > 0 {
                block.instrs.push(MInst::Alu {
                    op: AluOp::Add,
                    dst: MReg::P(Reg::Esp),
                    rhs: MRhs::Imm(frame_bytes),
                });
            }
            block.instrs.extend([
                MInst::Pop {
                    dst: MReg::P(Reg::Edi),
                },
                MInst::Pop {
                    dst: MReg::P(Reg::Esi),
                },
                MInst::Pop {
                    dst: MReg::P(Reg::Ebx),
                },
                MInst::Pop {
                    dst: MReg::P(Reg::Ebp),
                },
            ]);
        }
    }
}

/// Visits every memory operand of an instruction mutably.
fn for_each_addr(inst: &mut MInst, mut f: impl FnMut(&mut MAddr)) {
    match inst {
        MInst::Load { addr, .. }
        | MInst::Store { addr, .. }
        | MInst::StoreImm { addr, .. }
        | MInst::AluMem { addr, .. }
        | MInst::Lea { addr, .. } => f(addr),
        MInst::Alu {
            rhs: MRhs::Mem(m), ..
        }
        | MInst::Cmp {
            rhs: MRhs::Mem(m), ..
        }
        | MInst::Imul {
            rhs: MRhs::Mem(m), ..
        }
        | MInst::Push { rhs: MRhs::Mem(m) } => f(m),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::{lexer::lex, parser::parse};
    use crate::ir::builder::build;
    use crate::ir::passes::optimize;
    use crate::lir::isel::{select, LowerCtx};
    use crate::lir::regalloc::allocate;

    fn full(src: &str) -> Vec<MFunction> {
        let mut m = build("t", &parse(lex(src).unwrap()).unwrap()).unwrap();
        optimize(&mut m);
        let ctx = LowerCtx {
            print_index: 1,
            user_func_base: 2,
        };
        m.funcs
            .iter()
            .map(|f| {
                let mut mf = select(f, &ctx).unwrap();
                allocate(&mut mf).unwrap();
                lower_frame(&mut mf);
                mf
            })
            .collect()
    }

    #[test]
    fn prologue_and_epilogue_bracket_the_function() {
        let fs = full("int f(int a) { return a; }");
        let f = &fs[0];
        assert!(matches!(f.blocks[0].instrs[0], MInst::Push { .. }));
        assert!(matches!(f.blocks[0].instrs[1], MInst::MovRR { .. }));
        let ret_block = f
            .blocks
            .iter()
            .find(|b| matches!(b.term, MTerm::Ret))
            .expect("return block");
        let n = ret_block.instrs.len();
        assert!(matches!(
            ret_block.instrs[n - 1],
            MInst::Pop {
                dst: MReg::P(Reg::Ebp)
            }
        ));
        assert!(matches!(
            ret_block.instrs[n - 2],
            MInst::Pop {
                dst: MReg::P(Reg::Ebx)
            }
        ));
    }

    #[test]
    fn slots_resolve_to_ebp_relative() {
        let fs = full("int f(int i) { int a[4]; a[i] = 1; return a[0]; }");
        for b in &fs[0].blocks {
            for inst in &b.instrs {
                let mut copy = *inst;
                super::for_each_addr(&mut copy, |addr| {
                    assert!(
                        !matches!(addr.disp, Disp::Slot { .. }),
                        "unresolved slot in {inst:?}"
                    );
                });
            }
        }
    }

    #[test]
    fn frame_reserves_array_space() {
        let fs = full("int f() { int a[10]; a[0] = 1; return a[0]; }");
        let sub = fs[0].blocks[0].instrs.iter().find_map(|i| match i {
            MInst::Alu {
                op: AluOp::Sub,
                dst: MReg::P(Reg::Esp),
                rhs: MRhs::Imm(n),
            } => Some(*n),
            _ => None,
        });
        assert!(sub.expect("stack adjustment") >= 40);
    }

    #[test]
    fn no_frame_adjustment_without_slots() {
        let fs = full("int f(int a) { return a + 1; }");
        let sub = fs[0].blocks[0].instrs.iter().any(|i| {
            matches!(
                i,
                MInst::Alu {
                    op: AluOp::Sub,
                    dst: MReg::P(Reg::Esp),
                    ..
                }
            )
        });
        assert!(!sub);
    }
}
