//! Low-level representation (LIR): x86-shaped machine IR.
//!
//! This is the paper's "LR" (Figure 3): every [`MInst`] corresponds
//! one-to-one to a native instruction, which is precisely the property that
//! makes NOP insertion sound at this stage — the diversifying pass runs on
//! LIR *after* register allocation and frame lowering, immediately before
//! byte emission (paper §4).
//!
//! Registers are either virtual (`MReg::V`, before allocation) or physical
//! (`MReg::P`). Addressing modes may reference symbolic locations
//! ([`Disp::Global`], [`Disp::Counter`], [`Disp::Slot`]) that later stages
//! resolve: slots by frame lowering, globals/counters by the emitter.

pub mod frame;
pub mod isel;
pub mod peephole;
pub mod regalloc;

use std::fmt;

use pgsd_x86::nop::NopKind;
use pgsd_x86::{AluOp, Cond, Reg, Scale, ShiftOp};

/// A machine register: virtual before allocation, physical after.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MReg {
    /// Virtual register `n`.
    V(u32),
    /// Physical register.
    P(Reg),
}

impl MReg {
    /// The virtual register number, if virtual.
    pub fn vreg(self) -> Option<u32> {
        match self {
            MReg::V(n) => Some(n),
            MReg::P(_) => None,
        }
    }

    /// The physical register.
    ///
    /// # Panics
    ///
    /// Panics if the register is still virtual — i.e. if code generation
    /// reached emission without register allocation.
    pub fn phys(self) -> Reg {
        match self {
            MReg::P(r) => r,
            MReg::V(n) => panic!("virtual register v{n} survived register allocation"),
        }
    }
}

impl fmt::Display for MReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MReg::V(n) => write!(f, "v{n}"),
            MReg::P(r) => r.fmt(f),
        }
    }
}

/// Symbolic displacement of a memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Disp {
    /// A plain immediate displacement.
    Imm(i32),
    /// `offset` bytes into global variable `id` — resolved by the emitter
    /// against the module's data layout.
    Global {
        /// Global index within the module.
        id: u32,
        /// Byte offset into the global.
        offset: i32,
    },
    /// Profiling counter `id` — resolved by the emitter against the
    /// counter area that follows the globals in the data section.
    Counter(u32),
    /// `offset` bytes into stack slot `id` — resolved by frame lowering
    /// into an `ebp`-relative displacement.
    Slot {
        /// Slot index within the function.
        id: u32,
        /// Byte offset into the slot.
        offset: i32,
    },
}

/// A (possibly symbolic) memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MAddr {
    /// Optional base register.
    pub base: Option<MReg>,
    /// Optional scaled index register.
    pub index: Option<(MReg, Scale)>,
    /// Displacement.
    pub disp: Disp,
}

impl MAddr {
    /// An address that is just a displacement.
    pub fn disp(disp: Disp) -> MAddr {
        MAddr {
            base: None,
            index: None,
            disp,
        }
    }

    /// A `[base + imm]` address.
    pub fn base_imm(base: MReg, imm: i32) -> MAddr {
        MAddr {
            base: Some(base),
            index: None,
            disp: Disp::Imm(imm),
        }
    }
}

impl fmt::Display for MAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut sep = "";
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            sep = "+";
        }
        if let Some((r, s)) = self.index {
            write!(f, "{sep}{r}*{}", s.factor())?;
            sep = "+";
        }
        match self.disp {
            Disp::Imm(0) if !sep.is_empty() => {}
            Disp::Imm(v) => write!(f, "{sep}{v:#x}")?,
            Disp::Global { id, offset } => write!(f, "{sep}g{id}+{offset:#x}")?,
            Disp::Counter(id) => write!(f, "{sep}ctr{id}")?,
            Disp::Slot { id, offset } => write!(f, "{sep}slot{id}+{offset:#x}")?,
        }
        write!(f, "]")
    }
}

/// A right-hand-side operand: register, immediate, or memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MRhs {
    /// Register operand.
    Reg(MReg),
    /// Immediate operand.
    Imm(i32),
    /// Memory operand.
    Mem(MAddr),
}

impl fmt::Display for MRhs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MRhs::Reg(r) => r.fmt(f),
            MRhs::Imm(v) => write!(f, "{v:#x}"),
            MRhs::Mem(m) => m.fmt(f),
        }
    }
}

/// Shift count operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftCount {
    /// Immediate count (0–31).
    Imm(u8),
    /// Count in `cl`.
    Cl,
}

/// The target of a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CallTarget(
    /// Index into the final emitted function list.
    pub u32,
);

/// A machine instruction.
///
/// Each variant lowers to exactly one x86 instruction at emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MInst {
    /// `mov dst, imm`
    MovRI { dst: MReg, imm: i32 },
    /// `mov dst, src`
    MovRR { dst: MReg, src: MReg },
    /// `mov dst, [addr]`
    Load { dst: MReg, addr: MAddr },
    /// `mov [addr], src`
    Store { addr: MAddr, src: MReg },
    /// `mov dword [addr], imm`
    StoreImm { addr: MAddr, imm: i32 },
    /// `op dst, rhs` (dst is read and written). `op` must not be `cmp`;
    /// use [`MInst::Cmp`].
    Alu { op: AluOp, dst: MReg, rhs: MRhs },
    /// `op dword [addr], imm` — read-modify-write on memory (profiling
    /// counters).
    AluMem { op: AluOp, addr: MAddr, imm: i32 },
    /// `cmp lhs, rhs` — flags only.
    Cmp { lhs: MReg, rhs: MRhs },
    /// `test a, b` — flags only.
    Test { a: MReg, b: MReg },
    /// `imul dst, rhs`
    Imul { dst: MReg, rhs: MRhs },
    /// `imul dst, src, imm`
    ImulImm { dst: MReg, src: MReg, imm: i32 },
    /// `cdq` — sign-extend `eax` into `edx:eax`.
    Cdq,
    /// `idiv divisor` — divide `edx:eax`.
    Idiv { divisor: MReg },
    /// `inc dst` / `dec dst` (register form).
    IncDec {
        /// Register to adjust.
        dst: MReg,
        /// `true` = increment.
        inc: bool,
    },
    /// `neg dst`
    Neg { dst: MReg },
    /// `not dst`
    Not { dst: MReg },
    /// Shift `dst` by an immediate or by `cl`.
    Shift {
        op: ShiftOp,
        dst: MReg,
        count: ShiftCount,
    },
    /// `push rhs`
    Push { rhs: MRhs },
    /// `pop dst`
    Pop { dst: MReg },
    /// `lea dst, [addr]`
    Lea { dst: MReg, addr: MAddr },
    /// `call target` (relative; resolved by the emitter).
    Call { target: CallTarget },
    /// `int n` — the emulator's syscall gate.
    Int { n: u8 },
    /// A diversifying no-op inserted by the NOP-insertion pass.
    Nop { kind: NopKind },
}

impl MInst {
    /// Visits every register operand. `is_def` is `true` when the operand
    /// is (also) written.
    pub fn for_each_reg(&self, mut f: impl FnMut(MReg, bool)) {
        let mut addr = |a: &MAddr, f: &mut dyn FnMut(MReg, bool)| {
            if let Some(b) = a.base {
                f(b, false);
            }
            if let Some((i, _)) = a.index {
                f(i, false);
            }
        };
        match self {
            MInst::MovRI { dst, .. } => f(*dst, true),
            MInst::MovRR { dst, src } => {
                f(*src, false);
                f(*dst, true);
            }
            MInst::Load { dst, addr: a } => {
                addr(a, &mut f);
                f(*dst, true);
            }
            MInst::Store { addr: a, src } => {
                addr(a, &mut f);
                f(*src, false);
            }
            MInst::StoreImm { addr: a, .. } | MInst::AluMem { addr: a, .. } => addr(a, &mut f),
            MInst::Alu { dst, rhs, .. } => {
                rhs_regs(rhs, &mut addr, &mut f);
                f(*dst, false);
                f(*dst, true);
            }
            MInst::Cmp { lhs, rhs } => {
                f(*lhs, false);
                rhs_regs(rhs, &mut addr, &mut f);
            }
            MInst::Test { a, b } => {
                f(*a, false);
                f(*b, false);
            }
            MInst::Imul { dst, rhs } => {
                rhs_regs(rhs, &mut addr, &mut f);
                f(*dst, false);
                f(*dst, true);
            }
            MInst::ImulImm { dst, src, .. } => {
                f(*src, false);
                f(*dst, true);
            }
            MInst::Cdq => {
                f(MReg::P(Reg::Eax), false);
                f(MReg::P(Reg::Edx), true);
            }
            MInst::Idiv { divisor } => {
                f(*divisor, false);
                f(MReg::P(Reg::Eax), false);
                f(MReg::P(Reg::Edx), false);
                f(MReg::P(Reg::Eax), true);
                f(MReg::P(Reg::Edx), true);
            }
            MInst::IncDec { dst, .. } | MInst::Neg { dst } | MInst::Not { dst } => {
                f(*dst, false);
                f(*dst, true);
            }
            MInst::Shift { dst, count, .. } => {
                if matches!(count, ShiftCount::Cl) {
                    f(MReg::P(Reg::Ecx), false);
                }
                f(*dst, false);
                f(*dst, true);
            }
            MInst::Push { rhs } => rhs_regs(rhs, &mut addr, &mut f),
            MInst::Pop { dst } => f(*dst, true),
            MInst::Lea { dst, addr: a } => {
                addr(a, &mut f);
                f(*dst, true);
            }
            MInst::Call { .. } => {
                // Caller-saved registers are clobbered; allocation never
                // uses them, so nothing to report.
            }
            MInst::Int { .. } | MInst::Nop { .. } => {}
        }
    }
}

/// How an instruction accesses a register operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Read only.
    Use,
    /// Written only.
    Def,
    /// Read and written (two-address destinations).
    UseDef,
}

impl MInst {
    /// `true` if the instruction reads the arithmetic flags (only the
    /// carry-consuming ALU ops `adc`/`sbb` in this machine model).
    pub fn reads_eflags(&self) -> bool {
        matches!(
            self,
            MInst::Alu {
                op: AluOp::Adc | AluOp::Sbb,
                ..
            }
        )
    }

    /// `true` if the instruction defines *all* the flags a later reader
    /// could consult. Anything that writes only a subset (`inc`, shifts,
    /// `imul`) deliberately does **not** qualify, so a conservative
    /// liveness analysis keeps flags live across it.
    pub fn defines_all_eflags(&self) -> bool {
        matches!(
            self,
            MInst::Alu { .. }
                | MInst::AluMem { .. }
                | MInst::Cmp { .. }
                | MInst::Test { .. }
                | MInst::Neg { .. }
        )
    }
}

impl Access {
    /// `true` if the operand is read.
    pub fn is_use(self) -> bool {
        matches!(self, Access::Use | Access::UseDef)
    }

    /// `true` if the operand is written.
    pub fn is_def(self) -> bool {
        matches!(self, Access::Def | Access::UseDef)
    }
}

impl MInst {
    /// Visits every *explicit* register operand mutably, exactly once,
    /// with its [`Access`] kind (implicit fixed registers such as
    /// `eax`/`edx` of `idiv` are not visited — they can never be
    /// rewritten). Two-address destinations are visited a single time as
    /// [`Access::UseDef`], so a rewriter that replaces the operand still
    /// learns about both the read and the write.
    pub fn for_each_reg_mut(&mut self, mut f: impl FnMut(&mut MReg, Access)) {
        let mut addr = |a: &mut MAddr, f: &mut dyn FnMut(&mut MReg, Access)| {
            if let Some(b) = &mut a.base {
                f(b, Access::Use);
            }
            if let Some((i, _)) = &mut a.index {
                f(i, Access::Use);
            }
        };
        #[allow(clippy::type_complexity)] // nested visitor callbacks
        let rhs = |r: &mut MRhs,
                   addr: &mut dyn FnMut(&mut MAddr, &mut dyn FnMut(&mut MReg, Access)),
                   f: &mut dyn FnMut(&mut MReg, Access)| {
            match r {
                MRhs::Reg(r) => f(r, Access::Use),
                MRhs::Imm(_) => {}
                MRhs::Mem(m) => addr(m, f),
            }
        };
        match self {
            MInst::MovRI { dst, .. } => f(dst, Access::Def),
            MInst::MovRR { dst, src } => {
                f(src, Access::Use);
                f(dst, Access::Def);
            }
            MInst::Load { dst, addr: a } => {
                addr(a, &mut f);
                f(dst, Access::Def);
            }
            MInst::Store { addr: a, src } => {
                addr(a, &mut f);
                f(src, Access::Use);
            }
            MInst::StoreImm { addr: a, .. } | MInst::AluMem { addr: a, .. } => addr(a, &mut f),
            MInst::Alu { dst, rhs: r, .. } => {
                rhs(r, &mut addr, &mut f);
                f(dst, Access::UseDef);
            }
            MInst::Cmp { lhs, rhs: r } => {
                f(lhs, Access::Use);
                rhs(r, &mut addr, &mut f);
            }
            MInst::Test { a, b } => {
                f(a, Access::Use);
                f(b, Access::Use);
            }
            MInst::Imul { dst, rhs: r } => {
                rhs(r, &mut addr, &mut f);
                f(dst, Access::UseDef);
            }
            MInst::ImulImm { dst, src, .. } => {
                f(src, Access::Use);
                f(dst, Access::Def);
            }
            MInst::Cdq => {}
            MInst::Idiv { divisor } => f(divisor, Access::Use),
            MInst::IncDec { dst, .. } | MInst::Neg { dst } | MInst::Not { dst } => {
                f(dst, Access::UseDef);
            }
            MInst::Shift { dst, .. } => f(dst, Access::UseDef),
            MInst::Push { rhs: r } => rhs(r, &mut addr, &mut f),
            MInst::Pop { dst } => f(dst, Access::Def),
            MInst::Lea { dst, addr: a } => {
                addr(a, &mut f);
                f(dst, Access::Def);
            }
            MInst::Call { .. } | MInst::Int { .. } | MInst::Nop { .. } => {}
        }
    }
}

#[allow(clippy::type_complexity)] // nested visitor callbacks
fn rhs_regs(
    rhs: &MRhs,
    addr: &mut dyn FnMut(&MAddr, &mut dyn FnMut(MReg, bool)),
    f: &mut dyn FnMut(MReg, bool),
) {
    match rhs {
        MRhs::Reg(r) => f(*r, false),
        MRhs::Imm(_) => {}
        MRhs::Mem(m) => addr(m, f),
    }
}

/// A branch target during lowering: an IR block id (before resolution) or a
/// final machine-block index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MTarget {
    /// Refers to the entry machine block of IR block `n`.
    Ir(u32),
    /// Refers to machine block `n` directly.
    M(u32),
}

impl MTarget {
    /// The machine-block index.
    ///
    /// # Panics
    ///
    /// Panics if the target is still symbolic (lowering forgot to resolve
    /// it).
    pub fn m(self) -> u32 {
        match self {
            MTarget::M(n) => n,
            MTarget::Ir(n) => panic!("unresolved branch target (ir block {n})"),
        }
    }
}

/// A machine-block terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MTerm {
    /// Return (epilogue instructions precede this in the block body).
    Ret,
    /// Unconditional jump.
    Jmp(MTarget),
    /// Conditional jump to `t`, else `f`.
    JCond {
        /// Branch condition.
        cc: Cond,
        /// Taken target.
        t: MTarget,
        /// Fall-through target.
        f: MTarget,
    },
}

impl MTerm {
    /// Successor machine blocks (after resolution).
    pub fn successors(&self) -> Vec<u32> {
        match self {
            MTerm::Ret => Vec::new(),
            MTerm::Jmp(t) => vec![t.m()],
            MTerm::JCond { t, f, .. } => vec![t.m(), f.m()],
        }
    }
}

/// A machine basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MBlock {
    /// Instructions in order.
    pub instrs: Vec<MInst>,
    /// Terminator.
    pub term: MTerm,
    /// The IR block this machine block was lowered from, if any. Extra
    /// blocks materialized during lowering inherit the id of their source
    /// block so profile counts map through.
    pub ir_block: Option<u32>,
}

/// A machine function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MFunction {
    /// Function name.
    pub name: String,
    /// Number of parameters (for documentation; the frame uses it).
    pub params: u32,
    /// Machine blocks in layout order; block 0 is the entry.
    pub blocks: Vec<MBlock>,
    /// Number of virtual registers used (0 after allocation).
    pub num_vregs: u32,
    /// Stack slots in words: IR local arrays first, then spill slots.
    pub slot_words: Vec<u32>,
    /// Whether the diversifying NOP pass may touch this function.
    /// The runtime library sets this to `false`, modeling the paper's
    /// undiversified C library.
    pub diversify: bool,
    /// `true` for hand-written runtime stubs that use physical registers
    /// directly and must skip register allocation and frame lowering.
    pub raw: bool,
}

impl MFunction {
    /// Total dynamic instruction slots (for sizing diagnostics).
    pub fn num_instrs(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len() + 1).sum()
    }

    /// Per-block predecessor lists, derived from the terminators'
    /// successor edges. `predecessors()[b]` lists every block with an edge
    /// into `b`, in block order, without duplicates.
    pub fn predecessors(&self) -> Vec<Vec<u32>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (bi, block) in self.blocks.iter().enumerate() {
            for s in block.term.successors() {
                let list = &mut preds[s as usize];
                if list.last() != Some(&(bi as u32)) && !list.contains(&(bi as u32)) {
                    list.push(bi as u32);
                }
            }
        }
        preds
    }
}

impl fmt::Display for MFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "mfunc {}:", self.name)?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, ".L{i}: (ir {:?})", b.ir_block)?;
            for ins in &b.instrs {
                writeln!(f, "    {ins:?}")?;
            }
            writeln!(f, "    {:?}", b.term)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_visitor_reports_uses_then_defs() {
        let i = MInst::Alu {
            op: AluOp::Add,
            dst: MReg::V(1),
            rhs: MRhs::Mem(MAddr {
                base: Some(MReg::V(2)),
                index: Some((MReg::V(3), Scale::S4)),
                disp: Disp::Imm(0),
            }),
        };
        let mut uses = Vec::new();
        let mut defs = Vec::new();
        i.for_each_reg(|r, d| {
            if d {
                defs.push(r);
            } else {
                uses.push(r);
            }
        });
        assert_eq!(uses, vec![MReg::V(2), MReg::V(3), MReg::V(1)]);
        assert_eq!(defs, vec![MReg::V(1)]);
    }

    #[test]
    fn idiv_implicit_regs() {
        let mut regs = Vec::new();
        MInst::Idiv {
            divisor: MReg::P(Reg::Ecx),
        }
        .for_each_reg(|r, d| regs.push((r, d)));
        assert!(regs.contains(&(MReg::P(Reg::Eax), true)));
        assert!(regs.contains(&(MReg::P(Reg::Edx), true)));
        assert!(regs.contains(&(MReg::P(Reg::Ecx), false)));
    }

    #[test]
    fn unresolved_target_panics() {
        let t = MTarget::Ir(3);
        assert!(std::panic::catch_unwind(|| t.m()).is_err());
    }

    #[test]
    fn vreg_accessors() {
        assert_eq!(MReg::V(7).vreg(), Some(7));
        assert_eq!(MReg::P(Reg::Eax).vreg(), None);
        assert_eq!(MReg::P(Reg::Ebx).phys(), Reg::Ebx);
    }
}
