//! Peephole cleanups on fully lowered LIR.
//!
//! Runs after register allocation and frame lowering, where the classic
//! local redundancies appear: self-moves (two virtual registers assigned
//! the same physical register), dead double-stores of an immediate, and
//! store-to-load forwarding through a just-written slot (spill traffic).
//!
//! Like [`crate::ir::passes::eliminate_common_subexpressions`], this pass
//! is *opt-in* (`lower_module` does not run it): the published evaluation
//! numbers in EXPERIMENTS.md were produced without it, and byte-for-byte
//! reproducibility of those results wins over the small win. It must in
//! any case run **before** the diversifying passes — it would happily
//! delete inserted NOPs (`mov esp, esp` is a self-move) and un-substitute
//! `push/pop` pairs.

use super::{MAddr, MFunction, MInst, MReg, MRhs};

/// Applies peephole rules to every block of `func` until a fixpoint.
///
/// Returns the number of instructions removed or simplified.
pub fn peephole(func: &mut MFunction) -> usize {
    if func.raw {
        return 0;
    }
    let mut total = 0;
    loop {
        let mut changed = 0;
        for block in &mut func.blocks {
            changed += rewrite_block(&mut block.instrs);
        }
        if changed == 0 {
            return total;
        }
        total += changed;
    }
}

/// Do two addresses refer to the same word, assuming no register in them
/// was modified in between?
fn same_addr(a: &MAddr, b: &MAddr) -> bool {
    a == b
}

/// `true` if `inst` writes to the physical register `r`.
fn writes_reg(inst: &MInst, r: MReg) -> bool {
    let mut hit = false;
    inst.for_each_reg(|reg, is_def| hit |= is_def && reg == r);
    // Implicit call clobbers.
    if let MInst::Call { .. } = inst {
        if let MReg::P(p) = r {
            hit |= matches!(
                p,
                pgsd_x86::Reg::Eax | pgsd_x86::Reg::Ecx | pgsd_x86::Reg::Edx
            );
        }
    }
    hit
}

fn rewrite_block(instrs: &mut Vec<MInst>) -> usize {
    let mut changed = 0;
    let mut out: Vec<MInst> = Vec::with_capacity(instrs.len());
    for inst in instrs.drain(..) {
        // Rule 1: self-move is a no-op (mov r, r — no flags involved).
        if let MInst::MovRR { dst, src } = inst {
            if dst == src {
                changed += 1;
                continue;
            }
        }
        match (out.last(), &inst) {
            // Rule 2: store-to-load forwarding: `mov [A], r; mov r', [A]`
            // → keep the store, turn the load into a register move.
            (Some(MInst::Store { addr: a1, src }), MInst::Load { dst, addr: a2 })
                if same_addr(a1, a2) =>
            {
                let (src, dst) = (*src, *dst);
                changed += 1;
                if dst != src {
                    out.push(MInst::MovRR { dst, src });
                }
                continue;
            }
            // Rule 3: immediately overwritten immediate store to the same
            // register: `mov r, imm1; mov r, imm2` → drop the first.
            (Some(MInst::MovRI { dst: d1, .. }), MInst::MovRI { dst: d2, .. }) if d1 == d2 => {
                out.pop();
                changed += 1;
                out.push(inst);
                continue;
            }
            // Rule 4: a load immediately overwritten by another write to
            // the same register (common after spill reloads feeding a
            // two-address op that was later simplified).
            (Some(MInst::Load { dst, .. }), _)
                if writes_reg(&inst, *dst) && !reads_reg(&inst, *dst) =>
            {
                out.pop();
                changed += 1;
                out.push(inst);
                continue;
            }
            _ => {}
        }
        out.push(inst);
    }
    *instrs = out;
    changed
}

/// `true` if `inst` reads the register `r` (including address operands).
fn reads_reg(inst: &MInst, r: MReg) -> bool {
    let mut hit = false;
    inst.for_each_reg(|reg, is_def| hit |= !is_def && reg == r);
    // Two-address defs also read; for_each_reg reports those as separate
    // use visits, handled above. `Push`/`Store` of the register:
    if let MInst::Push {
        rhs: MRhs::Reg(reg),
    } = inst
    {
        hit |= *reg == r;
    }
    hit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{emit_image, frontend, lower_module};
    use crate::emit::STACK_TOP;
    use crate::lir::Disp;
    use pgsd_x86::{AluOp, Reg};

    fn p(r: Reg) -> MReg {
        MReg::P(r)
    }

    fn block_of(instrs: Vec<MInst>) -> MFunction {
        MFunction {
            name: "t".into(),
            params: 0,
            blocks: vec![crate::lir::MBlock {
                instrs,
                term: crate::lir::MTerm::Ret,
                ir_block: None,
            }],
            num_vregs: 0,
            slot_words: vec![],
            diversify: true,
            raw: false,
        }
    }

    fn slot(off: i32) -> MAddr {
        MAddr {
            base: Some(p(Reg::Ebp)),
            index: None,
            disp: Disp::Imm(off),
        }
    }

    #[test]
    fn removes_self_moves() {
        let mut f = block_of(vec![
            MInst::MovRR {
                dst: p(Reg::Eax),
                src: p(Reg::Eax),
            },
            MInst::MovRR {
                dst: p(Reg::Eax),
                src: p(Reg::Ebx),
            },
        ]);
        assert_eq!(peephole(&mut f), 1);
        assert_eq!(f.blocks[0].instrs.len(), 1);
    }

    #[test]
    fn forwards_store_to_load() {
        let mut f = block_of(vec![
            MInst::Store {
                addr: slot(-16),
                src: p(Reg::Ebx),
            },
            MInst::Load {
                dst: p(Reg::Esi),
                addr: slot(-16),
            },
        ]);
        assert!(peephole(&mut f) >= 1);
        assert_eq!(
            f.blocks[0].instrs,
            vec![
                MInst::Store {
                    addr: slot(-16),
                    src: p(Reg::Ebx)
                },
                MInst::MovRR {
                    dst: p(Reg::Esi),
                    src: p(Reg::Ebx)
                },
            ]
        );
        // Same register: the load disappears entirely.
        let mut f = block_of(vec![
            MInst::Store {
                addr: slot(-16),
                src: p(Reg::Ebx),
            },
            MInst::Load {
                dst: p(Reg::Ebx),
                addr: slot(-16),
            },
        ]);
        peephole(&mut f);
        assert_eq!(f.blocks[0].instrs.len(), 1);
    }

    #[test]
    fn different_slots_not_forwarded() {
        let mut f = block_of(vec![
            MInst::Store {
                addr: slot(-16),
                src: p(Reg::Ebx),
            },
            MInst::Load {
                dst: p(Reg::Esi),
                addr: slot(-20),
            },
        ]);
        assert_eq!(peephole(&mut f), 0);
    }

    #[test]
    fn dead_immediate_write_dropped() {
        let mut f = block_of(vec![
            MInst::MovRI {
                dst: p(Reg::Eax),
                imm: 1,
            },
            MInst::MovRI {
                dst: p(Reg::Eax),
                imm: 2,
            },
        ]);
        assert_eq!(peephole(&mut f), 1);
        assert_eq!(
            f.blocks[0].instrs,
            vec![MInst::MovRI {
                dst: p(Reg::Eax),
                imm: 2
            }]
        );
    }

    #[test]
    fn dead_load_before_redefinition_dropped() {
        let mut f = block_of(vec![
            MInst::Load {
                dst: p(Reg::Ebx),
                addr: slot(-8),
            },
            MInst::MovRI {
                dst: p(Reg::Ebx),
                imm: 5,
            },
        ]);
        assert_eq!(peephole(&mut f), 1);
        // But a load whose value is USED by the next write must stay.
        let mut f = block_of(vec![
            MInst::Load {
                dst: p(Reg::Ebx),
                addr: slot(-8),
            },
            MInst::Alu {
                op: AluOp::Add,
                dst: p(Reg::Ebx),
                rhs: MRhs::Imm(1),
            },
        ]);
        assert_eq!(peephole(&mut f), 0);
    }

    #[test]
    fn raw_functions_untouched() {
        let mut f = block_of(vec![MInst::MovRR {
            dst: p(Reg::Eax),
            src: p(Reg::Eax),
        }]);
        f.raw = true;
        assert_eq!(peephole(&mut f), 0);
    }

    #[test]
    fn end_to_end_semantics_preserved() {
        // Compile a spill-heavy program, peephole it, and compare results.
        let src = "int f(int a) {
            int v0 = a + 1; int v1 = a + 2; int v2 = a + 3; int v3 = a + 4;
            int v4 = a + 5; int v5 = a + 6; int v6 = a + 7; int v7 = a + 8;
            return v0 + v1 * v2 + v3 * v4 + v5 * v6 + v7;
        }
        int main(int a) { return f(a); }";
        let module = frontend("t", src).unwrap();
        let run = |funcs: &[MFunction]| {
            let image = emit_image(funcs, &module).unwrap();
            let mut emu = pgsd_emu::Emulator::new(
                image.base,
                image.text.clone(),
                image.data_base,
                image.data.clone(),
                STACK_TOP,
            );
            emu.call_entry(image.main_addr, image.exit_addr, &[7]);
            (emu.run(1_000_000).status().unwrap(), image.text.len())
        };
        let plain = lower_module(&module).unwrap();
        let (want, size_before) = run(&plain);
        let mut optimized = lower_module(&module).unwrap();
        let removed: usize = optimized.iter_mut().map(peephole).sum();
        let (got, size_after) = run(&optimized);
        assert_eq!(got, want);
        assert!(
            removed > 0,
            "spill traffic should expose forwarding opportunities"
        );
        assert!(size_after < size_before);
    }
}
