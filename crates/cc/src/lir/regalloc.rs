//! Linear-scan register allocation.
//!
//! Virtual registers are allocated to the callee-saved set
//! `{ebx, esi, edi}`; `eax`, `ecx` and `edx` are reserved as scratch for
//! spill reloads and for the fixed-register sequences instruction selection
//! emits (division, shifts, call returns). Keeping the allocatable and
//! scratch sets disjoint makes the allocator constraint-free — the classic
//! simple-backend design, and entirely adequate for measuring *relative*
//! NOP-insertion overhead, which is what the paper's Figure 4 needs.
//!
//! Liveness is computed by backward dataflow over the machine CFG; each
//! virtual register gets one conservative interval (covering loops via
//! live-in/live-out extension); intervals are scanned in start order with
//! furthest-end spilling (Poletto & Sarkar).

use std::collections::HashMap;

use pgsd_x86::Reg;

use crate::error::{CompileError, Result};

use super::{Disp, MAddr, MFunction, MInst, MReg};

/// Registers available for allocation (callee-saved under cdecl).
pub const ALLOCATABLE: [Reg; 3] = [Reg::Ebx, Reg::Esi, Reg::Edi];

/// Scratch registers used for spill code (caller-saved under cdecl).
pub const SCRATCH: [Reg; 3] = [Reg::Eax, Reg::Ecx, Reg::Edx];

/// Where a virtual register ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Reg(Reg),
    /// Index into `MFunction::slot_words`.
    Slot(u32),
}

/// Allocates registers for `func` in place, rewriting every virtual
/// register to a physical register or to frame-slot accesses via scratch
/// registers. Raw functions are left untouched.
///
/// # Errors
///
/// Returns an error if an instruction requires more scratch registers than
/// exist (cannot happen for instruction-selected code; defends against
/// hand-built LIR).
pub fn allocate(func: &mut MFunction) -> Result<()> {
    allocate_with_order(func, ALLOCATABLE)
}

/// Like [`allocate`], but hands registers out in the given preference
/// order. All three allocatable registers are callee-saved and fully
/// symmetric, so any permutation yields correct code — which makes the
/// order a *diversification knob*: the paper's §6 lists register
/// randomization among the complementary transformations a compiler can
/// apply, profile-guided like the rest.
///
/// # Errors
///
/// Fails in exactly the cases [`allocate`] fails.
pub fn allocate_with_order(func: &mut MFunction, order: [Reg; 3]) -> Result<()> {
    if func.raw {
        return Ok(());
    }
    debug_assert!(
        order.iter().all(|r| ALLOCATABLE.contains(r)),
        "register order must be a permutation of the allocatable set"
    );
    let intervals = build_intervals(func);
    let assignment = scan(func, &intervals, order);
    rewrite(func, &assignment)?;
    func.num_vregs = 0;
    Ok(())
}

#[derive(Debug, Clone, Copy)]
struct Interval {
    vreg: u32,
    start: u32,
    end: u32,
}

/// Computes one conservative live interval per virtual register.
fn build_intervals(func: &MFunction) -> Vec<Interval> {
    let nb = func.blocks.len();
    let nv = func.num_vregs as usize;

    // Global instruction numbering; each block also gets a start/end
    // position (the end covers the terminator).
    let mut block_start = vec![0u32; nb];
    let mut block_end = vec![0u32; nb];
    let mut pos = 0u32;
    for (bi, b) in func.blocks.iter().enumerate() {
        block_start[bi] = pos;
        pos += b.instrs.len() as u32 + 1; // +1 for the terminator
        block_end[bi] = pos - 1;
    }

    // Per-block use/def sets.
    let mut uses = vec![vec![false; nv]; nb];
    let mut defs = vec![vec![false; nv]; nb];
    for (bi, b) in func.blocks.iter().enumerate() {
        for i in &b.instrs {
            i.for_each_reg(|r, is_def| {
                if let MReg::V(n) = r {
                    let n = n as usize;
                    if is_def {
                        defs[bi][n] = true;
                    } else if !defs[bi][n] {
                        uses[bi][n] = true;
                    }
                }
            });
        }
    }

    // Backward liveness dataflow.
    let succs: Vec<Vec<usize>> = func
        .blocks
        .iter()
        .map(|b| b.term.successors().iter().map(|&s| s as usize).collect())
        .collect();
    let mut live_in = vec![vec![false; nv]; nb];
    let mut live_out = vec![vec![false; nv]; nb];
    loop {
        let mut changed = false;
        for bi in (0..nb).rev() {
            for v in 0..nv {
                let out = succs[bi].iter().any(|&s| live_in[s][v]);
                let inp = uses[bi][v] || (out && !defs[bi][v]);
                if out != live_out[bi][v] || inp != live_in[bi][v] {
                    live_out[bi][v] = out;
                    live_in[bi][v] = inp;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Interval construction.
    let mut start = vec![u32::MAX; nv];
    let mut end = vec![0u32; nv];
    let touch = |v: usize, at: u32, start: &mut Vec<u32>, end: &mut Vec<u32>| {
        start[v] = start[v].min(at);
        end[v] = end[v].max(at);
    };
    for (bi, b) in func.blocks.iter().enumerate() {
        for v in 0..nv {
            if live_in[bi][v] {
                touch(v, block_start[bi], &mut start, &mut end);
            }
            if live_out[bi][v] {
                touch(v, block_end[bi], &mut start, &mut end);
            }
        }
        for (p, i) in (block_start[bi]..).zip(b.instrs.iter()) {
            i.for_each_reg(|r, _| {
                if let MReg::V(n) = r {
                    touch(n as usize, p, &mut start, &mut end);
                }
            });
        }
    }

    let mut out: Vec<Interval> = (0..nv)
        .filter(|&v| start[v] != u32::MAX)
        .map(|v| Interval {
            vreg: v as u32,
            start: start[v],
            end: end[v],
        })
        .collect();
    out.sort_by_key(|i| (i.start, i.end));
    out
}

/// Classic linear scan with furthest-end spilling.
fn scan(func: &mut MFunction, intervals: &[Interval], order: [Reg; 3]) -> HashMap<u32, Loc> {
    let mut assignment: HashMap<u32, Loc> = HashMap::new();
    let mut active: Vec<(Interval, Reg)> = Vec::new();
    // `free` is popped from the back; reverse so `order[0]` is preferred.
    let mut free: Vec<Reg> = order.iter().rev().copied().collect();

    let new_slot = |func: &mut MFunction| -> u32 {
        let id = func.slot_words.len() as u32;
        func.slot_words.push(1);
        id
    };

    for &iv in intervals {
        // Expire intervals that ended before this one starts.
        active.retain(|(a, r)| {
            if a.end < iv.start {
                free.push(*r);
                false
            } else {
                true
            }
        });
        if let Some(r) = free.pop() {
            active.push((iv, r));
            assignment.insert(iv.vreg, Loc::Reg(r));
        } else {
            // Spill the interval that ends last (it blocks a register for
            // the longest time).
            let (furthest_idx, _) = active
                .iter()
                .enumerate()
                .max_by_key(|(_, (a, _))| a.end)
                .expect("active is non-empty when no register is free");
            if active[furthest_idx].0.end > iv.end {
                let (victim, reg) = active.swap_remove(furthest_idx);
                assignment.insert(victim.vreg, Loc::Slot(new_slot(func)));
                assignment.insert(iv.vreg, Loc::Reg(reg));
                active.push((iv, reg));
            } else {
                assignment.insert(iv.vreg, Loc::Slot(new_slot(func)));
            }
        }
    }
    assignment
}

/// Rewrites all virtual registers according to `assignment`, inserting
/// spill loads/stores through scratch registers.
fn rewrite(func: &mut MFunction, assignment: &HashMap<u32, Loc>) -> Result<()> {
    for bi in 0..func.blocks.len() {
        let old = std::mem::take(&mut func.blocks[bi].instrs);
        let mut new = Vec::with_capacity(old.len());
        for inst in old {
            rewrite_inst(inst, assignment, &mut new)?;
        }
        func.blocks[bi].instrs = new;
    }
    Ok(())
}

fn slot_addr(slot: u32) -> MAddr {
    MAddr::disp(Disp::Slot {
        id: slot,
        offset: 0,
    })
}

fn rewrite_inst(
    mut inst: MInst,
    assignment: &HashMap<u32, Loc>,
    out: &mut Vec<MInst>,
) -> Result<()> {
    // Fast path: nothing virtual.
    let mut any_virtual = false;
    inst.for_each_reg(|r, _| any_virtual |= matches!(r, MReg::V(_)));
    if !any_virtual {
        out.push(inst);
        return Ok(());
    }

    // Peephole the common single-register move forms so spill code stays
    // compact.
    match inst {
        MInst::MovRR {
            dst: MReg::V(d),
            src,
        } if spilled(assignment, d) => {
            if let Some(src) = resolve_reg(assignment, src) {
                out.push(MInst::Store {
                    addr: slot_addr(slot_of(assignment, d)),
                    src,
                });
                return Ok(());
            }
        }
        MInst::MovRR {
            dst,
            src: MReg::V(s),
        } if spilled(assignment, s) => {
            if let Some(dst) = resolve_reg(assignment, dst) {
                out.push(MInst::Load {
                    dst,
                    addr: slot_addr(slot_of(assignment, s)),
                });
                return Ok(());
            }
        }
        MInst::MovRI {
            dst: MReg::V(d),
            imm,
        } if spilled(assignment, d) => {
            out.push(MInst::StoreImm {
                addr: slot_addr(slot_of(assignment, d)),
                imm,
            });
            return Ok(());
        }
        _ => {}
    }

    // Scratch registers must avoid physical registers this instruction
    // already touches (explicitly or implicitly).
    let mut used_phys = Vec::new();
    inst.for_each_reg(|r, _| {
        if let MReg::P(p) = r {
            used_phys.push(p);
        }
    });
    let mut pool: Vec<Reg> = SCRATCH
        .iter()
        .copied()
        .filter(|r| !used_phys.contains(r))
        .collect();

    // vreg → scratch assignment for this instruction.
    let mut scratch_for: HashMap<u32, (Reg, bool, bool)> = HashMap::new(); // (reg, load, store)
    let mut error = None;
    inst.for_each_reg_mut(|r, access| {
        if error.is_some() {
            return;
        }
        if let MReg::V(n) = *r {
            match assignment.get(&n) {
                Some(Loc::Reg(p)) => *r = MReg::P(*p),
                Some(Loc::Slot(_)) => {
                    let entry = match scratch_for.get_mut(&n) {
                        Some(e) => e,
                        None => match pool.pop() {
                            Some(s) => {
                                scratch_for.insert(n, (s, false, false));
                                scratch_for.get_mut(&n).expect("just inserted")
                            }
                            None => {
                                error = Some(CompileError::new(
                                    "ran out of spill scratch registers during spill rewriting"
                                        .to_string(),
                                ));
                                return;
                            }
                        },
                    };
                    if access.is_use() {
                        entry.1 = true;
                    }
                    if access.is_def() {
                        entry.2 = true;
                    }
                    *r = MReg::P(entry.0);
                }
                None => {
                    // A vreg with no interval is never read; it can only be
                    // a dead definition. Route it to a scratch register.
                    let s = pool.last().copied().unwrap_or(Reg::Eax);
                    *r = MReg::P(s);
                }
            }
        }
    });
    if let Some(e) = error {
        return Err(e);
    }

    // Reloads before, stores after, in deterministic vreg order.
    let mut entries: Vec<(&u32, &(Reg, bool, bool))> = scratch_for.iter().collect();
    entries.sort_by_key(|(v, _)| **v);
    for (v, (s, load, _)) in &entries {
        if *load {
            out.push(MInst::Load {
                dst: MReg::P(*s),
                addr: slot_addr(slot_of(assignment, **v)),
            });
        }
    }
    out.push(inst);
    for (v, (s, _, store)) in &entries {
        if *store {
            out.push(MInst::Store {
                addr: slot_addr(slot_of(assignment, **v)),
                src: MReg::P(*s),
            });
        }
    }
    Ok(())
}

fn spilled(assignment: &HashMap<u32, Loc>, v: u32) -> bool {
    matches!(assignment.get(&v), Some(Loc::Slot(_)))
}

fn slot_of(assignment: &HashMap<u32, Loc>, v: u32) -> u32 {
    match assignment.get(&v) {
        Some(Loc::Slot(s)) => *s,
        other => panic!("vreg v{v} is not spilled: {other:?}"),
    }
}

/// Resolves a register operand to a physical register if it is physical or
/// allocated to one (`None` if spilled).
fn resolve_reg(assignment: &HashMap<u32, Loc>, r: MReg) -> Option<MReg> {
    match r {
        MReg::P(p) => Some(MReg::P(p)),
        MReg::V(n) => match assignment.get(&n) {
            Some(Loc::Reg(p)) => Some(MReg::P(*p)),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::{lexer::lex, parser::parse};
    use crate::ir::builder::build;
    use crate::ir::passes::optimize;
    use crate::lir::isel::{select, LowerCtx};

    fn alloc(src: &str) -> Vec<MFunction> {
        let mut m = build("t", &parse(lex(src).unwrap()).unwrap()).unwrap();
        optimize(&mut m);
        let ctx = LowerCtx {
            print_index: 1,
            user_func_base: 2,
        };
        m.funcs
            .iter()
            .map(|f| {
                let mut mf = select(f, &ctx).unwrap();
                allocate(&mut mf).unwrap();
                mf
            })
            .collect()
    }

    fn assert_fully_physical(f: &MFunction) {
        for b in &f.blocks {
            for i in &b.instrs {
                i.for_each_reg(|r, _| {
                    assert!(
                        matches!(r, MReg::P(_)),
                        "virtual register left in {i:?} of {f}"
                    );
                });
            }
        }
    }

    #[test]
    fn simple_function_is_fully_allocated() {
        for f in alloc("int f(int a, int b) { return a * b + a - b; }") {
            assert_fully_physical(&f);
        }
    }

    #[test]
    fn allocatable_registers_only() {
        let fs = alloc("int f(int a, int b, int c) { return a + b + c; }");
        for b in &fs[0].blocks {
            for i in &b.instrs {
                if let MInst::Alu {
                    dst: MReg::P(p), ..
                } = i
                {
                    assert!(
                        ALLOCATABLE.contains(p) || SCRATCH.contains(p) || *p == Reg::Esp,
                        "unexpected register {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn high_pressure_spills_but_stays_correct() {
        // 8 simultaneously-live values forces spills with 3 registers.
        let src = "int f(int a) {
            int v0 = a + 1; int v1 = a + 2; int v2 = a + 3; int v3 = a + 4;
            int v4 = a + 5; int v5 = a + 6; int v6 = a + 7; int v7 = a + 8;
            return v0 + v1 + v2 + v3 + v4 + v5 + v6 + v7;
        }";
        let fs = alloc(src);
        assert_fully_physical(&fs[0]);
        // Spill slots must have been created.
        assert!(!fs[0].slot_words.is_empty(), "expected spills");
    }

    #[test]
    fn loops_keep_induction_variable_alive() {
        let fs = alloc(
            "int f(int n) { int s = 0; int i = 0; while (i < n) { s += i; i += 1; } return s; }",
        );
        assert_fully_physical(&fs[0]);
    }

    #[test]
    fn division_survives_allocation() {
        let fs = alloc("int f(int a, int b) { return a / b; }");
        assert_fully_physical(&fs[0]);
        // idiv's divisor must not be eax or edx.
        for b in &fs[0].blocks {
            for i in &b.instrs {
                if let MInst::Idiv {
                    divisor: MReg::P(p),
                } = i
                {
                    assert!(*p != Reg::Eax && *p != Reg::Edx);
                }
            }
        }
    }

    #[test]
    fn raw_functions_untouched() {
        let mut f = MFunction {
            name: "stub".into(),
            params: 0,
            blocks: vec![],
            num_vregs: 5,
            slot_words: vec![],
            diversify: false,
            raw: true,
        };
        allocate(&mut f).unwrap();
        assert_eq!(f.num_vregs, 5);
    }
}
