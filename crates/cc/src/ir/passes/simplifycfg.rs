//! Control-flow graph simplification.

use crate::ir::{BlockId, Function, Operand, Term};

/// Cleans up the CFG:
///
/// 1. folds `condbr` with a constant condition (or equal targets) into
///    `br`;
/// 2. threads empty forwarding blocks (`bbX: br bbY` with no instructions);
/// 3. merges a block into its unique successor when that successor has a
///    unique predecessor;
/// 4. deletes unreachable blocks and compacts block ids.
///
/// Returns `true` if anything changed.
pub fn simplify_cfg(func: &mut Function) -> bool {
    let mut changed = false;
    // A few local rounds: each transformation can expose the next.
    for _ in 0..4 {
        let mut round = false;
        round |= fold_const_branches(func);
        round |= thread_forwarders(func);
        round |= merge_linear_pairs(func);
        if !round {
            break;
        }
        changed = true;
    }
    changed |= drop_unreachable(func);
    changed
}

fn fold_const_branches(func: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut func.blocks {
        if let Term::CondBr { cond, t, f } = &block.term {
            if let Operand::Const(c) = cond {
                block.term = Term::Br(if *c != 0 { *t } else { *f });
                changed = true;
            } else if t == f {
                block.term = Term::Br(*t);
                changed = true;
            }
        }
    }
    changed
}

fn thread_forwarders(func: &mut Function) -> bool {
    // target[b] = Some(t) if b is an empty `br t` block (b != t).
    let targets: Vec<Option<BlockId>> = func
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| match b.term {
            Term::Br(t) if b.instrs.is_empty() && t.0 != i as u32 => Some(t),
            _ => None,
        })
        .collect();
    // Resolve forwarding chains with a step bound (cycles of empty blocks
    // would otherwise loop; a cycle of empty `br` blocks is an infinite
    // loop in the program and is left alone).
    let resolve = |mut b: BlockId| -> BlockId {
        for _ in 0..targets.len() {
            match targets[b.0 as usize] {
                Some(next) => b = next,
                None => break,
            }
        }
        b
    };
    let mut changed = false;
    for block in &mut func.blocks {
        let mut rewrite = |b: &mut BlockId| {
            let r = resolve(*b);
            if r != *b {
                *b = r;
                changed = true;
            }
        };
        match &mut block.term {
            Term::Br(t) => rewrite(t),
            Term::CondBr { t, f, .. } => {
                rewrite(t);
                rewrite(f);
            }
            Term::Ret(_) => {}
        }
    }
    changed
}

fn merge_linear_pairs(func: &mut Function) -> bool {
    let preds = func.predecessors();
    let reachable = func.reachable();
    let mut changed = false;
    for bi in 0..func.blocks.len() {
        if !reachable[bi] {
            continue;
        }
        let Term::Br(succ) = func.blocks[bi].term else {
            continue;
        };
        let si = succ.0 as usize;
        if si == bi || si == 0 {
            continue;
        }
        // The successor must have exactly one predecessor *among reachable
        // blocks* (unreachable predecessors are about to be deleted).
        let live_preds: Vec<_> = preds[si]
            .iter()
            .filter(|p| reachable[p.0 as usize])
            .collect();
        if live_preds.len() != 1 || live_preds[0].0 as usize != bi {
            continue;
        }
        // Move successor body into bi.
        let succ_block = std::mem::replace(
            &mut func.blocks[si],
            crate::ir::Block {
                instrs: Vec::new(),
                term: Term::Br(BlockId(si as u32)),
            },
        );
        // The replaced successor becomes a self-loop orphan, removed by
        // drop_unreachable.
        let dst = &mut func.blocks[bi];
        dst.instrs.extend(succ_block.instrs);
        dst.term = succ_block.term;
        changed = true;
        // `preds` is stale now; do one merge per iteration round.
        break;
    }
    changed
}

fn drop_unreachable(func: &mut Function) -> bool {
    let reachable = func.reachable();
    if reachable.iter().all(|&r| r) {
        return false;
    }
    // Compact: old id → new id.
    let mut remap = vec![None; func.blocks.len()];
    let mut next = 0u32;
    for (i, &r) in reachable.iter().enumerate() {
        if r {
            remap[i] = Some(BlockId(next));
            next += 1;
        }
    }
    let mut old_blocks = std::mem::take(&mut func.blocks);
    for (i, block) in old_blocks.iter_mut().enumerate() {
        if !reachable[i] {
            continue;
        }
        let fix = |b: &mut BlockId| {
            *b = remap[b.0 as usize].expect("successor of reachable block is reachable");
        };
        match &mut block.term {
            Term::Br(t) => fix(t),
            Term::CondBr { t, f, .. } => {
                fix(t);
                fix(f);
            }
            Term::Ret(_) => {}
        }
        func.blocks.push(std::mem::replace(
            block,
            crate::ir::Block {
                instrs: Vec::new(),
                term: Term::Ret(None),
            },
        ));
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Block, Instr, ValueId};

    fn block(instrs: Vec<Instr>, term: Term) -> Block {
        Block { instrs, term }
    }

    fn fun(blocks: Vec<Block>) -> Function {
        Function {
            name: "t".into(),
            params: 0,
            num_values: 8,
            blocks,
            slots: Vec::new(),
        }
    }

    #[test]
    fn folds_constant_condbr_and_drops_dead_arm() {
        let mut f = fun(vec![
            block(
                vec![],
                Term::CondBr {
                    cond: Operand::Const(1),
                    t: BlockId(1),
                    f: BlockId(2),
                },
            ),
            block(vec![], Term::Ret(Some(Operand::Const(5)))),
            block(vec![], Term::Ret(Some(Operand::Const(6)))),
        ]);
        assert!(simplify_cfg(&mut f));
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].term, Term::Ret(Some(Operand::Const(5))));
    }

    #[test]
    fn threads_empty_forwarders() {
        let mut f = fun(vec![
            block(vec![], Term::Br(BlockId(1))),
            block(vec![], Term::Br(BlockId(2))),
            block(vec![], Term::Br(BlockId(3))),
            block(vec![], Term::Ret(None)),
        ]);
        assert!(simplify_cfg(&mut f));
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].term, Term::Ret(None));
    }

    #[test]
    fn merges_linear_chain_with_instrs() {
        let i = |v| Instr::Copy {
            dst: ValueId(v),
            src: Operand::Const(1),
        };
        let mut f = fun(vec![
            block(vec![i(0)], Term::Br(BlockId(1))),
            block(vec![i(1)], Term::Br(BlockId(2))),
            block(vec![i(2)], Term::Ret(None)),
        ]);
        assert!(simplify_cfg(&mut f));
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].instrs.len(), 3);
    }

    #[test]
    fn keeps_loops() {
        let mut f = fun(vec![
            block(vec![], Term::Br(BlockId(1))),
            block(
                vec![Instr::Print {
                    src: Operand::Const(1),
                }],
                Term::CondBr {
                    cond: Operand::Value(ValueId(0)),
                    t: BlockId(1),
                    f: BlockId(2),
                },
            ),
            block(vec![], Term::Ret(None)),
        ]);
        simplify_cfg(&mut f);
        // The loop must survive.
        assert!(f
            .blocks
            .iter()
            .any(|b| matches!(b.term, Term::CondBr { .. })));
    }

    #[test]
    fn equal_targets_collapse() {
        let mut f = fun(vec![
            block(
                vec![],
                Term::CondBr {
                    cond: Operand::Value(ValueId(0)),
                    t: BlockId(1),
                    f: BlockId(1),
                },
            ),
            block(vec![], Term::Ret(None)),
        ]);
        assert!(simplify_cfg(&mut f));
        assert_eq!(f.blocks.len(), 1);
    }

    #[test]
    fn removes_orphans() {
        let mut f = fun(vec![
            block(vec![], Term::Ret(None)),
            block(vec![], Term::Br(BlockId(0))), // unreachable
        ]);
        assert!(simplify_cfg(&mut f));
        assert_eq!(f.blocks.len(), 1);
    }
}
