//! Copy propagation for single-definition values.

use crate::ir::{Function, Operand, Term};

use super::def_counts;

/// Replaces uses of `v` with `s` whenever `v` is defined exactly once as
/// `v = s` and `s` itself is defined exactly once (so its value can never
/// differ between the definition of `v` and any use of `v`).
///
/// Copy chains (`a = b; c = a; use c`) resolve fully in one run via path
/// compression.
///
/// Returns `true` if anything changed.
pub fn copy_propagate(func: &mut Function) -> bool {
    let defs = def_counts(func);
    let n = func.num_values as usize;
    // forward[v] = the value v is a single-def copy of.
    let mut forward: Vec<Option<u32>> = vec![None; n];
    for block in &func.blocks {
        for ins in &block.instrs {
            if let crate::ir::Instr::Copy {
                dst,
                src: Operand::Value(s),
            } = ins
            {
                if defs[dst.0 as usize] == 1 && defs[s.0 as usize] == 1 && dst != s {
                    forward[dst.0 as usize] = Some(s.0);
                }
            }
        }
    }
    // Path-compress chains (bounded: chains cannot be longer than n).
    let resolve = |mut v: u32, forward: &[Option<u32>]| -> u32 {
        let mut steps = 0;
        while let Some(next) = forward[v as usize] {
            v = next;
            steps += 1;
            if steps > forward.len() {
                break; // defensive: cycles are impossible for 1-def values
            }
        }
        v
    };

    let mut changed = false;
    let mut rewrite = |op: &mut Operand| {
        if let Operand::Value(v) = *op {
            let root = resolve(v.0, &forward);
            if root != v.0 {
                *op = Operand::Value(crate::ir::ValueId(root));
                changed = true;
            }
        }
    };
    for block in &mut func.blocks {
        for ins in &mut block.instrs {
            ins.for_each_use_mut(&mut rewrite);
        }
        match &mut block.term {
            Term::Ret(Some(op)) | Term::CondBr { cond: op, .. } => rewrite(op),
            _ => {}
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Block, Instr, Operand, Term, ValueId};

    #[test]
    fn chains_resolve() {
        // v1 = v0; v2 = v1; v3 = v2 + 1; ret v3 — uses of v2 become v0.
        let mut f = Function {
            name: "t".into(),
            params: 1,
            num_values: 4,
            blocks: vec![Block {
                instrs: vec![
                    Instr::Copy {
                        dst: ValueId(1),
                        src: Operand::Value(ValueId(0)),
                    },
                    Instr::Copy {
                        dst: ValueId(2),
                        src: Operand::Value(ValueId(1)),
                    },
                    Instr::Bin {
                        dst: ValueId(3),
                        op: BinOp::Add,
                        lhs: Operand::Value(ValueId(2)),
                        rhs: Operand::Const(1),
                    },
                ],
                term: Term::Ret(Some(Operand::Value(ValueId(3)))),
            }],
            slots: Vec::new(),
        };
        assert!(copy_propagate(&mut f));
        match &f.blocks[0].instrs[2] {
            Instr::Bin {
                lhs: Operand::Value(v),
                ..
            } => assert_eq!(*v, ValueId(0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multidef_source_blocks_propagation() {
        // v0 reassigned: copies of it must not be propagated.
        let mut f = Function {
            name: "t".into(),
            params: 0,
            num_values: 2,
            blocks: vec![Block {
                instrs: vec![
                    Instr::Copy {
                        dst: ValueId(0),
                        src: Operand::Const(1),
                    },
                    Instr::Copy {
                        dst: ValueId(1),
                        src: Operand::Value(ValueId(0)),
                    },
                    Instr::Copy {
                        dst: ValueId(0),
                        src: Operand::Const(2),
                    },
                ],
                term: Term::Ret(Some(Operand::Value(ValueId(1)))),
            }],
            slots: Vec::new(),
        };
        assert!(!copy_propagate(&mut f));
        assert_eq!(
            f.blocks[0].term,
            Term::Ret(Some(Operand::Value(ValueId(1))))
        );
    }
}
