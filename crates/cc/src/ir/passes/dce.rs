//! Liveness-based dead-code elimination.

use crate::ir::{Function, Operand, Term};

/// Removes pure instructions whose results are never observed.
///
/// Liveness is computed with a standard backward dataflow over the CFG
/// (correct in the presence of loops and the non-SSA reassignments this IR
/// allows), then each block is swept backwards deleting pure instructions
/// whose destination is dead at that point.
///
/// Returns `true` if anything was removed.
pub fn eliminate_dead_code(func: &mut Function) -> bool {
    let nb = func.blocks.len();
    let nv = func.num_values as usize;
    if nb == 0 || nv == 0 {
        return false;
    }

    // use/def per block (use = read before any write in this block).
    let mut use_set = vec![bitvec(nv); nb];
    let mut def_set = vec![bitvec(nv); nb];
    for (bi, block) in func.blocks.iter().enumerate() {
        for ins in &block.instrs {
            ins.for_each_use(|op| {
                if let Operand::Value(v) = op {
                    if !def_set[bi][v.0 as usize] {
                        use_set[bi].set(v.0 as usize);
                    }
                }
            });
            if let Some(d) = ins.dst() {
                def_set[bi].set(d.0 as usize);
            }
        }
        match &block.term {
            Term::Ret(Some(Operand::Value(v)))
            | Term::CondBr {
                cond: Operand::Value(v),
                ..
            } if !def_set[bi][v.0 as usize] => {
                use_set[bi].set(v.0 as usize);
            }
            _ => {}
        }
    }

    // Backward dataflow: live_out[b] = ∪ live_in[succ];
    // live_in[b] = use[b] ∪ (live_out[b] ∖ def[b]).
    let succs: Vec<Vec<usize>> = func
        .blocks
        .iter()
        .map(|b| b.term.successors().iter().map(|s| s.0 as usize).collect())
        .collect();
    let mut live_in = vec![bitvec(nv); nb];
    let mut live_out = vec![bitvec(nv); nb];
    loop {
        let mut changed = false;
        for bi in (0..nb).rev() {
            let mut out = bitvec(nv);
            for &s in &succs[bi] {
                out.union_with(&live_in[s]);
            }
            let mut inp = out.clone();
            inp.subtract(&def_set[bi]);
            inp.union_with(&use_set[bi]);
            if out != live_out[bi] || inp != live_in[bi] {
                live_out[bi] = out;
                live_in[bi] = inp;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Sweep each block backwards.
    let mut removed = false;
    for (bi, block) in func.blocks.iter_mut().enumerate() {
        let mut live = live_out[bi].clone();
        match &block.term {
            Term::Ret(Some(Operand::Value(v)))
            | Term::CondBr {
                cond: Operand::Value(v),
                ..
            } => {
                live.set(v.0 as usize);
            }
            _ => {}
        }
        let mut keep = vec![true; block.instrs.len()];
        for (ii, ins) in block.instrs.iter().enumerate().rev() {
            let dead = match ins.dst() {
                Some(d) => !live[d.0 as usize],
                None => false,
            };
            if dead && ins.is_pure() {
                keep[ii] = false;
                removed = true;
                continue;
            }
            if let Some(d) = ins.dst() {
                live.clear_bit(d.0 as usize);
            }
            ins.for_each_use(|op| {
                if let Operand::Value(v) = op {
                    live.set(v.0 as usize);
                }
            });
        }
        let mut it = keep.iter();
        block
            .instrs
            .retain(|_| *it.next().expect("keep mask matches length"));
    }
    removed
}

/// A small dense bit set.
#[derive(Clone, PartialEq, Eq)]
pub(crate) struct BitVec {
    words: Vec<u64>,
}

pub(crate) fn bitvec(bits: usize) -> BitVec {
    BitVec {
        words: vec![0; bits.div_ceil(64)],
    }
}

impl BitVec {
    pub(crate) fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub(crate) fn clear_bit(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    pub(crate) fn union_with(&mut self, other: &BitVec) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    pub(crate) fn subtract(&mut self, other: &BitVec) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }
}

impl std::ops::Index<usize> for BitVec {
    type Output = bool;

    fn index(&self, i: usize) -> &bool {
        if self.words[i / 64] >> (i % 64) & 1 == 1 {
            &true
        } else {
            &false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Block, BlockId, Instr, Operand, Term, ValueId};

    #[test]
    fn removes_dead_pure_chain() {
        let mut f = Function {
            name: "t".into(),
            params: 0,
            num_values: 3,
            blocks: vec![Block {
                instrs: vec![
                    Instr::Copy {
                        dst: ValueId(0),
                        src: Operand::Const(1),
                    },
                    Instr::Bin {
                        dst: ValueId(1),
                        op: BinOp::Add,
                        lhs: Operand::Value(ValueId(0)),
                        rhs: Operand::Const(2),
                    },
                    Instr::Copy {
                        dst: ValueId(2),
                        src: Operand::Const(9),
                    },
                ],
                term: Term::Ret(Some(Operand::Value(ValueId(2)))),
            }],
            slots: Vec::new(),
        };
        assert!(eliminate_dead_code(&mut f));
        assert_eq!(f.blocks[0].instrs.len(), 1);
    }

    #[test]
    fn keeps_impure() {
        let mut f = Function {
            name: "t".into(),
            params: 0,
            num_values: 1,
            blocks: vec![Block {
                instrs: vec![Instr::Print {
                    src: Operand::Const(1),
                }],
                term: Term::Ret(Some(Operand::Const(0))),
            }],
            slots: Vec::new(),
        };
        assert!(!eliminate_dead_code(&mut f));
        assert_eq!(f.blocks[0].instrs.len(), 1);
    }

    #[test]
    fn loop_carried_values_stay_live() {
        // bb0: v0 = 0; br bb1
        // bb1: v0 = v0 + 1; condbr v0 bb1 bb2   (v0 live across backedge)
        // bb2: ret v0
        let mut f = Function {
            name: "t".into(),
            params: 0,
            num_values: 1,
            blocks: vec![
                Block {
                    instrs: vec![Instr::Copy {
                        dst: ValueId(0),
                        src: Operand::Const(0),
                    }],
                    term: Term::Br(BlockId(1)),
                },
                Block {
                    instrs: vec![Instr::Bin {
                        dst: ValueId(0),
                        op: BinOp::Add,
                        lhs: Operand::Value(ValueId(0)),
                        rhs: Operand::Const(1),
                    }],
                    term: Term::CondBr {
                        cond: Operand::Value(ValueId(0)),
                        t: BlockId(1),
                        f: BlockId(2),
                    },
                },
                Block {
                    instrs: vec![],
                    term: Term::Ret(Some(Operand::Value(ValueId(0)))),
                },
            ],
            slots: Vec::new(),
        };
        assert!(!eliminate_dead_code(&mut f));
        assert_eq!(f.blocks[0].instrs.len(), 1);
        assert_eq!(f.blocks[1].instrs.len(), 1);
    }
}
