//! IR optimization passes.
//!
//! The pipeline mirrors the role of LLVM's mid-end in the paper's Figure 3:
//! all IR optimizations run *before* lowering, so the NOP-insertion point
//! (in the low-level representation, just before emission) sees final code.
//!
//! Passes are pure functions `fn(&mut Function) -> bool` returning whether
//! they changed anything; [`optimize`] runs them to a fixpoint.

mod constfold;
mod copyprop;
mod cse;
mod dce;
mod simplifycfg;

pub use constfold::const_fold;
pub use copyprop::copy_propagate;
pub use cse::eliminate_common_subexpressions;
pub use dce::eliminate_dead_code;
pub use simplifycfg::simplify_cfg;

use super::{Function, Module};
use pgsd_telemetry::Telemetry;

/// Maximum number of fixpoint iterations; generous — typical functions
/// settle in 2–3.
const MAX_PIPELINE_ITERS: usize = 16;

/// Runs the full optimization pipeline on one function until nothing
/// changes.
///
/// [`eliminate_common_subexpressions`] is deliberately *not* part of the
/// default pipeline: the evaluation in EXPERIMENTS.md was produced with
/// this exact pass roster, and reproducibility of those numbers wins over
/// the (small) code-quality gain. Call [`optimize_function_aggressive`]
/// to include it.
///
/// Returns the number of iterations performed.
pub fn optimize_function(func: &mut Function) -> usize {
    optimize_function_with(func, &Telemetry::disabled())
}

/// Like [`optimize_function`], with each pass invocation recorded as a
/// telemetry span (and a `ir.pass_changed{pass=…}` counter when it
/// changed anything).
pub fn optimize_function_with(func: &mut Function, tel: &Telemetry) -> usize {
    for iter in 0..MAX_PIPELINE_ITERS {
        let mut changed = false;
        changed |= run_pass(tel, "constfold", func, const_fold);
        changed |= run_pass(tel, "copyprop", func, copy_propagate);
        changed |= run_pass(tel, "dce", func, eliminate_dead_code);
        changed |= run_pass(tel, "simplifycfg", func, simplify_cfg);
        if !changed {
            return iter + 1;
        }
    }
    MAX_PIPELINE_ITERS
}

fn run_pass(
    tel: &Telemetry,
    name: &str,
    func: &mut Function,
    pass: fn(&mut Function) -> bool,
) -> bool {
    let _span = tel.span(name);
    let changed = pass(func);
    if changed {
        tel.add_labeled("ir.pass_changed", &[("pass", name)], 1);
    }
    changed
}

/// Like [`optimize_function`] with local CSE included.
pub fn optimize_function_aggressive(func: &mut Function) -> usize {
    for iter in 0..MAX_PIPELINE_ITERS {
        let mut changed = false;
        changed |= const_fold(func);
        changed |= eliminate_common_subexpressions(func);
        changed |= copy_propagate(func);
        changed |= eliminate_dead_code(func);
        changed |= simplify_cfg(func);
        if !changed {
            return iter + 1;
        }
    }
    MAX_PIPELINE_ITERS
}

/// Runs the optimization pipeline on every function of `module`.
pub fn optimize(module: &mut Module) {
    optimize_with(module, &Telemetry::disabled());
}

/// Like [`optimize`], recording one `optimize:<fn>` span per function and
/// an `ir.fixpoint_iters` histogram observation.
pub fn optimize_with(module: &mut Module, tel: &Telemetry) {
    for f in &mut module.funcs {
        if tel.is_enabled() {
            let _span = tel.span(&format!("optimize:{}", f.name));
            let iters = optimize_function_with(f, tel);
            tel.observe("ir.fixpoint_iters", iters as u64);
        } else {
            optimize_function(f);
        }
    }
    debug_assert!(
        super::verify::verify(module).is_ok(),
        "pass pipeline broke the IR"
    );
}

/// Computes how many times each value is defined (parameters count as one
/// implicit definition each). Used by passes that must restrict themselves
/// to single-definition values — the safe subset in this non-SSA IR.
pub(crate) fn def_counts(func: &Function) -> Vec<u32> {
    let mut counts = vec![0u32; func.num_values as usize];
    for p in 0..func.params {
        counts[p as usize] += 1;
    }
    for b in &func.blocks {
        for i in &b.instrs {
            if let Some(d) = i.dst() {
                counts[d.0 as usize] += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::super::builder::build;
    use super::super::{Instr, Module, Operand, Term};
    use super::*;
    use crate::frontend::{lexer::lex, parser::parse};

    fn optimized(src: &str) -> Module {
        let mut m = build("t", &parse(lex(src).unwrap()).unwrap()).unwrap();
        optimize(&mut m);
        m
    }

    /// End-to-end: constant program folds to a single `ret const`.
    #[test]
    fn whole_pipeline_folds_constants() {
        let m = optimized("int f() { int a = 2; int b = 3; return a * b + 4; }");
        let f = &m.funcs[0];
        assert_eq!(f.blocks.len(), 1);
        assert!(f.blocks[0].instrs.is_empty(), "{f}");
        assert_eq!(f.blocks[0].term, Term::Ret(Some(Operand::Const(10))));
    }

    #[test]
    fn pipeline_removes_constant_branch() {
        let m = optimized("int f() { if (1 < 2) { return 5; } return 6; }");
        let f = &m.funcs[0];
        assert_eq!(f.blocks.len(), 1, "{f}");
        assert_eq!(f.blocks[0].term, Term::Ret(Some(Operand::Const(5))));
    }

    #[test]
    fn pipeline_keeps_side_effects() {
        let m = optimized("int g; int f() { g = 1; int dead = g + 2; return 0; }");
        let f = &m.funcs[0];
        let stores = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::StoreG { .. }))
            .count();
        assert_eq!(stores, 1);
        // The dead load+add must be gone.
        assert_eq!(
            f.blocks.iter().map(|b| b.instrs.len()).sum::<usize>(),
            1,
            "{f}"
        );
    }

    #[test]
    fn loops_survive_optimization() {
        let m =
            optimized("int f(int n) { int s = 0; while (n > 0) { s += n; n -= 1; } return s; }");
        let f = &m.funcs[0];
        assert!(
            f.blocks
                .iter()
                .any(|b| matches!(b.term, Term::CondBr { .. })),
            "{f}"
        );
    }

    #[test]
    fn def_counts_include_params() {
        let m = build(
            "t",
            &parse(lex("int f(int a) { a = a + 1; return a; }").unwrap()).unwrap(),
        )
        .unwrap();
        let counts = def_counts(&m.funcs[0]);
        assert_eq!(counts[0], 2); // param + reassignment
    }
}
