//! Local (per-block) common-subexpression elimination.
//!
//! Within a basic block, a pure computation whose operands are unchanged
//! since an earlier identical computation is replaced by a copy of the
//! earlier result. Because the IR is not SSA, availability is tracked
//! conservatively: redefining any value invalidates every expression that
//! reads it (and the expression cached *in* it), and any memory write,
//! call or other side effect invalidates all cached loads.

use std::collections::HashMap;

use crate::ir::{Function, Instr, Operand, ValueId};

/// A hashable key identifying a pure computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ExprKey {
    Bin(crate::ir::BinOp, Operand, Operand),
    Cmp(crate::ir::CmpOp, Operand, Operand),
    Un(crate::ir::UnOp, Operand),
    LoadG(u32, Option<Operand>),
    LoadA(u32, Operand),
}

impl ExprKey {
    fn of(instr: &Instr) -> Option<ExprKey> {
        Some(match instr {
            Instr::Bin { op, lhs, rhs, .. } => ExprKey::Bin(*op, *lhs, *rhs),
            Instr::Cmp { op, lhs, rhs, .. } => ExprKey::Cmp(*op, *lhs, *rhs),
            Instr::Un { op, src, .. } => ExprKey::Un(*op, *src),
            Instr::LoadG { global, index, .. } => ExprKey::LoadG(global.0, *index),
            Instr::LoadA { slot, index, .. } => ExprKey::LoadA(slot.0, *index),
            _ => return None,
        })
    }

    fn is_load(&self) -> bool {
        matches!(self, ExprKey::LoadG(..) | ExprKey::LoadA(..))
    }

    fn uses_value(&self, v: ValueId) -> bool {
        let op_uses = |o: &Operand| matches!(o, Operand::Value(x) if *x == v);
        match self {
            ExprKey::Bin(_, l, r) | ExprKey::Cmp(_, l, r) => op_uses(l) || op_uses(r),
            ExprKey::Un(_, s) => op_uses(s),
            ExprKey::LoadG(_, i) => i.as_ref().is_some_and(op_uses),
            ExprKey::LoadA(_, i) => op_uses(i),
        }
    }
}

/// Runs local CSE on every block of `func`.
///
/// Returns `true` if anything changed. Downstream copy propagation and
/// dead-code elimination clean up the copies this pass introduces.
pub fn eliminate_common_subexpressions(func: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut func.blocks {
        // expr → value holding its result.
        let mut available: HashMap<ExprKey, ValueId> = HashMap::new();
        for instr in &mut block.instrs {
            // Side effects invalidate cached loads first (a store may
            // alias any global or slot — MiniC has no alias analysis).
            let clobbers_memory = matches!(
                instr,
                Instr::StoreG { .. }
                    | Instr::StoreA { .. }
                    | Instr::Call { .. }
                    | Instr::Print { .. }
            );
            if clobbers_memory {
                available.retain(|k, _| !k.is_load());
            }

            let key = ExprKey::of(instr);
            let dst = instr.dst();
            if let (Some(key), Some(dst)) = (key, dst) {
                if let Some(&prev) = available.get(&key) {
                    if prev != dst {
                        *instr = Instr::Copy {
                            dst,
                            src: Operand::Value(prev),
                        };
                        changed = true;
                    }
                }
            }

            // A (re)definition invalidates expressions reading or cached
            // in the defined value, then the fresh expression becomes
            // available.
            if let Some(d) = instr.dst() {
                available.retain(|k, v| *v != d && !k.uses_value(d));
            }
            if let (Some(key), Some(d)) = (ExprKey::of(instr), instr.dst()) {
                available.entry(key).or_insert(d);
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Block, GlobalId, Instr, Operand, Term, ValueId};

    fn fun(instrs: Vec<Instr>, num_values: u32) -> Function {
        Function {
            name: "t".into(),
            params: 2,
            num_values,
            blocks: vec![Block {
                instrs,
                term: Term::Ret(Some(Operand::Const(0))),
            }],
            slots: Vec::new(),
        }
    }

    fn bin(dst: u32, lhs: u32, rhs: u32) -> Instr {
        Instr::Bin {
            dst: ValueId(dst),
            op: BinOp::Add,
            lhs: Operand::Value(ValueId(lhs)),
            rhs: Operand::Value(ValueId(rhs)),
        }
    }

    #[test]
    fn duplicate_computation_becomes_copy() {
        let mut f = fun(vec![bin(2, 0, 1), bin(3, 0, 1)], 4);
        assert!(eliminate_common_subexpressions(&mut f));
        assert_eq!(
            f.blocks[0].instrs[1],
            Instr::Copy {
                dst: ValueId(3),
                src: Operand::Value(ValueId(2))
            }
        );
    }

    #[test]
    fn redefinition_of_operand_invalidates() {
        // v2 = v0+v1; v0 = v0+v0 (redefines v0); v3 = v0+v1 must stay.
        let mut f = fun(vec![bin(2, 0, 1), bin(0, 0, 0), bin(3, 0, 1)], 4);
        eliminate_common_subexpressions(&mut f);
        assert!(matches!(f.blocks[0].instrs[2], Instr::Bin { .. }));
    }

    #[test]
    fn redefinition_of_result_invalidates() {
        // v2 = v0+v1; v2 = v0+v0; v3 = v0+v1 must NOT copy from v2.
        let mut f = fun(
            vec![
                bin(2, 0, 1),
                Instr::Bin {
                    dst: ValueId(2),
                    op: BinOp::Mul,
                    lhs: Operand::Value(ValueId(0)),
                    rhs: Operand::Value(ValueId(0)),
                },
                bin(3, 0, 1),
            ],
            4,
        );
        eliminate_common_subexpressions(&mut f);
        assert!(matches!(f.blocks[0].instrs[2], Instr::Bin { .. }));
    }

    #[test]
    fn stores_invalidate_loads_but_not_arithmetic() {
        let g = GlobalId(0);
        let mut f = fun(
            vec![
                Instr::LoadG {
                    dst: ValueId(2),
                    global: g,
                    index: None,
                },
                Instr::StoreG {
                    global: g,
                    index: None,
                    src: Operand::Const(9),
                },
                Instr::LoadG {
                    dst: ValueId(3),
                    global: g,
                    index: None,
                },
                bin(4, 0, 1),
                bin(5, 0, 1),
            ],
            6,
        );
        assert!(eliminate_common_subexpressions(&mut f));
        // Reload after the store must remain a real load.
        assert!(matches!(f.blocks[0].instrs[2], Instr::LoadG { .. }));
        // The arithmetic duplicate is still eliminated.
        assert!(matches!(f.blocks[0].instrs[4], Instr::Copy { .. }));
    }

    #[test]
    fn repeated_loads_without_stores_are_merged() {
        let g = GlobalId(0);
        let mut f = fun(
            vec![
                Instr::LoadG {
                    dst: ValueId(2),
                    global: g,
                    index: None,
                },
                Instr::LoadG {
                    dst: ValueId(3),
                    global: g,
                    index: None,
                },
            ],
            4,
        );
        assert!(eliminate_common_subexpressions(&mut f));
        assert_eq!(
            f.blocks[0].instrs[1],
            Instr::Copy {
                dst: ValueId(3),
                src: Operand::Value(ValueId(2))
            }
        );
    }

    #[test]
    fn end_to_end_through_the_aggressive_pipeline() {
        use crate::frontend::{lexer::lex, parser::parse};
        use crate::ir::builder::build;
        use crate::ir::passes::optimize_function_aggressive;
        // `(a*b)` computed twice in one expression — after CSE + DCE, one
        // multiplication remains.
        let mut m = build(
            "t",
            &parse(lex("int f(int a, int b) { return (a * b) + (a * b); }").unwrap()).unwrap(),
        )
        .unwrap();
        optimize_function_aggressive(&mut m.funcs[0]);
        crate::ir::verify::verify(&m).unwrap();
        let muls = m.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Bin { op: BinOp::Mul, .. }))
            .count();
        assert_eq!(muls, 1, "{}", m.funcs[0]);
    }

    #[test]
    fn aggressive_pipeline_preserves_semantics_end_to_end() {
        use crate::driver::{emit_image, frontend, lower_module};
        // Compile the same program with and without CSE; both must
        // compute the same result.
        let src = "int a[8];
            int f(int i, int j) {
                a[i + j * 2] = (i * j) + (i * j);
                return a[i + j * 2] + (i * j);
            }
            int main(int x, int y) { return f(x & 3, y & 1); }";
        let run = |module: &crate::ir::Module| {
            let funcs = lower_module(module).unwrap();
            let image = emit_image(&funcs, module).unwrap();
            let mut emu = pgsd_emu_shim(&image);
            emu.call_entry(image.main_addr, image.exit_addr, &[5, 3]);
            emu.run(100_000).status().unwrap()
        };
        let default = frontend("t", src).unwrap();
        let mut aggressive = default.clone();
        for f in &mut aggressive.funcs {
            optimize_function_aggressive(f);
        }
        crate::ir::verify::verify(&aggressive).unwrap();
        assert_eq!(run(&default), run(&aggressive));
    }

    use crate::ir::passes::optimize_function_aggressive;

    fn pgsd_emu_shim(image: &crate::emit::Image) -> pgsd_emu::Emulator {
        pgsd_emu::Emulator::new(
            image.base,
            image.text.clone(),
            image.data_base,
            image.data.clone(),
            crate::emit::STACK_TOP,
        )
    }
}
