//! Constant folding and algebraic simplification.

use crate::ir::{Function, Instr, Operand, Term};

use super::def_counts;

/// Folds constant expressions and applies algebraic identities.
///
/// Because the IR is not SSA, only *single-definition* values participate
/// in propagation; multi-definition values (reassigned locals) are left to
/// the CFG-aware passes.
///
/// Returns `true` if anything changed.
pub fn const_fold(func: &mut Function) -> bool {
    let defs = def_counts(func);
    let mut known: Vec<Option<i32>> = vec![None; func.num_values as usize];
    let mut changed = false;

    // Iterate locally until the known-constants map stabilizes. Each round
    // can reveal new constants (a fold turns `Bin` into `Copy const`).
    for _ in 0..8 {
        let mut grew = false;
        for block in &mut func.blocks {
            for ins in &mut block.instrs {
                // First rewrite operands we already know to be constant.
                ins.for_each_use_mut(|op| {
                    if let Operand::Value(v) = *op {
                        if let Some(c) = known[v.0 as usize] {
                            *op = Operand::Const(c);
                            changed = true;
                        }
                    }
                });
                // Then try to fold the instruction itself.
                if let Some(new) = fold_instr(ins) {
                    *ins = new;
                    changed = true;
                }
                // Record newly discovered constants.
                if let Instr::Copy {
                    dst,
                    src: Operand::Const(c),
                } = *ins
                {
                    if defs[dst.0 as usize] == 1 && known[dst.0 as usize].is_none() {
                        known[dst.0 as usize] = Some(c);
                        grew = true;
                    }
                }
            }
            // Operands in terminators.
            match &mut block.term {
                Term::Ret(Some(op)) | Term::CondBr { cond: op, .. } => {
                    if let Operand::Value(v) = *op {
                        if let Some(c) = known[v.0 as usize] {
                            *op = Operand::Const(c);
                            changed = true;
                        }
                    }
                }
                _ => {}
            }
        }
        if !grew {
            break;
        }
    }
    changed
}

/// Attempts to simplify one instruction into a cheaper equivalent.
fn fold_instr(ins: &Instr) -> Option<Instr> {
    use crate::ir::BinOp::*;
    match ins {
        Instr::Bin { dst, op, lhs, rhs } => {
            let dst = *dst;
            match (lhs.constant(), rhs.constant()) {
                (Some(a), Some(b)) => {
                    let v = op.eval(a, b)?;
                    Some(Instr::Copy {
                        dst,
                        src: Operand::Const(v),
                    })
                }
                (None, Some(b)) => match (op, b) {
                    (Add | Sub | Or | Xor | Shl | Shr, 0) => Some(Instr::Copy { dst, src: *lhs }),
                    (Mul | Div, 1) => Some(Instr::Copy { dst, src: *lhs }),
                    (Mul | And, 0) => Some(Instr::Copy {
                        dst,
                        src: Operand::Const(0),
                    }),
                    (And, -1) => Some(Instr::Copy { dst, src: *lhs }),
                    _ => None,
                },
                (Some(a), None) => match (op, a) {
                    (Add | Or | Xor, 0) => Some(Instr::Copy { dst, src: *rhs }),
                    (Mul, 1) => Some(Instr::Copy { dst, src: *rhs }),
                    (Mul | And, 0) => Some(Instr::Copy {
                        dst,
                        src: Operand::Const(0),
                    }),
                    // Normalize constant-first commutative forms so the
                    // backend sees `x op c`.
                    _ if op.commutes() => Some(Instr::Bin {
                        dst,
                        op: *op,
                        lhs: *rhs,
                        rhs: Operand::Const(a),
                    }),
                    _ => None,
                },
                (None, None) => None,
            }
        }
        Instr::Un { dst, op, src } => {
            let c = src.constant()?;
            Some(Instr::Copy {
                dst: *dst,
                src: Operand::Const(op.eval(c)),
            })
        }
        Instr::Cmp { dst, op, lhs, rhs } => {
            let (a, b) = (lhs.constant()?, rhs.constant()?);
            Some(Instr::Copy {
                dst: *dst,
                src: Operand::Const(op.eval(a, b) as i32),
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Block, CmpOp, Function, Term, UnOp, ValueId};

    fn fun(instrs: Vec<Instr>, term: Term, num_values: u32) -> Function {
        Function {
            name: "t".into(),
            params: 0,
            num_values,
            blocks: vec![Block { instrs, term }],
            slots: Vec::new(),
        }
    }

    #[test]
    fn folds_chain() {
        // v0 = 2; v1 = v0 * 3; v2 = v1 + 4; ret v2  →  ret 10 (after uses
        // rewritten; DCE removes the rest).
        let mut f = fun(
            vec![
                Instr::Copy {
                    dst: ValueId(0),
                    src: Operand::Const(2),
                },
                Instr::Bin {
                    dst: ValueId(1),
                    op: BinOp::Mul,
                    lhs: Operand::Value(ValueId(0)),
                    rhs: Operand::Const(3),
                },
                Instr::Bin {
                    dst: ValueId(2),
                    op: BinOp::Add,
                    lhs: Operand::Value(ValueId(1)),
                    rhs: Operand::Const(4),
                },
            ],
            Term::Ret(Some(Operand::Value(ValueId(2)))),
            3,
        );
        assert!(const_fold(&mut f));
        assert_eq!(f.blocks[0].term, Term::Ret(Some(Operand::Const(10))));
    }

    #[test]
    fn identities() {
        let mut f = fun(
            vec![Instr::Bin {
                dst: ValueId(1),
                op: BinOp::Add,
                lhs: Operand::Value(ValueId(0)),
                rhs: Operand::Const(0),
            }],
            Term::Ret(Some(Operand::Value(ValueId(1)))),
            2,
        );
        assert!(const_fold(&mut f));
        assert_eq!(
            f.blocks[0].instrs[0],
            Instr::Copy {
                dst: ValueId(1),
                src: Operand::Value(ValueId(0))
            }
        );
    }

    #[test]
    fn commutative_normalization() {
        // 5 + x  →  x + 5
        let mut f = fun(
            vec![Instr::Bin {
                dst: ValueId(1),
                op: BinOp::Add,
                lhs: Operand::Const(5),
                rhs: Operand::Value(ValueId(0)),
            }],
            Term::Ret(Some(Operand::Value(ValueId(1)))),
            2,
        );
        assert!(const_fold(&mut f));
        match &f.blocks[0].instrs[0] {
            Instr::Bin {
                lhs: Operand::Value(_),
                rhs: Operand::Const(5),
                ..
            } => {}
            other => panic!("not normalized: {other:?}"),
        }
    }

    #[test]
    fn division_by_zero_not_folded() {
        let mut f = fun(
            vec![Instr::Bin {
                dst: ValueId(0),
                op: BinOp::Div,
                lhs: Operand::Const(1),
                rhs: Operand::Const(0),
            }],
            Term::Ret(Some(Operand::Value(ValueId(0)))),
            1,
        );
        const_fold(&mut f);
        assert!(matches!(f.blocks[0].instrs[0], Instr::Bin { .. }));
    }

    #[test]
    fn multidef_values_not_propagated() {
        // v0 defined twice: must not be treated as constant.
        let mut f = fun(
            vec![
                Instr::Copy {
                    dst: ValueId(0),
                    src: Operand::Const(1),
                },
                Instr::Copy {
                    dst: ValueId(0),
                    src: Operand::Const(2),
                },
            ],
            Term::Ret(Some(Operand::Value(ValueId(0)))),
            1,
        );
        const_fold(&mut f);
        assert_eq!(
            f.blocks[0].term,
            Term::Ret(Some(Operand::Value(ValueId(0))))
        );
    }

    #[test]
    fn folds_unary_and_cmp() {
        let mut f = fun(
            vec![
                Instr::Un {
                    dst: ValueId(0),
                    op: UnOp::Neg,
                    src: Operand::Const(7),
                },
                Instr::Cmp {
                    dst: ValueId(1),
                    op: CmpOp::Lt,
                    lhs: Operand::Const(1),
                    rhs: Operand::Const(2),
                },
            ],
            Term::Ret(Some(Operand::Value(ValueId(1)))),
            2,
        );
        assert!(const_fold(&mut f));
        assert_eq!(
            f.blocks[0].instrs[0],
            Instr::Copy {
                dst: ValueId(0),
                src: Operand::Const(-7)
            }
        );
        assert_eq!(f.blocks[0].term, Term::Ret(Some(Operand::Const(1))));
    }
}
