//! Mid-level intermediate representation (IR).
//!
//! A [`Module`] holds globals and functions; a [`Function`] is a
//! control-flow graph of [`Block`]s containing three-address [`Instr`]s over
//! an unbounded set of virtual values ([`ValueId`]). The IR is *not* SSA —
//! named MiniC locals map to fixed values that are re-assigned — which keeps
//! the builder and register allocation simple while still supporting the
//! optimizations the pipeline needs (LLVM 3.1's backend, which the paper
//! builds on, similarly operates on non-SSA machine IR at the NOP-insertion
//! point).

pub mod builder;
pub mod passes;
pub mod verify;

use std::fmt;

/// Identifies a virtual value within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

/// Identifies a basic block within a function. Block 0 is the entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// Identifies a function within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Identifies a global variable within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub u32);

/// Identifies a stack slot (local array) within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// An instruction operand: a virtual value or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A virtual value.
    Value(ValueId),
    /// An immediate 32-bit constant.
    Const(i32),
}

impl Operand {
    /// The value id, if this operand is a value.
    pub fn value(self) -> Option<ValueId> {
        match self {
            Operand::Value(v) => Some(v),
            Operand::Const(_) => None,
        }
    }

    /// The constant, if this operand is an immediate.
    pub fn constant(self) -> Option<i32> {
        match self {
            Operand::Value(_) => None,
            Operand::Const(c) => Some(c),
        }
    }
}

impl From<ValueId> for Operand {
    fn from(v: ValueId) -> Operand {
        Operand::Value(v)
    }
}

impl From<i32> for Operand {
    fn from(c: i32) -> Operand {
        Operand::Const(c)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Value(v) => v.fmt(f),
            Operand::Const(c) => c.fmt(f),
        }
    }
}

/// Arithmetic and bitwise binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division (C semantics: truncation toward zero).
    Div,
    /// Signed remainder.
    Rem,
    And,
    Or,
    Xor,
    Shl,
    /// Arithmetic (sign-preserving) right shift.
    Shr,
}

impl BinOp {
    /// Constant-folds `lhs op rhs` with 32-bit wrapping semantics.
    ///
    /// Returns `None` for division or remainder by zero (left to trap at
    /// run time) and for shift counts outside `0..32`.
    pub fn eval(self, lhs: i32, rhs: i32) -> Option<i32> {
        Some(match self {
            BinOp::Add => lhs.wrapping_add(rhs),
            BinOp::Sub => lhs.wrapping_sub(rhs),
            BinOp::Mul => lhs.wrapping_mul(rhs),
            BinOp::Div => {
                if rhs == 0 || (lhs == i32::MIN && rhs == -1) {
                    return None;
                }
                lhs.wrapping_div(rhs)
            }
            BinOp::Rem => {
                if rhs == 0 || (lhs == i32::MIN && rhs == -1) {
                    return None;
                }
                lhs.wrapping_rem(rhs)
            }
            BinOp::And => lhs & rhs,
            BinOp::Or => lhs | rhs,
            BinOp::Xor => lhs ^ rhs,
            BinOp::Shl => {
                if !(0..32).contains(&rhs) {
                    return None;
                }
                lhs.wrapping_shl(rhs as u32)
            }
            BinOp::Shr => {
                if !(0..32).contains(&rhs) {
                    return None;
                }
                lhs.wrapping_shr(rhs as u32)
            }
        })
    }

    /// `true` if `a op b == b op a`.
    pub fn commutes(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }

    /// The lowercase mnemonic used by the IR printer.
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    BitNot,
}

impl UnOp {
    /// Constant-folds `op src` with wrapping semantics.
    pub fn eval(self, src: i32) -> i32 {
        match self {
            UnOp::Neg => src.wrapping_neg(),
            UnOp::BitNot => !src,
        }
    }

    /// The lowercase mnemonic used by the IR printer.
    pub fn name(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::BitNot => "not",
        }
    }
}

/// Signed integer comparisons producing 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Constant-folds the comparison.
    pub fn eval(self, lhs: i32, rhs: i32) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// The logically negated comparison.
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The comparison after swapping operands.
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The lowercase mnemonic used by the IR printer.
    pub fn name(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }
}

/// A three-address IR instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst = src`
    Copy { dst: ValueId, src: Operand },
    /// `dst = lhs op rhs`
    Bin {
        dst: ValueId,
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = op src`
    Un {
        dst: ValueId,
        op: UnOp,
        src: Operand,
    },
    /// `dst = (lhs op rhs) ? 1 : 0`
    Cmp {
        dst: ValueId,
        op: CmpOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = global` or `dst = global[index]`
    LoadG {
        dst: ValueId,
        global: GlobalId,
        index: Option<Operand>,
    },
    /// `global = src` or `global[index] = src`
    StoreG {
        global: GlobalId,
        index: Option<Operand>,
        src: Operand,
    },
    /// `dst = slot[index]` — local array read.
    LoadA {
        dst: ValueId,
        slot: SlotId,
        index: Operand,
    },
    /// `slot[index] = src` — local array write.
    StoreA {
        slot: SlotId,
        index: Operand,
        src: Operand,
    },
    /// `dst = call func(args…)`
    Call {
        dst: ValueId,
        func: FuncId,
        args: Vec<Operand>,
    },
    /// `print src` — lowered to a runtime call.
    Print { src: Operand },
    /// Increment edge-profiling counter `id` (inserted by instrumentation).
    ProfCtr { id: u32 },
}

impl Instr {
    /// The value this instruction defines, if any.
    pub fn dst(&self) -> Option<ValueId> {
        match self {
            Instr::Copy { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Cmp { dst, .. }
            | Instr::LoadG { dst, .. }
            | Instr::LoadA { dst, .. }
            | Instr::Call { dst, .. } => Some(*dst),
            Instr::StoreG { .. }
            | Instr::StoreA { .. }
            | Instr::Print { .. }
            | Instr::ProfCtr { .. } => None,
        }
    }

    /// `true` if removing this instruction (when its result is unused)
    /// cannot change observable behaviour.
    ///
    /// Division is treated as pure: MiniC leaves division-by-zero to trap
    /// at run time, but a *dead* division cannot affect a well-defined
    /// program's output.
    pub fn is_pure(&self) -> bool {
        matches!(
            self,
            Instr::Copy { .. }
                | Instr::Bin { .. }
                | Instr::Un { .. }
                | Instr::Cmp { .. }
                | Instr::LoadG { .. }
                | Instr::LoadA { .. }
        )
    }

    /// Invokes `f` for each operand read by this instruction.
    pub fn for_each_use(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Instr::Copy { src, .. } => f(src),
            Instr::Bin { lhs, rhs, .. } | Instr::Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Instr::Un { src, .. } => f(src),
            Instr::LoadG { index, .. } => {
                if let Some(i) = index {
                    f(i);
                }
            }
            Instr::StoreG { index, src, .. } => {
                if let Some(i) = index {
                    f(i);
                }
                f(src);
            }
            Instr::LoadA { index, .. } => f(index),
            Instr::StoreA { index, src, .. } => {
                f(index);
                f(src);
            }
            Instr::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Instr::Print { src } => f(src),
            Instr::ProfCtr { .. } => {}
        }
    }

    /// Invokes `f` for each operand read by this instruction, mutably
    /// (used by copy/constant propagation to rewrite uses in place).
    pub fn for_each_use_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Instr::Copy { src, .. } => f(src),
            Instr::Bin { lhs, rhs, .. } | Instr::Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Instr::Un { src, .. } => f(src),
            Instr::LoadG { index, .. } => {
                if let Some(i) = index {
                    f(i);
                }
            }
            Instr::StoreG { index, src, .. } => {
                if let Some(i) = index {
                    f(i);
                }
                f(src);
            }
            Instr::LoadA { index, .. } => f(index),
            Instr::StoreA { index, src, .. } => {
                f(index);
                f(src);
            }
            Instr::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Instr::Print { src } => f(src),
            Instr::ProfCtr { .. } => {}
        }
    }
}

/// A basic-block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// Return from the function.
    Ret(Option<Operand>),
    /// Unconditional branch.
    Br(BlockId),
    /// Two-way conditional branch: to `t` if `cond != 0`, else to `f`.
    CondBr {
        cond: Operand,
        t: BlockId,
        f: BlockId,
    },
}

impl Term {
    /// The successor blocks of this terminator (0, 1 or 2).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Ret(_) => Vec::new(),
            Term::Br(b) => vec![*b],
            Term::CondBr { t, f, .. } => vec![*t, *f],
        }
    }

    /// Rewrites every successor equal to `from` into `to`.
    pub fn replace_successor(&mut self, from: BlockId, to: BlockId) {
        match self {
            Term::Ret(_) => {}
            Term::Br(b) => {
                if *b == from {
                    *b = to;
                }
            }
            Term::CondBr { t, f, .. } => {
                if *t == from {
                    *t = to;
                }
                if *f == from {
                    *f = to;
                }
            }
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The block body in execution order.
    pub instrs: Vec<Instr>,
    /// The terminator.
    pub term: Term,
}

/// A function: a CFG over blocks, with `params` leading values
/// (`v0..v{params}`) bound to the arguments on entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name (unique within the module).
    pub name: String,
    /// Number of parameters; parameter `i` is value `v{i}`.
    pub params: u32,
    /// Number of virtual values allocated.
    pub num_values: u32,
    /// Basic blocks; index = `BlockId.0`; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Local array slots, in words (4 bytes each).
    pub slots: Vec<u32>,
}

impl Function {
    /// Allocates a fresh virtual value.
    pub fn new_value(&mut self) -> ValueId {
        let v = ValueId(self.num_values);
        self.num_values += 1;
        v
    }

    /// Appends a new block (with a placeholder `ret` terminator) and
    /// returns its id.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            instrs: Vec::new(),
            term: Term::Ret(None),
        });
        id
    }

    /// The block with id `id`.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutable access to the block with id `id`.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// All `(from, to)` control-flow edges, in block order.
    pub fn edges(&self) -> Vec<(BlockId, BlockId)> {
        let mut out = Vec::new();
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                out.push((BlockId(i as u32), s));
            }
        }
        out
    }

    /// Predecessor lists indexed by block id.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (from, to) in self.edges() {
            preds[to.0 as usize].push(from);
        }
        preds
    }

    /// Splits the control-flow edge `from → to` by inserting a fresh empty
    /// block between the two, and returns the new block's id.
    ///
    /// Used by edge-profiling instrumentation to give every instrumented
    /// edge its own counter site.
    ///
    /// # Panics
    ///
    /// Panics if there is no `from → to` edge.
    pub fn split_edge(&mut self, from: BlockId, to: BlockId) -> BlockId {
        assert!(
            self.block(from).term.successors().contains(&to),
            "no edge {from} -> {to}"
        );
        let mid = self.new_block();
        self.block_mut(mid).term = Term::Br(to);
        self.block_mut(from).term.replace_successor(to, mid);
        mid
    }

    /// Blocks reachable from the entry, as a boolean vector.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut stack = vec![BlockId(0)];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for s in self.block(b).term.successors() {
                if !seen[s.0 as usize] {
                    seen[s.0 as usize] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }
}

/// A global variable (scalar = 1 word, array = `words` words).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Name (unique within the module).
    pub name: String,
    /// Size in 32-bit words.
    pub words: u32,
    /// Initial words; shorter than `words` means the rest is zero.
    pub init: Vec<i32>,
}

/// A whole translation unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Module {
    /// Module (program) name.
    pub name: String,
    /// Global variables.
    pub globals: Vec<Global>,
    /// Functions; index = `FuncId.0`.
    pub funcs: Vec<Function>,
    /// Number of profiling counters referenced by `ProfCtr` instructions.
    pub num_counters: u32,
}

impl Module {
    /// Finds a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in &self.globals {
            writeln!(f, "global {} [{} words]", g.name, g.words)?;
        }
        for func in &self.funcs {
            func.fmt(f)?;
        }
        Ok(())
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "func {}({} params) {{", self.name, self.params)?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "{}:", BlockId(i as u32))?;
            for ins in &b.instrs {
                writeln!(f, "  {ins:?}")?;
            }
            writeln!(f, "  {:?}", b.term)?;
        }
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_block_fn() -> Function {
        let mut f = Function {
            name: "t".into(),
            params: 0,
            num_values: 0,
            blocks: Vec::new(),
            slots: Vec::new(),
        };
        let b0 = f.new_block();
        let b1 = f.new_block();
        let v = f.new_value();
        f.block_mut(b0).instrs.push(Instr::Copy {
            dst: v,
            src: Operand::Const(1),
        });
        f.block_mut(b0).term = Term::CondBr {
            cond: v.into(),
            t: b1,
            f: b0,
        };
        f.block_mut(b1).term = Term::Ret(Some(v.into()));
        f
    }

    #[test]
    fn edges_and_preds() {
        let f = two_block_fn();
        assert_eq!(
            f.edges(),
            vec![(BlockId(0), BlockId(1)), (BlockId(0), BlockId(0))]
        );
        let preds = f.predecessors();
        assert_eq!(preds[0], vec![BlockId(0)]);
        assert_eq!(preds[1], vec![BlockId(0)]);
    }

    #[test]
    fn split_edge_preserves_paths() {
        let mut f = two_block_fn();
        let mid = f.split_edge(BlockId(0), BlockId(1));
        assert_eq!(f.block(mid).term, Term::Br(BlockId(1)));
        let succs = f.block(BlockId(0)).term.successors();
        assert!(succs.contains(&mid));
        assert!(!succs.contains(&BlockId(1)));
    }

    #[test]
    #[should_panic(expected = "no edge")]
    fn split_missing_edge_panics() {
        let mut f = two_block_fn();
        f.split_edge(BlockId(1), BlockId(0));
    }

    #[test]
    fn binop_eval_edge_cases() {
        assert_eq!(BinOp::Div.eval(7, 2), Some(3));
        assert_eq!(BinOp::Div.eval(-7, 2), Some(-3)); // trunc toward zero
        assert_eq!(BinOp::Div.eval(1, 0), None);
        assert_eq!(BinOp::Div.eval(i32::MIN, -1), None);
        assert_eq!(BinOp::Rem.eval(-7, 2), Some(-1));
        assert_eq!(BinOp::Shl.eval(1, 33), None);
        assert_eq!(BinOp::Shr.eval(-8, 1), Some(-4)); // arithmetic
        assert_eq!(BinOp::Add.eval(i32::MAX, 1), Some(i32::MIN)); // wrap
    }

    #[test]
    fn cmp_negate_and_swap() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for (a, b) in [(1, 2), (2, 1), (3, 3)] {
                assert_eq!(op.eval(a, b), !op.negated().eval(a, b));
                assert_eq!(op.eval(a, b), op.swapped().eval(b, a));
            }
        }
    }

    #[test]
    fn reachable_ignores_orphans() {
        let mut f = two_block_fn();
        let orphan = f.new_block();
        let r = f.reachable();
        assert!(r[0] && r[1]);
        assert!(!r[orphan.0 as usize]);
    }
}
