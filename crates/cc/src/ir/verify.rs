//! IR well-formedness verifier.
//!
//! Run after construction and between passes in debug/test builds to catch
//! pass bugs early — the same role `llvm::verifyModule` plays in the
//! pipeline the paper builds on.

use crate::error::{CompileError, Result};

use super::{Instr, Module, Operand, Term};

/// Checks structural invariants of `module`.
///
/// Verified properties:
/// * every block terminator targets an existing block;
/// * every operand references an allocated value;
/// * every global/slot/function reference is in range;
/// * call arities match the callee's parameter count;
/// * profiling counter ids are below `module.num_counters`.
///
/// # Errors
///
/// Returns a [`CompileError`] describing the first violation found.
pub fn verify(module: &Module) -> Result<()> {
    for func in &module.funcs {
        let nblocks = func.blocks.len() as u32;
        if nblocks == 0 {
            return Err(err(func, "has no blocks"));
        }
        if func.params > func.num_values {
            return Err(err(func, "params exceed allocated values"));
        }
        for (bi, block) in func.blocks.iter().enumerate() {
            let check_op = |op: &Operand| -> Result<()> {
                if let Operand::Value(v) = op {
                    if v.0 >= func.num_values {
                        return Err(err(func, format!("bb{bi} references unallocated {v}")));
                    }
                }
                Ok(())
            };
            for ins in &block.instrs {
                let mut bad = None;
                ins.for_each_use(|op| {
                    if bad.is_none() {
                        if let Err(e) = check_op(op) {
                            bad = Some(e);
                        }
                    }
                });
                if let Some(e) = bad {
                    return Err(e);
                }
                if let Some(d) = ins.dst() {
                    if d.0 >= func.num_values {
                        return Err(err(func, format!("bb{bi} defines unallocated {d}")));
                    }
                }
                match ins {
                    Instr::LoadG { global, .. } | Instr::StoreG { global, .. }
                        if global.0 as usize >= module.globals.len() =>
                    {
                        return Err(err(func, format!("bb{bi} references bad global")));
                    }
                    Instr::LoadA { slot, .. } | Instr::StoreA { slot, .. }
                        if slot.0 as usize >= func.slots.len() =>
                    {
                        return Err(err(func, format!("bb{bi} references bad slot")));
                    }
                    Instr::Call {
                        func: callee, args, ..
                    } => {
                        let Some(target) = module.funcs.get(callee.0 as usize) else {
                            return Err(err(func, format!("bb{bi} calls unknown function")));
                        };
                        if target.params as usize != args.len() {
                            return Err(err(
                                func,
                                format!(
                                    "bb{bi} calls `{}` with {} args (expects {})",
                                    target.name,
                                    args.len(),
                                    target.params
                                ),
                            ));
                        }
                    }
                    Instr::ProfCtr { id } if *id >= module.num_counters => {
                        return Err(err(func, format!("bb{bi} uses unallocated counter")));
                    }
                    _ => {}
                }
            }
            match &block.term {
                Term::Ret(op) => {
                    if let Some(op) = op {
                        check_op(op)?;
                    }
                }
                Term::Br(t) => {
                    if t.0 >= nblocks {
                        return Err(err(func, format!("bb{bi} branches to missing block")));
                    }
                }
                Term::CondBr { cond, t, f } => {
                    check_op(cond)?;
                    if t.0 >= nblocks || f.0 >= nblocks {
                        return Err(err(func, format!("bb{bi} branches to missing block")));
                    }
                }
            }
        }
    }
    Ok(())
}

fn err(func: &super::Function, msg: impl std::fmt::Display) -> CompileError {
    CompileError::new(format!(
        "ir verification failed: function `{}` {msg}",
        func.name
    ))
}

#[cfg(test)]
mod tests {
    use super::super::{
        BinOp, Block, BlockId, FuncId, Function, Instr, Module, Operand, Term, ValueId,
    };
    use super::*;

    fn module_with(f: Function) -> Module {
        Module {
            name: "t".into(),
            globals: Vec::new(),
            funcs: vec![f],
            num_counters: 0,
        }
    }

    fn func() -> Function {
        Function {
            name: "f".into(),
            params: 0,
            num_values: 1,
            blocks: vec![Block {
                instrs: Vec::new(),
                term: Term::Ret(Some(Operand::Const(0))),
            }],
            slots: Vec::new(),
        }
    }

    #[test]
    fn accepts_valid() {
        assert!(verify(&module_with(func())).is_ok());
    }

    #[test]
    fn rejects_bad_value() {
        let mut f = func();
        f.blocks[0].instrs.push(Instr::Bin {
            dst: ValueId(0),
            op: BinOp::Add,
            lhs: Operand::Value(ValueId(9)),
            rhs: Operand::Const(1),
        });
        assert!(verify(&module_with(f)).is_err());
    }

    #[test]
    fn rejects_bad_branch() {
        let mut f = func();
        f.blocks[0].term = Term::Br(BlockId(7));
        assert!(verify(&module_with(f)).is_err());
    }

    #[test]
    fn rejects_bad_arity() {
        let mut f = func();
        f.blocks[0].instrs.push(Instr::Call {
            dst: ValueId(0),
            func: FuncId(0),
            args: vec![Operand::Const(1)],
        });
        assert!(verify(&module_with(f)).is_err());
    }

    #[test]
    fn rejects_unallocated_counter() {
        let mut f = func();
        f.blocks[0].instrs.push(Instr::ProfCtr { id: 0 });
        assert!(verify(&module_with(f)).is_err());
    }
}
