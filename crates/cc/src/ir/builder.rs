//! Lowers the MiniC AST into IR, performing name resolution and semantic
//! checks (duplicate definitions, arity mismatches, array/scalar misuse,
//! `break`/`continue` placement) along the way.

use std::collections::HashMap;

use crate::error::{CompileError, Pos, Result};
use crate::frontend::ast::{self, Expr, FuncDecl, LValue, Program, Stmt};

use super::{
    BinOp, BlockId, CmpOp, FuncId, Function, Global, GlobalId, Instr, Module, Operand, SlotId,
    Term, UnOp, ValueId,
};

/// Lowers a parsed [`Program`] to an IR [`Module`].
///
/// # Errors
///
/// Returns a [`CompileError`] for semantic errors: duplicate or undefined
/// names, calling a variable, indexing a scalar, assigning to an array
/// without an index, wrong argument counts, or `break`/`continue` outside a
/// loop.
pub fn build(name: &str, prog: &Program) -> Result<Module> {
    let mut module = Module {
        name: name.to_owned(),
        ..Module::default()
    };
    let mut globals: HashMap<String, (GlobalId, bool)> = HashMap::new();
    for g in &prog.globals {
        if globals.contains_key(&g.name) {
            return Err(CompileError::at(
                g.pos,
                format!("duplicate global `{}`", g.name),
            ));
        }
        let id = GlobalId(module.globals.len() as u32);
        globals.insert(g.name.clone(), (id, g.len.is_some()));
        module.globals.push(Global {
            name: g.name.clone(),
            words: g.len.unwrap_or(1),
            init: if g.len.is_some() {
                Vec::new()
            } else {
                vec![g.init]
            },
        });
    }

    let mut funcs: HashMap<String, (FuncId, usize)> = HashMap::new();
    for (i, f) in prog.funcs.iter().enumerate() {
        if funcs.contains_key(&f.name) {
            return Err(CompileError::at(
                f.pos,
                format!("duplicate function `{}`", f.name),
            ));
        }
        if globals.contains_key(&f.name) {
            return Err(CompileError::at(
                f.pos,
                format!("`{}` is defined as both a global and a function", f.name),
            ));
        }
        if f.name == "print" {
            return Err(CompileError::at(f.pos, "`print` is a reserved builtin"));
        }
        funcs.insert(f.name.clone(), (FuncId(i as u32), f.params.len()));
    }

    for f in &prog.funcs {
        let lowered = FnBuilder::new(f, &globals, &funcs).run()?;
        module.funcs.push(lowered);
    }
    Ok(module)
}

/// What a name refers to inside a function body.
#[derive(Clone, Copy)]
enum Binding {
    /// A scalar local or parameter, held in a virtual value.
    Local(ValueId),
    /// A local array in a stack slot.
    Array(SlotId),
    /// A global scalar.
    GlobalScalar(GlobalId),
    /// A global array.
    GlobalArray(GlobalId),
}

struct FnBuilder<'a> {
    decl: &'a FuncDecl,
    globals: &'a HashMap<String, (GlobalId, bool)>,
    funcs: &'a HashMap<String, (FuncId, usize)>,
    func: Function,
    /// Lexical scope stack; inner scopes shadow outer ones.
    scopes: Vec<HashMap<String, Binding>>,
    /// Current insertion block.
    cur: BlockId,
    /// (continue target, break target) stack.
    loops: Vec<(BlockId, BlockId)>,
    /// `true` once the current block has been terminated.
    done: bool,
}

impl<'a> FnBuilder<'a> {
    fn new(
        decl: &'a FuncDecl,
        globals: &'a HashMap<String, (GlobalId, bool)>,
        funcs: &'a HashMap<String, (FuncId, usize)>,
    ) -> FnBuilder<'a> {
        let func = Function {
            name: decl.name.clone(),
            params: decl.params.len() as u32,
            num_values: 0,
            blocks: Vec::new(),
            slots: Vec::new(),
        };
        FnBuilder {
            decl,
            globals,
            funcs,
            func,
            scopes: Vec::new(),
            cur: BlockId(0),
            loops: Vec::new(),
            done: false,
        }
    }

    fn run(mut self) -> Result<Function> {
        let entry = self.func.new_block();
        self.cur = entry;
        let mut top = HashMap::new();
        for (i, p) in self.decl.params.iter().enumerate() {
            if top.contains_key(p) {
                return Err(CompileError::at(
                    self.decl.pos,
                    format!("duplicate parameter `{p}`"),
                ));
            }
            let v = self.func.new_value();
            debug_assert_eq!(v.0, i as u32);
            top.insert(p.clone(), Binding::Local(v));
        }
        self.scopes.push(top);
        self.stmts(&self.decl.body.to_vec())?;
        if !self.done {
            // Implicit `return 0`.
            self.func.block_mut(self.cur).term = Term::Ret(Some(Operand::Const(0)));
        }
        Ok(self.func)
    }

    fn emit(&mut self, i: Instr) {
        if !self.done {
            self.func.block_mut(self.cur).instrs.push(i);
        }
    }

    fn terminate(&mut self, t: Term) {
        if !self.done {
            self.func.block_mut(self.cur).term = t;
            self.done = true;
        }
    }

    /// Starts inserting into `b` (a fresh, unterminated block).
    fn seal_to(&mut self, b: BlockId) {
        self.cur = b;
        self.done = false;
    }

    fn lookup(&self, name: &str, pos: Pos) -> Result<Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Ok(*b);
            }
        }
        if let Some(&(id, is_array)) = self.globals.get(name) {
            return Ok(if is_array {
                Binding::GlobalArray(id)
            } else {
                Binding::GlobalScalar(id)
            });
        }
        Err(CompileError::at(
            pos,
            format!("undefined variable `{name}`"),
        ))
    }

    fn declare(&mut self, name: &str, binding: Binding, pos: Pos) -> Result<()> {
        let scope = self.scopes.last_mut().expect("scope stack is never empty");
        if scope.contains_key(name) {
            return Err(CompileError::at(
                pos,
                format!("duplicate declaration of `{name}`"),
            ));
        }
        scope.insert(name.to_owned(), binding);
        Ok(())
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<()> {
        self.scopes.push(HashMap::new());
        for s in body {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<()> {
        match s {
            Stmt::DeclScalar { name, init, pos } => {
                let v = self.func.new_value();
                let src = match init {
                    Some(e) => self.expr(e)?,
                    None => Operand::Const(0),
                };
                self.emit(Instr::Copy { dst: v, src });
                self.declare(name, Binding::Local(v), *pos)
            }
            Stmt::DeclArray { name, len, pos } => {
                let slot = SlotId(self.func.slots.len() as u32);
                self.func.slots.push(*len);
                self.declare(name, Binding::Array(slot), *pos)
            }
            Stmt::Assign { target, value, .. } => {
                let src = self.expr(value)?;
                self.assign(target, src)
            }
            Stmt::Expr { value, .. } => {
                self.expr(value)?;
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let then_b = self.func.new_block();
                let else_b = self.func.new_block();
                let join = self.func.new_block();
                self.cond_branch(cond, then_b, else_b)?;
                self.seal_to(then_b);
                self.stmts(then_body)?;
                self.terminate(Term::Br(join));
                self.seal_to(else_b);
                self.stmts(else_body)?;
                self.terminate(Term::Br(join));
                self.seal_to(join);
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                let head = self.func.new_block();
                let body_b = self.func.new_block();
                let exit = self.func.new_block();
                self.terminate(Term::Br(head));
                self.seal_to(head);
                self.cond_branch(cond, body_b, exit)?;
                self.seal_to(body_b);
                self.loops.push((head, exit));
                self.stmts(body)?;
                self.loops.pop();
                self.terminate(Term::Br(head));
                self.seal_to(exit);
                Ok(())
            }
            Stmt::DoWhile { body, cond, .. } => {
                let body_b = self.func.new_block();
                let head = self.func.new_block(); // condition re-check
                let exit = self.func.new_block();
                self.terminate(Term::Br(body_b));
                self.seal_to(body_b);
                self.loops.push((head, exit));
                self.stmts(body)?;
                self.loops.pop();
                self.terminate(Term::Br(head));
                self.seal_to(head);
                self.cond_branch(cond, body_b, exit)?;
                self.seal_to(exit);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.scopes.push(HashMap::new()); // `for (int i = …)` scope
                for s in init {
                    self.stmt(s)?;
                }
                let head = self.func.new_block();
                let body_b = self.func.new_block();
                let step_b = self.func.new_block();
                let exit = self.func.new_block();
                self.terminate(Term::Br(head));
                self.seal_to(head);
                match cond {
                    Some(c) => self.cond_branch(c, body_b, exit)?,
                    None => self.terminate(Term::Br(body_b)),
                }
                self.seal_to(body_b);
                self.loops.push((step_b, exit));
                self.stmts(body)?;
                self.loops.pop();
                self.terminate(Term::Br(step_b));
                self.seal_to(step_b);
                for s in step {
                    self.stmt(s)?;
                }
                self.terminate(Term::Br(head));
                self.seal_to(exit);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return { value, .. } => {
                let op = match value {
                    Some(e) => Some(self.expr(e)?),
                    None => Some(Operand::Const(0)),
                };
                self.terminate(Term::Ret(op));
                // Subsequent statements in this block are unreachable; give
                // them a fresh (orphan) block so building can continue.
                let orphan = self.func.new_block();
                self.seal_to(orphan);
                self.done = false;
                Ok(())
            }
            Stmt::Break { pos } => {
                let (_, exit) = *self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::at(*pos, "`break` outside of a loop"))?;
                self.terminate(Term::Br(exit));
                let orphan = self.func.new_block();
                self.seal_to(orphan);
                Ok(())
            }
            Stmt::Continue { pos } => {
                let (cont, _) = *self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::at(*pos, "`continue` outside of a loop"))?;
                self.terminate(Term::Br(cont));
                let orphan = self.func.new_block();
                self.seal_to(orphan);
                Ok(())
            }
        }
    }

    fn assign(&mut self, target: &LValue, src: Operand) -> Result<()> {
        match target {
            LValue::Var { name, pos } => match self.lookup(name, *pos)? {
                Binding::Local(v) => {
                    self.emit(Instr::Copy { dst: v, src });
                    Ok(())
                }
                Binding::GlobalScalar(g) => {
                    self.emit(Instr::StoreG {
                        global: g,
                        index: None,
                        src,
                    });
                    Ok(())
                }
                Binding::Array(_) | Binding::GlobalArray(_) => Err(CompileError::at(
                    *pos,
                    format!("cannot assign to array `{name}` without an index"),
                )),
            },
            LValue::Index { name, index, pos } => {
                let idx = self.expr(index)?;
                match self.lookup(name, *pos)? {
                    Binding::Array(slot) => {
                        self.emit(Instr::StoreA {
                            slot,
                            index: idx,
                            src,
                        });
                        Ok(())
                    }
                    Binding::GlobalArray(g) => {
                        self.emit(Instr::StoreG {
                            global: g,
                            index: Some(idx),
                            src,
                        });
                        Ok(())
                    }
                    Binding::Local(_) | Binding::GlobalScalar(_) => {
                        Err(CompileError::at(*pos, format!("`{name}` is not an array")))
                    }
                }
            }
        }
    }

    /// Lowers `cond` directly into control flow (short-circuit aware).
    fn cond_branch(&mut self, cond: &Expr, t: BlockId, f: BlockId) -> Result<()> {
        match cond {
            Expr::Bin {
                op: ast::BinOp::LogAnd,
                lhs,
                rhs,
                ..
            } => {
                let mid = self.func.new_block();
                self.cond_branch(lhs, mid, f)?;
                self.seal_to(mid);
                self.cond_branch(rhs, t, f)
            }
            Expr::Bin {
                op: ast::BinOp::LogOr,
                lhs,
                rhs,
                ..
            } => {
                let mid = self.func.new_block();
                self.cond_branch(lhs, t, mid)?;
                self.seal_to(mid);
                self.cond_branch(rhs, t, f)
            }
            Expr::Un {
                op: ast::UnOp::LogNot,
                operand,
                ..
            } => self.cond_branch(operand, f, t),
            Expr::Bin { op, lhs, rhs, pos } => {
                if let Some(cmp) = ast_cmp(*op) {
                    let l = self.expr(lhs)?;
                    let r = self.expr(rhs)?;
                    let dst = self.func.new_value();
                    self.emit(Instr::Cmp {
                        dst,
                        op: cmp,
                        lhs: l,
                        rhs: r,
                    });
                    self.terminate(Term::CondBr {
                        cond: dst.into(),
                        t,
                        f,
                    });
                    return Ok(());
                }
                let v = self.expr(&Expr::Bin {
                    op: *op,
                    lhs: lhs.clone(),
                    rhs: rhs.clone(),
                    pos: *pos,
                })?;
                self.terminate(Term::CondBr { cond: v, t, f });
                Ok(())
            }
            other => {
                let v = self.expr(other)?;
                self.terminate(Term::CondBr { cond: v, t, f });
                Ok(())
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<Operand> {
        match e {
            Expr::Int { value, .. } => Ok(Operand::Const(*value)),
            Expr::Var { name, pos } => match self.lookup(name, *pos)? {
                Binding::Local(v) => Ok(v.into()),
                Binding::GlobalScalar(g) => {
                    let dst = self.func.new_value();
                    self.emit(Instr::LoadG {
                        dst,
                        global: g,
                        index: None,
                    });
                    Ok(dst.into())
                }
                Binding::Array(_) | Binding::GlobalArray(_) => Err(CompileError::at(
                    *pos,
                    format!("array `{name}` cannot be used as a value"),
                )),
            },
            Expr::Index { name, index, pos } => {
                let idx = self.expr(index)?;
                match self.lookup(name, *pos)? {
                    Binding::Array(slot) => {
                        let dst = self.func.new_value();
                        self.emit(Instr::LoadA {
                            dst,
                            slot,
                            index: idx,
                        });
                        Ok(dst.into())
                    }
                    Binding::GlobalArray(g) => {
                        let dst = self.func.new_value();
                        self.emit(Instr::LoadG {
                            dst,
                            global: g,
                            index: Some(idx),
                        });
                        Ok(dst.into())
                    }
                    _ => Err(CompileError::at(*pos, format!("`{name}` is not an array"))),
                }
            }
            Expr::Call { name, args, pos } => {
                if name == "print" {
                    if args.len() != 1 {
                        return Err(CompileError::at(*pos, "`print` takes exactly one argument"));
                    }
                    let src = self.expr(&args[0])?;
                    self.emit(Instr::Print { src });
                    return Ok(Operand::Const(0));
                }
                let &(func, arity) = self.funcs.get(name).ok_or_else(|| {
                    CompileError::at(*pos, format!("undefined function `{name}`"))
                })?;
                if args.len() != arity {
                    return Err(CompileError::at(
                        *pos,
                        format!("`{name}` expects {arity} argument(s), got {}", args.len()),
                    ));
                }
                let mut ops = Vec::with_capacity(args.len());
                for a in args {
                    ops.push(self.expr(a)?);
                }
                let dst = self.func.new_value();
                self.emit(Instr::Call {
                    dst,
                    func,
                    args: ops,
                });
                Ok(dst.into())
            }
            Expr::Bin { op, lhs, rhs, .. } => match op {
                ast::BinOp::LogAnd | ast::BinOp::LogOr => self.materialize_bool(e),
                _ => {
                    if let Some(cmp) = ast_cmp(*op) {
                        let l = self.expr(lhs)?;
                        let r = self.expr(rhs)?;
                        let dst = self.func.new_value();
                        self.emit(Instr::Cmp {
                            dst,
                            op: cmp,
                            lhs: l,
                            rhs: r,
                        });
                        return Ok(dst.into());
                    }
                    let bop = ast_bin(*op).expect("cmp and logic handled above");
                    let l = self.expr(lhs)?;
                    let r = self.expr(rhs)?;
                    let dst = self.func.new_value();
                    self.emit(Instr::Bin {
                        dst,
                        op: bop,
                        lhs: l,
                        rhs: r,
                    });
                    Ok(dst.into())
                }
            },
            Expr::Un { op, operand, .. } => match op {
                ast::UnOp::Neg => {
                    let src = self.expr(operand)?;
                    let dst = self.func.new_value();
                    self.emit(Instr::Un {
                        dst,
                        op: UnOp::Neg,
                        src,
                    });
                    Ok(dst.into())
                }
                ast::UnOp::BitNot => {
                    let src = self.expr(operand)?;
                    let dst = self.func.new_value();
                    self.emit(Instr::Un {
                        dst,
                        op: UnOp::BitNot,
                        src,
                    });
                    Ok(dst.into())
                }
                ast::UnOp::LogNot => {
                    let src = self.expr(operand)?;
                    let dst = self.func.new_value();
                    self.emit(Instr::Cmp {
                        dst,
                        op: CmpOp::Eq,
                        lhs: src,
                        rhs: Operand::Const(0),
                    });
                    Ok(dst.into())
                }
            },
        }
    }

    /// Materializes a short-circuit expression into a 0/1 value via a
    /// control-flow diamond.
    fn materialize_bool(&mut self, e: &Expr) -> Result<Operand> {
        let dst = self.func.new_value();
        let t = self.func.new_block();
        let f = self.func.new_block();
        let join = self.func.new_block();
        self.cond_branch(e, t, f)?;
        self.seal_to(t);
        self.emit(Instr::Copy {
            dst,
            src: Operand::Const(1),
        });
        self.terminate(Term::Br(join));
        self.seal_to(f);
        self.emit(Instr::Copy {
            dst,
            src: Operand::Const(0),
        });
        self.terminate(Term::Br(join));
        self.seal_to(join);
        Ok(dst.into())
    }
}

fn ast_bin(op: ast::BinOp) -> Option<BinOp> {
    Some(match op {
        ast::BinOp::Add => BinOp::Add,
        ast::BinOp::Sub => BinOp::Sub,
        ast::BinOp::Mul => BinOp::Mul,
        ast::BinOp::Div => BinOp::Div,
        ast::BinOp::Rem => BinOp::Rem,
        ast::BinOp::BitAnd => BinOp::And,
        ast::BinOp::BitOr => BinOp::Or,
        ast::BinOp::BitXor => BinOp::Xor,
        ast::BinOp::Shl => BinOp::Shl,
        ast::BinOp::Shr => BinOp::Shr,
        _ => return None,
    })
}

fn ast_cmp(op: ast::BinOp) -> Option<CmpOp> {
    Some(match op {
        ast::BinOp::Eq => CmpOp::Eq,
        ast::BinOp::Ne => CmpOp::Ne,
        ast::BinOp::Lt => CmpOp::Lt,
        ast::BinOp::Le => CmpOp::Le,
        ast::BinOp::Gt => CmpOp::Gt,
        ast::BinOp::Ge => CmpOp::Ge,
        _ => None?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::{lexer::lex, parser::parse};

    fn ir(src: &str) -> Module {
        build("test", &parse(lex(src).unwrap()).unwrap()).expect("builds")
    }

    fn ir_err(src: &str) -> CompileError {
        build("test", &parse(lex(src).unwrap()).unwrap()).expect_err("should fail")
    }

    #[test]
    fn simple_function() {
        let m = ir("int add(int a, int b) { return a + b; }");
        let f = &m.funcs[0];
        assert_eq!(f.params, 2);
        assert!(matches!(
            f.block(BlockId(0)).instrs[0],
            Instr::Bin { op: BinOp::Add, .. }
        ));
        assert!(matches!(f.block(BlockId(0)).term, Term::Ret(Some(_))));
    }

    #[test]
    fn while_loop_shape() {
        let m = ir("int f(int n) { int s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }");
        let f = &m.funcs[0];
        // entry + head + body + exit (at least).
        assert!(f.blocks.len() >= 4);
        // Exactly one CondBr.
        let conds = f
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Term::CondBr { .. }))
            .count();
        assert_eq!(conds, 1);
    }

    #[test]
    fn short_circuit_creates_diamond() {
        let m = ir("int f(int a, int b) { if (a && b) { return 1; } return 0; }");
        let f = &m.funcs[0];
        let conds = f
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Term::CondBr { .. }))
            .count();
        assert_eq!(conds, 2, "&& should produce two conditional branches");
    }

    #[test]
    fn globals_and_arrays() {
        let m = ir("int g = 3; int a[8]; int f(int i) { a[i] = g; return a[i]; }");
        assert_eq!(m.globals[0].init, vec![3]);
        assert_eq!(m.globals[1].words, 8);
        let f = &m.funcs[0];
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instr::StoreG { index: Some(_), .. })));
    }

    #[test]
    fn local_arrays_use_slots() {
        let m = ir("int f() { int buf[16]; buf[0] = 1; return buf[0]; }");
        assert_eq!(m.funcs[0].slots, vec![16]);
    }

    #[test]
    fn print_builtin() {
        let m = ir("int main() { print(42); return 0; }");
        assert!(m.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instr::Print { .. })));
    }

    #[test]
    fn semantic_errors() {
        assert!(ir_err("int f() { return x; }")
            .message
            .contains("undefined variable"));
        assert!(ir_err("int f() { break; }")
            .message
            .contains("outside of a loop"));
        assert!(ir_err("int g; int g; int f() { return 0; }")
            .message
            .contains("duplicate global"));
        assert!(ir_err("int f(int a, int a) { return 0; }")
            .message
            .contains("duplicate parameter"));
        assert!(ir_err("int a[4]; int f() { return a; }")
            .message
            .contains("cannot be used as a value"));
        assert!(ir_err("int x; int f() { return x[0]; }")
            .message
            .contains("not an array"));
        assert!(ir_err("int f(int a) { return f(); }")
            .message
            .contains("expects 1 argument"));
        assert!(ir_err("int f() { return g(); }")
            .message
            .contains("undefined function"));
        assert!(ir_err("int a[4]; int f() { a = 1; return 0; }")
            .message
            .contains("without an index"));
        assert!(ir_err("int print() { return 0; }")
            .message
            .contains("reserved"));
    }

    #[test]
    fn shadowing_in_inner_scope() {
        let m = ir("int f(int x) { int y = x; if (x) { int y = 2; x = y; } return y; }");
        assert_eq!(m.funcs.len(), 1);
    }

    #[test]
    fn statements_after_return_are_orphaned() {
        let m = ir("int f() { return 1; print(2); return 3; }");
        // Must build without error; orphan blocks are cleaned by simplifycfg.
        assert!(m.funcs[0].blocks.len() >= 2);
    }

    #[test]
    fn for_loop_with_decl() {
        let m = ir("int f() { int s = 0; for (int i = 0; i < 4; i++) s += i; return s; }");
        let f = &m.funcs[0];
        assert!(f.blocks.len() >= 5);
    }
}
