//! Compilation driver: glues the pipeline stages together.
//!
//! The stages mirror the paper's Figure 3 and are individually public so
//! that the profiling crate can instrument the optimized IR and the
//! diversity crate can run its NOP-insertion pass on the lowered LIR —
//! both exactly where the paper puts them.

use crate::emit::runtime::{runtime_functions, PRINT_INDEX};
use crate::emit::{emit, Image};
use crate::error::Result;
use crate::frontend::{lex, parse};
use crate::ir::builder::build;
use crate::ir::passes::optimize_with;
use crate::ir::verify::verify;
use crate::ir::Module;
use crate::lir::frame::lower_frame;
use crate::lir::isel::{select, LowerCtx};
use crate::lir::regalloc::{allocate_with_order, ALLOCATABLE};
use crate::lir::MFunction;
use pgsd_telemetry::Telemetry;
use pgsd_x86::Reg;

/// Runs the frontend: lex, parse, build IR, verify, optimize.
///
/// The returned module's IR is final: instrumentation and code generation
/// both start from it, so block ids line up between a profiling build and
/// a measurement build of the same source.
///
/// # Errors
///
/// Propagates lexical, syntactic and semantic errors.
pub fn frontend(name: &str, source: &str) -> Result<Module> {
    frontend_with(name, source, &Telemetry::disabled())
}

/// Like [`frontend`], recording a span per stage (`lex`, `parse`,
/// `ir_build`, `verify`, `optimize` with per-pass children) into `tel`.
///
/// # Errors
///
/// Propagates lexical, syntactic and semantic errors.
pub fn frontend_with(name: &str, source: &str, tel: &Telemetry) -> Result<Module> {
    let _span = tel.span("frontend");
    let tokens = {
        let _s = tel.span("lex");
        lex(source)?
    };
    let program = {
        let _s = tel.span("parse");
        parse(tokens)?
    };
    let mut module = {
        let _s = tel.span("ir_build");
        build(name, &program)?
    };
    {
        let _s = tel.span("verify");
        verify(&module)?;
    }
    {
        let _s = tel.span("optimize");
        optimize_with(&mut module, tel);
    }
    {
        let _s = tel.span("verify");
        verify(&module)?;
    }
    tel.add("cc.source_bytes", source.len() as u64);
    tel.add("cc.functions", module.funcs.len() as u64);
    Ok(module)
}

/// The [`LowerCtx`] matching [`lower_module`]'s function layout.
pub fn lower_ctx() -> LowerCtx {
    LowerCtx {
        print_index: PRINT_INDEX as u32,
        user_func_base: runtime_functions().len() as u32,
    }
}

/// Lowers a module to the final function list: runtime stubs and filler
/// first (undiversified, fixed bytes), then the user functions — selected,
/// register-allocated and frame-lowered, ready for the NOP-insertion pass
/// and emission.
///
/// # Errors
///
/// Propagates lowering and allocation failures.
pub fn lower_module(module: &Module) -> Result<Vec<MFunction>> {
    lower_module_seeded(module, None)
}

/// The six permutations of the allocatable register set.
fn permutation(k: u64) -> [Reg; 3] {
    let [a, b, c] = ALLOCATABLE;
    match k % 6 {
        0 => [a, b, c],
        1 => [a, c, b],
        2 => [b, a, c],
        3 => [b, c, a],
        4 => [c, a, b],
        _ => [c, b, a],
    }
}

/// Like [`lower_module`], but with *register randomization* (paper §6):
/// when `reg_seed` is set, each user function receives a per-function
/// permutation of the allocatable register set, derived deterministically
/// from the seed — same-seed builds reproduce, different seeds shuffle
/// which registers carry which values (and therefore the ModRM bytes of
/// the emitted code). The runtime library is unaffected.
///
/// # Errors
///
/// Propagates lowering and allocation failures.
pub fn lower_module_seeded(module: &Module, reg_seed: Option<u64>) -> Result<Vec<MFunction>> {
    lower_module_seeded_with(module, reg_seed, &Telemetry::disabled())
}

/// Like [`lower_module_seeded`], recording a `lower` span with per-user-
/// function children (`isel`, `regalloc`, `frame`) into `tel`.
///
/// # Errors
///
/// Propagates lowering and allocation failures.
pub fn lower_module_seeded_with(
    module: &Module,
    reg_seed: Option<u64>,
    tel: &Telemetry,
) -> Result<Vec<MFunction>> {
    let _span = tel.span("lower");
    let ctx = lower_ctx();
    let mut funcs = runtime_functions();
    for (i, f) in module.funcs.iter().enumerate() {
        let _fn_span = if tel.is_enabled() {
            Some(tel.span(&format!("lower:{}", f.name)))
        } else {
            None
        };
        let mut mf = {
            let _s = tel.span("isel");
            select(f, &ctx)?
        };
        let order = match reg_seed {
            Some(seed) => {
                // SplitMix-style hash of (seed, function index).
                let mut x = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                permutation(x)
            }
            None => ALLOCATABLE,
        };
        {
            let _s = tel.span("regalloc");
            allocate_with_order(&mut mf, order)?;
        }
        {
            let _s = tel.span("frame");
            lower_frame(&mut mf);
        }
        funcs.push(mf);
    }
    Ok(funcs)
}

/// Emits the final image from lowered functions (possibly after a
/// diversity pass has inserted NOPs).
///
/// # Errors
///
/// Propagates emission failures; fails if the module has no `main`.
pub fn emit_image(funcs: &[MFunction], module: &Module) -> Result<Image> {
    emit_image_with(funcs, module, &Telemetry::disabled())
}

/// Like [`emit_image`], recording an `emit` span and the emitted text /
/// data sizes into `tel`.
///
/// # Errors
///
/// Propagates emission failures; fails if the module has no `main`.
pub fn emit_image_with(funcs: &[MFunction], module: &Module, tel: &Telemetry) -> Result<Image> {
    let _span = tel.span("emit");
    let image = emit(funcs, module, "main")?;
    tel.add("emit.functions", funcs.len() as u64);
    tel.add("emit.text_bytes", image.text.len() as u64);
    tel.add("emit.data_bytes", image.data.len() as u64);
    Ok(image)
}

/// One-call compilation without diversification: the baseline build.
///
/// # Errors
///
/// Propagates errors from every stage.
///
/// # Examples
///
/// ```
/// let image = pgsd_cc::driver::compile("demo", "int main() { return 7; }")?;
/// assert!(!image.text.is_empty());
/// # Ok::<(), pgsd_cc::error::CompileError>(())
/// ```
pub fn compile(name: &str, source: &str) -> Result<Image> {
    let module = frontend(name, source)?;
    let funcs = lower_module(&module)?;
    emit_image(&funcs, &module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_is_deterministic() {
        let src = "int g; int main() { g = 5; return g * 3; }";
        let a = compile("t", src).unwrap();
        let b = compile("t", src).unwrap();
        assert_eq!(a.text, b.text);
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn user_funcs_follow_runtime() {
        let module = frontend(
            "t",
            "int helper() { return 1; } int main() { return helper(); }",
        )
        .unwrap();
        let funcs = lower_module(&module).unwrap();
        let base = lower_ctx().user_func_base as usize;
        assert_eq!(funcs[base].name, "helper");
        assert_eq!(funcs[base + 1].name, "main");
        assert!(funcs[base].diversify);
        assert!(!funcs[0].diversify);
    }

    #[test]
    fn frontend_errors_carry_position() {
        let err = frontend("t", "int main() { return x; }").unwrap_err();
        assert!(err.pos.is_some());
    }
}
