//! MiniC frontend: lexer, parser and AST.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod token;

pub use lexer::lex;
pub use parser::parse;
