//! Recursive-descent parser for MiniC.

use crate::error::{CompileError, Pos, Result};

use super::ast::*;
use super::token::{Token, TokenKind};

/// Parses a token stream into a [`Program`].
///
/// # Errors
///
/// Returns the first syntax error encountered, with its source position.
pub fn parse(tokens: Vec<Token>) -> Result<Program> {
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn here(&self) -> Pos {
        self.tokens[self.pos].pos
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(CompileError::at(
                self.here(),
                format!("expected {kind}, found {}", self.peek()),
            ))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<(String, Pos)> {
        let pos = self.here();
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, pos))
            }
            other => Err(CompileError::at(
                pos,
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn int_lit(&mut self) -> Result<(i64, Pos)> {
        let pos = self.here();
        match *self.peek() {
            TokenKind::Int(v) => {
                self.bump();
                Ok((v, pos))
            }
            ref other => Err(CompileError::at(
                pos,
                format!("expected integer literal, found {other}"),
            )),
        }
    }

    fn program(mut self) -> Result<Program> {
        let mut prog = Program::default();
        while *self.peek() != TokenKind::Eof {
            let pos = self.here();
            self.expect(&TokenKind::KwInt)?;
            let (name, _) = self.ident()?;
            if *self.peek() == TokenKind::LParen {
                prog.funcs.push(self.func_rest(name, pos)?);
            } else {
                prog.globals.push(self.global_rest(name, pos)?);
            }
        }
        Ok(prog)
    }

    fn global_rest(&mut self, name: String, pos: Pos) -> Result<GlobalDecl> {
        let mut len = None;
        let mut init = 0;
        if self.eat(&TokenKind::LBracket) {
            let (n, npos) = self.int_lit()?;
            if n <= 0 || n > 1 << 24 {
                return Err(CompileError::at(npos, "array length out of range"));
            }
            len = Some(n as u32);
            self.expect(&TokenKind::RBracket)?;
        } else if self.eat(&TokenKind::Assign) {
            let neg = self.eat(&TokenKind::Minus);
            let (v, _) = self.int_lit()?;
            let v = if neg { -v } else { v };
            init = v as i32;
        }
        self.expect(&TokenKind::Semi)?;
        Ok(GlobalDecl {
            name,
            len,
            init,
            pos,
        })
    }

    fn func_rest(&mut self, name: String, pos: Pos) -> Result<FuncDecl> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                self.expect(&TokenKind::KwInt)?;
                let (p, _) = self.ident()?;
                params.push(p);
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(&TokenKind::Comma)?;
            }
        }
        let body = self.block()?;
        Ok(FuncDecl {
            name,
            params,
            body,
            pos,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    /// A block, or a single statement promoted to a one-statement block.
    fn block_or_stmt(&mut self) -> Result<Vec<Stmt>> {
        if *self.peek() == TokenKind::LBrace {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let pos = self.here();
        match self.peek().clone() {
            TokenKind::KwInt => {
                self.bump();
                let (name, _) = self.ident()?;
                if self.eat(&TokenKind::LBracket) {
                    let (n, npos) = self.int_lit()?;
                    if n <= 0 || n > 1 << 20 {
                        return Err(CompileError::at(npos, "array length out of range"));
                    }
                    self.expect(&TokenKind::RBracket)?;
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::DeclArray {
                        name,
                        len: n as u32,
                        pos,
                    })
                } else {
                    let init = if self.eat(&TokenKind::Assign) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::DeclScalar { name, init, pos })
                }
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then_body = self.block_or_stmt()?;
                let else_body = if self.eat(&TokenKind::KwElse) {
                    self.block_or_stmt()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    pos,
                })
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::While { cond, body, pos })
            }
            TokenKind::KwDo => {
                self.bump();
                let body = self.block_or_stmt()?;
                self.expect(&TokenKind::KwWhile)?;
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::DoWhile { body, cond, pos })
            }
            TokenKind::KwFor => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let init = if *self.peek() == TokenKind::Semi {
                    self.bump();
                    Vec::new()
                } else if *self.peek() == TokenKind::KwInt {
                    vec![self.stmt()?] // consumes the `;`
                } else {
                    let s = self.simple_stmt()?;
                    self.expect(&TokenKind::Semi)?;
                    vec![s]
                };
                let cond = if *self.peek() == TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                let step = if *self.peek() == TokenKind::RParen {
                    Vec::new()
                } else {
                    vec![self.simple_stmt()?]
                };
                self.expect(&TokenKind::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    pos,
                })
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if *self.peek() == TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return { value, pos })
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Break { pos })
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Continue { pos })
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(&TokenKind::Semi)?;
                Ok(s)
            }
        }
    }

    /// An assignment, compound assignment, `++`/`--`, or expression
    /// statement, without the trailing semicolon (shared by `for` headers).
    fn simple_stmt(&mut self) -> Result<Stmt> {
        let pos = self.here();
        // Prefix increment/decrement.
        if matches!(self.peek(), TokenKind::PlusPlus | TokenKind::MinusMinus) {
            let op = self.bump().kind;
            let target = self.lvalue()?;
            return Ok(self.incdec(target, op == TokenKind::PlusPlus, pos));
        }
        if let TokenKind::Ident(_) = self.peek() {
            // Look ahead to distinguish assignments from expression
            // statements.
            let is_assign_head = matches!(
                self.peek2(),
                TokenKind::Assign
                    | TokenKind::PlusAssign
                    | TokenKind::MinusAssign
                    | TokenKind::StarAssign
                    | TokenKind::SlashAssign
                    | TokenKind::PercentAssign
                    | TokenKind::AmpAssign
                    | TokenKind::PipeAssign
                    | TokenKind::CaretAssign
                    | TokenKind::ShlAssign
                    | TokenKind::ShrAssign
                    | TokenKind::PlusPlus
                    | TokenKind::MinusMinus
                    | TokenKind::LBracket
            );
            if is_assign_head {
                let save = self.pos;
                let target = self.lvalue()?;
                match self.peek().clone() {
                    TokenKind::Assign => {
                        self.bump();
                        let value = self.expr()?;
                        return Ok(Stmt::Assign { target, value, pos });
                    }
                    k @ (TokenKind::PlusAssign
                    | TokenKind::MinusAssign
                    | TokenKind::StarAssign
                    | TokenKind::SlashAssign
                    | TokenKind::PercentAssign
                    | TokenKind::AmpAssign
                    | TokenKind::PipeAssign
                    | TokenKind::CaretAssign
                    | TokenKind::ShlAssign
                    | TokenKind::ShrAssign) => {
                        self.bump();
                        let rhs = self.expr()?;
                        let op = match k {
                            TokenKind::PlusAssign => BinOp::Add,
                            TokenKind::MinusAssign => BinOp::Sub,
                            TokenKind::StarAssign => BinOp::Mul,
                            TokenKind::SlashAssign => BinOp::Div,
                            TokenKind::AmpAssign => BinOp::BitAnd,
                            TokenKind::PipeAssign => BinOp::BitOr,
                            TokenKind::CaretAssign => BinOp::BitXor,
                            TokenKind::ShlAssign => BinOp::Shl,
                            TokenKind::ShrAssign => BinOp::Shr,
                            _ => BinOp::Rem,
                        };
                        let value = Expr::Bin {
                            op,
                            lhs: Box::new(lvalue_to_expr(&target)),
                            rhs: Box::new(rhs),
                            pos,
                        };
                        return Ok(Stmt::Assign { target, value, pos });
                    }
                    TokenKind::PlusPlus => {
                        self.bump();
                        return Ok(self.incdec(target, true, pos));
                    }
                    TokenKind::MinusMinus => {
                        self.bump();
                        return Ok(self.incdec(target, false, pos));
                    }
                    _ => {
                        // `a[i]` followed by something else: it was an
                        // expression after all; rewind.
                        self.pos = save;
                    }
                }
            }
        }
        let value = self.expr()?;
        Ok(Stmt::Expr { value, pos })
    }

    fn incdec(&mut self, target: LValue, inc: bool, pos: Pos) -> Stmt {
        let value = Expr::Bin {
            op: if inc { BinOp::Add } else { BinOp::Sub },
            lhs: Box::new(lvalue_to_expr(&target)),
            rhs: Box::new(Expr::Int { value: 1, pos }),
            pos,
        };
        Stmt::Assign { target, value, pos }
    }

    fn lvalue(&mut self) -> Result<LValue> {
        let (name, pos) = self.ident()?;
        if self.eat(&TokenKind::LBracket) {
            let index = self.expr()?;
            self.expect(&TokenKind::RBracket)?;
            Ok(LValue::Index {
                name,
                index: Box::new(index),
                pos,
            })
        } else {
            Ok(LValue::Var { name, pos })
        }
    }

    // Expression precedence climbing.

    fn expr(&mut self) -> Result<Expr> {
        self.logic_or()
    }

    fn logic_or(&mut self) -> Result<Expr> {
        let mut lhs = self.logic_and()?;
        while *self.peek() == TokenKind::OrOr {
            let pos = self.here();
            self.bump();
            let rhs = self.logic_and()?;
            lhs = Expr::Bin {
                op: BinOp::LogOr,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn logic_and(&mut self) -> Result<Expr> {
        let mut lhs = self.bit_or()?;
        while *self.peek() == TokenKind::AndAnd {
            let pos = self.here();
            self.bump();
            let rhs = self.bit_or()?;
            lhs = Expr::Bin {
                op: BinOp::LogAnd,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn bit_or(&mut self) -> Result<Expr> {
        let mut lhs = self.bit_xor()?;
        while *self.peek() == TokenKind::Pipe {
            let pos = self.here();
            self.bump();
            let rhs = self.bit_xor()?;
            lhs = Expr::Bin {
                op: BinOp::BitOr,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self) -> Result<Expr> {
        let mut lhs = self.bit_and()?;
        while *self.peek() == TokenKind::Caret {
            let pos = self.here();
            self.bump();
            let rhs = self.bit_and()?;
            lhs = Expr::Bin {
                op: BinOp::BitXor,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn bit_and(&mut self) -> Result<Expr> {
        let mut lhs = self.equality()?;
        while *self.peek() == TokenKind::Amp {
            let pos = self.here();
            self.bump();
            let rhs = self.equality()?;
            lhs = Expr::Bin {
                op: BinOp::BitAnd,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                _ => return Ok(lhs),
            };
            let pos = self.here();
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
    }

    fn relational(&mut self) -> Result<Expr> {
        let mut lhs = self.shift()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => return Ok(lhs),
            };
            let pos = self.here();
            self.bump();
            let rhs = self.shift()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
    }

    fn shift(&mut self) -> Result<Expr> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Shl => BinOp::Shl,
                TokenKind::Shr => BinOp::Shr,
                _ => return Ok(lhs),
            };
            let pos = self.here();
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let pos = self.here();
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            let pos = self.here();
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        let pos = self.here();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Tilde => Some(UnOp::BitNot),
            TokenKind::Not => Some(UnOp::LogNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            return Ok(Expr::Un {
                op,
                operand: Box::new(operand),
                pos,
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        let pos = self.here();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int {
                    value: v as i32,
                    pos,
                })
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&TokenKind::RParen) {
                                break;
                            }
                            self.expect(&TokenKind::Comma)?;
                        }
                    }
                    Ok(Expr::Call { name, args, pos })
                } else if self.eat(&TokenKind::LBracket) {
                    let index = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    Ok(Expr::Index {
                        name,
                        index: Box::new(index),
                        pos,
                    })
                } else {
                    Ok(Expr::Var { name, pos })
                }
            }
            other => Err(CompileError::at(
                pos,
                format!("expected expression, found {other}"),
            )),
        }
    }
}

fn lvalue_to_expr(lv: &LValue) -> Expr {
    match lv {
        LValue::Var { name, pos } => Expr::Var {
            name: name.clone(),
            pos: *pos,
        },
        LValue::Index { name, index, pos } => Expr::Index {
            name: name.clone(),
            index: index.clone(),
            pos: *pos,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::*;

    fn p(src: &str) -> Program {
        parse(lex(src).expect("lexes")).expect("parses")
    }

    #[test]
    fn globals_and_funcs() {
        let prog = p("int g; int arr[10]; int neg = -5;\nint main() { return g; }");
        assert_eq!(prog.globals.len(), 3);
        assert_eq!(prog.globals[1].len, Some(10));
        assert_eq!(prog.globals[2].init, -5);
        assert_eq!(prog.funcs.len(), 1);
        assert_eq!(prog.funcs[0].name, "main");
    }

    #[test]
    fn precedence() {
        let prog = p("int f() { return 1 + 2 * 3 < 4 && 5 | 6; }");
        let Stmt::Return { value: Some(e), .. } = &prog.funcs[0].body[0] else {
            panic!("expected return");
        };
        // Top must be &&.
        let Expr::Bin {
            op: BinOp::LogAnd,
            lhs,
            ..
        } = e
        else {
            panic!("expected &&, got {e:?}");
        };
        let Expr::Bin { op: BinOp::Lt, .. } = **lhs else {
            panic!("expected < on lhs");
        };
    }

    #[test]
    fn compound_assignment_desugars() {
        let prog = p("int f(int x) { x += 2; x++; --x; a[x] -= 1; return x; }");
        let Stmt::Assign {
            value: Expr::Bin { op: BinOp::Add, .. },
            ..
        } = &prog.funcs[0].body[0]
        else {
            panic!("+= must desugar to add");
        };
        assert!(matches!(
            &prog.funcs[0].body[3],
            Stmt::Assign {
                target: LValue::Index { .. },
                ..
            }
        ));
    }

    #[test]
    fn for_and_while() {
        let prog =
            p("int f() { for (int i = 0; i < 10; i++) { print(i); } while (1) break; return 0; }");
        assert!(matches!(prog.funcs[0].body[0], Stmt::For { .. }));
        assert!(matches!(prog.funcs[0].body[1], Stmt::While { .. }));
    }

    #[test]
    fn dangling_else_binds_inner() {
        let prog = p("int f(int x) { if (x) if (x) return 1; else return 2; return 3; }");
        let Stmt::If {
            else_body,
            then_body,
            ..
        } = &prog.funcs[0].body[0]
        else {
            panic!()
        };
        assert!(else_body.is_empty());
        let Stmt::If {
            else_body: inner_else,
            ..
        } = &then_body[0]
        else {
            panic!()
        };
        assert_eq!(inner_else.len(), 1);
    }

    #[test]
    fn array_read_statement_is_expr() {
        // `a[i];` is a (useless) expression statement, not an assignment.
        let prog = p("int f() { a[3]; return 0; }");
        assert!(matches!(prog.funcs[0].body[0], Stmt::Expr { .. }));
    }

    #[test]
    fn errors() {
        assert!(parse(lex("int f( { }").unwrap()).is_err());
        assert!(parse(lex("int f() { return 1 }").unwrap()).is_err());
        assert!(parse(lex("int a[0];").unwrap()).is_err());
        assert!(parse(lex("float f() {}").unwrap()).is_err());
    }
}
