//! Token definitions for the MiniC lexer.

use std::fmt;

use crate::error::Pos;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Integer literal (decimal or `0x` hexadecimal).
    Int(i64),
    /// Identifier or keyword candidate.
    Ident(String),
    /// `int`
    KwInt,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `do`
    KwDo,
    /// `return`
    KwReturn,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    /// `=`
    Assign,
    /// `+=`, `-=`, `*=`, `/=`, `%=` — represented by the underlying op.
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TokenKind::Int(v) => return write!(f, "integer literal {v}"),
            TokenKind::Ident(s) => return write!(f, "identifier `{s}`"),
            TokenKind::KwInt => "`int`",
            TokenKind::KwIf => "`if`",
            TokenKind::KwElse => "`else`",
            TokenKind::KwWhile => "`while`",
            TokenKind::KwFor => "`for`",
            TokenKind::KwDo => "`do`",
            TokenKind::KwReturn => "`return`",
            TokenKind::KwBreak => "`break`",
            TokenKind::KwContinue => "`continue`",
            TokenKind::LParen => "`(`",
            TokenKind::RParen => "`)`",
            TokenKind::LBrace => "`{`",
            TokenKind::RBrace => "`}`",
            TokenKind::LBracket => "`[`",
            TokenKind::RBracket => "`]`",
            TokenKind::Comma => "`,`",
            TokenKind::Semi => "`;`",
            TokenKind::Assign => "`=`",
            TokenKind::PlusAssign => "`+=`",
            TokenKind::MinusAssign => "`-=`",
            TokenKind::StarAssign => "`*=`",
            TokenKind::SlashAssign => "`/=`",
            TokenKind::PercentAssign => "`%=`",
            TokenKind::AmpAssign => "`&=`",
            TokenKind::PipeAssign => "`|=`",
            TokenKind::CaretAssign => "`^=`",
            TokenKind::ShlAssign => "`<<=`",
            TokenKind::ShrAssign => "`>>=`",
            TokenKind::Plus => "`+`",
            TokenKind::Minus => "`-`",
            TokenKind::Star => "`*`",
            TokenKind::Slash => "`/`",
            TokenKind::Percent => "`%`",
            TokenKind::EqEq => "`==`",
            TokenKind::NotEq => "`!=`",
            TokenKind::Lt => "`<`",
            TokenKind::Le => "`<=`",
            TokenKind::Gt => "`>`",
            TokenKind::Ge => "`>=`",
            TokenKind::AndAnd => "`&&`",
            TokenKind::OrOr => "`||`",
            TokenKind::Not => "`!`",
            TokenKind::Amp => "`&`",
            TokenKind::Pipe => "`|`",
            TokenKind::Caret => "`^`",
            TokenKind::Tilde => "`~`",
            TokenKind::Shl => "`<<`",
            TokenKind::Shr => "`>>`",
            TokenKind::PlusPlus => "`++`",
            TokenKind::MinusMinus => "`--`",
            TokenKind::Eof => "end of input",
        };
        f.write_str(s)
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Position of the token's first character.
    pub pos: Pos,
}
