//! Hand-written lexer for MiniC.

use crate::error::{CompileError, Pos, Result};

use super::token::{Token, TokenKind};

/// Tokenizes MiniC source text.
///
/// Supports `//` line comments and `/* */` block comments, decimal and
/// hexadecimal integer literals, and the full operator set of
/// [`TokenKind`].
///
/// # Errors
///
/// Returns a [`CompileError`] on unterminated block comments, malformed
/// numbers, out-of-range literals and unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn here(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let pos = self.here();
            let Some(b) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    pos,
                });
                return Ok(out);
            };
            let kind = match b {
                b'0'..=b'9' => self.number(pos)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                _ => self.operator(pos)?,
            };
            out.push(Token { kind, pos });
        }
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(CompileError::at(start, "unterminated block comment"))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self, pos: Pos) -> Result<TokenKind> {
        let mut value: i64 = 0;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let mut any = false;
            while let Some(b) = self.peek() {
                let digit = match b {
                    b'0'..=b'9' => i64::from(b - b'0'),
                    b'a'..=b'f' => i64::from(b - b'a' + 10),
                    b'A'..=b'F' => i64::from(b - b'A' + 10),
                    _ => break,
                };
                any = true;
                value = value
                    .checked_mul(16)
                    .and_then(|v| v.checked_add(digit))
                    .ok_or_else(|| CompileError::at(pos, "integer literal overflows"))?;
                self.bump();
            }
            if !any {
                return Err(CompileError::at(pos, "expected hex digits after `0x`"));
            }
        } else {
            while let Some(b @ b'0'..=b'9') = self.peek() {
                value = value
                    .checked_mul(10)
                    .and_then(|v| v.checked_add(i64::from(b - b'0')))
                    .ok_or_else(|| CompileError::at(pos, "integer literal overflows"))?;
                self.bump();
            }
        }
        // Allow up to u32::MAX so `0xFFFFFFFF` works; it wraps to -1.
        if value > i64::from(u32::MAX) {
            return Err(CompileError::at(
                pos,
                "integer literal does not fit in 32 bits",
            ));
        }
        Ok(TokenKind::Int(value))
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii identifier");
        match text {
            "int" => TokenKind::KwInt,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "do" => TokenKind::KwDo,
            "return" => TokenKind::KwReturn,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            _ => TokenKind::Ident(text.to_owned()),
        }
    }

    fn operator(&mut self, pos: Pos) -> Result<TokenKind> {
        let b = self.bump().expect("caller checked non-empty");
        let kind = match b {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b'+' => {
                if self.eat(b'+') {
                    TokenKind::PlusPlus
                } else if self.eat(b'=') {
                    TokenKind::PlusAssign
                } else {
                    TokenKind::Plus
                }
            }
            b'-' => {
                if self.eat(b'-') {
                    TokenKind::MinusMinus
                } else if self.eat(b'=') {
                    TokenKind::MinusAssign
                } else {
                    TokenKind::Minus
                }
            }
            b'*' => {
                if self.eat(b'=') {
                    TokenKind::StarAssign
                } else {
                    TokenKind::Star
                }
            }
            b'/' => {
                if self.eat(b'=') {
                    TokenKind::SlashAssign
                } else {
                    TokenKind::Slash
                }
            }
            b'%' => {
                if self.eat(b'=') {
                    TokenKind::PercentAssign
                } else {
                    TokenKind::Percent
                }
            }
            b'=' => {
                if self.eat(b'=') {
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            b'!' => {
                if self.eat(b'=') {
                    TokenKind::NotEq
                } else {
                    TokenKind::Not
                }
            }
            b'<' => {
                if self.eat(b'=') {
                    TokenKind::Le
                } else if self.eat(b'<') {
                    if self.eat(b'=') {
                        TokenKind::ShlAssign
                    } else {
                        TokenKind::Shl
                    }
                } else {
                    TokenKind::Lt
                }
            }
            b'>' => {
                if self.eat(b'=') {
                    TokenKind::Ge
                } else if self.eat(b'>') {
                    if self.eat(b'=') {
                        TokenKind::ShrAssign
                    } else {
                        TokenKind::Shr
                    }
                } else {
                    TokenKind::Gt
                }
            }
            b'&' => {
                if self.eat(b'&') {
                    TokenKind::AndAnd
                } else if self.eat(b'=') {
                    TokenKind::AmpAssign
                } else {
                    TokenKind::Amp
                }
            }
            b'|' => {
                if self.eat(b'|') {
                    TokenKind::OrOr
                } else if self.eat(b'=') {
                    TokenKind::PipeAssign
                } else {
                    TokenKind::Pipe
                }
            }
            b'^' => {
                if self.eat(b'=') {
                    TokenKind::CaretAssign
                } else {
                    TokenKind::Caret
                }
            }
            b'~' => TokenKind::Tilde,
            _ => {
                return Err(CompileError::at(
                    pos,
                    format!("unexpected character `{}`", b as char),
                ))
            }
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("int x while whale"),
            vec![
                TokenKind::KwInt,
                TokenKind::Ident("x".into()),
                TokenKind::KwWhile,
                TokenKind::Ident("whale".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("0 42 0x10"),
            vec![
                TokenKind::Int(0),
                TokenKind::Int(42),
                TokenKind::Int(16),
                TokenKind::Eof
            ]
        );
        assert!(lex("0x").is_err());
        assert!(lex("4294967296").is_err());
        assert_eq!(kinds("4294967295")[0], TokenKind::Int(4294967295));
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            kinds("<<=  <= < == = != ! ++ +="),
            vec![
                TokenKind::ShlAssign,
                TokenKind::Le,
                TokenKind::Lt,
                TokenKind::EqEq,
                TokenKind::Assign,
                TokenKind::NotEq,
                TokenKind::Not,
                TokenKind::PlusPlus,
                TokenKind::PlusAssign,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments() {
        assert_eq!(
            kinds("1 // two\n3 /* four \n five */ 6"),
            vec![
                TokenKind::Int(1),
                TokenKind::Int(3),
                TokenKind::Int(6),
                TokenKind::Eof
            ]
        );
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn positions() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("int $x;").is_err());
        assert!(lex("a @ b").is_err());
    }
}
