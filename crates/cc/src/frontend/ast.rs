//! Abstract syntax tree for MiniC.
//!
//! MiniC is a deliberately small C subset: every value is a 32-bit signed
//! integer, aggregates are one-dimensional `int` arrays (global or local),
//! and the only side-effecting builtin is `print(x)`.

use crate::error::Pos;

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Short-circuit `&&`.
    LogAnd,
    /// Short-circuit `||`.
    LogOr,
}

/// Unary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Bitwise complement `~x`.
    BitNot,
    /// Logical not `!x` (yields 0 or 1).
    LogNot,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int { value: i32, pos: Pos },
    /// Variable reference.
    Var { name: String, pos: Pos },
    /// Array element read `a[i]`.
    Index {
        name: String,
        index: Box<Expr>,
        pos: Pos,
    },
    /// Function call `f(a, b)`.
    Call {
        name: String,
        args: Vec<Expr>,
        pos: Pos,
    },
    /// Binary operation.
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        pos: Pos,
    },
    /// Unary operation.
    Un {
        op: UnOp,
        operand: Box<Expr>,
        pos: Pos,
    },
}

impl Expr {
    /// The source position of the expression's head token.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int { pos, .. }
            | Expr::Var { pos, .. }
            | Expr::Index { pos, .. }
            | Expr::Call { pos, .. }
            | Expr::Bin { pos, .. }
            | Expr::Un { pos, .. } => *pos,
        }
    }
}

/// An assignment target: a scalar variable or an array element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// `x = …`
    Var { name: String, pos: Pos },
    /// `a[i] = …`
    Index {
        name: String,
        index: Box<Expr>,
        pos: Pos,
    },
}

impl LValue {
    /// The source position of the target.
    pub fn pos(&self) -> Pos {
        match self {
            LValue::Var { pos, .. } | LValue::Index { pos, .. } => *pos,
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `int x;` or `int x = e;`
    DeclScalar {
        name: String,
        init: Option<Expr>,
        pos: Pos,
    },
    /// `int a[N];`
    DeclArray { name: String, len: u32, pos: Pos },
    /// `lv = e;` (also produced by desugaring `+=`, `++` etc.).
    Assign {
        target: LValue,
        value: Expr,
        pos: Pos,
    },
    /// Expression statement (only calls are useful).
    Expr { value: Expr, pos: Pos },
    /// `if (c) { … } else { … }`
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
        pos: Pos,
    },
    /// `while (c) { … }`
    While {
        cond: Expr,
        body: Vec<Stmt>,
        pos: Pos,
    },
    /// `do { … } while (c);`
    DoWhile {
        body: Vec<Stmt>,
        cond: Expr,
        pos: Pos,
    },
    /// `for (init; cond; step) { … }` — init/step are desugared statements.
    For {
        init: Vec<Stmt>,
        cond: Option<Expr>,
        step: Vec<Stmt>,
        body: Vec<Stmt>,
        pos: Pos,
    },
    /// `return;` / `return e;`
    Return { value: Option<Expr>, pos: Pos },
    /// `break;`
    Break { pos: Pos },
    /// `continue;`
    Continue { pos: Pos },
}

/// A global variable: scalar (`len == None`) or array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Array length, or `None` for a scalar.
    pub len: Option<u32>,
    /// Initial value for scalars (arrays are zero-initialized).
    pub init: i32,
    /// Declaration position.
    pub pos: Pos,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Parameter names (all `int`).
    pub params: Vec<String>,
    /// Function body.
    pub body: Vec<Stmt>,
    /// Definition position.
    pub pos: Pos,
}

/// A complete MiniC translation unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Global variable declarations, in source order.
    pub globals: Vec<GlobalDecl>,
    /// Function definitions, in source order.
    pub funcs: Vec<FuncDecl>,
}
