//! # pgsd-exec — deterministic parallel job execution
//!
//! Every fan-out in this repository — variant populations, `benchmarks ×
//! configs × seeds` sweeps, differential-fuzzing iterations — is a set of
//! jobs that are independent by construction: job `i` is a pure function
//! of its index (builds are seeded, the emulator is deterministic). This
//! crate runs such job sets on a fixed number of worker threads while
//! keeping every observable output **byte-identical to the serial run**:
//!
//! * Work distribution is an atomic-index chunked queue: workers claim
//!   contiguous chunks of the index space with a single `fetch_add`, so
//!   scheduling is dynamic (good load balance for uneven jobs) but the
//!   *assignment* of work to indices never changes.
//! * Results are collected **by job index** into a pre-sized slot table,
//!   so the returned `Vec` is always in index order no matter which
//!   worker finished first.
//! * Anything order-sensitive (CSV rows, telemetry merging, error
//!   propagation, finding capture) is left to the caller, who walks the
//!   index-ordered results on one thread.
//!
//! With `threads <= 1` (or a single job) the queue is bypassed entirely
//! and jobs run inline on the calling thread — the serial path is not
//! merely equivalent, it is the same code the tests compare against.
//!
//! Thread counts resolve as: explicit request (`--threads N`), else the
//! `PGSD_THREADS` environment variable, else
//! [`std::thread::available_parallelism`].
//!
//! # Examples
//!
//! ```
//! let squares = pgsd_exec::run_jobs(4, 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of hardware threads, falling back to 1 when the platform
/// cannot report it.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Thread count requested via the `PGSD_THREADS` environment variable,
/// if set to a positive integer.
pub fn env_threads() -> Option<usize> {
    std::env::var("PGSD_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
}

/// Resolves an effective worker count: an explicit positive request
/// wins, else `PGSD_THREADS`, else [`available_threads`].
pub fn resolve_threads(requested: Option<usize>) -> usize {
    requested
        .filter(|&t| t >= 1)
        .or_else(env_threads)
        .unwrap_or_else(available_threads)
}

/// The default worker count when no explicit request is made
/// (`PGSD_THREADS`, else available parallelism).
pub fn default_threads() -> usize {
    resolve_threads(None)
}

/// Chunk width for the atomic index queue: aim for several chunks per
/// worker so uneven jobs rebalance, while amortizing queue traffic for
/// very large job counts.
fn chunk_size(jobs: usize, workers: usize) -> usize {
    (jobs / (workers * 8)).max(1)
}

/// Runs `jobs` independent jobs — `job(0)`, …, `job(jobs - 1)` — on up
/// to `threads` worker threads and returns the results **in job-index
/// order**, exactly as the serial loop `(0..jobs).map(job).collect()`
/// would.
///
/// `job` must be a pure function of its index for the determinism
/// guarantee to mean anything; all pgsd jobs are (builds are seeded,
/// emulation is deterministic). A panic in any job propagates to the
/// caller once all workers have stopped.
pub fn run_jobs<R, F>(threads: usize, jobs: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || jobs <= 1 {
        return (0..jobs).map(job).collect();
    }

    let chunk = chunk_size(jobs, threads);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..jobs).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs) {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= jobs {
                    break;
                }
                let end = (start + chunk).min(jobs);
                // Run the whole chunk before taking the lock so workers
                // spend their time in jobs, not contending on slots.
                let batch: Vec<(usize, R)> = (start..end).map(|i| (i, job(i))).collect();
                let mut table = slots.lock().expect("worker panicked while storing results");
                for (i, r) in batch {
                    table[i] = Some(r);
                }
            });
        }
    });

    slots
        .into_inner()
        .expect("worker panicked while storing results")
        .into_iter()
        .map(|slot| slot.expect("job queue left an index unfilled"))
        .collect()
}

/// Maps `items` through `f` in parallel, preserving order; `f` also
/// receives the item index for seed derivation.
pub fn map_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_jobs(threads, items.len(), |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_are_in_index_order_at_any_thread_count() {
        let serial = run_jobs(1, 100, |i| i * 3 + 1);
        for threads in [2, 3, 4, 7, 16] {
            assert_eq!(run_jobs(threads, 100, |i| i * 3 + 1), serial);
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits: Vec<AtomicU32> = (0..57).map(|_| AtomicU32::new(0)).collect();
        run_jobs(4, 57, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(run_jobs(16, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(run_jobs(16, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn uneven_job_durations_still_collect_in_order() {
        let out = run_jobs(4, 40, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn map_indexed_matches_serial_map() {
        let items: Vec<u64> = (0..33).map(|i| i * 11).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, v)| v + i as u64)
            .collect();
        assert_eq!(map_indexed(4, &items, |i, v| v + i as u64), serial);
    }

    #[test]
    fn chunking_covers_the_whole_range() {
        for jobs in [1usize, 2, 9, 64, 1000] {
            for workers in [2usize, 4, 8] {
                let c = chunk_size(jobs, workers);
                assert!(c >= 1);
                let out = run_jobs(workers, jobs, |i| i);
                assert_eq!(out.len(), jobs);
                let distinct: HashSet<usize> = out.into_iter().collect();
                assert_eq!(distinct.len(), jobs);
            }
        }
    }

    #[test]
    fn resolve_prefers_explicit_request() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(
            resolve_threads(Some(0)).max(1),
            resolve_threads(None).max(1)
        );
    }
}
