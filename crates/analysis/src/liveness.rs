//! Physical-register liveness over a machine function.
//!
//! Runs backward over allocated LIR (post register allocation, pre or post
//! frame lowering). Virtual registers are ignored — the lint driver flags
//! them separately — and implicit operands that `MInst::for_each_reg`
//! deliberately omits (stack traffic of `push`/`pop`, caller-saved
//! clobbers of `call`, the syscall register file of `int`) are added here,
//! because an analysis of machine state must see machine effects.

use pgsd_cc::lir::{MFunction, MInst, MTerm};
use pgsd_x86::{Reg, RegSet};

use crate::dataflow::{solve, Analysis, BlockFacts, Direction};

/// Backward physical-register liveness.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegLiveness;

/// The registers a `ret` hands back to the caller: the return value plus
/// the callee-saved set and the stack pointer the epilogue restored.
pub fn live_at_ret() -> RegSet {
    RegSet::of(&[Reg::Eax, Reg::Esp, Reg::Ebp, Reg::Ebx, Reg::Esi, Reg::Edi])
}

/// Def/use sets of one instruction at the physical-register level.
pub fn inst_defs_uses(inst: &MInst) -> (RegSet, RegSet) {
    let mut defs = RegSet::EMPTY;
    let mut uses = RegSet::EMPTY;
    inst.for_each_reg(|r, is_def| {
        if let pgsd_cc::lir::MReg::P(p) = r {
            if is_def {
                defs.insert(p);
            } else {
                uses.insert(p);
            }
        }
    });
    match inst {
        MInst::Push { .. } => {
            uses.insert(Reg::Esp);
            defs.insert(Reg::Esp);
        }
        MInst::Pop { .. } => {
            uses.insert(Reg::Esp);
            defs.insert(Reg::Esp);
        }
        MInst::Call { .. } => {
            // Arguments travel on the stack; eax/ecx/edx are clobbered.
            uses.insert(Reg::Esp);
            defs.insert(Reg::Esp);
            defs.insert(Reg::Eax);
            defs.insert(Reg::Ecx);
            defs.insert(Reg::Edx);
        }
        MInst::Int { .. } => {
            // Syscall gate: conservatively reads the whole register file
            // and defines nothing (keeping everything live across it).
            uses = RegSet::of(&Reg::ALL);
        }
        _ => {}
    }
    (defs, uses)
}

impl Analysis for RegLiveness {
    type Fact = RegSet;
    const DIRECTION: Direction = Direction::Backward;

    fn bottom(&self) -> RegSet {
        RegSet::EMPTY
    }

    fn boundary(&self, _func: &MFunction) -> RegSet {
        live_at_ret()
    }

    fn join(&self, into: &mut RegSet, other: &RegSet) {
        *into = into.union(*other);
    }

    fn transfer_inst(&self, inst: &MInst, live: &mut RegSet) {
        let (defs, uses) = inst_defs_uses(inst);
        *live = live.minus(defs).union(uses);
    }

    fn transfer_term(&self, _term: &MTerm, _live: &mut RegSet) {
        // Jumps read no registers in this machine model (no indirect
        // branches in LIR); `JCond` reads EFLAGS, which the flags
        // analysis tracks.
    }
}

/// Convenience: solved block facts for `func`.
pub fn reg_liveness(func: &MFunction) -> BlockFacts<RegSet> {
    solve(&RegLiveness, func)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgsd_cc::lir::{MBlock, MReg, MRhs, MTarget};
    use pgsd_x86::AluOp;

    fn p(r: Reg) -> MReg {
        MReg::P(r)
    }

    fn func(blocks: Vec<MBlock>) -> MFunction {
        MFunction {
            name: "t".into(),
            params: 0,
            blocks,
            num_vregs: 0,
            slot_words: Vec::new(),
            diversify: true,
            raw: false,
        }
    }

    #[test]
    fn straight_line_liveness() {
        // mov ebx, 1 ; add eax, ebx ; ret
        let f = func(vec![MBlock {
            instrs: vec![
                MInst::MovRI {
                    dst: p(Reg::Ebx),
                    imm: 1,
                },
                MInst::Alu {
                    op: AluOp::Add,
                    dst: p(Reg::Eax),
                    rhs: MRhs::Reg(p(Reg::Ebx)),
                },
            ],
            term: MTerm::Ret,
            ir_block: None,
        }]);
        let facts = reg_liveness(&f);
        let per = facts.per_inst(&RegLiveness, &f, 0);
        // After the mov: eax (still to be added), ebx (operand) both live.
        assert!(per[0].contains(Reg::Eax) && per[0].contains(Reg::Ebx));
        // Before the mov (block entry): ebx is dead — the mov defines it.
        assert!(!facts.entry[0].contains(Reg::Ebx));
        assert!(facts.entry[0].contains(Reg::Eax));
    }

    #[test]
    fn call_clobbers_and_loop_join() {
        // .L0: call f -> .L1 ; .L1: add eax, esi ; jcond -> .L1 / .L2 ; .L2: ret
        let f = func(vec![
            MBlock {
                instrs: vec![MInst::Call {
                    target: pgsd_cc::lir::CallTarget(0),
                }],
                term: MTerm::Jmp(MTarget::M(1)),
                ir_block: None,
            },
            MBlock {
                instrs: vec![MInst::Alu {
                    op: AluOp::Add,
                    dst: p(Reg::Eax),
                    rhs: MRhs::Reg(p(Reg::Esi)),
                }],
                term: MTerm::JCond {
                    cc: pgsd_x86::Cond::E,
                    t: MTarget::M(1),
                    f: MTarget::M(2),
                },
                ir_block: None,
            },
            MBlock {
                instrs: vec![],
                term: MTerm::Ret,
                ir_block: None,
            },
        ]);
        let facts = reg_liveness(&f);
        // esi is live around the loop and across the call into the entry.
        assert!(facts.entry[1].contains(Reg::Esi));
        assert!(facts.entry[0].contains(Reg::Esi));
        // eax is defined by the call, so it is dead at function entry.
        assert!(!facts.entry[0].contains(Reg::Eax));
    }
}
