//! Forward stack-depth tracking.
//!
//! Computes, at every program point, how many bytes the function has
//! pushed relative to its entry `esp` (entry depth 0; a `push` adds 4).
//! Join of two different known depths is [`StackFact::Conflict`]; writes
//! to `esp` the transfer function cannot model (`mov esp, r`,
//! `lea esp, …`, `pop esp`, non-immediate ALU) also conflict. The lint
//! driver turns a negative depth or an unbalanced `ret` into diagnostics.

use pgsd_cc::lir::{MFunction, MInst, MReg, MRhs, MTerm};
use pgsd_x86::{AluOp, Reg};

use crate::dataflow::{solve, Analysis, BlockFacts, Direction};

/// Lattice for the stack-depth analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackFact {
    /// Not yet reached (lattice bottom).
    Unreached,
    /// Exactly `bytes` pushed relative to the entry `esp`.
    Depth(i64),
    /// Reached with inconsistent or untrackable depths (lattice top).
    Conflict,
}

impl StackFact {
    fn bump(&mut self, delta: i64) {
        if let StackFact::Depth(d) = self {
            *d += delta;
        }
    }
}

fn is_esp(r: &MReg) -> bool {
    matches!(r, MReg::P(Reg::Esp))
}

/// Forward stack-depth analysis.
#[derive(Debug, Clone, Copy, Default)]
pub struct StackDepth;

impl Analysis for StackDepth {
    type Fact = StackFact;
    const DIRECTION: Direction = Direction::Forward;

    fn bottom(&self) -> StackFact {
        StackFact::Unreached
    }

    fn boundary(&self, _func: &MFunction) -> StackFact {
        StackFact::Depth(0)
    }

    fn join(&self, into: &mut StackFact, other: &StackFact) {
        *into = match (*into, *other) {
            (StackFact::Unreached, x) | (x, StackFact::Unreached) => x,
            (StackFact::Depth(a), StackFact::Depth(b)) if a == b => StackFact::Depth(a),
            _ => StackFact::Conflict,
        };
    }

    fn transfer_inst(&self, inst: &MInst, fact: &mut StackFact) {
        match inst {
            MInst::Push { .. } => fact.bump(4),
            MInst::Pop { dst } if is_esp(dst) => *fact = StackFact::Conflict,
            MInst::Pop { .. } => fact.bump(-4),
            MInst::Alu {
                op: AluOp::Sub,
                dst,
                rhs: MRhs::Imm(n),
            } if is_esp(dst) => {
                fact.bump(i64::from(*n));
            }
            MInst::Alu {
                op: AluOp::Add,
                dst,
                rhs: MRhs::Imm(n),
            } if is_esp(dst) => {
                fact.bump(-i64::from(*n));
            }
            // A call's push of the return address is popped by the
            // matching ret, and callees preserve esp: net zero.
            MInst::Call { .. } => {}
            // Any other way of writing esp is untrackable.
            _ => {
                let mut clobbers_esp = false;
                inst.for_each_reg(|r, is_def| {
                    if is_def && matches!(r, MReg::P(Reg::Esp)) {
                        clobbers_esp = true;
                    }
                });
                if clobbers_esp {
                    *fact = StackFact::Conflict;
                }
            }
        }
    }

    fn transfer_term(&self, _term: &MTerm, _fact: &mut StackFact) {}
}

/// Convenience: solved block facts for `func`.
pub fn stack_depth(func: &MFunction) -> BlockFacts<StackFact> {
    solve(&StackDepth, func)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgsd_cc::lir::{MBlock, MTarget};

    fn p(r: Reg) -> MReg {
        MReg::P(r)
    }

    fn func(blocks: Vec<MBlock>) -> MFunction {
        MFunction {
            name: "t".into(),
            params: 0,
            blocks,
            num_vregs: 0,
            slot_words: Vec::new(),
            diversify: true,
            raw: false,
        }
    }

    #[test]
    fn prologue_epilogue_balances() {
        // push ebp ; sub esp, 8 ; add esp, 8 ; pop ebp ; ret
        let f = func(vec![MBlock {
            instrs: vec![
                MInst::Push {
                    rhs: MRhs::Reg(p(Reg::Ebp)),
                },
                MInst::Alu {
                    op: AluOp::Sub,
                    dst: p(Reg::Esp),
                    rhs: MRhs::Imm(8),
                },
                MInst::Alu {
                    op: AluOp::Add,
                    dst: p(Reg::Esp),
                    rhs: MRhs::Imm(8),
                },
                MInst::Pop { dst: p(Reg::Ebp) },
            ],
            term: MTerm::Ret,
            ir_block: None,
        }]);
        let facts = stack_depth(&f);
        assert_eq!(facts.exit[0], StackFact::Depth(0));
        let per = facts.per_inst(&StackDepth, &f, 0);
        assert_eq!(per[1], StackFact::Depth(4)); // before the sub
        assert_eq!(per[2], StackFact::Depth(12)); // before the add
    }

    #[test]
    fn mismatched_join_conflicts() {
        // .L0: jcond -> .L1 / .L2 ; .L1: push -> .L3 ; .L2: -> .L3 ; .L3: ret
        let f = func(vec![
            MBlock {
                instrs: vec![],
                term: MTerm::JCond {
                    cc: pgsd_x86::Cond::E,
                    t: MTarget::M(1),
                    f: MTarget::M(2),
                },
                ir_block: None,
            },
            MBlock {
                instrs: vec![MInst::Push { rhs: MRhs::Imm(0) }],
                term: MTerm::Jmp(MTarget::M(3)),
                ir_block: None,
            },
            MBlock {
                instrs: vec![],
                term: MTerm::Jmp(MTarget::M(3)),
                ir_block: None,
            },
            MBlock {
                instrs: vec![],
                term: MTerm::Ret,
                ir_block: None,
            },
        ]);
        let facts = stack_depth(&f);
        assert_eq!(facts.entry[3], StackFact::Conflict);
    }

    #[test]
    fn untrackable_esp_write_conflicts() {
        let f = func(vec![MBlock {
            instrs: vec![MInst::MovRR {
                dst: p(Reg::Esp),
                src: p(Reg::Ebp),
            }],
            term: MTerm::Ret,
            ir_block: None,
        }]);
        assert_eq!(stack_depth(&f).exit[0], StackFact::Conflict);
    }
}
