//! Analysis diagnostics.
//!
//! Rendered in the same terse `location: message` style as the compiler's
//! `CompileError` (`cc/src/error.rs`), with machine-code locations —
//! function, block, instruction index, and the instruction's address when
//! the diagnostic refers to emitted bytes.
//!
//! Every finding carries a stable [`Rule`] identifier (`PGSD001`…), so
//! downstream tooling can filter, baseline, and gate on rule IDs without
//! parsing message text. Findings serialize to a deterministic,
//! schema-versioned JSON shape ([`AnalysisDiag::to_json`]) modeled on
//! SARIF result objects but small enough to hand-roll.

use std::fmt;

/// Version of the JSON diagnostic schema emitted by [`AnalysisDiag::to_json`]
/// and the audit/check report documents built on it. Bump on any change to
/// key names, key order, or value encoding.
pub const DIAG_SCHEMA_VERSION: u32 = 1;

/// How serious a finding is. Ordering is by severity: `Note < Warning <
/// Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: a fact worth surfacing (e.g. an indirect jump the
    /// analysis could not resolve) that is not by itself suspicious.
    Note,
    /// Suspicious but not provably wrong (analysis imprecision possible).
    Warning,
    /// Provably wrong, or a validation failure.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable identity of a diagnostic rule.
///
/// IDs are append-only: a rule keeps its `PGSDnnn` identifier forever, and
/// retired rules are never reused. [`Rule::from_id`] round-trips the ID
/// string, which the JSON schema tests pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// A virtual register survived register allocation (LIR lint).
    VregSurvives,
    /// A terminator targets a block index out of range (LIR lint).
    BranchTargetRange,
    /// Stack depth dips below the caller frame or `ret` fires with bytes
    /// still pushed (LIR lint).
    StackUnbalanced,
    /// EFLAGS are live at function entry (LIR lint).
    FlagsLiveAtEntry,
    /// Baseline and variant disagree beyond the declared transforms
    /// (translation validation).
    ValidationMismatch,
    /// Bytes in the image fail to decode where code was expected.
    Undecodable,
    /// Image-level layout mismatch between baseline and variant (function
    /// count, bounds, data segment).
    LayoutMismatch,
    /// A branch in the variant does not land on the image of its baseline
    /// target (translation validation).
    BranchRetarget,
    /// Recovered-CFG: code bytes that no path from an entry point reaches.
    UnreachableCode,
    /// Diversifier NOPs spent inside unreachable code.
    WastedNops,
    /// Abstract interpretation proved a path with imbalanced stack height
    /// at `ret`.
    StackImbalance,
    /// Stack height could not be bounded (overwritten `esp`, unresolved
    /// flow).
    StackUnbounded,
    /// A statically resolvable store writes into the executable text
    /// segment (W^X violation).
    WxViolation,
    /// A store target could not be statically resolved; W^X unproven for
    /// it.
    UnresolvedStore,
    /// An indirect jump or call whose targets the CFG recovery cannot
    /// enumerate; reachability is a may-underapproximation past it.
    UnresolvedIndirect,
}

/// Every rule, in stable ID order. Used by round-trip tests and docs.
pub const ALL_RULES: &[Rule] = &[
    Rule::VregSurvives,
    Rule::BranchTargetRange,
    Rule::StackUnbalanced,
    Rule::FlagsLiveAtEntry,
    Rule::ValidationMismatch,
    Rule::Undecodable,
    Rule::LayoutMismatch,
    Rule::BranchRetarget,
    Rule::UnreachableCode,
    Rule::WastedNops,
    Rule::StackImbalance,
    Rule::StackUnbounded,
    Rule::WxViolation,
    Rule::UnresolvedStore,
    Rule::UnresolvedIndirect,
];

impl Rule {
    /// The stable `PGSDnnn` identifier.
    pub fn id(self) -> &'static str {
        match self {
            Rule::VregSurvives => "PGSD001",
            Rule::BranchTargetRange => "PGSD002",
            Rule::StackUnbalanced => "PGSD003",
            Rule::FlagsLiveAtEntry => "PGSD004",
            Rule::ValidationMismatch => "PGSD005",
            Rule::Undecodable => "PGSD006",
            Rule::LayoutMismatch => "PGSD007",
            Rule::BranchRetarget => "PGSD008",
            Rule::UnreachableCode => "PGSD009",
            Rule::WastedNops => "PGSD010",
            Rule::StackImbalance => "PGSD011",
            Rule::StackUnbounded => "PGSD012",
            Rule::WxViolation => "PGSD013",
            Rule::UnresolvedStore => "PGSD014",
            Rule::UnresolvedIndirect => "PGSD015",
        }
    }

    /// Human-readable slug, stable like the ID.
    pub fn name(self) -> &'static str {
        match self {
            Rule::VregSurvives => "vreg-survives",
            Rule::BranchTargetRange => "branch-target-range",
            Rule::StackUnbalanced => "stack-unbalanced",
            Rule::FlagsLiveAtEntry => "flags-live-at-entry",
            Rule::ValidationMismatch => "validation-mismatch",
            Rule::Undecodable => "undecodable-bytes",
            Rule::LayoutMismatch => "layout-mismatch",
            Rule::BranchRetarget => "branch-retarget",
            Rule::UnreachableCode => "unreachable-code",
            Rule::WastedNops => "wasted-nops",
            Rule::StackImbalance => "stack-imbalance",
            Rule::StackUnbounded => "stack-unbounded",
            Rule::WxViolation => "wx-violation",
            Rule::UnresolvedStore => "unresolved-store",
            Rule::UnresolvedIndirect => "unresolved-indirect",
        }
    }

    /// Parses a `PGSDnnn` identifier back to the rule.
    pub fn from_id(id: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Where in a function a diagnostic points.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Loc {
    /// Function name.
    pub func: String,
    /// Machine block index, if the diagnostic is block-scoped.
    pub block: Option<usize>,
    /// Instruction index within the block, if instruction-scoped.
    pub inst: Option<usize>,
    /// Absolute address of emitted bytes, if the diagnostic refers to a
    /// decoded image rather than LIR.
    pub addr: Option<u32>,
}

impl Loc {
    /// A function-scoped location.
    pub fn func(name: impl Into<String>) -> Loc {
        Loc {
            func: name.into(),
            ..Loc::default()
        }
    }

    /// An instruction-scoped LIR location.
    pub fn inst(name: impl Into<String>, block: usize, inst: usize) -> Loc {
        Loc {
            func: name.into(),
            block: Some(block),
            inst: Some(inst),
            addr: None,
        }
    }

    /// An address-scoped machine-code location.
    pub fn addr(name: impl Into<String>, addr: u32) -> Loc {
        Loc {
            func: name.into(),
            block: None,
            inst: None,
            addr: Some(addr),
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.func)?;
        if let Some(b) = self.block {
            write!(f, ":.L{b}")?;
        }
        if let Some(i) = self.inst {
            write!(f, ":{i}")?;
        }
        if let Some(a) = self.addr {
            write!(f, "@{a:#x}")?;
        }
        Ok(())
    }
}

/// One finding from a dataflow lint, the variant validator, or the
/// whole-image audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisDiag {
    /// Stable rule identity of the finding.
    pub rule: Rule,
    /// Severity of the finding.
    pub severity: Severity,
    /// Location, when one is known.
    pub loc: Option<Loc>,
    /// Human-readable description (lowercase, no trailing period).
    pub message: String,
}

impl AnalysisDiag {
    /// Creates an error finding at `loc`.
    pub fn error(rule: Rule, loc: Loc, message: impl Into<String>) -> AnalysisDiag {
        AnalysisDiag {
            rule,
            severity: Severity::Error,
            loc: Some(loc),
            message: message.into(),
        }
    }

    /// Creates a warning finding at `loc`.
    pub fn warning(rule: Rule, loc: Loc, message: impl Into<String>) -> AnalysisDiag {
        AnalysisDiag {
            rule,
            severity: Severity::Warning,
            loc: Some(loc),
            message: message.into(),
        }
    }

    /// Creates a note finding at `loc`.
    pub fn note(rule: Rule, loc: Loc, message: impl Into<String>) -> AnalysisDiag {
        AnalysisDiag {
            rule,
            severity: Severity::Note,
            loc: Some(loc),
            message: message.into(),
        }
    }

    /// Creates a finding with no location (whole-image checks).
    pub fn global(rule: Rule, severity: Severity, message: impl Into<String>) -> AnalysisDiag {
        AnalysisDiag {
            rule,
            severity,
            loc: None,
            message: message.into(),
        }
    }

    /// Renders the finding as one deterministic JSON object.
    ///
    /// Key order is fixed (`rule`, `name`, `severity`, `func`, `block`,
    /// `inst`, `addr`, `message`); absent location fields serialize as
    /// `null` so every finding has an identical shape. Schema changes bump
    /// [`DIAG_SCHEMA_VERSION`].
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"rule\":\"");
        out.push_str(self.rule.id());
        out.push_str("\",\"name\":\"");
        out.push_str(self.rule.name());
        out.push_str("\",\"severity\":\"");
        out.push_str(&self.severity.to_string());
        out.push_str("\",\"func\":");
        match &self.loc {
            Some(loc) => {
                out.push('"');
                out.push_str(&json_escape(&loc.func));
                out.push('"');
                push_opt_usize(&mut out, ",\"block\":", loc.block);
                push_opt_usize(&mut out, ",\"inst\":", loc.inst);
                match loc.addr {
                    Some(a) => out.push_str(&format!(",\"addr\":{a}")),
                    None => out.push_str(",\"addr\":null"),
                }
            }
            None => out.push_str("null,\"block\":null,\"inst\":null,\"addr\":null"),
        }
        out.push_str(",\"message\":\"");
        out.push_str(&json_escape(&self.message));
        out.push_str("\"}");
        out
    }
}

fn push_opt_usize(out: &mut String, key: &str, v: Option<usize>) {
    match v {
        Some(n) => {
            out.push_str(key);
            out.push_str(&n.to_string());
        }
        None => {
            out.push_str(key);
            out.push_str("null");
        }
    }
}

/// Renders a slice of findings as a deterministic JSON array, in input
/// order. Sort before calling if a canonical order is wanted.
pub fn findings_json(diags: &[AnalysisDiag]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.to_json());
    }
    out.push(']');
    out
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for AnalysisDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.loc {
            Some(loc) => write!(
                f,
                "{loc}: {}[{}]: {}",
                self.severity, self.rule, self.message
            ),
            None => write!(f, "{}[{}]: {}", self.severity, self.rule, self.message),
        }
    }
}

impl std::error::Error for AnalysisDiag {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_compiler_style() {
        let d = AnalysisDiag::error(
            Rule::StackUnbalanced,
            Loc::inst("fib", 2, 5),
            "stack depth negative",
        );
        assert_eq!(
            d.to_string(),
            "fib:.L2:5: error[PGSD003]: stack depth negative"
        );
        let d = AnalysisDiag::warning(
            Rule::ValidationMismatch,
            Loc::addr("main", 0x1000),
            "unmatched instruction",
        );
        assert_eq!(
            d.to_string(),
            "main@0x1000: warning[PGSD005]: unmatched instruction"
        );
        let d = AnalysisDiag::global(
            Rule::LayoutMismatch,
            Severity::Error,
            "function count differs",
        );
        assert_eq!(d.to_string(), "error[PGSD007]: function count differs");
    }

    #[test]
    fn severity_orders_note_below_warning_below_error() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        let max = [Severity::Warning, Severity::Note, Severity::Error]
            .into_iter()
            .max();
        assert_eq!(max, Some(Severity::Error));
    }

    #[test]
    fn rule_ids_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &r in ALL_RULES {
            assert!(seen.insert(r.id()), "duplicate rule id {}", r.id());
            assert_eq!(Rule::from_id(r.id()), Some(r));
            assert!(r.id().starts_with("PGSD"));
            assert_eq!(r.id().len(), 7);
        }
        assert_eq!(Rule::from_id("PGSD999"), None);
        assert_eq!(Rule::from_id(""), None);
    }

    #[test]
    fn json_shape_is_stable() {
        let d = AnalysisDiag::error(
            Rule::WxViolation,
            Loc::addr("main", 0x8048000),
            "store writes text at 0x8048010",
        );
        assert_eq!(
            d.to_json(),
            "{\"rule\":\"PGSD013\",\"name\":\"wx-violation\",\"severity\":\"error\",\
             \"func\":\"main\",\"block\":null,\"inst\":null,\"addr\":134512640,\
             \"message\":\"store writes text at 0x8048010\"}"
        );
        let d = AnalysisDiag::global(Rule::LayoutMismatch, Severity::Warning, "say \"hi\"\n");
        assert_eq!(
            d.to_json(),
            "{\"rule\":\"PGSD007\",\"name\":\"layout-mismatch\",\"severity\":\"warning\",\
             \"func\":null,\"block\":null,\"inst\":null,\"addr\":null,\
             \"message\":\"say \\\"hi\\\"\\n\"}"
        );
        assert_eq!(findings_json(&[]), "[]");
    }
}
