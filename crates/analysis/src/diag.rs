//! Analysis diagnostics.
//!
//! Rendered in the same terse `location: message` style as the compiler's
//! `CompileError` (`cc/src/error.rs`), with machine-code locations —
//! function, block, instruction index, and the instruction's address when
//! the diagnostic refers to emitted bytes.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not provably wrong (analysis imprecision possible).
    Warning,
    /// Provably wrong, or a validation failure.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Where in a function a diagnostic points.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Loc {
    /// Function name.
    pub func: String,
    /// Machine block index, if the diagnostic is block-scoped.
    pub block: Option<usize>,
    /// Instruction index within the block, if instruction-scoped.
    pub inst: Option<usize>,
    /// Absolute address of emitted bytes, if the diagnostic refers to a
    /// decoded image rather than LIR.
    pub addr: Option<u32>,
}

impl Loc {
    /// A function-scoped location.
    pub fn func(name: impl Into<String>) -> Loc {
        Loc {
            func: name.into(),
            ..Loc::default()
        }
    }

    /// An instruction-scoped LIR location.
    pub fn inst(name: impl Into<String>, block: usize, inst: usize) -> Loc {
        Loc {
            func: name.into(),
            block: Some(block),
            inst: Some(inst),
            addr: None,
        }
    }

    /// An address-scoped machine-code location.
    pub fn addr(name: impl Into<String>, addr: u32) -> Loc {
        Loc {
            func: name.into(),
            block: None,
            inst: None,
            addr: Some(addr),
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.func)?;
        if let Some(b) = self.block {
            write!(f, ":.L{b}")?;
        }
        if let Some(i) = self.inst {
            write!(f, ":{i}")?;
        }
        if let Some(a) = self.addr {
            write!(f, "@{a:#x}")?;
        }
        Ok(())
    }
}

/// One finding from a dataflow lint or from the variant validator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisDiag {
    /// Severity of the finding.
    pub severity: Severity,
    /// Location, when one is known.
    pub loc: Option<Loc>,
    /// Human-readable description (lowercase, no trailing period).
    pub message: String,
}

impl AnalysisDiag {
    /// Creates an error finding at `loc`.
    pub fn error(loc: Loc, message: impl Into<String>) -> AnalysisDiag {
        AnalysisDiag {
            severity: Severity::Error,
            loc: Some(loc),
            message: message.into(),
        }
    }

    /// Creates a warning finding at `loc`.
    pub fn warning(loc: Loc, message: impl Into<String>) -> AnalysisDiag {
        AnalysisDiag {
            severity: Severity::Warning,
            loc: Some(loc),
            message: message.into(),
        }
    }

    /// Creates a finding with no location (whole-image checks).
    pub fn global(severity: Severity, message: impl Into<String>) -> AnalysisDiag {
        AnalysisDiag {
            severity,
            loc: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for AnalysisDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.loc {
            Some(loc) => write!(f, "{loc}: {}: {}", self.severity, self.message),
            None => write!(f, "{}: {}", self.severity, self.message),
        }
    }
}

impl std::error::Error for AnalysisDiag {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_compiler_style() {
        let d = AnalysisDiag::error(Loc::inst("fib", 2, 5), "stack depth negative");
        assert_eq!(d.to_string(), "fib:.L2:5: error: stack depth negative");
        let d = AnalysisDiag::warning(Loc::addr("main", 0x1000), "unmatched instruction");
        assert_eq!(d.to_string(), "main@0x1000: warning: unmatched instruction");
        let d = AnalysisDiag::global(Severity::Error, "function count differs");
        assert_eq!(d.to_string(), "error: function count differs");
    }
}
