//! A generic worklist dataflow solver over machine (LIR) control-flow
//! graphs.
//!
//! An [`Analysis`] supplies the lattice (`Fact` + [`Analysis::join`]), the
//! direction, and the per-instruction / per-terminator transfer functions;
//! [`solve`] iterates to the least fixpoint. Facts start from
//! [`Analysis::bottom`] and only grow through `join`, so for monotone
//! transfer functions on a finite lattice the result is the unique least
//! fixpoint — independent of iteration order. That property is what lets
//! the flags analysis here replace `subst_pass`'s original hand-rolled
//! two-pass version bit-for-bit.

use pgsd_cc::lir::{MFunction, MInst, MTerm};

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts propagate from block entries to exits (e.g. stack depth).
    Forward,
    /// Facts propagate from block exits to entries (e.g. liveness).
    Backward,
}

/// A dataflow problem over one [`MFunction`].
pub trait Analysis {
    /// The lattice element tracked at each program point.
    type Fact: Clone + PartialEq;

    /// Flow direction.
    const DIRECTION: Direction;

    /// The lattice bottom: the initial optimistic fact at every point.
    fn bottom(&self) -> Self::Fact;

    /// The boundary fact: at function entry for forward problems, at every
    /// function exit (a `Ret` terminator) for backward problems.
    fn boundary(&self, func: &MFunction) -> Self::Fact;

    /// Joins `other` into `into`. Must be monotone; `solve` detects
    /// convergence with `PartialEq`, not with a return value.
    fn join(&self, into: &mut Self::Fact, other: &Self::Fact);

    /// Applies one instruction's transfer function in the flow direction.
    fn transfer_inst(&self, inst: &MInst, fact: &mut Self::Fact);

    /// Applies a terminator's transfer function in the flow direction.
    fn transfer_term(&self, term: &MTerm, fact: &mut Self::Fact);
}

/// Per-block fixpoint facts computed by [`solve`].
///
/// For a **forward** problem, `entry[b]` holds at the first instruction of
/// block `b` and `exit[b]` after its terminator. For a **backward**
/// problem the names keep their *program-order* meaning: `entry[b]` holds
/// before the first instruction (the block's live-in) and `exit[b]` holds
/// at the start of the terminator (the join over successors plus the
/// terminator's own transfer).
#[derive(Debug, Clone)]
pub struct BlockFacts<F> {
    /// Fact at each block's first instruction.
    pub entry: Vec<F>,
    /// Fact at each block's terminator boundary (see type docs).
    pub exit: Vec<F>,
}

impl<F: Clone> BlockFacts<F> {
    /// Replays the transfer functions through block `b` of `func` and
    /// returns one fact per instruction: for a backward analysis the fact
    /// holding *after* each instruction executes, for a forward analysis
    /// the fact holding *before* it. These are the program points a
    /// transformation querying the analysis cares about.
    pub fn per_inst<A>(&self, a: &A, func: &MFunction, b: usize) -> Vec<F>
    where
        A: Analysis<Fact = F>,
    {
        let block = &func.blocks[b];
        let n = block.instrs.len();
        let mut out = vec![self.entry[b].clone(); n];
        match A::DIRECTION {
            Direction::Backward => {
                let mut fact = self.exit[b].clone();
                for (i, inst) in block.instrs.iter().enumerate().rev() {
                    out[i] = fact.clone();
                    a.transfer_inst(inst, &mut fact);
                }
            }
            Direction::Forward => {
                let mut fact = self.entry[b].clone();
                for (i, inst) in block.instrs.iter().enumerate() {
                    out[i] = fact.clone();
                    a.transfer_inst(inst, &mut fact);
                }
            }
        }
        out
    }
}

/// Generic worklist driver shared by [`solve`] and the binary-level
/// abstract interpreter ([`crate::absint`]).
///
/// Blocks are identified by index in `0..n`. `step(b)` recomputes block
/// `b`'s fact and returns the indices whose input changed as a result
/// (its dependents); the driver re-enqueues them with duplicate
/// suppression until no block reports a change. Termination is the
/// caller's obligation: `step` must be monotone over a lattice of finite
/// height (or widen).
pub fn fixpoint(
    n: usize,
    seed: impl IntoIterator<Item = usize>,
    mut step: impl FnMut(usize) -> Vec<usize>,
) {
    let mut queued = vec![false; n];
    let mut worklist: Vec<usize> = Vec::with_capacity(n);
    for b in seed {
        if b < n && !queued[b] {
            queued[b] = true;
            worklist.push(b);
        }
    }
    while let Some(b) = worklist.pop() {
        queued[b] = false;
        for d in step(b) {
            if d < n && !queued[d] {
                queued[d] = true;
                worklist.push(d);
            }
        }
    }
}

/// Runs `a` to its least fixpoint over `func`'s CFG.
pub fn solve<A: Analysis>(a: &A, func: &MFunction) -> BlockFacts<A::Fact> {
    let nb = func.blocks.len();
    let mut entry = vec![a.bottom(); nb];
    let mut exit = vec![a.bottom(); nb];
    if nb == 0 {
        return BlockFacts { entry, exit };
    }
    let preds = func.predecessors();

    // Seed the worklist in an order that tends to converge quickly:
    // reverse block order for backward problems, block order for forward.
    let seed: Vec<usize> = match A::DIRECTION {
        Direction::Forward => (0..nb).collect(),
        Direction::Backward => (0..nb).rev().collect(),
    };

    fixpoint(nb, seed, |b| {
        let block = &func.blocks[b];
        match A::DIRECTION {
            Direction::Backward => {
                // Input: join of successors' entry facts; Ret blocks take
                // the boundary fact.
                let succs = block.term.successors();
                let mut fact = if succs.is_empty() {
                    a.boundary(func)
                } else {
                    let mut f = a.bottom();
                    for s in &succs {
                        a.join(&mut f, &entry[*s as usize]);
                    }
                    f
                };
                a.transfer_term(&block.term, &mut fact);
                exit[b] = fact.clone();
                for inst in block.instrs.iter().rev() {
                    a.transfer_inst(inst, &mut fact);
                }
                if fact != entry[b] {
                    entry[b] = fact;
                    preds[b].iter().map(|p| *p as usize).collect()
                } else {
                    Vec::new()
                }
            }
            Direction::Forward => {
                // Input: join of predecessors' exit facts; the entry block
                // additionally joins the boundary fact (it may also be a
                // loop header with in-edges).
                let mut fact = a.bottom();
                if b == 0 {
                    a.join(&mut fact, &a.boundary(func));
                }
                for p in &preds[b] {
                    a.join(&mut fact, &exit[*p as usize]);
                }
                entry[b] = fact.clone();
                for inst in &block.instrs {
                    a.transfer_inst(inst, &mut fact);
                }
                a.transfer_term(&block.term, &mut fact);
                if fact != exit[b] {
                    exit[b] = fact;
                    block
                        .term
                        .successors()
                        .into_iter()
                        .map(|s| s as usize)
                        .collect()
                } else {
                    Vec::new()
                }
            }
        }
    });
    BlockFacts { entry, exit }
}
