//! Binary-level CFG and call-graph recovery over emitted images.
//!
//! Recursive-descent disassembly from the image's entry points
//! (`main` and the `__exit` return trampoline), using the `x86` decoder.
//! Every byte of the text segment ends up in exactly one class of the
//! byte-classification lattice:
//!
//! * **Reachable code** — covered by an instruction on some decoded path
//!   from an entry point.
//! * **Unreachable code** — decodes as instructions but no recovered path
//!   reaches it (dead functions, code behind shift jumps).
//! * **Padding** — a maximal undecoded run consisting solely of NOP-table
//!   identities (block-shift pads, alignment).
//! * **Data** — bytes that fail to decode; never executable on any
//!   recovered path.
//!
//! The recovery is a *may*-underapproximation past unresolved indirect
//! branches (`jmp r`/`call r`): their targets are not enumerated, so code
//! only reachable through them classifies as unreachable. The compiler
//! never emits indirect branches today, making the recovery exact; every
//! indirect branch found is surfaced as a [`Rule::UnresolvedIndirect`]
//! note so the claim stays honest if that changes.

use std::collections::{BTreeMap, BTreeSet};

use pgsd_cc::emit::Image;
use pgsd_x86::nop::NopTable;
use pgsd_x86::{decode, Inst};

use crate::diag::{AnalysisDiag, Loc, Rule};

/// Classification of one text byte. See the module docs for the lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ByteClass {
    /// Covered by an instruction reachable from an entry point.
    ReachableCode,
    /// Decodes as instructions, but no recovered path executes it.
    UnreachableCode,
    /// A run of NOP-table identities outside reachable code.
    Padding,
    /// Fails to decode; treated as data.
    Data,
}

impl ByteClass {
    /// Stable lowercase name used in JSON reports and telemetry labels.
    pub fn name(self) -> &'static str {
        match self {
            ByteClass::ReachableCode => "reachable",
            ByteClass::UnreachableCode => "unreachable",
            ByteClass::Padding => "padding",
            ByteClass::Data => "data",
        }
    }
}

/// Byte totals per [`ByteClass`] over a whole image.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByteCounts {
    /// Bytes classified [`ByteClass::ReachableCode`].
    pub reachable: usize,
    /// Bytes classified [`ByteClass::UnreachableCode`].
    pub unreachable: usize,
    /// Bytes classified [`ByteClass::Padding`].
    pub padding: usize,
    /// Bytes classified [`ByteClass::Data`].
    pub data: usize,
}

/// One recovered basic block: a maximal straight-line run of reachable
/// instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: u32,
    /// Address one past the last instruction's bytes.
    pub end: u32,
    /// Successor block start addresses, deduplicated and sorted.
    pub succs: Vec<u32>,
    /// Number of instructions in the block.
    pub insts: usize,
}

/// Recovered control flow of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncCfg {
    /// Function name from the image's layout table.
    pub name: String,
    /// Layout start address.
    pub start: u32,
    /// Layout end address (exclusive).
    pub end: u32,
    /// Whether any recovered path from an entry point reaches it.
    pub reachable: bool,
    /// Basic blocks sorted by start address; empty when unreachable.
    pub blocks: Vec<BasicBlock>,
    /// Indices (into [`RecoveredCfg::funcs`]) of statically resolved
    /// callees, deduplicated and sorted.
    pub callees: Vec<usize>,
}

/// The whole-image recovery result.
#[derive(Debug, Clone)]
pub struct RecoveredCfg {
    /// Text segment base address.
    pub base: u32,
    /// Per-byte classification, indexed by text offset.
    pub classes: Vec<ByteClass>,
    /// `true` at offsets where a reachable instruction starts (the
    /// *intended* instruction boundaries).
    pub inst_starts: Vec<bool>,
    /// Per-function recovered CFGs, in image layout order.
    pub funcs: Vec<FuncCfg>,
    /// Decoded reachable instructions: address → (length, instruction).
    pub insts: BTreeMap<u32, (usize, Inst)>,
    /// Findings produced during recovery (unresolved indirects, wasted
    /// NOPs, undecodable reachable bytes).
    pub diags: Vec<AnalysisDiag>,
    /// Count of indirect branches whose targets were not enumerated.
    pub unresolved_indirects: usize,
}

impl RecoveredCfg {
    /// The class of the byte at text offset `off` (Data when out of
    /// range).
    pub fn class_at(&self, off: usize) -> ByteClass {
        self.classes.get(off).copied().unwrap_or(ByteClass::Data)
    }

    /// Whether text offset `off` is an intended (reachable) instruction
    /// start.
    pub fn is_inst_start(&self, off: usize) -> bool {
        self.inst_starts.get(off).copied().unwrap_or(false)
    }

    /// Byte totals per class.
    pub fn byte_counts(&self) -> ByteCounts {
        let mut c = ByteCounts::default();
        for cls in &self.classes {
            match cls {
                ByteClass::ReachableCode => c.reachable += 1,
                ByteClass::UnreachableCode => c.unreachable += 1,
                ByteClass::Padding => c.padding += 1,
                ByteClass::Data => c.data += 1,
            }
        }
        c
    }

    /// Total reachable instructions.
    pub fn reachable_insts(&self) -> usize {
        self.insts.len()
    }

    /// The function containing address `addr`, if any.
    pub fn func_at(&self, addr: u32) -> Option<&FuncCfg> {
        self.funcs.iter().find(|f| f.start <= addr && addr < f.end)
    }
}

/// The absolute target of a direct relative branch ending at `next`.
fn rel_target(inst: &Inst, next: u32) -> Option<u32> {
    match *inst {
        Inst::CallRel(r) | Inst::JmpRel(r) | Inst::Jcc(_, r) => Some(next.wrapping_add(r as u32)),
        Inst::JmpRel8(r) | Inst::Jcc8(_, r) => Some(next.wrapping_add(r as i32 as u32)),
        _ => None,
    }
}

/// Recovers the CFG, call graph, and byte classification of `image`.
///
/// Entry points are `image.main_addr` (where execution starts) and
/// `image.exit_addr` (the return trampoline the runtime points `main`'s
/// return address at).
pub fn recover(image: &Image) -> RecoveredCfg {
    let base = image.base;
    let n = image.text.len();
    let mut diags = Vec::new();
    let mut insts: BTreeMap<u32, (usize, Inst)> = BTreeMap::new();
    let mut unresolved_indirects = 0usize;

    // Function lookup by entry address and by containing range.
    let entry_of: BTreeMap<u32, usize> = image
        .funcs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.start, i))
        .collect();
    let func_of = |addr: u32| -> Option<usize> {
        image
            .funcs
            .iter()
            .position(|f| f.start <= addr && addr < f.end)
    };

    let mut reachable = vec![false; image.funcs.len()];
    let mut callees: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); image.funcs.len()];
    // Per-function: branch targets (block leaders) and addresses whose
    // following instruction starts a block.
    let mut leaders: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); image.funcs.len()];
    // Per-function intra-procedural edges (from-instruction, to-address).
    let mut edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); image.funcs.len()];

    let mut func_queue: Vec<usize> = Vec::new();
    for root in [image.main_addr, image.exit_addr] {
        if let Some(&fi) = entry_of.get(&root) {
            if !reachable[fi] {
                reachable[fi] = true;
                func_queue.push(fi);
            }
        } else {
            diags.push(AnalysisDiag::global(
                Rule::LayoutMismatch,
                crate::diag::Severity::Warning,
                format!("entry point {root:#x} is not a function start"),
            ));
        }
    }

    while let Some(fi) = func_queue.pop() {
        let f = &image.funcs[fi];
        leaders[fi].insert(f.start);
        let mut inst_queue: Vec<u32> = vec![f.start];
        while let Some(addr) = inst_queue.pop() {
            if addr < f.start || addr >= f.end {
                // A direct branch escaping its function's range would be a
                // layout bug; record and stop the path.
                diags.push(AnalysisDiag::error(
                    Rule::BranchTargetRange,
                    Loc::addr(&f.name, addr),
                    "branch target escapes the containing function",
                ));
                continue;
            }
            if insts.contains_key(&addr) {
                continue;
            }
            let off = (addr - base) as usize;
            let d = match decode(&image.text[off..(f.end - base) as usize]) {
                Ok(d) => d,
                Err(e) => {
                    diags.push(AnalysisDiag::error(
                        Rule::Undecodable,
                        Loc::addr(&f.name, addr),
                        format!("reachable bytes fail to decode: {e:?}"),
                    ));
                    continue;
                }
            };
            let Some(inst) = d.known().cloned() else {
                diags.push(AnalysisDiag::warning(
                    Rule::Undecodable,
                    Loc::addr(&f.name, addr),
                    "reachable instruction outside the compiler's model",
                ));
                continue;
            };
            let len = d.len;
            let next = addr.wrapping_add(len as u32);
            insts.insert(addr, (len, inst));

            match inst {
                Inst::Ret | Inst::RetImm(_) | Inst::Hlt => {
                    if next < f.end {
                        leaders[fi].insert(next);
                    }
                }
                Inst::JmpRel(_) | Inst::JmpRel8(_) => {
                    let t = rel_target(&inst, next).expect("relative jump");
                    leaders[fi].insert(t);
                    edges[fi].push((addr, t));
                    inst_queue.push(t);
                    if next < f.end {
                        leaders[fi].insert(next);
                    }
                }
                Inst::Jcc(..) | Inst::Jcc8(..) => {
                    let t = rel_target(&inst, next).expect("relative jcc");
                    leaders[fi].insert(t);
                    edges[fi].push((addr, t));
                    inst_queue.push(t);
                    if next < f.end {
                        leaders[fi].insert(next);
                        edges[fi].push((addr, next));
                        inst_queue.push(next);
                    }
                }
                Inst::CallRel(_) => {
                    let t = rel_target(&inst, next).expect("relative call");
                    match entry_of.get(&t) {
                        Some(&ci) => {
                            callees[fi].insert(ci);
                            if !reachable[ci] {
                                reachable[ci] = true;
                                func_queue.push(ci);
                            }
                        }
                        None => diags.push(AnalysisDiag::error(
                            Rule::BranchTargetRange,
                            Loc::addr(&f.name, addr),
                            format!("call target {t:#x} is not a function entry"),
                        )),
                    }
                    // The callee returns here.
                    if next < f.end {
                        inst_queue.push(next);
                    }
                }
                Inst::JmpR(_) => {
                    unresolved_indirects += 1;
                    diags.push(AnalysisDiag::note(
                        Rule::UnresolvedIndirect,
                        Loc::addr(&f.name, addr),
                        "indirect jump: targets not enumerated, reachability is an \
                         underapproximation past this point",
                    ));
                    if next < f.end {
                        leaders[fi].insert(next);
                    }
                }
                Inst::CallR(_) => {
                    unresolved_indirects += 1;
                    diags.push(AnalysisDiag::note(
                        Rule::UnresolvedIndirect,
                        Loc::addr(&f.name, addr),
                        "indirect call: callee not enumerated in the call graph",
                    ));
                    if next < f.end {
                        inst_queue.push(next);
                    }
                }
                // `int` gates to the runtime and, conservatively, falls
                // through (the `__exit` stub never returns, but its
                // trailing `ret` keeps the image well-formed and is
                // harmless to walk).
                _ => {
                    if next < f.end {
                        inst_queue.push(next);
                    }
                }
            }
        }
    }

    // Byte classification: reachable instruction bytes first.
    let mut classes = vec![ByteClass::Data; n];
    let mut inst_starts = vec![false; n];
    for (&addr, &(len, _)) in &insts {
        let off = (addr - base) as usize;
        inst_starts[off] = true;
        for b in classes.iter_mut().skip(off).take(len) {
            *b = ByteClass::ReachableCode;
        }
    }

    // Gap sweep: classify every maximal unreached run as padding (pure
    // NOP-table identities), unreachable code (decodable), or data. Runs
    // are cut at function starts so findings attribute to the function
    // that owns the bytes.
    let boundaries: BTreeSet<usize> = image
        .funcs
        .iter()
        .map(|f| (f.start - base) as usize)
        .collect();
    let nop_candidates = decoded_nop_candidates();
    let mut off = 0usize;
    while off < n {
        if classes[off] == ByteClass::ReachableCode {
            off += 1;
            continue;
        }
        let run_start = off;
        off += 1;
        while off < n && classes[off] != ByteClass::ReachableCode && !boundaries.contains(&off) {
            off += 1;
        }
        classify_gap(
            image,
            base,
            run_start,
            off,
            &nop_candidates,
            &mut classes,
            &mut diags,
            &func_of,
        );
    }

    // Block partitioning per reachable function.
    let mut funcs = Vec::with_capacity(image.funcs.len());
    for (fi, f) in image.funcs.iter().enumerate() {
        let blocks = if reachable[fi] {
            build_blocks(f.start, f.end, &insts, &leaders[fi], &edges[fi])
        } else {
            Vec::new()
        };
        funcs.push(FuncCfg {
            name: f.name.clone(),
            start: f.start,
            end: f.end,
            reachable: reachable[fi],
            blocks,
            callees: callees[fi].iter().copied().collect(),
        });
    }

    RecoveredCfg {
        base,
        classes,
        inst_starts,
        funcs,
        insts,
        diags,
        unresolved_indirects,
    }
}

/// The decoded instruction forms of the full NOP table (xchg included, so
/// padding recognition is independent of the declared transform config).
fn decoded_nop_candidates() -> Vec<Inst> {
    NopTable::with_xchg()
        .iter()
        .filter_map(|k| decode(k.bytes()).ok().and_then(|d| d.known().cloned()))
        .collect()
}

/// Classifies one maximal unreached byte run `[run_start, run_end)`.
#[allow(clippy::too_many_arguments)]
fn classify_gap(
    image: &Image,
    base: u32,
    run_start: usize,
    run_end: usize,
    nop_candidates: &[Inst],
    classes: &mut [ByteClass],
    diags: &mut Vec<AnalysisDiag>,
    func_of: &dyn Fn(u32) -> Option<usize>,
) {
    // Linear decode with byte-wise resync on failure.
    let mut decoded: Vec<(usize, usize, bool)> = Vec::new(); // (off, len, is_nop)
    let mut all_decoded = true;
    let mut all_nops = true;
    let mut nop_bytes = 0usize;
    let mut p = run_start;
    while p < run_end {
        match decode(&image.text[p..run_end]) {
            Ok(d) if d.known().is_some() => {
                let is_nop = d.known().is_some_and(|inst| nop_candidates.contains(inst));
                if is_nop {
                    nop_bytes += d.len;
                } else {
                    all_nops = false;
                }
                decoded.push((p, d.len, is_nop));
                p += d.len;
            }
            _ => {
                all_decoded = false;
                all_nops = false;
                p += 1;
            }
        }
    }

    if all_decoded && all_nops && !decoded.is_empty() {
        for b in classes.iter_mut().take(run_end).skip(run_start) {
            *b = ByteClass::Padding;
        }
        return;
    }

    for &(off, len, _) in &decoded {
        for b in classes.iter_mut().skip(off).take(len) {
            *b = ByteClass::UnreachableCode;
        }
    }
    // Remaining bytes in the run stay Data.

    let addr = base.wrapping_add(run_start as u32);
    let fname = func_of(addr)
        .map(|i| image.funcs[i].name.clone())
        .unwrap_or_else(|| "<image>".to_string());
    if !decoded.is_empty() {
        diags.push(AnalysisDiag::note(
            Rule::UnreachableCode,
            Loc::addr(&fname, addr),
            format!(
                "{} bytes of unreachable code ({} instructions)",
                decoded.iter().map(|&(_, l, _)| l).sum::<usize>(),
                decoded.len()
            ),
        ));
    }
    if nop_bytes > 0 {
        diags.push(AnalysisDiag::warning(
            Rule::WastedNops,
            Loc::addr(&fname, addr),
            format!("{nop_bytes} NOP bytes inserted into unreachable code"),
        ));
    }
}

/// Partitions a function's reachable instructions into basic blocks.
fn build_blocks(
    start: u32,
    end: u32,
    insts: &BTreeMap<u32, (usize, Inst)>,
    leaders: &BTreeSet<u32>,
    edges: &[(u32, u32)],
) -> Vec<BasicBlock> {
    // Walk the function's reachable instructions in address order,
    // cutting at leaders and after control flow. `term_addr` records the
    // block-ending instruction, if the cut came from one.
    struct Raw {
        start: u32,
        end: u32,
        insts: usize,
        term_addr: Option<u32>,
    }
    let mut raws: Vec<Raw> = Vec::new();
    let mut cur: Option<Raw> = None;
    let mut prev_end: Option<u32> = None;

    for (addr, (len, inst)) in insts.range(start..end) {
        let (addr, len) = (*addr, *len);
        let inst_end = addr.wrapping_add(len as u32);
        let discontinuous = prev_end != Some(addr);
        if leaders.contains(&addr) || discontinuous || cur.is_none() {
            if let Some(r) = cur.take() {
                raws.push(r);
            }
            cur = Some(Raw {
                start: addr,
                end: inst_end,
                insts: 1,
                term_addr: None,
            });
        } else if let Some(r) = cur.as_mut() {
            r.end = inst_end;
            r.insts += 1;
        }
        prev_end = Some(inst_end);

        // Control flow ends the block (calls fall through and stay
        // inside their block).
        let ends_block = matches!(
            inst,
            Inst::Ret
                | Inst::RetImm(_)
                | Inst::Hlt
                | Inst::JmpRel(_)
                | Inst::JmpRel8(_)
                | Inst::JmpR(_)
                | Inst::Jcc(..)
                | Inst::Jcc8(..)
        );
        if ends_block {
            let mut r = cur.take().expect("current block");
            r.term_addr = Some(addr);
            raws.push(r);
            prev_end = None;
        }
    }
    if let Some(r) = cur.take() {
        raws.push(r);
    }

    // Successors: a block cut by a control-flow instruction takes that
    // instruction's recorded edges (branch target and, for conditional
    // branches, fallthrough); a block cut only by a leader falls through
    // to the contiguous next block.
    let leader_set: BTreeSet<u32> = raws.iter().map(|r| r.start).collect();
    let mut out = Vec::with_capacity(raws.len());
    for (w, r) in raws.iter().enumerate() {
        let mut succs: BTreeSet<u32> = BTreeSet::new();
        match r.term_addr {
            Some(t) => {
                for &(from, to) in edges {
                    if from == t && leader_set.contains(&to) {
                        succs.insert(to);
                    }
                }
            }
            None => {
                if let Some(next) = raws.get(w + 1) {
                    if next.start == r.end {
                        succs.insert(next.start);
                    }
                }
            }
        }
        out.push(BasicBlock {
            start: r.start,
            end: r.end,
            succs: succs.into_iter().collect(),
            insts: r.insts,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgsd_cc::driver::compile;

    fn image_of(src: &str) -> Image {
        compile("t", src).expect("compiles")
    }

    #[test]
    fn straight_line_program_is_fully_classified() {
        let img = image_of("int main() { return 41; }");
        let cfg = recover(&img);
        assert_eq!(cfg.classes.len(), img.text.len());
        let c = cfg.byte_counts();
        assert_eq!(
            c.reachable + c.unreachable + c.padding + c.data,
            img.text.len(),
            "every byte classified exactly once"
        );
        assert!(c.reachable > 0);
        let main = cfg
            .funcs
            .iter()
            .find(|f| f.name == "main")
            .expect("main recovered");
        assert!(main.reachable);
        assert!(!main.blocks.is_empty());
    }

    #[test]
    fn branches_split_blocks_and_link_successors() {
        let img = image_of(
            "int main(int n) { int s; s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }",
        );
        let cfg = recover(&img);
        let main = cfg.funcs.iter().find(|f| f.name == "main").unwrap();
        assert!(main.blocks.len() >= 3, "loop yields multiple blocks");
        // Some block must have two successors (the loop condition).
        assert!(
            main.blocks.iter().any(|b| b.succs.len() == 2),
            "{:?}",
            main.blocks
        );
        // Every successor is a block leader.
        let starts: BTreeSet<u32> = main.blocks.iter().map(|b| b.start).collect();
        for b in &main.blocks {
            for s in &b.succs {
                assert!(starts.contains(s), "succ {s:#x} is not a leader");
            }
        }
    }

    #[test]
    fn call_graph_links_caller_to_callee() {
        let img = image_of("int f(int x) { return x + 1; }\nint main() { return f(1); }");
        let cfg = recover(&img);
        let main_idx = cfg.funcs.iter().position(|f| f.name == "main").unwrap();
        let f_idx = cfg.funcs.iter().position(|f| f.name == "f").unwrap();
        assert!(cfg.funcs[f_idx].reachable, "callee is reachable");
        assert!(
            cfg.funcs[main_idx].callees.contains(&f_idx),
            "call graph edge main -> f"
        );
    }

    #[test]
    fn uncalled_function_is_unreachable() {
        let img = image_of("int dead(int x) { return x * 2; }\nint main() { return 7; }");
        let cfg = recover(&img);
        let dead = cfg.funcs.iter().find(|f| f.name == "dead").unwrap();
        assert!(!dead.reachable);
        // Its bytes classify as unreachable code, not data.
        let s = (dead.start - cfg.base) as usize;
        assert_eq!(cfg.class_at(s), ByteClass::UnreachableCode);
        assert!(cfg
            .diags
            .iter()
            .any(|d| d.rule == Rule::UnreachableCode && d.loc.as_ref().unwrap().func == "dead"));
    }

    #[test]
    fn no_diags_worse_than_note_on_clean_baseline() {
        let img = image_of("int main(int n) { return n + 1; }");
        let cfg = recover(&img);
        for d in &cfg.diags {
            assert!(
                d.severity < crate::diag::Severity::Error,
                "unexpected error on clean build: {d}"
            );
        }
    }
}
