//! # pgsd-analysis — machine-code dataflow and translation validation
//!
//! Static-analysis layer of the *profile-guided automated software
//! diversity* reproduction (Homescu et al., CGO 2013). Two layers:
//!
//! 1. **A dataflow framework over LIR** ([`dataflow`]): a generic
//!    worklist solver over machine CFGs with three concrete analyses —
//!    register liveness ([`liveness`]), EFLAGS liveness ([`flags`], the
//!    generalized form of the analysis the substitution pass used to
//!    carry privately), and stack-depth tracking ([`stack`]) — plus a
//!    lint driver ([`lint`]) that reports findings as [`AnalysisDiag`]s.
//!
//! 2. **A variant validator** ([`divcheck`]): given a baseline image and
//!    a diversified image, statically prove they are equivalent modulo
//!    the declared transforms — inserted bytes decode to NOP-table
//!    identities, substitutions stay inside the known equivalence
//!    classes, block shifting is one jump over dead padding, register
//!    randomization is a clean bijection, and every branch lands on the
//!    image of its baseline target.
//!
//! 3. **A whole-image static audit** ([`mod@cfg`], [`absint`], [`audit`]):
//!    recursive-descent CFG and call-graph recovery over emitted images
//!    with a byte-classification map, abstract interpretation (stack
//!    height and register value ranges) proving stack bounds and W⊕X
//!    consistency, and reachability classification of surviving ROP
//!    gadgets. Findings carry stable rule IDs ([`diag::Rule`]) and
//!    export as deterministic, schema-versioned JSON.
//!
//! The paper argues diversified binaries are safe because each transform
//! is semantics-preserving by construction; `divcheck` turns that
//! argument into a machine-checked one per build, in the spirit of
//! translation validation.
//!
//! # Examples
//!
//! Running the flags analysis over a lowered function:
//!
//! ```
//! use pgsd_analysis::flags::flags_live_after;
//! use pgsd_cc::driver::{frontend, lower_module};
//!
//! let module = frontend("t", "int main() { return 4 / 2; }")?;
//! let funcs = lower_module(&module)?;
//! for f in &funcs {
//!     let live = flags_live_after(f);
//!     assert_eq!(live.len(), f.blocks.len());
//! }
//! # Ok::<(), pgsd_cc::error::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod addrmap;
pub mod audit;
pub mod cfg;
pub mod dataflow;
pub mod diag;
pub mod divcheck;
pub mod flags;
pub mod lint;
pub mod liveness;
pub mod stack;

pub use addrmap::{AddrMap, BaselineLoc, FuncEntry, ADDRMAP_MAGIC};
pub use audit::{
    audit_image, classify_offsets, sort_findings, ImageAudit, SurvivorAuditReport, SurvivorClass,
    SurvivorCounts,
};
pub use cfg::{recover, ByteClass, ByteCounts, RecoveredCfg};
pub use dataflow::{fixpoint, solve, Analysis, BlockFacts, Direction};
pub use diag::{findings_json, AnalysisDiag, Loc, Rule, Severity, DIAG_SCHEMA_VERSION};
pub use divcheck::{check_images, check_images_mapped, CheckReport, Transforms};
