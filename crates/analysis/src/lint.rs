//! Dataflow-backed lints over lowered machine functions.
//!
//! Runs the stack-depth and flags analyses over each function and reports
//! structural problems as [`AnalysisDiag`]s: unbalanced stacks at `ret`,
//! depths that dip below the caller's frame, conditional branches whose
//! flags may come from before function entry, leftover virtual registers,
//! and branch targets outside the function.

use pgsd_cc::lir::{MFunction, MReg, MTerm};

use crate::diag::{AnalysisDiag, Loc, Rule};
use crate::flags::FlagsLiveness;
use crate::stack::{stack_depth, StackDepth, StackFact};

/// Lints one machine function. `raw` runtime stubs are skipped: they use
/// `int` gates and hand-managed frames the analyses cannot model.
pub fn lint_function(func: &MFunction) -> Vec<AnalysisDiag> {
    let mut out = Vec::new();
    if func.raw {
        return out;
    }

    // Leftover virtual registers mean register allocation never ran (or
    // missed an operand) — the emitter would reject them anyway, but the
    // lint localizes the failure.
    for (bi, block) in func.blocks.iter().enumerate() {
        for (ii, inst) in block.instrs.iter().enumerate() {
            let mut vreg = None;
            inst.for_each_reg(|r, _| {
                if let MReg::V(v) = r {
                    vreg = Some(v);
                }
            });
            if let Some(v) = vreg {
                out.push(AnalysisDiag::error(
                    Rule::VregSurvives,
                    Loc::inst(&func.name, bi, ii),
                    format!("virtual register v{v} survives register allocation"),
                ));
            }
        }
    }

    // Branch targets must stay inside the function.
    let nb = func.blocks.len();
    for (bi, block) in func.blocks.iter().enumerate() {
        for s in block.term.successors() {
            if s as usize >= nb {
                out.push(AnalysisDiag::error(
                    Rule::BranchTargetRange,
                    Loc {
                        func: func.name.clone(),
                        block: Some(bi),
                        inst: None,
                        addr: None,
                    },
                    format!("terminator targets nonexistent block .L{s}"),
                ));
            }
        }
    }
    if out.iter().any(|d| d.message.contains("nonexistent block")) {
        // The CFG is malformed; the dataflow solver would index out of
        // bounds, so stop here.
        return out;
    }

    // Stack balance.
    let depths = stack_depth(func);
    for (bi, block) in func.blocks.iter().enumerate() {
        let per = depths.per_inst(&StackDepth, func, bi);
        for (ii, fact) in per.iter().enumerate() {
            if let StackFact::Depth(d) = fact {
                if *d < 0 {
                    out.push(AnalysisDiag::error(
                        Rule::StackUnbalanced,
                        Loc::inst(&func.name, bi, ii),
                        format!("stack depth {d} dips below the caller frame"),
                    ));
                }
            }
        }
        match (&block.term, depths.exit[bi]) {
            (MTerm::Ret, StackFact::Depth(d)) if d != 0 => {
                out.push(AnalysisDiag::error(
                    Rule::StackUnbalanced,
                    Loc {
                        func: func.name.clone(),
                        block: Some(bi),
                        inst: None,
                        addr: None,
                    },
                    format!("ret with {d} bytes still pushed"),
                ));
            }
            (MTerm::Ret, StackFact::Conflict) => {
                out.push(AnalysisDiag::warning(
                    Rule::StackUnbalanced,
                    Loc {
                        func: func.name.clone(),
                        block: Some(bi),
                        inst: None,
                        addr: None,
                    },
                    "ret reached with untrackable stack depth".to_string(),
                ));
            }
            _ => {}
        }
    }

    // A conditional branch whose flags may originate before function
    // entry reads undefined flags.
    let flags = crate::dataflow::solve(&FlagsLiveness, func);
    if nb > 0 && flags.entry[0] {
        out.push(AnalysisDiag::warning(
            Rule::FlagsLiveAtEntry,
            Loc::func(&func.name),
            "arithmetic flags are live at function entry (conditional branch may read \
             undefined flags)",
        ));
    }

    out
}

/// Lints every function of a lowered module.
pub fn lint_functions(funcs: &[MFunction]) -> Vec<AnalysisDiag> {
    funcs.iter().flat_map(lint_function).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgsd_cc::lir::{MBlock, MInst, MRhs, MTarget};
    use pgsd_x86::Reg;

    fn func(blocks: Vec<MBlock>) -> MFunction {
        MFunction {
            name: "t".into(),
            params: 0,
            blocks,
            num_vregs: 0,
            slot_words: Vec::new(),
            diversify: true,
            raw: false,
        }
    }

    #[test]
    fn balanced_function_is_clean() {
        let f = func(vec![MBlock {
            instrs: vec![
                MInst::Push {
                    rhs: MRhs::Reg(MReg::P(Reg::Ebp)),
                },
                MInst::Pop {
                    dst: MReg::P(Reg::Ebp),
                },
            ],
            term: MTerm::Ret,
            ir_block: None,
        }]);
        assert!(lint_function(&f).is_empty());
    }

    #[test]
    fn unbalanced_ret_is_flagged() {
        let f = func(vec![MBlock {
            instrs: vec![MInst::Push { rhs: MRhs::Imm(7) }],
            term: MTerm::Ret,
            ir_block: None,
        }]);
        let diags = lint_function(&f);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("4 bytes still pushed")),
            "{diags:?}"
        );
    }

    #[test]
    fn underflow_is_flagged() {
        let f = func(vec![MBlock {
            instrs: vec![
                MInst::Pop {
                    dst: MReg::P(Reg::Eax),
                },
                MInst::Push { rhs: MRhs::Imm(0) },
            ],
            term: MTerm::Ret,
            ir_block: None,
        }]);
        let diags = lint_function(&f);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("below the caller frame")),
            "{diags:?}"
        );
    }

    #[test]
    fn leftover_vreg_is_flagged() {
        let f = func(vec![MBlock {
            instrs: vec![MInst::MovRI {
                dst: MReg::V(3),
                imm: 0,
            }],
            term: MTerm::Ret,
            ir_block: None,
        }]);
        let diags = lint_function(&f);
        assert!(
            diags.iter().any(|d| d.message.contains("v3 survives")),
            "{diags:?}"
        );
    }

    #[test]
    fn entry_flags_read_is_flagged() {
        let f = func(vec![
            MBlock {
                instrs: vec![],
                term: MTerm::JCond {
                    cc: pgsd_x86::Cond::E,
                    t: MTarget::M(1),
                    f: MTarget::M(1),
                },
                ir_block: None,
            },
            MBlock {
                instrs: vec![],
                term: MTerm::Ret,
                ir_block: None,
            },
        ]);
        let diags = lint_function(&f);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("live at function entry")),
            "{diags:?}"
        );
    }
}
