//! EFLAGS liveness over a machine function.
//!
//! A single boolean fact — "may the arithmetic flags be read before they
//! are fully redefined?" — flowing backward. This is the generalized form
//! of the analysis `subst_pass` originally carried privately: because both
//! formulations compute the least fixpoint of the same monotone equations
//! (initialized to `false`, joined with `∨`), the result here is
//! bit-identical to the old two-pass version, and the substitution pass
//! now calls [`flags_live_after`] instead.

use pgsd_cc::lir::{MFunction, MInst, MTerm};

use crate::dataflow::{solve, Analysis, Direction};

/// Backward EFLAGS liveness.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlagsLiveness;

impl Analysis for FlagsLiveness {
    type Fact = bool;
    const DIRECTION: Direction = Direction::Backward;

    fn bottom(&self) -> bool {
        false
    }

    /// Flags are dead at `ret`: the ABI makes no promises about EFLAGS.
    fn boundary(&self, _func: &MFunction) -> bool {
        false
    }

    fn join(&self, into: &mut bool, other: &bool) {
        *into = *into || *other;
    }

    fn transfer_inst(&self, inst: &MInst, live: &mut bool) {
        if inst.reads_eflags() {
            *live = true;
        } else if inst.defines_all_eflags() {
            *live = false;
        }
    }

    /// A conditional branch is the canonical flags reader.
    fn transfer_term(&self, term: &MTerm, live: &mut bool) {
        if matches!(term, MTerm::JCond { .. }) {
            *live = true;
        }
    }
}

/// Per-instruction flags liveness for `func`: `live[b][i]` is `true` when
/// the flags may be read after instruction `i` of block `b` executes (so a
/// flag-changing rewrite of instruction `i` is unsafe).
pub fn flags_live_after(func: &MFunction) -> Vec<Vec<bool>> {
    let a = FlagsLiveness;
    let facts = solve(&a, func);
    (0..func.blocks.len())
        .map(|b| facts.per_inst(&a, func, b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgsd_cc::lir::{MBlock, MReg, MRhs, MTarget};
    use pgsd_x86::{AluOp, Cond, Reg};

    fn func(blocks: Vec<MBlock>) -> MFunction {
        MFunction {
            name: "t".into(),
            params: 0,
            blocks,
            num_vregs: 0,
            slot_words: Vec::new(),
            diversify: true,
            raw: false,
        }
    }

    fn p(r: Reg) -> MReg {
        MReg::P(r)
    }

    #[test]
    fn jcond_keeps_flags_live_back_through_block() {
        // .L0: cmp eax, 0 ; mov ecx, 1 ; jcond E -> .L1 else .L2
        // .L1: ret   .L2: ret
        let f = func(vec![
            MBlock {
                instrs: vec![
                    MInst::Cmp {
                        lhs: p(Reg::Eax),
                        rhs: MRhs::Imm(0),
                    },
                    MInst::MovRI {
                        dst: p(Reg::Ecx),
                        imm: 1,
                    },
                ],
                term: MTerm::JCond {
                    cc: Cond::E,
                    t: MTarget::M(1),
                    f: MTarget::M(2),
                },
                ir_block: None,
            },
            MBlock {
                instrs: vec![],
                term: MTerm::Ret,
                ir_block: None,
            },
            MBlock {
                instrs: vec![],
                term: MTerm::Ret,
                ir_block: None,
            },
        ]);
        let live = flags_live_after(&f);
        // After the cmp the flags are live (the mov does not define them);
        // after the mov they are still live (the jcond reads them).
        assert_eq!(live[0], vec![true, true]);
    }

    #[test]
    fn full_definition_kills_liveness() {
        // .L0: cmp ; add (defines all flags) ; jcond
        let f = func(vec![
            MBlock {
                instrs: vec![
                    MInst::Cmp {
                        lhs: p(Reg::Eax),
                        rhs: MRhs::Imm(0),
                    },
                    MInst::Alu {
                        op: AluOp::Add,
                        dst: p(Reg::Ecx),
                        rhs: MRhs::Imm(1),
                    },
                ],
                term: MTerm::JCond {
                    cc: Cond::E,
                    t: MTarget::M(1),
                    f: MTarget::M(1),
                },
                ir_block: None,
            },
            MBlock {
                instrs: vec![],
                term: MTerm::Ret,
                ir_block: None,
            },
        ]);
        let live = flags_live_after(&f);
        // After the cmp the add will redefine flags before the jcond reads
        // them, so the cmp's flags are dead; after the add they are live.
        assert_eq!(live[0], vec![false, true]);
    }

    #[test]
    fn liveness_crosses_loop_edges() {
        // .L0: cmp -> .L1
        // .L1: (empty) jcond -> .L1 / .L2 — flags live around the loop.
        let f = func(vec![
            MBlock {
                instrs: vec![MInst::Cmp {
                    lhs: p(Reg::Eax),
                    rhs: MRhs::Imm(0),
                }],
                term: MTerm::Jmp(MTarget::M(1)),
                ir_block: None,
            },
            MBlock {
                instrs: vec![],
                term: MTerm::JCond {
                    cc: Cond::E,
                    t: MTarget::M(1),
                    f: MTarget::M(2),
                },
                ir_block: None,
            },
            MBlock {
                instrs: vec![],
                term: MTerm::Ret,
                ir_block: None,
            },
        ]);
        let live = flags_live_after(&f);
        assert_eq!(live[0], vec![true]);
    }
}
