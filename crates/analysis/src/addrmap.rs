//! Invertible baseline↔variant address maps.
//!
//! `divcheck`'s structural walk proves each variant instruction
//! corresponds to a baseline instruction — and, as a byproduct, computes
//! exactly the mapping a fleet crash reporter needs: for every baseline
//! instruction address, the half-open range of variant addresses that
//! "belong" to it (the instruction itself plus any run of inserted NOPs
//! that falls through into it). This module turns that byproduct into a
//! persistent artifact: an [`AddrMap`] that answers both
//! [`baseline_to_variant`](AddrMap::baseline_to_variant) and
//! [`variant_to_baseline`](AddrMap::variant_to_baseline) lookups and
//! serializes to a compact delta/run-length binary encoding
//! ([`AddrMap::encode`] / [`AddrMap::decode`]).
//!
//! The encoding exploits two invariants of the validation walk: within a
//! function, baseline addresses and variant addresses both increase
//! strictly monotonically, so consecutive pairs are stored as small
//! deltas, and runs of identical deltas (straight-line code with no
//! diversification between two points) collapse into one run-length
//! group. Undiversified, byte-identical functions (the runtime library —
//! the common case, which `divcheck` never even decodes) are stored as a
//! single *linear* entry: `variant = baseline + constant`.
//!
//! Decoding is defensive: a checksum trailer detects truncation and
//! corruption, and every read is bounds-checked, so a damaged artifact
//! yields an error — never a panic, and never a silently wrong map.

/// Magic prefix of the binary encoding ("PGSD AddrMap v1").
pub const ADDRMAP_MAGIC: &[u8; 8] = b"PGSDAMP1";

/// One function's slice of the map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncEntry {
    /// Function name (shared between baseline and variant).
    pub name: String,
    /// First baseline address of the function.
    pub base_start: u32,
    /// One past the last baseline address.
    pub base_end: u32,
    /// First variant address of the function.
    pub var_start: u32,
    /// One past the last variant address.
    pub var_end: u32,
    /// Byte-identical function: `variant = baseline + (var_start -
    /// base_start)` and `pairs` is empty.
    pub linear: bool,
    /// `(baseline, lo, hi)` per baseline instruction, sorted by
    /// `baseline`: the matching variant instruction starts at `hi`, and
    /// `lo ≤ hi` extends down through the run of inserted NOPs that
    /// falls through into it.
    pub pairs: Vec<(u32, u32, u32)>,
}

impl FuncEntry {
    /// Builds a linear (byte-identical) entry.
    pub fn linear(name: &str, base_start: u32, base_end: u32, var_start: u32) -> FuncEntry {
        FuncEntry {
            name: name.to_string(),
            base_start,
            base_end,
            var_start,
            var_end: var_start + (base_end - base_start),
            linear: true,
            pairs: Vec::new(),
        }
    }
}

/// A symbolicated location: the baseline image of a variant address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineLoc {
    /// Name of the containing function.
    pub function: String,
    /// Baseline address of the instruction the variant address maps to.
    pub addr: u32,
}

/// An invertible baseline↔variant address map for one (baseline,
/// variant) image pair, produced by
/// [`check_images_mapped`](crate::divcheck::check_images_mapped).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AddrMap {
    /// Per-function entries, in image layout order.
    pub funcs: Vec<FuncEntry>,
}

impl AddrMap {
    /// Maps a baseline instruction address to its variant address range
    /// `(lo, hi)`: the matched instruction starts at `hi`, and any
    /// address in `[lo, hi]` falls through to it. Returns `None` when
    /// the address is outside every function or not on an instruction
    /// boundary.
    pub fn baseline_to_variant(&self, addr: u32) -> Option<(u32, u32)> {
        let f = self
            .funcs
            .iter()
            .find(|f| f.base_start <= addr && addr < f.base_end)?;
        if f.linear {
            return Some((
                addr - f.base_start + f.var_start,
                addr - f.base_start + f.var_start,
            ));
        }
        let i = f.pairs.partition_point(|&(b, _, _)| b <= addr);
        match f.pairs.get(i.checked_sub(1)?) {
            Some(&(b, lo, hi)) if b == addr => Some((lo, hi)),
            _ => None,
        }
    }

    /// Maps a variant address back to the baseline instruction it
    /// belongs to. Addresses inside an inserted NOP run, mid-pattern in
    /// a substitution, or in a shift prologue resolve to the baseline
    /// instruction they execute on behalf of (the next matched one).
    /// Returns `None` when the address is outside every function.
    pub fn variant_to_baseline(&self, addr: u32) -> Option<BaselineLoc> {
        let f = self
            .funcs
            .iter()
            .find(|f| f.var_start <= addr && addr < f.var_end)?;
        let base = if f.linear {
            addr - f.var_start + f.base_start
        } else {
            // Last pair whose span starts at or before `addr`. A span
            // covers the matched instruction at `hi`, the NOP run `[lo,
            // hi)` that falls through into it, and any trailing
            // substitution-pattern bytes before the next span — all of
            // which execute on behalf of the same baseline instruction.
            // Shift-prologue bytes before the first span bind to the
            // function entry (the prologue jumps there).
            let i = f.pairs.partition_point(|&(_, lo, _)| lo <= addr);
            match f.pairs.get(i.saturating_sub(1)) {
                Some(&(b, _, _)) => b,
                // A diversified function with no matched instructions
                // (empty body) — nothing to bind to.
                None => return None,
            }
        };
        Some(BaselineLoc {
            function: f.name.clone(),
            addr: base,
        })
    }

    /// Serializes to the delta/run-length binary form. Inverse of
    /// [`AddrMap::decode`].
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.funcs.len() * 32);
        out.extend_from_slice(ADDRMAP_MAGIC);
        push_varint(&mut out, self.funcs.len() as u32);
        for f in &self.funcs {
            push_varint(&mut out, f.name.len() as u32);
            out.extend_from_slice(f.name.as_bytes());
            out.extend_from_slice(&f.base_start.to_le_bytes());
            out.extend_from_slice(&f.base_end.to_le_bytes());
            out.extend_from_slice(&f.var_start.to_le_bytes());
            out.extend_from_slice(&f.var_end.to_le_bytes());
            out.push(u8::from(f.linear));
            if f.linear {
                continue;
            }
            push_varint(&mut out, f.pairs.len() as u32);
            // Delta-encode against the previous pair (function bounds for
            // the first), run-length collapsing identical delta groups.
            let mut prev = (f.base_start, f.var_start);
            let mut i = 0usize;
            while i < f.pairs.len() {
                let group = delta_of(f.pairs[i], prev);
                let mut n = 1usize;
                let mut p = step(prev, f.pairs[i]);
                while i + n < f.pairs.len() && delta_of(f.pairs[i + n], p) == group {
                    p = step(p, f.pairs[i + n]);
                    n += 1;
                }
                push_varint(&mut out, n as u32);
                push_varint(&mut out, group.0);
                push_varint(&mut out, group.1);
                push_varint(&mut out, group.2);
                prev = p;
                i += n;
            }
        }
        let sum = fnv64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes the binary form produced by [`AddrMap::encode`].
    ///
    /// # Errors
    ///
    /// Any irregularity — truncation, bad magic, checksum mismatch,
    /// malformed varints or UTF-8 — is an error, never a panic.
    pub fn decode(bytes: &[u8]) -> Result<AddrMap, String> {
        if bytes.len() < ADDRMAP_MAGIC.len() + 8 {
            return Err("addr map truncated".into());
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let sum = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        if fnv64(body) != sum {
            return Err("addr map checksum mismatch".into());
        }
        if &body[..ADDRMAP_MAGIC.len()] != ADDRMAP_MAGIC {
            return Err("addr map bad magic".into());
        }
        let mut pos = ADDRMAP_MAGIC.len();
        let nfuncs = read_varint(body, &mut pos)?;
        let mut funcs = Vec::new();
        for _ in 0..nfuncs {
            let nlen = read_varint(body, &mut pos)? as usize;
            let name_bytes = body
                .get(pos..pos.checked_add(nlen).ok_or("name length overflow")?)
                .ok_or("addr map truncated in name")?;
            let name =
                String::from_utf8(name_bytes.to_vec()).map_err(|_| "name not UTF-8".to_string())?;
            pos += nlen;
            let base_start = read_u32(body, &mut pos)?;
            let base_end = read_u32(body, &mut pos)?;
            let var_start = read_u32(body, &mut pos)?;
            let var_end = read_u32(body, &mut pos)?;
            let linear = match body.get(pos) {
                Some(0) => false,
                Some(1) => true,
                _ => return Err("addr map bad linear flag".into()),
            };
            pos += 1;
            let mut pairs = Vec::new();
            if !linear {
                let npairs = read_varint(body, &mut pos)? as usize;
                let mut prev = (base_start, var_start);
                while pairs.len() < npairs {
                    let n = read_varint(body, &mut pos)?;
                    let db = read_varint(body, &mut pos)?;
                    let dh = read_varint(body, &mut pos)?;
                    let pad = read_varint(body, &mut pos)?;
                    if n == 0 || pairs.len() + n as usize > npairs {
                        return Err("addr map bad run length".into());
                    }
                    for _ in 0..n {
                        let b = prev.0.checked_add(db).ok_or("pair overflow")?;
                        let hi = prev.1.checked_add(dh).ok_or("pair overflow")?;
                        let lo = hi.checked_sub(pad).ok_or("pair underflow")?;
                        pairs.push((b, lo, hi));
                        prev = (b, hi);
                    }
                }
            }
            funcs.push(FuncEntry {
                name,
                base_start,
                base_end,
                var_start,
                var_end,
                linear,
                pairs,
            });
        }
        if pos != body.len() {
            return Err("addr map trailing bytes".into());
        }
        Ok(AddrMap { funcs })
    }
}

/// Delta of `pair` against the previous `(base, hi)` position:
/// `(d_base, d_hi, pad)` with `pad = hi - lo`.
fn delta_of(pair: (u32, u32, u32), prev: (u32, u32)) -> (u32, u32, u32) {
    let (b, lo, hi) = pair;
    (
        b.wrapping_sub(prev.0),
        hi.wrapping_sub(prev.1),
        hi.wrapping_sub(lo),
    )
}

/// Advances the previous-position cursor past `pair`.
fn step(_prev: (u32, u32), pair: (u32, u32, u32)) -> (u32, u32) {
    (pair.0, pair.2)
}

fn push_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let mut v: u32 = 0;
    for shift in (0..35).step_by(7) {
        let b = *bytes.get(*pos).ok_or("addr map truncated in varint")?;
        *pos += 1;
        let low = u32::from(b & 0x7f);
        if shift == 28 && low > 0xf {
            return Err("varint overflows u32".into());
        }
        v |= low << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err("varint too long".into())
}

fn read_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let s = bytes
        .get(*pos..*pos + 4)
        .ok_or("addr map truncated in u32")?;
    *pos += 4;
    Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
}

/// Local FNV-1a 64 (the artifact must not depend on `pgsd-cache`).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AddrMap {
        AddrMap {
            funcs: vec![
                FuncEntry::linear("memset", 0x1000, 0x1010, 0x1000),
                FuncEntry {
                    name: "main".into(),
                    base_start: 0x1010,
                    base_end: 0x1020,
                    var_start: 0x1010,
                    var_end: 0x1030,
                    linear: false,
                    pairs: vec![
                        (0x1010, 0x1012, 0x1014), // shift prologue before it
                        (0x1012, 0x1016, 0x1016),
                        (0x1015, 0x1019, 0x101b), // NOP run [0x1019, 0x101b)
                        (0x101a, 0x1020, 0x1020),
                    ],
                },
            ],
        }
    }

    #[test]
    fn round_trips_through_the_binary_encoding() {
        let m = sample();
        let enc = m.encode();
        let dec = AddrMap::decode(&enc).expect("decodes");
        assert_eq!(dec, m);
        assert_eq!(dec.encode(), enc, "encode∘decode∘encode is identity");
    }

    #[test]
    fn forward_lookup_hits_instruction_boundaries_only() {
        let m = sample();
        assert_eq!(m.baseline_to_variant(0x1012), Some((0x1016, 0x1016)));
        assert_eq!(m.baseline_to_variant(0x1015), Some((0x1019, 0x101b)));
        assert_eq!(m.baseline_to_variant(0x1013), None, "mid-instruction");
        assert_eq!(m.baseline_to_variant(0x2000), None, "outside any function");
        // Linear functions map every byte.
        assert_eq!(m.baseline_to_variant(0x1007), Some((0x1007, 0x1007)));
    }

    #[test]
    fn reverse_lookup_binds_padding_to_the_following_instruction() {
        let m = sample();
        // Exact instruction start.
        assert_eq!(m.variant_to_baseline(0x1016).unwrap().addr, 0x1012);
        // Inside the NOP run [0x1019, 0x101b) that falls through into
        // baseline 0x1015's instruction: binds to that instruction.
        assert_eq!(m.variant_to_baseline(0x101a).unwrap().addr, 0x1015);
        // Trailing bytes after a span (mid-substitution-pattern) bind
        // down to the instruction that owns the span.
        assert_eq!(m.variant_to_baseline(0x1017).unwrap().addr, 0x1012);
        // Shift prologue bytes before the first matched instruction.
        assert_eq!(m.variant_to_baseline(0x1010).unwrap().addr, 0x1010);
        assert_eq!(m.variant_to_baseline(0x1010).unwrap().function, "main");
        assert_eq!(m.variant_to_baseline(0x5000), None);
    }

    #[test]
    fn corrupt_inputs_error_and_never_panic() {
        let enc = sample().encode();
        assert!(AddrMap::decode(&[]).is_err());
        assert!(AddrMap::decode(&enc[..enc.len() - 1]).is_err(), "truncated");
        let mut flipped = enc.clone();
        flipped[10] ^= 0xff;
        assert!(AddrMap::decode(&flipped).is_err(), "checksum catches flip");
        let mut bad_magic = enc;
        bad_magic[0] ^= 0xff;
        assert!(AddrMap::decode(&bad_magic).is_err());
    }
}
