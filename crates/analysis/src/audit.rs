//! Whole-image static audit: byte classification, abstract-interpretation
//! summaries, and gadget reachability classification.
//!
//! [`audit_image`] recovers the CFG of one emitted image, runs the
//! abstract interpreter over it, classifies a caller-provided set of
//! gadget offsets (the `gadget` crate's survivor hits — this crate takes
//! plain byte offsets to stay independent of the scanner), and folds
//! everything into an [`ImageAudit`] with a deterministic JSON rendering.
//!
//! A gadget's start offset falls into exactly one [`SurvivorClass`]:
//! every offset is classified, so per-class counts always sum to the
//! total — the property the `pgsd audit` acceptance gate checks.

use pgsd_cc::emit::Image;

use crate::absint::{interpret, AbsReport};
use crate::cfg::{recover, ByteClass, ByteCounts, RecoveredCfg};
use crate::diag::{findings_json, AnalysisDiag, Severity};

/// Reachability class of one gadget start offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SurvivorClass {
    /// Starts on an intended instruction boundary in reachable code —
    /// the attacker-relevant class.
    Reachable,
    /// Inside reachable code but off the intended boundaries (classic
    /// unaligned-decode ROP material).
    UnintendedBoundary,
    /// In unreachable code, padding, or data: never executed on any
    /// recovered path.
    DeadBytes,
}

impl SurvivorClass {
    /// Stable lowercase name used in JSON reports and telemetry labels.
    pub fn name(self) -> &'static str {
        match self {
            SurvivorClass::Reachable => "reachable",
            SurvivorClass::UnintendedBoundary => "unintended-boundary",
            SurvivorClass::DeadBytes => "dead-bytes",
        }
    }
}

/// Classifies one text offset against a recovered CFG.
pub fn classify_offset(cfg: &RecoveredCfg, off: usize) -> SurvivorClass {
    if cfg.is_inst_start(off) {
        SurvivorClass::Reachable
    } else if cfg.class_at(off) == ByteClass::ReachableCode {
        SurvivorClass::UnintendedBoundary
    } else {
        SurvivorClass::DeadBytes
    }
}

/// Per-class totals of classified gadget offsets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SurvivorCounts {
    /// [`SurvivorClass::Reachable`] hits.
    pub reachable: usize,
    /// [`SurvivorClass::UnintendedBoundary`] hits.
    pub unintended: usize,
    /// [`SurvivorClass::DeadBytes`] hits.
    pub dead: usize,
}

impl SurvivorCounts {
    /// Total classified offsets (always the input length: classification
    /// is a total function).
    pub fn total(&self) -> usize {
        self.reachable + self.unintended + self.dead
    }

    /// Folds another count in.
    pub fn add(&mut self, other: &SurvivorCounts) {
        self.reachable += other.reachable;
        self.unintended += other.unintended;
        self.dead += other.dead;
    }
}

/// Classifies every offset and tallies per class.
pub fn classify_offsets(cfg: &RecoveredCfg, offsets: &[usize]) -> SurvivorCounts {
    let mut c = SurvivorCounts::default();
    for &off in offsets {
        match classify_offset(cfg, off) {
            SurvivorClass::Reachable => c.reachable += 1,
            SurvivorClass::UnintendedBoundary => c.unintended += 1,
            SurvivorClass::DeadBytes => c.dead += 1,
        }
    }
    c
}

/// Aggregated survivor classification for one transform configuration
/// across a variant population (what `table2` reports per config).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SurvivorAuditReport {
    /// Gadgets in the undiversified baseline.
    pub baseline_gadgets: usize,
    /// Variants folded in.
    pub variants: usize,
    /// Per-class survivor totals summed over all variants.
    pub counts: SurvivorCounts,
}

impl SurvivorAuditReport {
    /// Folds one variant's classified survivors in.
    pub fn add_variant(&mut self, counts: &SurvivorCounts) {
        self.variants += 1;
        self.counts.add(counts);
    }

    /// Mean raw survivors per variant.
    pub fn avg_survivors(&self) -> f64 {
        if self.variants == 0 {
            0.0
        } else {
            self.counts.total() as f64 / self.variants as f64
        }
    }

    /// Mean *reachability-weighted* survivors per variant: only hits an
    /// attacker can actually reach count.
    pub fn avg_reachable(&self) -> f64 {
        if self.variants == 0 {
            0.0
        } else {
            self.counts.reachable as f64 / self.variants as f64
        }
    }
}

/// The full static audit of one image.
#[derive(Debug, Clone)]
pub struct ImageAudit {
    /// Byte totals per classification.
    pub bytes: ByteCounts,
    /// Reachable (intended) instructions recovered.
    pub insts: usize,
    /// Indirect branches whose targets were not enumerated.
    pub unresolved_indirects: usize,
    /// Functions in the image.
    pub funcs_total: usize,
    /// Functions reachable from the entry points.
    pub funcs_reachable: usize,
    /// Reachable functions proven to return with a balanced stack.
    pub funcs_balanced: usize,
    /// Maximum proven per-function stack bound in bytes, when every
    /// reachable function is bounded.
    pub stack_bound: Option<u32>,
    /// Stores proven to write only stack or data.
    pub checked_stores: usize,
    /// Stores whose target could not be resolved.
    pub unresolved_stores: usize,
    /// Stores proven to write executable text (W⊕X violations).
    pub wx_violations: usize,
    /// Classified gadget offsets.
    pub survivors: SurvivorCounts,
    /// All findings from recovery and interpretation, canonically sorted.
    pub findings: Vec<AnalysisDiag>,
}

impl ImageAudit {
    /// Findings at or above `sev`.
    pub fn findings_at_least(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|d| d.severity >= sev).count()
    }

    /// Deterministic JSON object for this audit (fixed key order, no
    /// floats, findings pre-sorted).
    pub fn to_json(&self) -> String {
        let b = &self.bytes;
        let s = &self.survivors;
        format!(
            "{{\"bytes\":{{\"reachable\":{},\"unreachable\":{},\"padding\":{},\"data\":{}}},\
             \"insts\":{},\"unresolved_indirects\":{},\
             \"funcs\":{{\"total\":{},\"reachable\":{},\"balanced\":{}}},\
             \"stack_bound\":{},\
             \"stores\":{{\"checked\":{},\"unresolved\":{},\"wx_violations\":{}}},\
             \"survivors\":{{\"total\":{},\"reachable\":{},\"unintended_boundary\":{},\
             \"dead_bytes\":{}}},\
             \"findings\":{}}}",
            b.reachable,
            b.unreachable,
            b.padding,
            b.data,
            self.insts,
            self.unresolved_indirects,
            self.funcs_total,
            self.funcs_reachable,
            self.funcs_balanced,
            self.stack_bound
                .map_or_else(|| "null".to_string(), |v| v.to_string()),
            self.checked_stores,
            self.unresolved_stores,
            self.wx_violations,
            s.total(),
            s.reachable,
            s.unintended,
            s.dead,
            findings_json(&self.findings),
        )
    }
}

/// Canonical finding order for reports: severity (most severe first),
/// then function, address, block, instruction, rule, message.
pub fn sort_findings(findings: &mut [AnalysisDiag]) {
    findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| {
                let ka = a.loc.as_ref().map(|l| {
                    (
                        l.func.clone(),
                        l.addr.unwrap_or(0),
                        l.block.unwrap_or(0),
                        l.inst.unwrap_or(0),
                    )
                });
                let kb = b.loc.as_ref().map(|l| {
                    (
                        l.func.clone(),
                        l.addr.unwrap_or(0),
                        l.block.unwrap_or(0),
                        l.inst.unwrap_or(0),
                    )
                });
                ka.cmp(&kb)
            })
            .then_with(|| a.rule.id().cmp(b.rule.id()))
            .then_with(|| a.message.cmp(&b.message))
    });
}

/// Audits one image: CFG recovery, abstract interpretation, and
/// classification of `gadget_offsets` (text offsets of gadget starts,
/// e.g. `gadget::survivor()` hits).
pub fn audit_image(image: &Image, gadget_offsets: &[usize]) -> ImageAudit {
    let cfg = recover(image);
    let abs: AbsReport = interpret(image, &cfg);
    let survivors = classify_offsets(&cfg, gadget_offsets);

    let mut findings = cfg.diags.clone();
    findings.extend(abs.diags.iter().cloned());
    sort_findings(&mut findings);

    let stack_bound = abs
        .funcs
        .iter()
        .map(|f| f.stack_bound)
        .try_fold(0u32, |m, b| b.map(|v| m.max(v)));

    ImageAudit {
        bytes: cfg.byte_counts(),
        insts: cfg.reachable_insts(),
        unresolved_indirects: cfg.unresolved_indirects,
        funcs_total: cfg.funcs.len(),
        funcs_reachable: cfg.funcs.iter().filter(|f| f.reachable).count(),
        funcs_balanced: abs.funcs.iter().filter(|f| f.balanced).count(),
        stack_bound,
        checked_stores: abs.checked_stores,
        unresolved_stores: abs.unresolved_stores,
        wx_violations: abs.wx_violations,
        survivors,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Loc, Rule};
    use pgsd_cc::driver::compile;

    #[test]
    fn audit_classifies_every_offset() {
        let img = compile("t", "int main(int n) { return n * 2 + 1; }").unwrap();
        let offsets: Vec<usize> = (0..img.text.len()).collect();
        let audit = audit_image(&img, &offsets);
        assert_eq!(
            audit.survivors.total(),
            img.text.len(),
            "classification must be total"
        );
        assert!(audit.survivors.reachable > 0);
    }

    #[test]
    fn image_audit_json_is_deterministic() {
        let img = compile("t", "int main() { return 3; }").unwrap();
        let a = audit_image(&img, &[0, 1, 2]).to_json();
        let b = audit_image(&img, &[0, 1, 2]).to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"bytes\":{\"reachable\":"));
        assert!(a.contains("\"survivors\":{\"total\":3,"));
    }

    #[test]
    fn sort_orders_by_severity_then_location() {
        let mut v = vec![
            AnalysisDiag::note(Rule::UnreachableCode, Loc::addr("z", 1), "n"),
            AnalysisDiag::error(Rule::WxViolation, Loc::addr("b", 5), "e2"),
            AnalysisDiag::warning(Rule::WastedNops, Loc::addr("m", 3), "w"),
            AnalysisDiag::error(Rule::WxViolation, Loc::addr("a", 9), "e1"),
        ];
        sort_findings(&mut v);
        let sevs: Vec<_> = v.iter().map(|d| d.severity).collect();
        assert_eq!(
            sevs,
            vec![
                Severity::Error,
                Severity::Error,
                Severity::Warning,
                Severity::Note
            ]
        );
        assert_eq!(v[0].loc.as_ref().unwrap().func, "a", "ties break by func");
    }

    #[test]
    fn survivor_report_averages() {
        let mut r = SurvivorAuditReport {
            baseline_gadgets: 100,
            ..Default::default()
        };
        r.add_variant(&SurvivorCounts {
            reachable: 2,
            unintended: 4,
            dead: 6,
        });
        r.add_variant(&SurvivorCounts {
            reachable: 0,
            unintended: 2,
            dead: 2,
        });
        assert_eq!(r.variants, 2);
        assert_eq!(r.counts.total(), 16);
        assert!((r.avg_survivors() - 8.0).abs() < 1e-9);
        assert!((r.avg_reachable() - 1.0).abs() < 1e-9);
    }
}
