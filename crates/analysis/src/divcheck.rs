//! `divcheck` — translation validation of diversified variants.
//!
//! Given a **baseline** image and a **diversified** image built from the
//! same source, plus a declaration of which transforms ran, this module
//! statically proves the variant is equivalent to the baseline *modulo
//! exactly those transforms*:
//!
//! * **Inserted bytes** must decode to entries of the declared NOP table,
//!   and each entry is independently proven harmless: it is an
//!   architectural identity ([`Inst::is_identity`]) that neither reads
//!   nor writes EFLAGS or memory, so it cannot clobber live state at any
//!   insertion point.
//! * **Substituted instructions** must fall into the machine-level image
//!   of `subst_pass`'s equivalence classes (`mov r,0` ↔ `xor r,r`,
//!   `mov d,s` ↔ `lea d,[s]` ↔ `push s; pop d`, `add r,i` ↔ `sub r,−i`,
//!   `inc/dec` ↔ `add/sub 1`, `shl r,1` ↔ `add r,r`), with inserted NOPs
//!   permitted between the pattern's instructions (NOP insertion runs
//!   after substitution).
//! * **Block shifting** must show up as exactly one entry jump over a
//!   run of NOP-table padding, and nothing else.
//! * **Register randomization** must be a per-function *bijection* on the
//!   allocatable set (`ebx`/`esi`/`edi`); all other registers must match
//!   identically. Frame save/restore `push`/`pop` of identical
//!   callee-saved registers are matched without constraining the
//!   bijection, since frame lowering uses fixed physical registers even
//!   under randomization.
//! * Everything else — non-NOP instruction counts, opcodes, immediates,
//!   memory-operand shapes, displacements — must match one-for-one, and
//!   every relative branch must target the image of its baseline target
//!   (calls through the function table, jumps through the per-function
//!   instruction correspondence, with landing anywhere in a preceding
//!   NOP run accepted because the run provably falls through).
//!
//! Undiversified functions (the runtime library) must be byte-identical;
//! a structural fallback handles the legal case where address shifts
//! change only relative call displacements.

use std::collections::BTreeMap;

use pgsd_cc::emit::{FuncLayout, Image};
use pgsd_cc::lir::regalloc::ALLOCATABLE;
use pgsd_x86::nop::NopTable;
use pgsd_x86::{decode, AluOp, Body, Inst, Reg, ShiftOp};

use crate::addrmap::{AddrMap, FuncEntry};
use crate::diag::{AnalysisDiag, Loc, Rule, Severity};

/// Which diversifying transforms the variant build declares.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Transforms {
    /// Profile-guided NOP insertion ran.
    pub nops: bool,
    /// Basic-block shifting ran.
    pub shift: bool,
    /// Equivalent-instruction substitution ran.
    pub subst: bool,
    /// Register-allocation randomization ran.
    pub regrand: bool,
    /// The NOP table includes the bus-locking `xchg` candidates.
    pub with_xchg: bool,
}

impl Transforms {
    /// No transforms: the variant must match the baseline exactly
    /// (modulo nothing).
    pub fn none() -> Transforms {
        Transforms::default()
    }
}

/// Statistics from a successful validation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Functions compared.
    pub functions: usize,
    /// Directly matched instructions.
    pub matched: u64,
    /// Inserted NOP-table instructions accepted (including shift padding).
    pub inserted_nops: u64,
    /// Substituted instruction groups accepted.
    pub substitutions: u64,
    /// Shift entry jumps accepted.
    pub shift_jumps: u64,
}

/// One decoded instruction at an absolute address.
#[derive(Debug, Clone, Copy)]
struct DInst {
    addr: u32,
    len: usize,
    inst: Inst,
}

impl DInst {
    fn next(&self) -> u32 {
        self.addr.wrapping_add(self.len as u32)
    }
}

/// Candidate register bijection for one function pair.
#[derive(Debug, Clone)]
struct RegMap {
    regrand: bool,
    fwd: [Option<Reg>; 8],
    rev: [Option<Reg>; 8],
}

impl RegMap {
    fn new(regrand: bool) -> RegMap {
        RegMap {
            regrand,
            fwd: [None; 8],
            rev: [None; 8],
        }
    }

    /// Requires baseline register `b` to correspond to variant register
    /// `v`, extending the bijection if consistent.
    fn unify(&mut self, b: Reg, v: Reg) -> bool {
        if !self.regrand || !ALLOCATABLE.contains(&b) {
            return b == v;
        }
        if !ALLOCATABLE.contains(&v) {
            return false;
        }
        match (self.fwd[b.number() as usize], self.rev[v.number() as usize]) {
            (Some(x), _) => x == v,
            (None, Some(_)) => false,
            (None, None) => {
                self.fwd[b.number() as usize] = Some(v);
                self.rev[v.number() as usize] = Some(b);
                true
            }
        }
    }
}

/// Normalizes an instruction so that structural equality ignores exactly
/// the parts a declared transform may change: register names (unified
/// separately through the [`RegMap`]) and relative branch displacements
/// (verified separately through the address correspondence).
fn skeleton(inst: &Inst) -> Inst {
    let s = inst.map_regs(|_| Reg::Eax);
    match s {
        Inst::CallRel(_) => Inst::CallRel(0),
        Inst::JmpRel(_) => Inst::JmpRel(0),
        Inst::JmpRel8(_) => Inst::JmpRel8(0),
        Inst::Jcc(c, _) => Inst::Jcc(c, 0),
        Inst::Jcc8(c, _) => Inst::Jcc8(c, 0),
        other => other,
    }
}

/// The absolute target of a relative branch, with `true` for calls.
fn branch_target(d: &DInst) -> Option<(bool, u32)> {
    match d.inst {
        Inst::CallRel(r) => Some((true, d.next().wrapping_add(r as u32))),
        Inst::JmpRel(r) => Some((false, d.next().wrapping_add(r as u32))),
        Inst::JmpRel8(r) => Some((false, d.next().wrapping_add(r as i32 as u32))),
        Inst::Jcc(_, r) => Some((false, d.next().wrapping_add(r as u32))),
        Inst::Jcc8(_, r) => Some((false, d.next().wrapping_add(r as i32 as u32))),
        _ => None,
    }
}

/// Tries to match baseline instruction `b` against variant instruction
/// `v` modulo the register bijection; returns the extended map.
fn unify_inst(b: &Inst, v: &Inst, pi: &RegMap) -> Option<RegMap> {
    if pi.regrand {
        // Frame save/restore pushes/popss use fixed physical registers
        // even under register randomization; an identical push/pop pair
        // matches without constraining the bijection.
        match (b, v) {
            (Inst::PushR(a), Inst::PushR(c)) | (Inst::PopR(a), Inst::PopR(c)) if a == c => {
                return Some(pi.clone());
            }
            _ => {}
        }
    }
    if skeleton(b) != skeleton(v) {
        return None;
    }
    let (br, vr) = (b.regs(), v.regs());
    debug_assert_eq!(br.len(), vr.len());
    let mut m = pi.clone();
    for (rb, rv) in br.into_iter().zip(vr) {
        if !m.unify(rb, rv) {
            return None;
        }
    }
    Some(m)
}

/// The machine-level image of `subst_pass`'s equivalence classes:
/// alternative instruction sequences (in baseline register space) the
/// variant may legally carry in place of `b`.
fn machine_equivalents(b: &Inst) -> Vec<Vec<Inst>> {
    use Inst::*;
    let esp = Reg::Esp;
    let mut out = Vec::new();
    match *b {
        MovRI(r, 0) if r != esp => out.push(vec![AluRR(AluOp::Xor, r, r)]),
        AluRR(AluOp::Xor, r, s) if r == s => out.push(vec![MovRI(r, 0)]),
        MovRR(d, s) if d != s && d != esp => {
            if s != esp {
                out.push(vec![Lea(d, pgsd_x86::Mem::base_disp(s, 0))]);
            }
            out.push(vec![PushR(s), PopR(d)]);
        }
        Lea(d, m) if m.index.is_none() && m.disp == 0 && d != esp => {
            if let Some(base) = m.base {
                if base != d && base != esp {
                    out.push(vec![MovRR(d, base)]);
                }
            }
        }
        AluRI(AluOp::Add, r, i) if r != esp && i != i32::MIN => {
            out.push(vec![AluRI(AluOp::Sub, r, -i)]);
            if i == 1 {
                out.push(vec![IncR(r)]);
            }
        }
        AluRI(AluOp::Sub, r, i) if r != esp && i != i32::MIN => {
            out.push(vec![AluRI(AluOp::Add, r, -i)]);
            if i == 1 {
                out.push(vec![DecR(r)]);
            }
        }
        IncR(r) if r != esp => out.push(vec![AluRI(AluOp::Add, r, 1)]),
        DecR(r) if r != esp => out.push(vec![AluRI(AluOp::Sub, r, 1)]),
        ShiftRI(ShiftOp::Shl, r, 1) if r != esp => out.push(vec![AluRR(AluOp::Add, r, r)]),
        _ => {}
    }
    out
}

/// The decoded forms of the declared NOP table, each re-proven harmless
/// from its *bytes* (not from the generator's intent).
fn decoded_candidates(table: &NopTable) -> Vec<Inst> {
    table
        .iter()
        .map(|k| {
            let d = decode(k.bytes()).expect("NOP candidate must decode");
            match d.body {
                Body::Known(inst) => {
                    assert!(
                        inst.is_identity() && !inst.effects().writes_flags,
                        "NOP candidate {k:?} is not a flag-preserving identity"
                    );
                    inst
                }
                Body::Other(_) => panic!("NOP candidate {k:?} decodes outside the model"),
            }
        })
        .collect()
}

/// Validates `variant` against `baseline` given the declared transforms.
///
/// # Errors
///
/// Returns every [`AnalysisDiag`] found; an empty `Ok` report means the
/// variant is proven equivalent modulo the declared transforms.
pub fn check_images(
    baseline: &Image,
    variant: &Image,
    t: &Transforms,
) -> Result<CheckReport, Vec<AnalysisDiag>> {
    check_images_impl(baseline, variant, t, None)
}

/// Like [`check_images`], but also returns the baseline↔variant
/// [`AddrMap`] the structural walk computes as a byproduct — the
/// artifact the provenance ledger persists for crash symbolication.
///
/// # Errors
///
/// Same contract as [`check_images`]; no map is produced for a variant
/// that fails validation.
pub fn check_images_mapped(
    baseline: &Image,
    variant: &Image,
    t: &Transforms,
) -> Result<(CheckReport, AddrMap), Vec<AnalysisDiag>> {
    let mut map = AddrMap::default();
    let report = check_images_impl(baseline, variant, t, Some(&mut map))?;
    Ok((report, map))
}

fn check_images_impl(
    baseline: &Image,
    variant: &Image,
    t: &Transforms,
    mut map: Option<&mut AddrMap>,
) -> Result<CheckReport, Vec<AnalysisDiag>> {
    let mut diags = Vec::new();
    let mut report = CheckReport::default();

    if baseline.funcs.len() != variant.funcs.len() {
        diags.push(AnalysisDiag::global(
            Rule::LayoutMismatch,
            Severity::Error,
            format!(
                "function count differs: baseline {} vs variant {}",
                baseline.funcs.len(),
                variant.funcs.len()
            ),
        ));
        return Err(diags);
    }
    if baseline.base != variant.base {
        diags.push(AnalysisDiag::global(
            Rule::LayoutMismatch,
            Severity::Error,
            "text base address differs",
        ));
    }
    if baseline.data_base != variant.data_base || baseline.data != variant.data {
        diags.push(AnalysisDiag::global(
            Rule::LayoutMismatch,
            Severity::Error,
            "data section differs (diversity must not touch data)",
        ));
    }
    if baseline.num_counters != variant.num_counters {
        diags.push(AnalysisDiag::global(
            Rule::LayoutMismatch,
            Severity::Error,
            "profiling counter count differs",
        ));
    }

    let table = if t.with_xchg {
        NopTable::with_xchg()
    } else {
        NopTable::new()
    };
    let candidates = decoded_candidates(&table);

    for k in 0..baseline.funcs.len() {
        check_function(
            k,
            baseline,
            variant,
            t,
            &candidates,
            &mut report,
            &mut diags,
            map.as_mut().map(|m| &mut m.funcs),
        );
    }

    if diags.iter().any(|d| d.severity == Severity::Error) {
        Err(diags)
    } else {
        Ok(report)
    }
}

fn func_bytes<'a>(image: &'a Image, f: &FuncLayout) -> &'a [u8] {
    let s = (f.start - image.base) as usize;
    let e = (f.end - image.base) as usize;
    &image.text[s..e]
}

fn decode_stream(
    bytes: &[u8],
    start: u32,
    fname: &str,
    diags: &mut Vec<AnalysisDiag>,
) -> Option<Vec<DInst>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let addr = start.wrapping_add(pos as u32);
        match decode(&bytes[pos..]) {
            Ok(d) => match d.body {
                Body::Known(inst) => {
                    out.push(DInst {
                        addr,
                        len: d.len,
                        inst,
                    });
                    pos += d.len;
                }
                Body::Other(o) => {
                    diags.push(AnalysisDiag::error(
                        Rule::Undecodable,
                        Loc::addr(fname, addr),
                        format!("instruction outside the compiler's model: {o:?}"),
                    ));
                    return None;
                }
            },
            Err(e) => {
                diags.push(AnalysisDiag::error(
                    Rule::Undecodable,
                    Loc::addr(fname, addr),
                    format!("undecodable bytes: {e:?}"),
                ));
                return None;
            }
        }
    }
    Some(out)
}

#[allow(clippy::too_many_arguments)]
fn check_function(
    k: usize,
    baseline: &Image,
    variant: &Image,
    t: &Transforms,
    candidates: &[Inst],
    report: &mut CheckReport,
    diags: &mut Vec<AnalysisDiag>,
    map_out: Option<&mut Vec<FuncEntry>>,
) {
    let bl = &baseline.funcs[k];
    let vl = &variant.funcs[k];
    if bl.name != vl.name {
        diags.push(AnalysisDiag::global(
            Rule::LayoutMismatch,
            Severity::Error,
            format!("function {k} renamed: {} vs {}", bl.name, vl.name),
        ));
        return;
    }
    if bl.diversified != vl.diversified {
        diags.push(AnalysisDiag::error(
            Rule::LayoutMismatch,
            Loc::func(&bl.name),
            "diversified flag differs between baseline and variant",
        ));
        return;
    }

    let bb = func_bytes(baseline, bl);
    let vb = func_bytes(variant, vl);

    // Undiversified functions: byte-identical is the common, fast case.
    // Address shifts can legally alter relative call displacements, so
    // fall through to the structural walk with no transforms declared.
    let ft = if bl.diversified {
        *t
    } else {
        Transforms {
            regrand: t.regrand,
            ..Transforms::none()
        }
    };
    if !bl.diversified && bb == vb {
        // Byte-identical: the address map is the identity shifted by the
        // layout delta, recorded as a single linear entry.
        if let Some(m) = map_out {
            m.push(FuncEntry::linear(&bl.name, bl.start, bl.end, vl.start));
        }
        report.functions += 1;
        return;
    }

    let Some(bd) = decode_stream(bb, bl.start, &bl.name, diags) else {
        return;
    };
    let Some(vd) = decode_stream(vb, vl.start, &vl.name, diags) else {
        return;
    };

    let mut pi = RegMap::new(ft.regrand);
    let mut i = 0usize;
    let mut j = 0usize;
    // Start of the current run of stripped NOPs on the variant side, if
    // any: a branch may legally land anywhere inside such a run.
    let mut run_start: Option<u32> = None;
    // Baseline instruction address -> (lo, hi): the variant address of
    // the corresponding instruction (`hi`), extended down to `lo` when a
    // NOP run immediately precedes it.
    let mut addr_map: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
    let mut jumps: Vec<(u32, u32, u32)> = Vec::new();
    let mut calls: Vec<(u32, u32, u32)> = Vec::new();

    // Shift prologue: NOPs (from the NOP pass) may precede the entry
    // jump; the jump's target is checked like any branch to the baseline
    // entry, and the padding behind it is consumed by the main loop.
    if ft.shift {
        while j < vd.len() && candidates.contains(&vd[j].inst) {
            if !ft.nops {
                diags.push(AnalysisDiag::error(
                    Rule::ValidationMismatch,
                    Loc::addr(&vl.name, vd[j].addr),
                    format!("inserted {:?} without declared NOP insertion", vd[j].inst),
                ));
                return;
            }
            report.inserted_nops += 1;
            j += 1;
        }
        match vd.get(j).and_then(branch_target) {
            Some((false, target)) if matches!(vd[j].inst, Inst::JmpRel(_) | Inst::JmpRel8(_)) => {
                jumps.push((vd[j].addr, bl.start, target));
                report.shift_jumps += 1;
                j += 1;
            }
            _ => {
                diags.push(AnalysisDiag::error(
                    Rule::ValidationMismatch,
                    Loc::func(&vl.name),
                    "block shifting declared but entry jump over padding is missing",
                ));
                return;
            }
        }
    }

    loop {
        // 1. Direct match (modulo register bijection and branch widths).
        if i < bd.len() && j < vd.len() {
            if let Some(m) = unify_inst(&bd[i].inst, &vd[j].inst, &pi) {
                pi = m;
                let lo = run_start.take().unwrap_or(vd[j].addr);
                addr_map.insert(bd[i].addr, (lo, vd[j].addr));
                if let Some((is_call, bt)) = branch_target(&bd[i]) {
                    // Skeleton equality guarantees the variant side is the
                    // same branch kind.
                    let (_, vt) = branch_target(&vd[j]).expect("matched branch");
                    if is_call {
                        calls.push((bd[i].addr, bt, vt));
                    } else {
                        jumps.push((bd[i].addr, bt, vt));
                    }
                }
                report.matched += 1;
                i += 1;
                j += 1;
                continue;
            }
        }
        // 2. Inserted NOP-table instruction.
        if j < vd.len() && candidates.contains(&vd[j].inst) {
            let in_pad = ft.shift && i == 0;
            if !ft.nops && !in_pad {
                diags.push(AnalysisDiag::error(
                    Rule::ValidationMismatch,
                    Loc::addr(&vl.name, vd[j].addr),
                    format!("inserted {:?} without declared NOP insertion", vd[j].inst),
                ));
                return;
            }
            run_start.get_or_insert(vd[j].addr);
            report.inserted_nops += 1;
            j += 1;
            continue;
        }
        // 3. Substituted equivalence class.
        if ft.subst && i < bd.len() && j < vd.len() {
            if let Some((nj, m, skipped)) = try_subst(&bd[i].inst, &vd, j, &pi, &ft, candidates) {
                pi = m;
                let lo = run_start.take().unwrap_or(vd[j].addr);
                addr_map.insert(bd[i].addr, (lo, vd[j].addr));
                report.inserted_nops += skipped;
                report.substitutions += 1;
                i += 1;
                j = nj;
                continue;
            }
        }
        // 4. Done or mismatch.
        if i >= bd.len() && j >= vd.len() {
            break;
        }
        let msg = match (bd.get(i), vd.get(j)) {
            (Some(b), Some(v)) => format!(
                "instruction mismatch: baseline {:?} at {:#x} vs variant {:?} at {:#x}",
                b.inst, b.addr, v.inst, v.addr
            ),
            (Some(b), None) => {
                format!(
                    "variant ends early: baseline {:?} at {:#x} unmatched",
                    b.inst, b.addr
                )
            }
            (None, Some(v)) => {
                format!("variant has trailing {:?} at {:#x}", v.inst, v.addr)
            }
            (None, None) => unreachable!(),
        };
        diags.push(AnalysisDiag::error(
            Rule::ValidationMismatch,
            Loc::func(&bl.name),
            msg,
        ));
        return;
    }

    // Branch-target verification. Jumps are intra-function: the baseline
    // target must be a matched baseline address and the variant target
    // must land on the matched variant instruction or inside the NOP run
    // directly before it (the run falls through).
    for (site, bt, vt) in jumps {
        if bt < bl.start || bt >= bl.end.max(bl.start + 1) {
            diags.push(AnalysisDiag::error(
                Rule::BranchRetarget,
                Loc::addr(&bl.name, site),
                format!("jump target {bt:#x} leaves the function"),
            ));
            continue;
        }
        match addr_map.get(&bt) {
            Some(&(lo, hi)) if lo <= vt && vt <= hi => {}
            Some(&(lo, hi)) => diags.push(AnalysisDiag::error(
                Rule::BranchRetarget,
                Loc::addr(&bl.name, site),
                format!(
                    "jump retargeted incorrectly: baseline {bt:#x} maps to \
                     [{lo:#x}, {hi:#x}] but variant jumps to {vt:#x}"
                ),
            )),
            None => diags.push(AnalysisDiag::error(
                Rule::BranchRetarget,
                Loc::addr(&bl.name, site),
                format!("jump target {bt:#x} is not an instruction boundary"),
            )),
        }
    }
    // Calls are inter-function: the baseline target must be a function
    // start, and the variant must call the same function's start.
    for (site, bt, vt) in calls {
        match baseline.funcs.iter().position(|f| f.start == bt) {
            Some(idx) => {
                let want = variant.funcs[idx].start;
                if vt != want {
                    diags.push(AnalysisDiag::error(
                        Rule::BranchRetarget,
                        Loc::addr(&bl.name, site),
                        format!(
                            "call retargeted incorrectly: baseline calls {} at {bt:#x}, \
                             variant should call {want:#x} but calls {vt:#x}",
                            baseline.funcs[idx].name
                        ),
                    ));
                }
            }
            None => diags.push(AnalysisDiag::error(
                Rule::BranchRetarget,
                Loc::addr(&bl.name, site),
                format!("call target {bt:#x} is not a function entry"),
            )),
        }
    }

    if let Some(m) = map_out {
        m.push(FuncEntry {
            name: bl.name.clone(),
            base_start: bl.start,
            base_end: bl.end,
            var_start: vl.start,
            var_end: vl.end,
            linear: false,
            pairs: addr_map.iter().map(|(&b, &(lo, hi))| (b, lo, hi)).collect(),
        });
    }
    report.functions += 1;
}

/// Tries every machine-level equivalent of baseline instruction `b`
/// against the variant stream at `j`, allowing inserted NOPs between (but
/// not before) the pattern's instructions. Returns the next variant
/// index, the extended register map, and the NOPs skipped inside the
/// pattern.
fn try_subst(
    b: &Inst,
    vd: &[DInst],
    j0: usize,
    pi: &RegMap,
    t: &Transforms,
    candidates: &[Inst],
) -> Option<(usize, RegMap, u64)> {
    'alts: for alt in machine_equivalents(b) {
        let mut m = pi.clone();
        let mut j = j0;
        let mut skipped = 0u64;
        for (n, expected) in alt.iter().enumerate() {
            // NOP insertion runs after substitution, so candidates may sit
            // between the instructions of a substituted pattern.
            while n > 0
                && t.nops
                && j < vd.len()
                && unify_inst(expected, &vd[j].inst, &m).is_none()
                && candidates.contains(&vd[j].inst)
            {
                skipped += 1;
                j += 1;
            }
            let Some(v) = vd.get(j) else { continue 'alts };
            let Some(m2) = unify_inst(expected, &v.inst, &m) else {
                continue 'alts;
            };
            m = m2;
            j += 1;
        }
        return Some((j, m, skipped));
    }
    None
}
