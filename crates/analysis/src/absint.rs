//! Abstract interpretation over recovered binary CFGs.
//!
//! Runs two interprocedural-by-summary domains over every reachable
//! function of a [`RecoveredCfg`] (driven by the same worklist core as
//! the LIR solver, [`crate::dataflow::fixpoint`]):
//!
//! * **Stack height** — `Bottom / Known(bytes) / Top`. Pushes, pops, and
//!   direct `esp` adjustments are tracked exactly; calls are height-
//!   neutral at the call site because every callee is *separately*
//!   verified to return balanced (the per-callee summary is the proof
//!   obligation, discharged when that function is interpreted). A `ret`
//!   on a path with nonzero height is a [`Rule::StackImbalance`] error;
//!   an untrackable height at `ret` is a [`Rule::StackUnbounded`]
//!   warning. The per-function maximum height is the proven stack bound.
//!
//! * **Register value ranges** — an interval per general-purpose
//!   register, with widening at joins that keep growing, used to resolve
//!   store targets: a store through `esp`/`ebp` is a stack write; a
//!   store whose address interval is known and disjoint from the text
//!   segment is a data write; a known interval intersecting text is a
//!   [`Rule::WxViolation`] error (the image is W⊕X by construction, so
//!   any hit is a real finding); an unknown interval is counted as
//!   unresolved ([`Rule::UnresolvedStore`] stays a summary counter, not a
//!   per-store diagnostic, to keep reports readable).

use std::collections::BTreeMap;

use pgsd_cc::emit::Image;
use pgsd_x86::{AluOp, Inst, Mem, Reg};

use crate::cfg::{FuncCfg, RecoveredCfg};
use crate::dataflow::fixpoint;
use crate::diag::{AnalysisDiag, Loc, Rule};

/// How many times a block's input may grow before joins widen.
const WIDEN_AFTER: u32 = 3;

/// Abstract stack height in bytes relative to function entry (0 = only
/// the return address above).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Height {
    /// No path reaches this point yet.
    Bottom,
    /// Every path agrees on this many bytes pushed.
    Known(i64),
    /// Paths disagree or `esp` was overwritten.
    Top,
}

impl Height {
    fn join(self, other: Height) -> Height {
        match (self, other) {
            (Height::Bottom, x) | (x, Height::Bottom) => x,
            (Height::Known(a), Height::Known(b)) if a == b => Height::Known(a),
            _ => Height::Top,
        }
    }

    fn add(self, d: i64) -> Height {
        match self {
            Height::Known(h) => Height::Known(h + d),
            other => other,
        }
    }
}

/// A signed-interval abstraction of one register's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// The unconstrained interval.
    pub const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// A single known value.
    pub fn exact(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    fn is_top(self) -> bool {
        self == Interval::TOP
    }

    fn join(self, other: Interval, widen: bool) -> Interval {
        let grown = Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        };
        if widen && grown != self {
            Interval {
                lo: if grown.lo < self.lo {
                    i64::MIN
                } else {
                    grown.lo
                },
                hi: if grown.hi > self.hi {
                    i64::MAX
                } else {
                    grown.hi
                },
            }
        } else {
            grown
        }
    }

    fn add(self, d: i64) -> Interval {
        if self.is_top() {
            return self;
        }
        Interval {
            lo: self.lo.saturating_add(d),
            hi: self.hi.saturating_add(d),
        }
    }

    fn add_iv(self, other: Interval) -> Interval {
        if self.is_top() || other.is_top() {
            return Interval::TOP;
        }
        Interval {
            lo: self.lo.saturating_add(other.lo),
            hi: self.hi.saturating_add(other.hi),
        }
    }

    fn sub_iv(self, other: Interval) -> Interval {
        if self.is_top() || other.is_top() {
            return Interval::TOP;
        }
        Interval {
            lo: self.lo.saturating_sub(other.hi),
            hi: self.hi.saturating_sub(other.lo),
        }
    }

    fn scale(self, k: i64) -> Interval {
        if self.is_top() {
            return self;
        }
        let a = self.lo.saturating_mul(k);
        let b = self.hi.saturating_mul(k);
        Interval {
            lo: a.min(b),
            hi: a.max(b),
        }
    }
}

/// Abstract machine state at a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    height: Height,
    regs: [Interval; 8],
}

impl State {
    fn entry() -> State {
        State {
            height: Height::Known(0),
            regs: [Interval::TOP; 8],
        }
    }

    fn bottom() -> State {
        State {
            height: Height::Bottom,
            regs: [Interval::TOP; 8],
        }
    }

    fn join(&self, other: &State, widen: bool) -> State {
        let mut regs = [Interval::TOP; 8];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = self.regs[i].join(other.regs[i], widen);
        }
        State {
            height: self.height.join(other.height),
            regs,
        }
    }

    fn reg(&self, r: Reg) -> Interval {
        self.regs[r.number() as usize]
    }

    fn set_reg(&mut self, r: Reg, v: Interval) {
        if r == Reg::Esp {
            // `esp` writes invalidate the tracked height instead.
            self.height = Height::Top;
        } else {
            self.regs[r.number() as usize] = v;
        }
    }
}

/// Classification of one store's target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StoreTarget {
    Stack,
    Data,
    Text(u32),
    Unresolved,
}

/// Per-function summary proven by the interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSummary {
    /// Function name.
    pub name: String,
    /// Maximum stack bytes pushed above the entry frame, when bounded.
    pub stack_bound: Option<u32>,
    /// Whether every path to `ret` returns with a balanced stack.
    pub balanced: bool,
    /// Stores proven to write the stack or the data segment.
    pub checked_stores: usize,
    /// Stores whose target could not be statically resolved.
    pub unresolved_stores: usize,
}

/// Whole-image abstract-interpretation report.
#[derive(Debug, Clone, Default)]
pub struct AbsReport {
    /// Summaries for every reachable function, in image layout order.
    pub funcs: Vec<FuncSummary>,
    /// Findings (stack imbalance, unbounded stacks, W⊕X violations).
    pub diags: Vec<AnalysisDiag>,
    /// Total stores proven safe.
    pub checked_stores: usize,
    /// Total unresolved stores (W⊕X unproven for these).
    pub unresolved_stores: usize,
    /// Total stores proven to write the text segment.
    pub wx_violations: usize,
}

/// Interprets every reachable function of `cfg` and returns the report.
pub fn interpret(image: &Image, cfg: &RecoveredCfg) -> AbsReport {
    let text_range = (image.base, image.base + image.text.len() as u32);
    let mut report = AbsReport::default();
    for f in cfg.funcs.iter().filter(|f| f.reachable) {
        interpret_func(f, cfg, text_range, &mut report);
    }
    report
}

fn interpret_func(f: &FuncCfg, cfg: &RecoveredCfg, text_range: (u32, u32), report: &mut AbsReport) {
    let nb = f.blocks.len();
    if nb == 0 {
        return;
    }
    let index_of: BTreeMap<u32, usize> = f
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (b.start, i))
        .collect();
    let Some(&entry_idx) = index_of.get(&f.start) else {
        return; // entry failed to decode; recovery already diagnosed it
    };

    let mut entry_state: Vec<State> = vec![State::bottom(); nb];
    entry_state[entry_idx] = State::entry();
    let mut join_counts = vec![0u32; nb];

    // Forward fixpoint over block entry states. Stack bound, store
    // classification, and `ret` checks are replayed afterwards from the
    // final states, so the transfer stays side-effect free here.
    fixpoint(nb, [entry_idx], |b| {
        if entry_state[b].height == Height::Bottom {
            return Vec::new(); // not reached yet; revisited when seeded
        }
        let mut out = entry_state[b].clone();
        for (_, _, inst) in block_insts(f, cfg, b) {
            transfer(&inst, &mut out, text_range, None);
        }
        let mut changed = Vec::new();
        for &s in &f.blocks[b].succs {
            let si = index_of[&s];
            // The first state to arrive replaces Bottom outright (its TOP
            // register array is a placeholder, not a lattice bottom).
            let joined = if entry_state[si].height == Height::Bottom {
                out.clone()
            } else {
                join_counts[si] += 1;
                entry_state[si].join(&out, join_counts[si] > WIDEN_AFTER)
            };
            if joined != entry_state[si] {
                entry_state[si] = joined;
                changed.push(si);
            }
        }
        changed
    });

    // Replay with the fixpoint states to collect findings and summaries.
    let mut max_height: Option<i64> = Some(0);
    let mut balanced = true;
    let mut checked = 0usize;
    let mut unresolved = 0usize;
    let mut unbounded_warned = false;
    for (b, entry) in entry_state.iter().enumerate() {
        let mut st = entry.clone();
        if st.height == Height::Bottom {
            continue; // unreached block (e.g. only via unresolved indirect)
        }
        for (addr, _, inst) in block_insts(f, cfg, b) {
            let mut stores = Vec::new();
            transfer(&inst, &mut st, text_range, Some(&mut stores));
            for t in stores {
                match t {
                    StoreTarget::Stack | StoreTarget::Data => checked += 1,
                    StoreTarget::Unresolved => unresolved += 1,
                    StoreTarget::Text(at) => {
                        report.wx_violations += 1;
                        report.diags.push(AnalysisDiag::error(
                            Rule::WxViolation,
                            Loc::addr(&f.name, addr),
                            format!("store may write executable text at {at:#x}"),
                        ));
                    }
                }
            }
            match st.height {
                Height::Known(h) => {
                    if h < 0 {
                        balanced = false;
                        report.diags.push(AnalysisDiag::error(
                            Rule::StackImbalance,
                            Loc::addr(&f.name, addr),
                            format!("stack height {h} dips below the entry frame"),
                        ));
                    }
                    if let Some(m) = max_height.as_mut() {
                        *m = (*m).max(h);
                    }
                }
                Height::Top => max_height = None,
                Height::Bottom => {}
            }
            if matches!(inst, Inst::Ret | Inst::RetImm(_)) {
                match st.height {
                    // `ret` pops the return address from height 0; the
                    // pre-ret height must be exactly 0.
                    Height::Known(h) if h != 0 => {
                        balanced = false;
                        report.diags.push(AnalysisDiag::error(
                            Rule::StackImbalance,
                            Loc::addr(&f.name, addr),
                            format!("ret with {h} bytes still pushed"),
                        ));
                    }
                    Height::Top if !unbounded_warned => {
                        unbounded_warned = true;
                        report.diags.push(AnalysisDiag::warning(
                            Rule::StackUnbounded,
                            Loc::addr(&f.name, addr),
                            "ret reached with untrackable stack height",
                        ));
                    }
                    _ => {}
                }
            }
        }
    }

    report.checked_stores += checked;
    report.unresolved_stores += unresolved;
    report.funcs.push(FuncSummary {
        name: f.name.clone(),
        stack_bound: max_height.map(|m| u32::try_from(m).unwrap_or(u32::MAX)),
        balanced,
        checked_stores: checked,
        unresolved_stores: unresolved,
    });
}

/// The decoded instructions of block `b`, in address order.
fn block_insts<'a>(
    f: &FuncCfg,
    cfg: &'a RecoveredCfg,
    b: usize,
) -> impl Iterator<Item = (u32, usize, Inst)> + 'a {
    let blk = &f.blocks[b];
    cfg.insts
        .range(blk.start..blk.end)
        .map(|(addr, (len, inst))| (*addr, *len, *inst))
}

/// The address interval of a memory operand under `st`.
fn mem_interval(m: &Mem, st: &State) -> Option<Interval> {
    // `esp`/`ebp`-based accesses are stack traffic by construction.
    if m.base == Some(Reg::Esp) || m.base == Some(Reg::Ebp) {
        return None;
    }
    let mut iv = Interval::exact(i64::from(m.disp));
    if let Some(b) = m.base {
        iv = iv.add_iv(st.reg(b));
    }
    if let Some((r, s)) = m.index {
        iv = iv.add_iv(st.reg(r).scale(i64::from(s.factor())));
    }
    Some(iv)
}

/// Classifies a store through `m` against the text segment.
fn classify_store(m: &Mem, st: &State, text_range: (u32, u32)) -> StoreTarget {
    let Some(iv) = mem_interval(m, st) else {
        return StoreTarget::Stack;
    };
    if iv.is_top() || iv.lo == i64::MIN || iv.hi == i64::MAX {
        return StoreTarget::Unresolved;
    }
    let (lo, hi) = (i64::from(text_range.0), i64::from(text_range.1));
    // A 4-byte store starting anywhere in [iv.lo, iv.hi] overlaps text
    // when its window intersects [lo, hi).
    if iv.hi.saturating_add(4) > lo && iv.lo < hi {
        let at = iv.lo.clamp(lo, hi - 1) as u32;
        return StoreTarget::Text(at);
    }
    StoreTarget::Data
}

/// One instruction's abstract transfer. When `stores` is provided, every
/// memory write is classified into it.
fn transfer(
    inst: &Inst,
    st: &mut State,
    text_range: (u32, u32),
    mut stores: Option<&mut Vec<StoreTarget>>,
) {
    let record = |m: &Mem, st: &State, stores: &mut Option<&mut Vec<StoreTarget>>| {
        if let Some(out) = stores.as_mut() {
            out.push(classify_store(m, st, text_range));
        }
    };
    match *inst {
        Inst::MovRI(r, i) => st.set_reg(r, Interval::exact(i64::from(i))),
        Inst::MovRR(d, s) => {
            let v = st.reg(s);
            st.set_reg(d, v);
        }
        Inst::MovRM(d, _) => st.set_reg(d, Interval::TOP),
        Inst::MovMR(ref m, _) | Inst::MovMI(ref m, _) => record(m, st, &mut stores),
        Inst::AluRI(op, r, i) => {
            if r == Reg::Esp {
                match op {
                    AluOp::Sub => st.height = st.height.add(i64::from(i)),
                    AluOp::Add => st.height = st.height.add(-i64::from(i)),
                    AluOp::Cmp => {}
                    _ => st.height = Height::Top,
                }
            } else {
                let v = match op {
                    AluOp::Add => st.reg(r).add(i64::from(i)),
                    AluOp::Sub => st.reg(r).add(-i64::from(i)),
                    AluOp::Cmp => st.reg(r),
                    _ => Interval::TOP,
                };
                st.set_reg(r, v);
            }
        }
        Inst::AluRR(op, r, s) => {
            let v = match op {
                AluOp::Xor if r == s => Interval::exact(0),
                AluOp::Add => st.reg(r).add_iv(st.reg(s)),
                AluOp::Sub => st.reg(r).sub_iv(st.reg(s)),
                AluOp::Cmp => st.reg(r),
                _ => Interval::TOP,
            };
            if op != AluOp::Cmp {
                st.set_reg(r, v);
            }
        }
        Inst::AluRM(op, r, _) => {
            if op != AluOp::Cmp {
                st.set_reg(r, Interval::TOP);
            }
        }
        Inst::AluMR(op, ref m, _) | Inst::AluMI(op, ref m, _) => {
            if op != AluOp::Cmp {
                record(m, st, &mut stores);
            }
        }
        Inst::IncDecM(_, ref m) => record(m, st, &mut stores),
        Inst::TestRR(..) => {}
        Inst::ImulRR(d, _) | Inst::ImulRM(d, _) | Inst::ImulRRI(d, ..) => {
            st.set_reg(d, Interval::TOP);
        }
        Inst::Cdq => st.set_reg(Reg::Edx, Interval::TOP),
        Inst::IdivR(_) => {
            st.set_reg(Reg::Eax, Interval::TOP);
            st.set_reg(Reg::Edx, Interval::TOP);
        }
        Inst::NegR(r) | Inst::NotR(r) => st.set_reg(r, Interval::TOP),
        Inst::IncR(r) => {
            let v = st.reg(r).add(1);
            st.set_reg(r, v);
        }
        Inst::DecR(r) => {
            let v = st.reg(r).add(-1);
            st.set_reg(r, v);
        }
        Inst::ShiftRI(_, r, _) | Inst::ShiftRCl(_, r) => st.set_reg(r, Interval::TOP),
        Inst::PushR(_) | Inst::PushI(_) | Inst::PushM(_) => st.height = st.height.add(4),
        Inst::PopR(r) => {
            st.height = st.height.add(-4);
            st.set_reg(r, Interval::TOP);
        }
        Inst::Lea(d, ref m) => {
            let v = mem_interval(m, st).unwrap_or(Interval::TOP);
            st.set_reg(d, v);
        }
        Inst::XchgRR(a, b) => {
            let (va, vb) = (st.reg(a), st.reg(b));
            st.set_reg(a, vb);
            st.set_reg(b, va);
        }
        // Calls are height-neutral: each callee is separately proven to
        // return balanced. Caller-saved registers are clobbered.
        Inst::CallRel(_) | Inst::CallR(_) => {
            st.set_reg(Reg::Eax, Interval::TOP);
            st.set_reg(Reg::Ecx, Interval::TOP);
            st.set_reg(Reg::Edx, Interval::TOP);
        }
        // The syscall gate returns through `eax`.
        Inst::Int(_) => st.set_reg(Reg::Eax, Interval::TOP),
        Inst::Ret | Inst::RetImm(_) => {}
        Inst::JmpRel(_) | Inst::JmpRel8(_) | Inst::JmpR(_) | Inst::Jcc(..) | Inst::Jcc8(..) => {}
        Inst::Hlt => {}
        Inst::Nop(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::recover;
    use pgsd_cc::driver::compile;

    fn report_of(src: &str) -> AbsReport {
        let img = compile("t", src).expect("compiles");
        let cfg = recover(&img);
        interpret(&img, &cfg)
    }

    #[test]
    fn clean_program_has_balanced_bounded_stacks_and_no_errors() {
        let r = report_of(
            "int f(int x) { return x * 3; }\n\
             int main(int n) { int i; int s; s = 0; i = 0;\n\
               while (i < n) { s = s + f(i); i = i + 1; } return s; }",
        );
        assert!(!r.funcs.is_empty());
        for f in &r.funcs {
            assert!(f.balanced, "{} unbalanced", f.name);
            assert!(f.stack_bound.is_some(), "{} unbounded", f.name);
        }
        assert_eq!(r.wx_violations, 0);
        assert!(
            r.diags
                .iter()
                .all(|d| d.severity < crate::diag::Severity::Error),
            "{:?}",
            r.diags
        );
    }

    #[test]
    fn global_stores_resolve_and_prove_wx() {
        let r = report_of("int g;\nint main(int n) { g = n; return g; }");
        assert!(r.checked_stores > 0, "global store should resolve");
        assert_eq!(r.wx_violations, 0);
    }

    #[test]
    fn interval_widening_terminates_on_loops() {
        // A counting loop forces repeated joins with a growing interval;
        // without widening this would iterate 1<<20 times.
        let r =
            report_of("int main() { int i; i = 0; while (i < 1048576) { i = i + 1; } return i; }");
        let main = r.funcs.iter().find(|f| f.name == "main").unwrap();
        assert!(main.balanced);
    }

    #[test]
    fn interval_arithmetic_is_sound() {
        let a = Interval::exact(10).add(5);
        assert_eq!(a, Interval::exact(15));
        let b = Interval { lo: 1, hi: 3 }.add_iv(Interval { lo: 10, hi: 20 });
        assert_eq!(b, Interval { lo: 11, hi: 23 });
        let c = Interval { lo: 1, hi: 3 }.sub_iv(Interval { lo: 10, hi: 20 });
        assert_eq!(c, Interval { lo: -19, hi: -7 });
        let w = Interval::exact(5).join(Interval::exact(9), true);
        assert_eq!(w.hi, i64::MAX, "widening blows the growing bound");
        assert_eq!(w.lo, 5, "stable bound survives widening");
        let t = Interval::TOP.add(4);
        assert!(t.is_top());
    }

    #[test]
    fn height_lattice_joins() {
        assert_eq!(Height::Known(4).join(Height::Known(4)), Height::Known(4));
        assert_eq!(Height::Known(4).join(Height::Known(8)), Height::Top);
        assert_eq!(Height::Bottom.join(Height::Known(4)), Height::Known(4));
        assert_eq!(Height::Top.join(Height::Bottom), Height::Top);
    }
}
