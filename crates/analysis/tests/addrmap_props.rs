//! Property tests for the [`AddrMap`] artifact: the binary encoding
//! round-trips exactly, and the two lookup directions invert each other
//! on every recorded instruction pair.

use pgsd_analysis::{AddrMap, FuncEntry};
use proptest::prelude::*;

/// Generates one structurally valid function entry starting at the given
/// `(base, var)` layout cursor, returning the entry and the advanced
/// cursor. Deltas are kept small so run-length groups actually form.
fn entry_from(
    name_id: u32,
    base_start: u32,
    var_start: u32,
    linear: bool,
    deltas: &[(u32, u32, u32)],
) -> (FuncEntry, u32, u32) {
    let name = format!("f{name_id}");
    if linear {
        let len = 16 + (name_id % 64);
        let e = FuncEntry::linear(&name, base_start, base_start + len, var_start);
        return (e, base_start + len, var_start + len);
    }
    let mut pairs = Vec::new();
    let (mut b, mut v) = (base_start, var_start);
    for &(db, dh, pad) in deltas {
        // Monotonic walk: each delta is at least 1, pad never reaches
        // below the previous variant position.
        let db = 1 + (db % 8);
        let dh = 1 + (dh % 12);
        let pad = pad % dh;
        b += db;
        v += dh;
        pairs.push((b, v - pad, v));
    }
    let e = FuncEntry {
        name,
        base_start,
        base_end: b + 8,
        var_start,
        var_end: v + 8,
        linear: false,
        pairs,
    };
    (e, b + 8, v + 8)
}

/// One generated function shape: `(linear, per-instruction deltas)`.
type Shape = (bool, Vec<(u32, u32, u32)>);

/// Builds a whole map from generated shape data.
fn build_map(shapes: Vec<Shape>) -> AddrMap {
    let mut funcs = Vec::new();
    let (mut b, mut v) = (0x1000u32, 0x1000u32);
    for (i, (linear, deltas)) in shapes.into_iter().enumerate() {
        let (e, nb, nv) = entry_from(i as u32, b, v, linear, &deltas);
        funcs.push(e);
        b = nb;
        v = nv;
    }
    AddrMap { funcs }
}

proptest! {
    #[test]
    fn encode_decode_encode_is_identity(
        shapes in prop::collection::vec(
            (any::<bool>(), prop::collection::vec((0u32..64, 0u32..64, 0u32..64), 0..24)),
            0..8,
        ),
    ) {
        let map = build_map(shapes);
        let enc = map.encode();
        let dec = AddrMap::decode(&enc).expect("valid encoding decodes");
        prop_assert_eq!(&dec, &map);
        prop_assert_eq!(dec.encode(), enc);
    }

    #[test]
    fn forward_and_reverse_lookups_invert_on_every_pair(
        shapes in prop::collection::vec(
            (any::<bool>(), prop::collection::vec((0u32..64, 0u32..64, 0u32..64), 1..24)),
            1..8,
        ),
    ) {
        let map = build_map(shapes);
        for f in &map.funcs {
            if f.linear {
                // Every byte of a linear function maps both ways.
                for off in [0, (f.base_end - f.base_start) / 2] {
                    let b = f.base_start + off;
                    let (lo, hi) = map.baseline_to_variant(b).expect("linear hit");
                    prop_assert_eq!((lo, hi), (f.var_start + off, f.var_start + off));
                    let back = map.variant_to_baseline(hi).expect("reverse hit");
                    prop_assert_eq!(back.addr, b);
                    prop_assert_eq!(back.function.as_str(), f.name.as_str());
                }
                continue;
            }
            for &(b, lo, hi) in &f.pairs {
                prop_assert_eq!(map.baseline_to_variant(b), Some((lo, hi)));
                // The matched instruction address and every byte of the
                // NOP run falling into it resolve back to the pair.
                for v in [lo, hi] {
                    let back = map.variant_to_baseline(v).expect("reverse hit");
                    prop_assert_eq!(back.addr, b);
                    prop_assert_eq!(back.function.as_str(), f.name.as_str());
                }
            }
        }
    }

    #[test]
    fn decode_never_panics_on_mutated_bytes(
        shapes in prop::collection::vec(
            (any::<bool>(), prop::collection::vec((0u32..64, 0u32..64, 0u32..64), 0..12)),
            0..4,
        ),
        flip_at in any::<u32>(),
        flip_bits in 1u8..=255,
        truncate_to in any::<u32>(),
    ) {
        let map = build_map(shapes);
        let enc = map.encode();
        // Bit-flip anywhere: must decode to the original or error — the
        // checksum makes "decodes to something else" effectively
        // impossible, and nothing may panic.
        let mut mutated = enc.clone();
        let at = (flip_at as usize) % mutated.len();
        mutated[at] ^= flip_bits;
        if let Ok(dec) = AddrMap::decode(&mutated) {
            prop_assert_eq!(dec, map.clone());
        }
        // Truncation at any length errors cleanly.
        let cut = (truncate_to as usize) % enc.len();
        prop_assert!(AddrMap::decode(&enc[..cut]).is_err());
    }
}
