//! Greedy structural shrinking of failing fuzz cases.
//!
//! Works on the [`FuzzProgram`] tree, never on source text, so every
//! candidate is a well-formed program by construction. Three families of
//! edits are tried, largest-stride first:
//!
//! 1. **Function deletion** — drop a helper entirely, remapping calls to
//!    later helpers and replacing calls to the deleted one with `1`;
//! 2. **Statement deletion and hoisting** — remove a statement, or
//!    replace an `if`/loop with (one arm of) its body;
//! 3. **Expression simplification** — replace an expression with one of
//!    its operands, with `0`/`1`, and shrink edge constants.
//!
//! The caller supplies the failure predicate (re-running the differential
//! case); a candidate is accepted only if it still fails **and** is
//! strictly smaller under a lexicographic (statements, expression nodes,
//! constant weight) metric, which makes the greedy loop terminate without
//! a fuel-per-round bound. The `budget` caps total predicate evaluations
//! since each one compiles and runs programs.

use crate::gen::{FExpr, FStmt, FuzzFn, FuzzProgram};

/// Statistics from one shrink run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Predicate evaluations spent.
    pub evals: usize,
    /// Accepted (strictly smaller, still failing) candidates.
    pub accepted: usize,
}

/// The strict-descent size metric: statements, then expression nodes,
/// then non-trivial-constant weight. Every accepted edit must decrease
/// this lexicographically.
fn metric(p: &FuzzProgram) -> (usize, usize, usize) {
    fn expr_nodes(e: &FExpr) -> usize {
        match e {
            FExpr::Const(_) | FExpr::Local(_) | FExpr::Param(_) | FExpr::Global(_) => 1,
            FExpr::Mem(i) | FExpr::Arr(i) | FExpr::Un(_, i) => 1 + expr_nodes(i),
            FExpr::Bin(_, l, r) | FExpr::DivRaw(l, r) | FExpr::Call(_, l, r) => {
                1 + expr_nodes(l) + expr_nodes(r)
            }
        }
    }
    fn const_weight(e: &FExpr) -> usize {
        match e {
            // Variables weigh more than any constant so replacing a
            // variable read with a literal is strict descent.
            FExpr::Const(0) => 0,
            FExpr::Const(1) => 1,
            FExpr::Const(_) => 2,
            FExpr::Local(_) | FExpr::Param(_) | FExpr::Global(_) => 3,
            FExpr::Mem(i) | FExpr::Arr(i) | FExpr::Un(_, i) => const_weight(i),
            FExpr::Bin(_, l, r) | FExpr::DivRaw(l, r) | FExpr::Call(_, l, r) => {
                const_weight(l) + const_weight(r)
            }
        }
    }
    fn stmt_cost(s: &FStmt) -> (usize, usize) {
        match s {
            FStmt::Assign(_, e) | FStmt::StoreGlobal(_, e) | FStmt::Print(e) | FStmt::Ret(e) => {
                (expr_nodes(e), const_weight(e))
            }
            FStmt::StoreMem(i, e) | FStmt::StoreArr(i, e) | FStmt::StoreOob(i, e) => (
                expr_nodes(i) + expr_nodes(e),
                const_weight(i) + const_weight(e),
            ),
            FStmt::If(c, t, f) => {
                let (mut n, mut w) = (expr_nodes(c), const_weight(c));
                for s in t.iter().chain(f) {
                    let (sn, sw) = stmt_cost(s);
                    n += sn;
                    w += sw;
                }
                (n, w)
            }
            FStmt::Loop(b, body) => {
                let (mut n, mut w) = (expr_nodes(b), const_weight(b));
                for s in body {
                    let (sn, sw) = stmt_cost(s);
                    n += sn;
                    w += sw;
                }
                (n, w)
            }
        }
    }
    let mut nodes = 0;
    let mut weight = 0;
    for s in p.helpers.iter().flat_map(|f| &f.body).chain(&p.main) {
        let (n, w) = stmt_cost(s);
        nodes += n;
        weight += w;
    }
    (p.num_stmts(), nodes, weight)
}

/// One-edit simplifications of `e` (replacement candidates, best first).
fn expr_variants(e: &FExpr) -> Vec<FExpr> {
    let mut out = Vec::new();
    if !matches!(e, FExpr::Const(0)) {
        out.push(FExpr::Const(0));
    }
    match e {
        FExpr::Const(c) => {
            if *c != 0 && *c != 1 {
                out.push(FExpr::Const(1));
            }
        }
        FExpr::Local(_) | FExpr::Param(_) | FExpr::Global(_) => {}
        FExpr::Mem(i) | FExpr::Arr(i) | FExpr::Un(_, i) => {
            out.push((**i).clone());
            for v in expr_variants(i) {
                out.push(rebuild_unary(e, v));
            }
        }
        FExpr::Bin(_, l, r) | FExpr::DivRaw(l, r) | FExpr::Call(_, l, r) => {
            out.push((**l).clone());
            out.push((**r).clone());
            if matches!(e, FExpr::Call(..)) {
                out.push(FExpr::Const(1));
            }
            for v in expr_variants(l) {
                out.push(rebuild_binary(e, Some(v), None));
            }
            for v in expr_variants(r) {
                out.push(rebuild_binary(e, None, Some(v)));
            }
        }
    }
    out
}

fn rebuild_unary(e: &FExpr, inner: FExpr) -> FExpr {
    match e {
        FExpr::Mem(_) => FExpr::Mem(Box::new(inner)),
        FExpr::Arr(_) => FExpr::Arr(Box::new(inner)),
        FExpr::Un(op, _) => FExpr::Un(op, Box::new(inner)),
        _ => unreachable!("rebuild_unary on non-unary"),
    }
}

fn rebuild_binary(e: &FExpr, l: Option<FExpr>, r: Option<FExpr>) -> FExpr {
    let pick = |slot: Option<FExpr>, old: &FExpr| Box::new(slot.unwrap_or_else(|| old.clone()));
    match e {
        FExpr::Bin(op, ol, or) => FExpr::Bin(op, pick(l, ol), pick(r, or)),
        FExpr::DivRaw(ol, or) => FExpr::DivRaw(pick(l, ol), pick(r, or)),
        FExpr::Call(k, ol, or) => FExpr::Call(*k, pick(l, ol), pick(r, or)),
        _ => unreachable!("rebuild_binary on non-binary"),
    }
}

/// Variants of a single statement with one expression simplified.
fn stmt_expr_variants(s: &FStmt) -> Vec<FStmt> {
    let mut out = Vec::new();
    match s {
        FStmt::Assign(v, e) => {
            out.extend(expr_variants(e).into_iter().map(|e| FStmt::Assign(*v, e)));
        }
        FStmt::StoreGlobal(g, e) => out.extend(
            expr_variants(e)
                .into_iter()
                .map(|e| FStmt::StoreGlobal(*g, e)),
        ),
        FStmt::StoreMem(i, e) => {
            out.extend(
                expr_variants(i)
                    .into_iter()
                    .map(|i| FStmt::StoreMem(i, e.clone())),
            );
            out.extend(
                expr_variants(e)
                    .into_iter()
                    .map(|e| FStmt::StoreMem(i.clone(), e)),
            );
        }
        FStmt::StoreArr(i, e) => {
            out.extend(
                expr_variants(i)
                    .into_iter()
                    .map(|i| FStmt::StoreArr(i, e.clone())),
            );
            out.extend(
                expr_variants(e)
                    .into_iter()
                    .map(|e| FStmt::StoreArr(i.clone(), e)),
            );
        }
        FStmt::StoreOob(i, e) => {
            out.extend(
                expr_variants(i)
                    .into_iter()
                    .map(|i| FStmt::StoreOob(i, e.clone())),
            );
            out.extend(
                expr_variants(e)
                    .into_iter()
                    .map(|e| FStmt::StoreOob(i.clone(), e)),
            );
        }
        FStmt::Print(e) => {
            out.extend(expr_variants(e).into_iter().map(FStmt::Print));
        }
        FStmt::Ret(e) => {
            out.extend(expr_variants(e).into_iter().map(FStmt::Ret));
        }
        FStmt::If(c, t, f) => out.extend(
            expr_variants(c)
                .into_iter()
                .map(|c| FStmt::If(c, t.clone(), f.clone())),
        ),
        FStmt::Loop(b, body) => out.extend(
            expr_variants(b)
                .into_iter()
                .map(|b| FStmt::Loop(b, body.clone())),
        ),
    }
    out
}

/// All one-edit variants of a statement list: deletions, hoists, nested
/// edits, and expression simplifications.
fn body_variants(stmts: &[FStmt]) -> Vec<Vec<FStmt>> {
    let mut out = Vec::new();
    let splice = |i: usize, replacement: Vec<FStmt>| {
        let mut v: Vec<FStmt> = stmts.to_vec();
        v.splice(i..=i, replacement);
        v
    };
    for i in 0..stmts.len() {
        out.push(splice(i, Vec::new()));
    }
    for (i, s) in stmts.iter().enumerate() {
        match s {
            FStmt::If(c, t, f) => {
                out.push(splice(i, t.clone()));
                out.push(splice(i, f.clone()));
                for tv in body_variants(t) {
                    out.push(splice(i, vec![FStmt::If(c.clone(), tv, f.clone())]));
                }
                for fv in body_variants(f) {
                    out.push(splice(i, vec![FStmt::If(c.clone(), t.clone(), fv)]));
                }
            }
            FStmt::Loop(b, body) => {
                out.push(splice(i, body.clone()));
                for bv in body_variants(body) {
                    out.push(splice(i, vec![FStmt::Loop(b.clone(), bv)]));
                }
            }
            _ => {}
        }
        for sv in stmt_expr_variants(s) {
            out.push(splice(i, vec![sv]));
        }
    }
    out
}

/// Rewrites call indices after helper `k` was deleted: calls to `k`
/// become the constant `1`, calls past `k` shift down.
fn remap_calls_expr(e: &FExpr, k: usize) -> FExpr {
    match e {
        FExpr::Const(_) | FExpr::Local(_) | FExpr::Param(_) | FExpr::Global(_) => e.clone(),
        FExpr::Mem(i) => FExpr::Mem(Box::new(remap_calls_expr(i, k))),
        FExpr::Arr(i) => FExpr::Arr(Box::new(remap_calls_expr(i, k))),
        FExpr::Un(op, i) => FExpr::Un(op, Box::new(remap_calls_expr(i, k))),
        FExpr::Bin(op, l, r) => FExpr::Bin(
            op,
            Box::new(remap_calls_expr(l, k)),
            Box::new(remap_calls_expr(r, k)),
        ),
        FExpr::DivRaw(l, r) => FExpr::DivRaw(
            Box::new(remap_calls_expr(l, k)),
            Box::new(remap_calls_expr(r, k)),
        ),
        FExpr::Call(j, l, r) => {
            if *j == k {
                FExpr::Const(1)
            } else {
                let j = if *j > k { *j - 1 } else { *j };
                FExpr::Call(
                    j,
                    Box::new(remap_calls_expr(l, k)),
                    Box::new(remap_calls_expr(r, k)),
                )
            }
        }
    }
}

fn remap_calls_stmt(s: &FStmt, k: usize) -> FStmt {
    match s {
        FStmt::Assign(v, e) => FStmt::Assign(*v, remap_calls_expr(e, k)),
        FStmt::StoreGlobal(g, e) => FStmt::StoreGlobal(*g, remap_calls_expr(e, k)),
        FStmt::StoreMem(i, e) => FStmt::StoreMem(remap_calls_expr(i, k), remap_calls_expr(e, k)),
        FStmt::StoreArr(i, e) => FStmt::StoreArr(remap_calls_expr(i, k), remap_calls_expr(e, k)),
        FStmt::StoreOob(i, e) => FStmt::StoreOob(remap_calls_expr(i, k), remap_calls_expr(e, k)),
        FStmt::Print(e) => FStmt::Print(remap_calls_expr(e, k)),
        FStmt::Ret(e) => FStmt::Ret(remap_calls_expr(e, k)),
        FStmt::If(c, t, f) => FStmt::If(
            remap_calls_expr(c, k),
            t.iter().map(|s| remap_calls_stmt(s, k)).collect(),
            f.iter().map(|s| remap_calls_stmt(s, k)).collect(),
        ),
        FStmt::Loop(b, body) => FStmt::Loop(
            remap_calls_expr(b, k),
            body.iter().map(|s| remap_calls_stmt(s, k)).collect(),
        ),
    }
}

fn delete_helper(p: &FuzzProgram, k: usize) -> FuzzProgram {
    let helpers = p
        .helpers
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != k)
        .map(|(_, f)| FuzzFn {
            body: f.body.iter().map(|s| remap_calls_stmt(s, k)).collect(),
        })
        .collect();
    let main = p.main.iter().map(|s| remap_calls_stmt(s, k)).collect();
    FuzzProgram { helpers, main }
}

/// All one-edit candidate programs, largest stride first.
fn candidates(p: &FuzzProgram) -> Vec<FuzzProgram> {
    let mut out = Vec::new();
    for k in (0..p.helpers.len()).rev() {
        out.push(delete_helper(p, k));
    }
    for main in body_variants(&p.main) {
        out.push(FuzzProgram {
            helpers: p.helpers.clone(),
            main,
        });
    }
    for (k, f) in p.helpers.iter().enumerate() {
        for body in body_variants(&f.body) {
            let mut helpers = p.helpers.clone();
            helpers[k] = FuzzFn { body };
            out.push(FuzzProgram {
                helpers,
                main: p.main.clone(),
            });
        }
    }
    out
}

/// Greedily minimizes `program` while `still_fails` holds, spending at
/// most `budget` predicate evaluations. Returns the smallest failing
/// program found and the spend statistics.
///
/// The input itself is assumed failing (the caller observed the failure);
/// if the predicate is flaky, the original is returned unchanged.
pub fn shrink(
    program: &FuzzProgram,
    budget: usize,
    still_fails: &mut dyn FnMut(&FuzzProgram) -> bool,
) -> (FuzzProgram, ShrinkStats) {
    let mut current = program.clone();
    let mut stats = ShrinkStats::default();
    loop {
        let cur_metric = metric(&current);
        let mut improved = false;
        for cand in candidates(&current) {
            if stats.evals >= budget {
                return (current, stats);
            }
            if metric(&cand) >= cur_metric {
                continue;
            }
            stats.evals += 1;
            if still_fails(&cand) {
                stats.accepted += 1;
                current = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return (current, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenOptions};

    #[test]
    fn shrinks_to_single_statement_under_trivial_predicate() {
        // Predicate: "program still contains a Print". The shrinker must
        // strip everything else.
        let program = FuzzProgram {
            helpers: vec![FuzzFn {
                body: vec![FStmt::Assign(0, FExpr::Const(42))],
            }],
            main: vec![
                FStmt::Assign(
                    1,
                    FExpr::Bin("+", Box::new(FExpr::Param(0)), Box::new(FExpr::Const(7))),
                ),
                FStmt::Print(FExpr::Local(1)),
                FStmt::Loop(
                    FExpr::Const(5),
                    vec![FStmt::StoreGlobal(0, FExpr::Local(1))],
                ),
            ],
        };
        fn has_print(stmts: &[FStmt]) -> bool {
            stmts.iter().any(|s| match s {
                FStmt::Print(_) => true,
                FStmt::If(_, t, f) => has_print(t) || has_print(f),
                FStmt::Loop(_, b) => has_print(b),
                _ => false,
            })
        }
        let (small, stats) = shrink(&program, 10_000, &mut |p| {
            has_print(&p.main) || p.helpers.iter().any(|f| has_print(&f.body))
        });
        assert_eq!(small.num_stmts(), 1, "{small:?}");
        assert!(small.helpers.is_empty());
        assert_eq!(small.main, vec![FStmt::Print(FExpr::Const(0))]);
        assert!(stats.accepted > 0);
    }

    #[test]
    fn shrink_terminates_and_shrunk_programs_compile() {
        for seed in 0..4 {
            let program = generate(seed, &GenOptions::default());
            // Predicate accepts everything: the metric descent must still
            // terminate (at the empty program) without budget exhaustion.
            let (small, _) = shrink(&program, 100_000, &mut |_| true);
            assert_eq!(small.num_stmts(), 0);
            pgsd_cc::driver::compile("shrunk", &small.emit())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn helper_deletion_remaps_call_indices() {
        let call = |k: usize| FExpr::Call(k, Box::new(FExpr::Const(0)), Box::new(FExpr::Const(0)));
        let p = FuzzProgram {
            helpers: vec![
                FuzzFn { body: vec![] },
                FuzzFn {
                    body: vec![FStmt::Assign(0, call(0))],
                },
                FuzzFn { body: vec![] },
            ],
            main: vec![FStmt::Assign(0, call(1)), FStmt::Assign(1, call(2))],
        };
        let q = delete_helper(&p, 1);
        assert_eq!(q.helpers.len(), 2);
        // Call(1) (deleted) → Const(1); Call(2) → Call(1).
        assert_eq!(q.main[0], FStmt::Assign(0, FExpr::Const(1)));
        assert_eq!(q.main[1], FStmt::Assign(1, call(1)));
        pgsd_cc::driver::compile("remap", &q.emit()).unwrap();
    }

    #[test]
    fn budget_bounds_evaluations() {
        let program = generate(3, &GenOptions::default());
        let mut calls = 0usize;
        let (_, stats) = shrink(&program, 25, &mut |_| {
            calls += 1;
            true
        });
        assert!(stats.evals <= 25);
        assert_eq!(calls, stats.evals);
    }
}
